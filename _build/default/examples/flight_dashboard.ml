(* Flight dashboard: DOT-style data plus the paper's §5.1 Top-k
   extension.

   Run with:  dune exec examples/flight_dashboard.exe

   An airline-quality dashboard pins a handful of "best flights" cards
   but lets the user ask for the top-3 under their own weighting of
   punctuality, speed and distance.  We build k = 3 onion-style layers
   of compact maxima sets (§5.1) and answer top-3 queries from the
   layers alone. *)

open Rrms_core

let () =
  let rng = Rrms_rng.Rng.create 99 in
  let flights = Rrms_dataset.Realistic.dot rng ~n:20_000 in
  (* dep_delay (flipped), air_time, distance, arrival_delay (flipped) *)
  let d =
    Rrms_dataset.Dataset.normalize
      (Rrms_dataset.Dataset.project flights [| 0; 4; 5; 6 |])
  in
  let pts = Rrms_dataset.Dataset.rows d in
  Printf.printf "flights: %d over %s\n" (Array.length pts)
    (String.concat ", " (Array.to_list (Rrms_dataset.Dataset.attributes d)));

  let r = 6 and gamma = 4 and k = 3 in
  let probe_funcs = Discretize.grid ~gamma:8 ~m:(Rrms_dataset.Dataset.dim d) in
  let select sub = (Hd_rrms.solve ~gamma sub ~r).Hd_rrms.selected in
  let layers = Topk.build ~select ~probe_funcs ~k pts in

  Array.iteri
    (fun li members ->
      Printf.printf "layer %d: %d flights, covers %d tuples\n" (li + 1)
        (Array.length members)
        (Array.length layers.Topk.covered.(li)))
    layers.Topk.layer_members;

  (* Answer top-3 queries from the layers and compare to ground truth. *)
  let queries =
    [
      ("punctuality-first", [| 0.6; 0.1; 0.1; 0.2 |]);
      ("long-haul value", [| 0.1; 0.2; 0.6; 0.1 |]);
      ("balanced", [| 0.25; 0.25; 0.25; 0.25 |]);
    ]
  in
  List.iter
    (fun (name, w) ->
      let approx = Topk.topk_from_layers pts layers w ~k in
      (* ground truth top-3 *)
      let order = Array.init (Array.length pts) Fun.id in
      Array.sort
        (fun a b ->
          Float.compare (Rrms_geom.Vec.dot w pts.(b)) (Rrms_geom.Vec.dot w pts.(a)))
        order;
      Printf.printf "\nquery %s:\n" name;
      Array.iteri
        (fun rank i ->
          let true_i = order.(rank) in
          let got = Rrms_geom.Vec.dot w pts.(i) in
          let want = Rrms_geom.Vec.dot w pts.(true_i) in
          Printf.printf
            "  rank %d: layered answer scores %.4f vs true %.4f (regret %.4f)\n"
            (rank + 1) got want
            (Float.max 0. ((want -. got) /. want)))
        approx)
    queries;

  (* The k-th layer's promise: serving the top-1 from layer 1 alone is
     within that layer's regret bound. *)
  let layer1 = layers.Topk.layer_members.(0) in
  let layer1_regret = Regret.exact_lp ~selected:layer1 pts in
  Printf.printf "\nlayer-1 exact max regret (top-1 guarantee): %.4f\n"
    layer1_regret
