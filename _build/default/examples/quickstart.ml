(* Quickstart: the full pipeline on a small synthetic dataset.

   Run with:  dune exec examples/quickstart.exe

   1. Generate 1000 anti-correlated 2D tuples (a rich trade-off curve)
      and 1000 independent tuples in [0,1]⁴.
   2. Show how much smaller skyline and hull are than the data.
   3. Find a 5-tuple regret-minimizing set in 2D (exact) and 4D
      (HD-RRMS), and report the regret a user can at most suffer when
      queries are answered from the compact set alone. *)

open Rrms_core

let () =
  let rng = Rrms_rng.Rng.create 2017 in

  (* ---------------- 2D ---------------- *)
  print_endline "=== 2D: exact regret-ratio minimizing set ===";
  let d2 = Rrms_dataset.Synthetic.anticorrelated rng ~n:1000 ~m:2 in
  let pts2 = Rrms_dataset.Dataset.rows d2 in
  let sky2 = Rrms_skyline.Skyline.two_d pts2 in
  let hull2 = Rrms_geom.Hull2d.build pts2 in
  Printf.printf "tuples: %d   skyline: %d   maxima hull: %d\n"
    (Array.length pts2) (Array.length sky2) (Rrms_geom.Hull2d.size hull2);

  let r = 5 in
  let { Rrms2d.selected; regret; _ } = Rrms2d.solve_exact pts2 ~r in
  Printf.printf "2D-RRMS (r=%d): optimal max regret ratio = %.4f\n" r regret;
  Array.iter
    (fun i -> Printf.printf "  keep tuple %4d = (%.3f, %.3f)\n" i pts2.(i).(0) pts2.(i).(1))
    selected;

  (* Sanity: answering a preference from the compact set. *)
  let preference = [| 0.3; 0.7 |] in
  let best_all = Rrms_geom.Vec.max_score_index preference pts2 in
  let best_sel =
    let best = ref selected.(0) in
    Array.iter
      (fun i ->
        if Rrms_geom.Vec.dot preference pts2.(i)
           > Rrms_geom.Vec.dot preference pts2.(!best)
        then best := i)
      selected;
    !best
  in
  Printf.printf
    "user preference (0.3, 0.7): true best scores %.4f, compact set offers %.4f\n\n"
    (Rrms_geom.Vec.dot preference pts2.(best_all))
    (Rrms_geom.Vec.dot preference pts2.(best_sel));

  (* ---------------- 4D ---------------- *)
  print_endline "=== 4D: HD-RRMS approximation ===";
  let d4 = Rrms_dataset.Synthetic.independent rng ~n:1000 ~m:4 in
  let pts4 = Rrms_dataset.Dataset.rows d4 in
  let sky4 = Rrms_skyline.Skyline.sfs pts4 in
  Printf.printf "tuples: %d   skyline: %d\n" (Array.length pts4)
    (Array.length sky4);

  let gamma = 4 in
  let res = Hd_rrms.solve ~gamma pts4 ~r in
  let true_regret = Regret.exact_lp ~selected:res.Hd_rrms.selected pts4 in
  Printf.printf
    "HD-RRMS (r=%d, γ=%d): kept %d tuples; grid regret %.4f, exact regret %.4f\n"
    r gamma
    (Array.length res.Hd_rrms.selected)
    res.Hd_rrms.eps_min true_regret;
  Printf.printf "Theorem-4 guarantee on the regret: <= %.4f\n"
    res.Hd_rrms.guarantee;
  Array.iter
    (fun i ->
      Printf.printf "  keep tuple %4d = %s\n" i
        (Rrms_geom.Vec.to_string pts4.(i)))
    res.Hd_rrms.selected
