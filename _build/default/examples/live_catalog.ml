(* Live catalog: maintaining a compact maxima set under updates.

   Run with:  dune exec examples/live_catalog.exe

   A product catalog receives a stream of new listings (2D: rating vs
   value-for-money) and occasionally retires old ones, while a landing
   page keeps showing an r-item regret-minimizing selection.  The
   Dynamic2d wrapper recomputes only when an update can actually change
   the answer — dominated arrivals are absorbed for free. *)

open Rrms_core

let () =
  let rng = Rrms_rng.Rng.create 31 in
  let r = 4 in
  let catalog = Dynamic2d.create ~r [||] in
  let arrivals = 5_000 in
  let handles = Array.make arrivals (-1) in
  for i = 0 to arrivals - 1 do
    let rating = Rrms_rng.Rng.float rng 5. in
    (* Cheaper items trade off against rating. *)
    let value =
      Float.max 0.
        (10. -. (1.5 *. rating) +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:1.)
    in
    handles.(i) <- Dynamic2d.insert catalog [| rating; value |];
    (* The landing page refreshes every 100 arrivals. *)
    if (i + 1) mod 1000 = 0 then begin
      (* Bind before printing: Printf arguments evaluate right-to-left,
         which would read the counter before the query forces the
         recompute. *)
      let page = Array.length (Dynamic2d.selection catalog) in
      let worst = Dynamic2d.regret catalog in
      Printf.printf
        "after %4d arrivals: front page of %d items, worst-case regret %.4f \
         (recomputes so far: %d)\n"
        (i + 1) page worst
        (Dynamic2d.recompute_count catalog)
    end
  done;

  (* Retire 1000 random listings. *)
  for _ = 1 to 1000 do
    Dynamic2d.remove catalog handles.(Rrms_rng.Rng.int rng arrivals)
  done;
  Printf.printf
    "after retiring ~1000 listings: %d live, regret %.4f, total recomputes %d\n"
    (Dynamic2d.size catalog) (Dynamic2d.regret catalog)
    (Dynamic2d.recompute_count catalog);

  (* Sanity: the maintained answer equals a from-scratch solve. *)
  let live =
    Array.of_list
      (List.filter_map
         (fun h -> Dynamic2d.get catalog h)
         (List.init arrivals Fun.id))
  in
  let scratch = Rrms2d.solve_exact live ~r in
  Printf.printf "from-scratch check: %.6f vs maintained %.6f\n"
    scratch.Rrms2d.regret (Dynamic2d.regret catalog);
  assert (Float.abs (scratch.Rrms2d.regret -. Dynamic2d.regret catalog) < 1e-9);
  Printf.printf
    "amortization: %d recomputations for %d updates (%.1f%%)\n"
    (Dynamic2d.recompute_count catalog)
    (arrivals + 1000)
    (100.
    *. float_of_int (Dynamic2d.recompute_count catalog)
    /. float_of_int (arrivals + 1000))
