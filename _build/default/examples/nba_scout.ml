(* NBA scouting: the paper's high-dimensional headline scenario.

   Run with:  dune exec examples/nba_scout.exe

   A scout wants a shortlist of r players such that whatever linear mix
   of points / rebounds / assists / steals a coach cares about, the
   shortlist contains someone close to the league's best for that mix.
   We compare the three high-dimensional algorithms of the paper on a
   simulated league (see DESIGN.md §4 for the real-data substitution). *)

open Rrms_core

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let () =
  let rng = Rrms_rng.Rng.create 23 in
  let league = Rrms_dataset.Realistic.nba rng ~n:10_000 in
  (* Rank on the four headline stats, normalized. *)
  let d =
    Rrms_dataset.Dataset.normalize
      (Rrms_dataset.Dataset.project league [| 0; 1; 2; 3 |])
  in
  let pts = Rrms_dataset.Dataset.rows d in
  Printf.printf "league: %d player-seasons, attributes: %s\n"
    (Rrms_dataset.Dataset.size d)
    (String.concat ", " (Array.to_list (Rrms_dataset.Dataset.attributes d)));
  Printf.printf "skyline: %d\n\n" (Rrms_skyline.Skyline.size_of pts);

  let r = 5 and gamma = 5 in
  let describe name selected seconds =
    let regret = Regret.exact_lp ~selected pts in
    Printf.printf "%-10s %d players, exact max regret %.4f, %.2fs\n" name
      (Array.length selected) regret seconds;
    Array.iter
      (fun i ->
        let stat j = Rrms_dataset.Dataset.value league i j in
        Printf.printf
          "  player %5d: %4.0f pts %4.0f reb %4.0f ast %3.0f stl\n" i (stat 0)
          (stat 1) (stat 2) (stat 3))
      selected;
    print_newline ()
  in

  let hd_rrms, t1 = time (fun () -> Hd_rrms.solve ~gamma pts ~r) in
  describe "HD-RRMS" hd_rrms.Hd_rrms.selected t1;

  let hd_greedy, t2 = time (fun () -> Hd_greedy.solve ~gamma pts ~r) in
  describe "HD-GREEDY" hd_greedy.Hd_greedy.selected t2;

  let greedy, t3 = time (fun () -> Greedy.solve pts ~r) in
  describe "GREEDY" greedy.Greedy.selected t3;

  (* Spot-check three coaching philosophies. *)
  let coaches =
    [
      ("scoring-first", [| 0.7; 0.1; 0.15; 0.05 |]);
      ("glass-cleaner", [| 0.15; 0.7; 0.05; 0.1 |]);
      ("playmaker", [| 0.2; 0.1; 0.6; 0.1 |]);
    ]
  in
  print_endline "per-coach check (score from shortlist vs true best):";
  List.iter
    (fun (name, w) ->
      let best = Rrms_geom.Vec.max_score w pts in
      let from_shortlist =
        Array.fold_left
          (fun acc i -> Float.max acc (Rrms_geom.Vec.dot w pts.(i)))
          0. hd_rrms.Hd_rrms.selected
      in
      Printf.printf "  %-14s %.4f / %.4f (regret %.4f)\n" name from_shortlist
        best
        ((best -. from_shortlist) /. best))
    coaches
