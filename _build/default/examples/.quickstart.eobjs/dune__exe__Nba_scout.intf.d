examples/nba_scout.mli:
