examples/live_catalog.ml: Array Dynamic2d Float Fun List Printf Rrms2d Rrms_core Rrms_rng
