examples/real_estate.mli:
