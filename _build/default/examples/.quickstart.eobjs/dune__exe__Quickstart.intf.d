examples/quickstart.mli:
