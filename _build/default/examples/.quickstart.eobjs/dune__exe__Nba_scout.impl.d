examples/nba_scout.ml: Array Float Greedy Hd_greedy Hd_rrms List Printf Regret Rrms_core Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline String Unix
