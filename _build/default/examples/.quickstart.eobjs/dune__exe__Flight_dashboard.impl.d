examples/flight_dashboard.ml: Array Discretize Float Fun Hd_rrms List Printf Regret Rrms_core Rrms_dataset Rrms_geom Rrms_rng String Topk
