examples/quickstart.ml: Array Hd_rrms Printf Regret Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline
