examples/flight_dashboard.mli:
