examples/real_estate.ml: Array Float Fun Printf Regret Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline
