(* Real estate: the paper's §1 motivating scenario in 2D.

   Run with:  dune exec examples/real_estate.exe

   A listings site scores houses by a linear mix of floor area and
   affordability (a flipped price), with weights chosen by each visitor.
   Keeping the whole trade-off curve (the convex hull) on the landing
   page is too much; we compute the r-house subset minimizing the
   worst-case visitor regret, then simulate visitors to confirm the
   bound. *)

open Rrms_core

let budget_cap = 2_000_000. (* flip price against this, dollars *)

(* A toy market: bigger houses cost super-linearly more (large plots are
   scarce), with neighbourhood noise and a few luxury outliers.  The
   super-linear pricing curves the affordability-vs-area Pareto
   frontier, so no straight line covers it and the compact-set problem
   is non-trivial. *)
let make_market rng n =
  let rows =
    Array.init n (fun _ ->
        let area =
          Float.max 30. (Rrms_rng.Rng.gaussian rng ~mean:140. ~stddev:60.)
        in
        let price_per_m2 =
          Float.max 300. (Rrms_rng.Rng.gaussian rng ~mean:900. ~stddev:300.)
        in
        let luxury = if Rrms_rng.Rng.float rng 1. < 0.03 then 2.5 else 1. in
        let price =
          Float.min budget_cap ((area ** 1.25) *. price_per_m2 *. luxury)
        in
        [| area; budget_cap -. price |])
  in
  Rrms_dataset.Dataset.create ~name:"housing"
    ~attributes:[| "floor_area_m2"; "affordability" |]
    rows

let () =
  let rng = Rrms_rng.Rng.create 7 in
  let market = make_market rng 50_000 in
  let d = Rrms_dataset.Dataset.normalize market in
  let pts = Rrms_dataset.Dataset.rows d in

  let sky = Rrms_skyline.Skyline.two_d pts in
  Printf.printf "listings: %d   Pareto-optimal (skyline): %d\n"
    (Array.length pts) (Array.length sky);

  let r = 6 in
  let { Rrms2d.selected; regret; _ } = Rrms2d.solve_exact pts ~r in
  Printf.printf
    "front page of %d listings guarantees every visitor >= %.1f%% of their \
     ideal score\n"
    r
    ((1. -. regret) *. 100.);
  print_endline "front-page listings (area m², price $):";
  Array.iter
    (fun i ->
      let area = Rrms_dataset.Dataset.value market i 0 in
      let price = budget_cap -. Rrms_dataset.Dataset.value market i 1 in
      Printf.printf "  #%-6d %7.1f m²  $%.0f\n" i area price)
    selected;

  (* Simulate 100k visitors with random taste and measure realized
     regret: it must never exceed the computed optimum.  The market's
     best offer per taste comes from its maxima hull (an O(log c)
     envelope query) rather than a 50k-row scan per visitor. *)
  let hull = Rrms_geom.Hull2d.build pts in
  let kept = Array.map (fun i -> pts.(i)) selected in
  let worst = ref 0. in
  for _ = 1 to 100_000 do
    let phi = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
    let w = Rrms_geom.Polar.weight_of_angle_2d phi in
    let best_all = Rrms_geom.Vec.dot w (Rrms_geom.Hull2d.max_point_at hull phi) in
    let best_kept =
      Array.fold_left
        (fun acc q -> Float.max acc (Rrms_geom.Vec.dot w q))
        neg_infinity kept
    in
    let realized =
      if best_all <= 0. then 0.
      else Float.max 0. ((best_all -. best_kept) /. best_all)
    in
    if realized > !worst then worst := realized
  done;
  Printf.printf
    "simulated 100k visitors: worst realized regret %.4f (bound %.4f)\n" !worst
    regret;
  assert (!worst <= regret +. 1e-9);

  (* What would a naive "top by one ranking" front page cost?  Take the
     r best houses by area only. *)
  let by_area = Array.init (Array.length pts) Fun.id in
  Array.sort (fun a b -> Float.compare pts.(b).(0) pts.(a).(0)) by_area;
  let naive = Array.sub by_area 0 r in
  let naive_regret = Regret.exact_2d ~selected:naive pts in
  Printf.printf
    "naive 'largest %d houses' front page: worst-case regret %.4f (optimal %.4f)\n"
    r naive_regret regret
