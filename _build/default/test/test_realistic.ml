(* Tests for the simulated real-world datasets: schema, ranges, and the
   correlation structure the substitutions promise to preserve. *)

open Rrms_dataset

let rng () = Rrms_rng.Rng.create 777

let pearson d j k =
  let n = Dataset.size d in
  let nf = float_of_int n in
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let x = Dataset.value d i j and y = Dataset.value d i k in
    sx := !sx +. x;
    sy := !sy +. y;
    sxx := !sxx +. (x *. x);
    syy := !syy +. (y *. y);
    sxy := !sxy +. (x *. y)
  done;
  let cov = (!sxy /. nf) -. (!sx /. nf *. (!sy /. nf)) in
  let vx = (!sxx /. nf) -. (!sx /. nf *. (!sx /. nf)) in
  let vy = (!syy /. nf) -. (!sy /. nf *. (!sy /. nf)) in
  cov /. sqrt (vx *. vy)

let test_airline_schema () =
  let d = Realistic.airline (rng ()) ~n:1000 in
  Alcotest.(check int) "n" 1000 (Dataset.size d);
  Alcotest.(check (array string))
    "attributes"
    [| "actual_elapsed_time"; "distance" |]
    (Dataset.attributes d)

let test_airline_correlation () =
  (* Elapsed time is flipped to higher-is-better, so the dependence on
     distance shows up as a strong negative correlation. *)
  let d = Realistic.airline (rng ()) ~n:5000 in
  let c = pearson d 0 1 in
  Alcotest.(check bool)
    (Printf.sprintf "flipped elapsed vs distance strongly dependent (got %g)" c)
    true (c < -0.9)

let test_airline_skyline_band () =
  (* The trade-off band has a non-trivial but sub-linear skyline. *)
  let d = Realistic.airline (rng ()) ~n:5000 in
  let s = Rrms_skyline.Skyline.size_of (Dataset.rows d) in
  Alcotest.(check bool)
    (Printf.sprintf "skyline non-trivial and sub-linear (got %d)" s)
    true
    (s > 10 && s < 1000)

let test_dot_schema () =
  let d = Realistic.dot (rng ()) ~n:1000 in
  Alcotest.(check int) "m = 7" 7 (Dataset.dim d);
  Alcotest.(check (array string))
    "DOT attribute order"
    [|
      "dep_delay"; "taxi_out"; "taxi_in"; "actual_elapsed_time"; "air_time";
      "distance"; "arrival_delay";
    |]
    (Dataset.attributes d)

let test_dot_delay_correlation () =
  let d = Realistic.dot (rng ()) ~n:5000 in
  (* Flipped delays remain positively correlated with each other. *)
  let c = pearson d 0 6 in
  Alcotest.(check bool)
    (Printf.sprintf "dep/arr delay correlated (got %g)" c)
    true (c > 0.5);
  (* air_time tracks distance. *)
  let c2 = pearson d 4 5 in
  Alcotest.(check bool)
    (Printf.sprintf "air_time/distance correlated (got %g)" c2)
    true (c2 > 0.9)

let test_nba_schema () =
  let d = Realistic.nba (rng ()) ~n:500 in
  Alcotest.(check int) "m = 17" 17 (Dataset.dim d);
  let attrs = Dataset.attributes d in
  Alcotest.(check string) "first attr is pts" "pts" attrs.(0);
  Alcotest.(check string) "second attr is reb" "reb" attrs.(1)

let test_nba_consistency () =
  let d = Realistic.nba (rng ()) ~n:2000 in
  let attrs = Dataset.attributes d in
  let col name =
    let found = ref (-1) in
    Array.iteri (fun i a -> if a = name then found := i) attrs;
    !found
  in
  let pts = col "pts" and minutes = col "minutes" and fga = col "fga" in
  let reb = col "reb" and oreb = col "oreb" and dreb = col "dreb" in
  (* Points track minutes and attempts. *)
  let c = pearson d pts minutes in
  Alcotest.(check bool)
    (Printf.sprintf "pts/minutes correlated (got %g)" c)
    true (c > 0.6);
  let c2 = pearson d pts fga in
  Alcotest.(check bool)
    (Printf.sprintf "pts/fga correlated (got %g)" c2)
    true (c2 > 0.8);
  (* Rebounds add up (within rounding of the three counts). *)
  for i = 0 to Dataset.size d - 1 do
    let total = Dataset.value d i reb
    and o = Dataset.value d i oreb
    and de = Dataset.value d i dreb in
    Alcotest.(check bool) "reb ≈ oreb + dreb" true (Float.abs (total -. (o +. de)) <= 1.5)
  done

let test_all_non_negative () =
  let check d =
    Array.iter
      (fun r ->
        Array.iter
          (fun v ->
            Alcotest.(check bool) "non-negative" true (v >= 0. && Float.is_finite v))
          r)
      (Dataset.rows d)
  in
  let r = rng () in
  check (Realistic.airline r ~n:500);
  check (Realistic.dot r ~n:500);
  check (Realistic.nba r ~n:500)

let test_determinism () =
  let d1 = Realistic.nba (Rrms_rng.Rng.create 5) ~n:50 in
  let d2 = Realistic.nba (Rrms_rng.Rng.create 5) ~n:50 in
  for i = 0 to 49 do
    Alcotest.(check (array (float 0.)))
      "same seed same rows" (Dataset.row d1 i) (Dataset.row d2 i)
  done

let suite =
  [
    Alcotest.test_case "airline schema" `Quick test_airline_schema;
    Alcotest.test_case "airline correlation" `Slow test_airline_correlation;
    Alcotest.test_case "airline skyline band" `Slow test_airline_skyline_band;
    Alcotest.test_case "dot schema" `Quick test_dot_schema;
    Alcotest.test_case "dot delay correlation" `Slow test_dot_delay_correlation;
    Alcotest.test_case "nba schema" `Quick test_nba_schema;
    Alcotest.test_case "nba consistency" `Slow test_nba_consistency;
    Alcotest.test_case "non-negative values" `Quick test_all_non_negative;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
