(* Tests for dominance and the three skyline algorithms. *)

open Rrms_skyline

let test_dominates () =
  Alcotest.(check bool) "strictly better" true
    (Dominance.dominates [| 2.; 3. |] [| 1.; 2. |]);
  Alcotest.(check bool) "better on one, equal other" true
    (Dominance.dominates [| 2.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Dominance.dominates [| 1.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "incomparable" false
    (Dominance.dominates [| 2.; 1. |] [| 1.; 2. |]);
  Alcotest.(check bool) "worse" false
    (Dominance.dominates [| 0.; 0. |] [| 1.; 2. |])

let test_strict () =
  Alcotest.(check bool) "strict" true
    (Dominance.strictly_dominates [| 2.; 3. |] [| 1.; 2. |]);
  Alcotest.(check bool) "equal component fails" false
    (Dominance.strictly_dominates [| 2.; 2. |] [| 1.; 2. |])

let test_compare () =
  Alcotest.(check bool) "left" true
    (Dominance.compare [| 2.; 3. |] [| 1.; 2. |] = `Left);
  Alcotest.(check bool) "right" true
    (Dominance.compare [| 1.; 2. |] [| 2.; 3. |] = `Right);
  Alcotest.(check bool) "equal" true
    (Dominance.compare [| 1.; 2. |] [| 1.; 2. |] = `Equal);
  Alcotest.(check bool) "incomparable" true
    (Dominance.compare [| 2.; 1. |] [| 1.; 2. |] = `Incomparable)

let test_k_dominates () =
  (* m = 3: t = (3,3,0), t' = (1,1,5). t 2-dominates t' but does not
     3-dominate it. *)
  let t = [| 3.; 3.; 0. |] and t' = [| 1.; 1.; 5. |] in
  Alcotest.(check bool) "2-dominates" true (Dominance.k_dominates 2 t t');
  Alcotest.(check bool) "not 3-dominates" false (Dominance.k_dominates 3 t t');
  (* m-dominance coincides with ordinary dominance. *)
  Alcotest.(check bool) "m-dominance = dominance (pos)" true
    (Dominance.k_dominates 2 [| 2.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "m-dominance = dominance (neg)" false
    (Dominance.k_dominates 2 [| 2.; 1. |] [| 1.; 2. |]);
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Dominance.k_dominates: k out of range") (fun () ->
      ignore (Dominance.k_dominates 4 t t'))

let sorted a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let points_small =
  [|
    [| 1.; 5. |];
    (* skyline *)
    [| 3.; 3. |];
    (* skyline *)
    [| 2.; 2. |];
    (* dominated by (3,3) *)
    [| 5.; 1. |];
    (* skyline *)
    [| 0.; 0. |];
    (* dominated *)
  |]

let test_bnl_small () =
  Alcotest.(check (array int)) "bnl" [| 0; 1; 3 |] (sorted (Skyline.bnl points_small))

let test_sfs_small () =
  Alcotest.(check (array int)) "sfs" [| 0; 1; 3 |] (sorted (Skyline.sfs points_small))

let test_two_d_small () =
  (* two_d returns top-left → bottom-right order. *)
  Alcotest.(check (array int)) "2d order" [| 0; 1; 3 |] (Skyline.two_d points_small)

let test_duplicates_collapse () =
  let pts = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 0.; 0. |] |] in
  Alcotest.(check int) "bnl collapses duplicates" 1 (Array.length (Skyline.bnl pts));
  Alcotest.(check int) "sfs collapses duplicates" 1 (Array.length (Skyline.sfs pts));
  Alcotest.(check int) "two_d collapses duplicates" 1 (Array.length (Skyline.two_d pts));
  Alcotest.(check int) "d&c collapses duplicates" 1
    (Array.length (Skyline.divide_and_conquer pts))

let test_empty_and_single () =
  Alcotest.(check (array int)) "bnl empty" [||] (Skyline.bnl [||]);
  Alcotest.(check (array int)) "sfs empty" [||] (Skyline.sfs [||]);
  Alcotest.(check (array int)) "two_d empty" [||] (Skyline.two_d [||]);
  Alcotest.(check (array int)) "single" [| 0 |] (Skyline.bnl [| [| 1.; 2.; 3. |] |])

(* Property: all three algorithms agree (as sets) on random 2D data, and
   each returned point is verified non-dominated. *)
let test_algorithms_agree_2d () =
  let rng = Rrms_rng.Rng.create 51 in
  for _ = 1 to 30 do
    let n = 1 + Rrms_rng.Rng.int rng 200 in
    let pts =
      Array.init n (fun _ ->
          (* A small grid of values produces many duplicates and ties. *)
          [|
            float_of_int (Rrms_rng.Rng.int rng 20);
            float_of_int (Rrms_rng.Rng.int rng 20);
          |])
    in
    let b = Skyline.bnl pts and s = Skyline.sfs pts and t = Skyline.two_d pts in
    let dc = Skyline.divide_and_conquer pts in
    let key i = (pts.(i).(0), pts.(i).(1)) in
    let keys a = sorted (Array.map key a) in
    Alcotest.(check bool) "bnl = sfs (as point sets)" true (keys b = keys s);
    Alcotest.(check bool) "bnl = two_d (as point sets)" true (keys b = keys t);
    Alcotest.(check bool) "bnl = d&c (as point sets)" true (keys b = keys dc);
    Array.iter
      (fun i ->
        Alcotest.(check bool) "member is non-dominated" true
          (Skyline.is_skyline_point pts i))
      b
  done

let test_algorithms_agree_hd () =
  let rng = Rrms_rng.Rng.create 52 in
  for _ = 1 to 20 do
    let n = 1 + Rrms_rng.Rng.int rng 150 in
    let m = 3 + Rrms_rng.Rng.int rng 3 in
    let pts =
      Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))
    in
    let b = sorted (Skyline.bnl pts) and s = sorted (Skyline.sfs pts) in
    let dc = sorted (Skyline.divide_and_conquer pts) in
    Alcotest.(check (array int)) "bnl = sfs in HD" b s;
    Alcotest.(check (array int)) "bnl = d&c in HD" b dc;
    Array.iter
      (fun i ->
        Alcotest.(check bool) "member is non-dominated" true
          (Skyline.is_skyline_point pts i))
      b
  done

let test_two_d_sorted_order () =
  let rng = Rrms_rng.Rng.create 53 in
  let pts =
    Array.init 500 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let sky = Skyline.two_d pts in
  for k = 0 to Array.length sky - 2 do
    Alcotest.(check bool) "A1 ascending" true
      (pts.(sky.(k)).(0) < pts.(sky.(k + 1)).(0));
    Alcotest.(check bool) "A2 descending" true
      (pts.(sky.(k)).(1) > pts.(sky.(k + 1)).(1))
  done

let test_completeness () =
  (* Every point not returned must be dominated by some returned point. *)
  let rng = Rrms_rng.Rng.create 54 in
  let pts =
    Array.init 300 (fun _ ->
        Array.init 3 (fun _ -> float_of_int (Rrms_rng.Rng.int rng 10)))
  in
  let sky = Skyline.sfs pts in
  let in_sky = Array.make 300 false in
  Array.iter (fun i -> in_sky.(i) <- true) sky;
  Array.iteri
    (fun i p ->
      if not in_sky.(i) then begin
        let covered =
          Array.exists
            (fun j -> Dominance.dominates pts.(j) p || pts.(j) = p)
            sky
        in
        Alcotest.(check bool) "excluded point is dominated or duplicate" true covered
      end)
    pts

let test_skyband () =
  let rng = Rrms_rng.Rng.create 59 in
  for _ = 1 to 20 do
    let n = 5 + Rrms_rng.Rng.int rng 80 in
    let pts =
      Array.init n (fun _ ->
          Array.init 3 (fun _ -> float_of_int (Rrms_rng.Rng.int rng 8)))
    in
    (* 1-skyband = skyline (same duplicate handling: one representative). *)
    let band1 = sorted (Skyline.skyband ~k:1 pts) in
    let sky = sorted (Skyline.sfs pts) in
    Alcotest.(check (array int)) "1-skyband = skyline" sky band1;
    (* Monotone in k and eventually everything. *)
    let prev = ref 0 in
    for k = 1 to 4 do
      let b = Array.length (Skyline.skyband ~k pts) in
      Alcotest.(check bool) "skyband grows with k" true (b >= !prev);
      prev := b
    done;
    Alcotest.(check int) "n-skyband is everything" n
      (Array.length (Skyline.skyband ~k:n pts))
  done

let test_skyband_contains_topk () =
  (* Every top-k answer of every linear function lies in the k-skyband. *)
  let rng = Rrms_rng.Rng.create 60 in
  let pts =
    Array.init 120 (fun _ ->
        Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let k = 3 in
  let band = Skyline.skyband ~k pts in
  let in_band i = Array.mem i band in
  for _ = 1 to 40 do
    let w = Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.) in
    let order = Array.init 120 Fun.id in
    Array.sort
      (fun a b ->
        Float.compare (Rrms_geom.Vec.dot w pts.(b)) (Rrms_geom.Vec.dot w pts.(a)))
      order;
    for rank = 0 to k - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "rank-%d answer in %d-skyband" (rank + 1) k)
        true
        (in_band order.(rank))
    done
  done

let test_kdom_skyline () =
  (* With k = m the k-dominant skyline is the ordinary skyline. *)
  let rng = Rrms_rng.Rng.create 55 in
  let pts =
    Array.init 100 (fun _ ->
        Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let full = sorted (Skyline.sfs pts) in
  let kd = sorted (Kdom.k_dominant_skyline ~k:3 pts) in
  Alcotest.(check (array int)) "k=m equals skyline" full kd

let test_kdom_shrinks () =
  let rng = Rrms_rng.Rng.create 56 in
  let pts =
    Array.init 200 (fun _ ->
        Array.init 4 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let s4 = Array.length (Kdom.k_dominant_skyline ~k:4 pts) in
  let s3 = Array.length (Kdom.k_dominant_skyline ~k:3 pts) in
  let s2 = Array.length (Kdom.k_dominant_skyline ~k:2 pts) in
  Alcotest.(check bool)
    (Printf.sprintf "monotone in k: %d <= %d <= %d" s2 s3 s4)
    true
    (s2 <= s3 && s3 <= s4)

let test_kdom_collapse_to_empty () =
  (* The paper's Figure 31 observation: on continuous independent data
     the (m-1)-dominant skyline is very likely empty. *)
  let rng = Rrms_rng.Rng.create 57 in
  let pts =
    Array.init 2000 (fun _ ->
        Array.init 4 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let s3 = Array.length (Kdom.k_dominant_skyline ~k:3 pts) in
  Alcotest.(check bool)
    (Printf.sprintf "3-dominant skyline tiny or empty (got %d)" s3)
    true (s3 <= 2)

let test_kdom_adapt () =
  let rng = Rrms_rng.Rng.create 58 in
  let pts =
    Array.init 500 (fun _ ->
        Array.init 4 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let result = Kdom.adapt_for_size ~r:5 pts in
  Alcotest.(check bool) "within budget" true (Array.length result <= 5)

let suite =
  [
    Alcotest.test_case "dominates" `Quick test_dominates;
    Alcotest.test_case "strictly dominates" `Quick test_strict;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "k-dominates" `Quick test_k_dominates;
    Alcotest.test_case "bnl small" `Quick test_bnl_small;
    Alcotest.test_case "sfs small" `Quick test_sfs_small;
    Alcotest.test_case "two_d small" `Quick test_two_d_small;
    Alcotest.test_case "duplicates collapse" `Quick test_duplicates_collapse;
    Alcotest.test_case "empty and single" `Quick test_empty_and_single;
    Alcotest.test_case "algorithms agree (2D)" `Quick test_algorithms_agree_2d;
    Alcotest.test_case "algorithms agree (HD)" `Quick test_algorithms_agree_hd;
    Alcotest.test_case "two_d sorted" `Quick test_two_d_sorted_order;
    Alcotest.test_case "completeness" `Quick test_completeness;
    Alcotest.test_case "skyband" `Quick test_skyband;
    Alcotest.test_case "skyband contains top-k" `Quick test_skyband_contains_topk;
    Alcotest.test_case "k-dom = skyline at k=m" `Quick test_kdom_skyline;
    Alcotest.test_case "k-dom shrinks" `Quick test_kdom_shrinks;
    Alcotest.test_case "k-dom collapses empty" `Quick test_kdom_collapse_to_empty;
    Alcotest.test_case "k-dom adaptation" `Quick test_kdom_adapt;
  ]
