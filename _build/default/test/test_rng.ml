(* Tests for the splitmix64 RNG substrate. *)

let test_determinism () =
  let a = Rrms_rng.Rng.create 42 and b = Rrms_rng.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Rrms_rng.Rng.bits64 a) (Rrms_rng.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rrms_rng.Rng.create 1 and b = Rrms_rng.Rng.create 2 in
  Alcotest.(check bool)
    "different seeds diverge" true
    (Rrms_rng.Rng.bits64 a <> Rrms_rng.Rng.bits64 b)

let test_copy_independent () =
  let a = Rrms_rng.Rng.create 7 in
  ignore (Rrms_rng.Rng.bits64 a);
  let b = Rrms_rng.Rng.copy a in
  let xa = Rrms_rng.Rng.bits64 a in
  let xb = Rrms_rng.Rng.bits64 b in
  Alcotest.(check int64) "copy resumes at same point" xa xb;
  ignore (Rrms_rng.Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa' = Rrms_rng.Rng.bits64 a and xb' = Rrms_rng.Rng.bits64 b in
  Alcotest.(check bool) "streams advance independently" true (xa' <> xb' || xa' = xb')

let test_int_range () =
  let t = Rrms_rng.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rrms_rng.Rng.int t 17 in
    Alcotest.(check bool) "int in [0,bound)" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let t = Rrms_rng.Rng.create 3 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rrms_rng.Rng.int t 0))

let test_int_covers_all_values () =
  let t = Rrms_rng.Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Rrms_rng.Rng.int t 5) <- true
  done;
  Array.iteri
    (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d hit" i) true s)
    seen

let test_float_range () =
  let t = Rrms_rng.Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rrms_rng.Rng.float t 2.5 in
    Alcotest.(check bool) "float in [0,bound)" true (v >= 0. && v < 2.5)
  done

let test_uniform_range () =
  let t = Rrms_rng.Rng.create 6 in
  for _ = 1 to 10_000 do
    let v = Rrms_rng.Rng.uniform t (-3.) 4. in
    Alcotest.(check bool) "uniform in [lo,hi)" true (v >= -3. && v < 4.)
  done

let test_uniform_mean () =
  let t = Rrms_rng.Rng.create 8 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rrms_rng.Rng.uniform t 0. 1.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "uniform mean ~0.5 (got %g)" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let test_normal_moments () =
  let t = Rrms_rng.Rng.create 9 in
  let n = 200_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Rrms_rng.Rng.normal t in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool)
    (Printf.sprintf "normal mean ~0 (got %g)" mean)
    true
    (Float.abs mean < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "normal var ~1 (got %g)" var)
    true
    (Float.abs (var -. 1.) < 0.03)

let test_gaussian_shift () =
  let t = Rrms_rng.Rng.create 10 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rrms_rng.Rng.gaussian t ~mean:5. ~stddev:2.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "gaussian mean ~5" true (Float.abs (mean -. 5.) < 0.1)

let test_exponential_mean () =
  let t = Rrms_rng.Rng.create 12 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Rrms_rng.Rng.exponential t ~rate:2. in
    Alcotest.(check bool) "exponential non-negative" true (x >= 0.);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~0.5 (got %g)" mean)
    true
    (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_invalid () =
  let t = Rrms_rng.Rng.create 1 in
  Alcotest.check_raises "rate 0 rejected"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rrms_rng.Rng.exponential t ~rate:0.))

let test_zipf_range_and_skew () =
  let t = Rrms_rng.Rng.create 13 in
  let n = 50_000 in
  let counts = Array.make 11 0 in
  for _ = 1 to n do
    let k = Rrms_rng.Rng.zipf t ~s:1.2 ~n:10 in
    Alcotest.(check bool) "zipf in [1,n]" true (k >= 1 && k <= 10);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "zipf is skewed: rank 1 most frequent" true
    (counts.(1) > counts.(2) && counts.(2) > counts.(5))

let test_zipf_n1 () =
  let t = Rrms_rng.Rng.create 13 in
  Alcotest.(check int) "zipf n=1 always 1" 1 (Rrms_rng.Rng.zipf t ~s:1.0 ~n:1)

let test_shuffle_permutation () =
  let t = Rrms_rng.Rng.create 14 in
  let arr = Array.init 50 (fun i -> i) in
  Rrms_rng.Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int))
    "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_choose () =
  let t = Rrms_rng.Rng.create 15 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rrms_rng.Rng.choose t arr in
    Alcotest.(check bool) "choose from array" true (Array.mem v arr)
  done

let test_split_diverges () =
  let parent = Rrms_rng.Rng.create 99 in
  let child = Rrms_rng.Rng.split parent in
  Alcotest.(check bool) "split streams differ" true
    (Rrms_rng.Rng.bits64 parent <> Rrms_rng.Rng.bits64 child)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Slow test_uniform_mean;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "gaussian shift" `Slow test_gaussian_shift;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
    Alcotest.test_case "zipf range and skew" `Slow test_zipf_range_and_skew;
    Alcotest.test_case "zipf n=1" `Quick test_zipf_n1;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
  ]
