(* Tests for bitsets and the set-cover solvers. *)

open Rrms_setcover

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "starts empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Alcotest.(check int) "count" 4 (Bitset.count b);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 63);
  Alcotest.(check int) "count after clear" 3 (Bitset.count b);
  Alcotest.(check (list int)) "elements" [ 0; 64; 99 ] (Bitset.elements b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Bitset.set: index out of range") (fun () ->
      Bitset.set b 10);
  Alcotest.check_raises "mem out of range"
    (Invalid_argument "Bitset.mem: index out of range") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_bitset_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 3 ] in
  let u = Bitset.copy b in
  Bitset.union_into a ~into:u;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 65 ] (Bitset.elements u);
  Alcotest.(check int) "diff count" 2 (Bitset.diff_count a ~minus:b);
  Alcotest.(check bool) "subset yes" true (Bitset.subset b ~of_:u);
  Alcotest.(check bool) "subset no" false (Bitset.subset u ~of_:b);
  Alcotest.(check bool) "equal copies" true (Bitset.equal a (Bitset.copy a));
  Alcotest.(check int) "full count" 70 (Bitset.count (Bitset.full 70))

let test_bitset_zero_width () =
  let b = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Alcotest.(check int) "count" 0 (Bitset.count b)

let mk universe lists =
  Setcover.make_instance ~universe
    (Array.of_list (List.map (Bitset.of_list universe) lists))

let check_cover inst chosen =
  let covered = Bitset.create inst.Setcover.universe in
  Array.iter
    (fun i -> Bitset.union_into inst.Setcover.sets.(i) ~into:covered)
    chosen;
  Alcotest.(check int)
    "cover is complete" inst.Setcover.universe (Bitset.count covered)

let test_greedy_basic () =
  let inst = mk 5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 0 ] ] in
  match Setcover.greedy inst with
  | None -> Alcotest.fail "expected a cover"
  | Some chosen ->
      check_cover inst chosen;
      Alcotest.(check bool) "reasonable size" true (Array.length chosen <= 3)

let test_greedy_uncoverable () =
  let inst = mk 4 [ [ 0; 1 ]; [ 1; 2 ] ] in
  Alcotest.(check bool) "uncoverable detected" true (Setcover.greedy inst = None);
  Alcotest.(check bool) "coverable predicate" false (Setcover.coverable inst)

let test_exact_basic () =
  (* Classic greedy-suboptimal instance: greedy may pick 3 sets where 2
     suffice. U = {0..5}; sets {0,1,2},{3,4,5} cover with 2. *)
  let inst =
    mk 6 [ [ 0; 1; 2; 3 ]; [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 4; 5 ] ]
  in
  match Setcover.exact inst with
  | None -> Alcotest.fail "expected a cover"
  | Some chosen ->
      check_cover inst chosen;
      Alcotest.(check int) "optimal size 2" 2 (Array.length chosen)

let test_exact_uncoverable () =
  let inst = mk 3 [ [ 0 ]; [ 1 ] ] in
  Alcotest.(check bool) "uncoverable" true (Setcover.exact inst = None)

let test_exact_empty_universe () =
  let inst = mk 0 [] in
  match Setcover.exact inst with
  | Some chosen -> Alcotest.(check int) "empty cover" 0 (Array.length chosen)
  | None -> Alcotest.fail "empty universe is trivially coverable"

let test_exact_max_sets () =
  let inst = mk 4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  Alcotest.(check bool) "needs 4 > 2 sets" true
    (Setcover.exact ~max_sets:2 inst = None);
  match Setcover.exact ~max_sets:4 inst with
  | Some chosen -> Alcotest.(check int) "exactly 4" 4 (Array.length chosen)
  | None -> Alcotest.fail "coverable within 4"

(* Brute force optimal cover size by subset enumeration. *)
let brute_force_opt inst =
  let k = Array.length inst.Setcover.sets in
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    let covered = Bitset.create inst.Setcover.universe in
    let size = ref 0 in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        Bitset.union_into inst.Setcover.sets.(i) ~into:covered
      end
    done;
    if Bitset.count covered = inst.Setcover.universe then
      match !best with
      | Some b when b <= !size -> ()
      | _ -> best := Some !size
  done;
  !best

let test_exact_matches_brute_force () =
  let rng = Rrms_rng.Rng.create 61 in
  for _ = 1 to 100 do
    let universe = 1 + Rrms_rng.Rng.int rng 10 in
    let nsets = 1 + Rrms_rng.Rng.int rng 8 in
    let sets =
      Array.init nsets (fun _ ->
          let b = Bitset.create universe in
          for item = 0 to universe - 1 do
            if Rrms_rng.Rng.float rng 1. < 0.4 then Bitset.set b item
          done;
          b)
    in
    let inst = Setcover.make_instance ~universe sets in
    let opt = brute_force_opt inst in
    match (Setcover.exact inst, opt) with
    | None, None -> ()
    | Some chosen, Some size ->
        check_cover inst chosen;
        Alcotest.(check int) "exact = brute force" size (Array.length chosen)
    | Some _, None -> Alcotest.fail "exact found a cover where none exists"
    | None, Some _ -> Alcotest.fail "exact missed an existing cover"
  done

let test_greedy_approximation_bound () =
  (* Chvátal: greedy <= H(universe) * opt <= (ln u + 1) * opt. *)
  let rng = Rrms_rng.Rng.create 62 in
  for _ = 1 to 50 do
    let universe = 2 + Rrms_rng.Rng.int rng 12 in
    let nsets = 2 + Rrms_rng.Rng.int rng 8 in
    let sets =
      Array.init nsets (fun _ ->
          let b = Bitset.create universe in
          for item = 0 to universe - 1 do
            if Rrms_rng.Rng.float rng 1. < 0.5 then Bitset.set b item
          done;
          b)
    in
    let inst = Setcover.make_instance ~universe sets in
    match (Setcover.greedy inst, Setcover.exact inst) with
    | None, None -> ()
    | Some g, Some e ->
        check_cover inst g;
        let bound =
          (log (float_of_int universe) +. 1.) *. float_of_int (Array.length e)
        in
        Alcotest.(check bool) "greedy within H(u) of optimal" true
          (float_of_int (Array.length g) <= bound +. 1e-9)
    | Some _, None | None, Some _ ->
        Alcotest.fail "greedy and exact disagree on coverability"
  done

let suite =
  [
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset ops" `Quick test_bitset_ops;
    Alcotest.test_case "bitset zero width" `Quick test_bitset_zero_width;
    Alcotest.test_case "greedy basic" `Quick test_greedy_basic;
    Alcotest.test_case "greedy uncoverable" `Quick test_greedy_uncoverable;
    Alcotest.test_case "exact basic" `Quick test_exact_basic;
    Alcotest.test_case "exact uncoverable" `Quick test_exact_uncoverable;
    Alcotest.test_case "exact empty universe" `Quick test_exact_empty_universe;
    Alcotest.test_case "exact max_sets" `Quick test_exact_max_sets;
    Alcotest.test_case "exact = brute force" `Quick test_exact_matches_brute_force;
    Alcotest.test_case "greedy approximation bound" `Quick
      test_greedy_approximation_bound;
  ]
