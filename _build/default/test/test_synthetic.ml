(* Tests for the synthetic generators: ranges, determinism, and the
   correlation structure that the skyline-size experiments rely on. *)

open Rrms_dataset

let rng () = Rrms_rng.Rng.create 12345

let in_unit d =
  let ok = ref true in
  Array.iter
    (fun r -> Array.iter (fun v -> if v < 0. || v > 1. then ok := false) r)
    (Dataset.rows d);
  !ok

let test_shapes () =
  let r = rng () in
  let d = Synthetic.independent r ~n:500 ~m:4 in
  Alcotest.(check int) "n" 500 (Dataset.size d);
  Alcotest.(check int) "m" 4 (Dataset.dim d);
  Alcotest.(check bool) "independent in unit cube" true (in_unit d);
  let d = Synthetic.correlated r ~n:300 ~m:3 in
  Alcotest.(check bool) "correlated in unit cube" true (in_unit d);
  let d = Synthetic.anticorrelated r ~n:300 ~m:3 in
  Alcotest.(check bool) "anticorrelated in unit cube" true (in_unit d)

let test_determinism () =
  let d1 = Synthetic.independent (rng ()) ~n:50 ~m:3 in
  let d2 = Synthetic.independent (rng ()) ~n:50 ~m:3 in
  for i = 0 to 49 do
    Alcotest.(check (array (float 0.)))
      "same seed, same data" (Dataset.row d1 i) (Dataset.row d2 i)
  done

(* Pearson correlation between the first two attributes. *)
let pearson d =
  let n = Dataset.size d in
  let nf = float_of_int n in
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let x = Dataset.value d i 0 and y = Dataset.value d i 1 in
    sx := !sx +. x;
    sy := !sy +. y;
    sxx := !sxx +. (x *. x);
    syy := !syy +. (y *. y);
    sxy := !sxy +. (x *. y)
  done;
  let cov = (!sxy /. nf) -. (!sx /. nf *. (!sy /. nf)) in
  let vx = (!sxx /. nf) -. (!sx /. nf *. (!sx /. nf)) in
  let vy = (!syy /. nf) -. (!sy /. nf *. (!sy /. nf)) in
  cov /. sqrt (vx *. vy)

let test_correlation_signs () =
  let r = rng () in
  let c = pearson (Synthetic.correlated r ~n:5000 ~m:2) in
  Alcotest.(check bool)
    (Printf.sprintf "correlated: strong positive (got %g)" c)
    true (c > 0.8);
  let i = pearson (Synthetic.independent r ~n:5000 ~m:2) in
  Alcotest.(check bool)
    (Printf.sprintf "independent: near zero (got %g)" i)
    true
    (Float.abs i < 0.1);
  let a = pearson (Synthetic.anticorrelated r ~n:5000 ~m:2) in
  Alcotest.(check bool)
    (Printf.sprintf "anticorrelated: negative (got %g)" a)
    true (a < -0.3)

(* The key property the experiments depend on:
   skyline(corr) << skyline(indep) << skyline(anti). *)
let test_skyline_size_ordering () =
  let r = rng () in
  let n = 2000 and m = 4 in
  let size kind =
    Rrms_skyline.Skyline.size_of
      (Dataset.rows (Synthetic.of_correlation kind r ~n ~m))
  in
  let c = size `Correlated and i = size `Independent and a = size `Anticorrelated in
  Alcotest.(check bool)
    (Printf.sprintf "corr(%d) < indep(%d) < anti(%d)" c i a)
    true
    (c < i && i < a)

let test_skyline_only () =
  let d = Synthetic.skyline_only_2d (rng ()) ~target:300 in
  Alcotest.(check int) "exact target size" 300 (Dataset.size d);
  let rows = Dataset.rows d in
  Alcotest.(check int)
    "every tuple on the skyline" 300
    (Rrms_skyline.Skyline.size_of rows);
  (* Curvature check: the convex hull should be a proper subset. *)
  let hull = Rrms_geom.Hull2d.build rows in
  Alcotest.(check bool)
    "hull smaller than skyline" true
    (Rrms_geom.Hull2d.size hull <= 300)

let test_quarter_disk () =
  let d = Synthetic.in_quarter_disk (rng ()) ~n:1000 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "inside disk" true ((r.(0) *. r.(0)) +. (r.(1) *. r.(1)) <= 1.);
      Alcotest.(check bool) "positive quadrant" true (r.(0) >= 0. && r.(1) >= 0.))
    (Dataset.rows d)

let test_in_polygon () =
  let vertices = [| (0., 0.); (4., 0.); (4., 3.); (0., 3.) |] in
  let d = Synthetic.in_polygon (rng ()) ~vertices ~n:1000 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "inside rectangle" true
        (r.(0) >= 0. && r.(0) <= 4. && r.(1) >= 0. && r.(1) <= 3.))
    (Dataset.rows d);
  Alcotest.check_raises "too few vertices"
    (Invalid_argument "Synthetic.in_polygon: need >= 3 vertices") (fun () ->
      ignore (Synthetic.in_polygon (rng ()) ~vertices:[| (0., 0.); (1., 1.) |] ~n:1))

let test_polygon_hull_smaller_than_disk () =
  (* §1: a k-gon gives O(k log n) hull points, a disk O(n^1/3); for equal
     n the polygon's maxima hull should be markedly smaller. *)
  let r = rng () in
  let n = 20_000 in
  let square =
    Synthetic.in_polygon r
      ~vertices:[| (0., 0.); (1., 0.); (1., 1.); (0., 1.) |]
      ~n
  in
  let disk = Synthetic.in_quarter_disk r ~n in
  let hull d = Rrms_geom.Hull2d.size (Rrms_geom.Hull2d.build (Dataset.rows d)) in
  let hs = hull square and hd = hull disk in
  Alcotest.(check bool)
    (Printf.sprintf "square hull (%d) < disk hull (%d)" hs hd)
    true (hs < hd)

let test_greedy_pathological () =
  let d = Synthetic.greedy_pathological ~epsilon:0.2 ~extra:20 (rng ()) in
  Alcotest.(check int) "4 fixed + 20 filler" 24 (Dataset.size d);
  Alcotest.(check (array (float 0.))) "unit e1" [| 1.; 0.; 0. |] (Dataset.row d 0);
  Alcotest.(check (array (float 1e-12))) "corner" [| 0.8; 0.8; 0.8 |] (Dataset.row d 3);
  (* Filler strictly inside [0, 1-ε)³. *)
  for i = 4 to 23 do
    Array.iter
      (fun v -> Alcotest.(check bool) "filler below corner" true (v < 0.8))
      (Dataset.row d i)
  done;
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Synthetic.greedy_pathological: epsilon must be in (0, 0.5)")
    (fun () -> ignore (Synthetic.greedy_pathological ~epsilon:0.7 ~extra:0 (rng ())))

let suite =
  [
    Alcotest.test_case "shapes and ranges" `Quick test_shapes;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "correlation signs" `Slow test_correlation_signs;
    Alcotest.test_case "skyline size ordering" `Slow test_skyline_size_ordering;
    Alcotest.test_case "skyline-only data" `Quick test_skyline_only;
    Alcotest.test_case "quarter disk" `Quick test_quarter_disk;
    Alcotest.test_case "in polygon" `Quick test_in_polygon;
    Alcotest.test_case "polygon vs disk hull size" `Slow
      test_polygon_hull_smaller_than_disk;
    Alcotest.test_case "greedy pathological gadget" `Quick
      test_greedy_pathological;
  ]
