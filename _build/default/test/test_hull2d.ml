(* Tests for the 2D maxima hull and its sorted angle list. *)

open Rrms_geom

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let test_single_point () =
  let h = Hull2d.build [| [| 1.; 2. |] |] in
  Alcotest.(check int) "size" 1 (Hull2d.size h);
  Alcotest.(check int) "vertex" 0 (Hull2d.vertex h 0);
  Alcotest.(check (array (float 0.))) "no breakpoints" [||] (Hull2d.breakpoints h);
  Alcotest.(check int) "max at any angle" 0 (Hull2d.max_index_at h 0.7)

let test_square_corners () =
  (* Unit square corners: only (0,1), (1,1), (1,0) can win; (1,1)
     dominates everything so the maxima hull is just (1,1). *)
  let pts = [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check int) "only the dominating corner" 1 (Hull2d.size h);
  Alcotest.(check int) "it is (1,1)" 3 (Hull2d.vertex h 0)

let test_three_point_chain () =
  (* (0,2), (1.5,1.5), (2,0): all three on the hull. *)
  let pts = [| [| 0.; 2. |]; [| 1.5; 1.5 |]; [| 2.; 0. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check int) "three vertices" 3 (Hull2d.size h);
  Alcotest.(check (array int)) "chain order" [| 0; 1; 2 |] (Hull2d.vertices h);
  let breaks = Hull2d.breakpoints h in
  Alcotest.(check int) "two breakpoints" 2 (Array.length breaks);
  Alcotest.(check bool) "breaks sorted" true (breaks.(0) <= breaks.(1))

let test_interior_point_excluded () =
  (* The midpoint of the segment is on the boundary but not a vertex. *)
  let pts = [| [| 0.; 2. |]; [| 1.; 1. |]; [| 2.; 0. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check (array int))
    "collinear middle point dropped" [| 0; 2 |] (Hull2d.vertices h)

let test_dominated_point_excluded () =
  let pts = [| [| 0.; 2. |]; [| 0.5; 0.5 |]; [| 2.; 0. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check (array int))
    "dominated point dropped" [| 0; 2 |] (Hull2d.vertices h)

let test_duplicate_points () =
  let pts = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 0.; 2. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check int) "duplicates collapse" 2 (Hull2d.size h)

let test_max_index_at_boundaries () =
  let pts = [| [| 0.; 2. |]; [| 1.5; 1.5 |]; [| 2.; 0. |] |] in
  let h = Hull2d.build pts in
  Alcotest.(check int) "φ=0 picks top-left" 0 (Hull2d.max_index_at h 0.);
  Alcotest.(check int)
    "φ=π/2 picks bottom-right" 2
    (Hull2d.max_index_at h (Float.pi /. 2.))

let test_empty_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Hull2d.build: empty input")
    (fun () -> ignore (Hull2d.build [||]));
  Alcotest.check_raises "bad dim"
    (Invalid_argument "Hull2d.build: dimension <> 2") (fun () ->
      ignore (Hull2d.build [| [| 1.; 2.; 3. |] |]))

(* Reference implementation: the hull vertex maximal at angle φ must be
   the true maximum over all points. *)
let test_max_at_angle_matches_brute_force () =
  let rng = Rrms_rng.Rng.create 31 in
  for _ = 1 to 50 do
    let n = 3 + Rrms_rng.Rng.int rng 60 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 10.; Rrms_rng.Rng.float rng 10. |])
    in
    let h = Hull2d.build pts in
    for _ = 1 to 30 do
      let phi = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
      let w = Polar.weight_of_angle_2d phi in
      let best = Vec.max_score w pts in
      let hull_best = Vec.dot w (Hull2d.max_point_at h phi) in
      feq ~eps:1e-9 "hull vertex achieves global max" best hull_best
    done
  done

(* Property: breakpoints are non-decreasing and hull coordinates are
   monotone (x increasing, y decreasing). *)
let test_monotonicity_random () =
  let rng = Rrms_rng.Rng.create 32 in
  for _ = 1 to 100 do
    let n = 1 + Rrms_rng.Rng.int rng 100 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let h = Hull2d.build pts in
    let c = Hull2d.size h in
    for k = 0 to c - 2 do
      let p = Hull2d.vertex_point h k and q = Hull2d.vertex_point h (k + 1) in
      Alcotest.(check bool) "x strictly increasing" true (p.(0) < q.(0));
      Alcotest.(check bool) "y strictly decreasing" true (p.(1) > q.(1))
    done;
    let breaks = Hull2d.breakpoints h in
    for k = 0 to Array.length breaks - 2 do
      Alcotest.(check bool) "breaks sorted" true (breaks.(k) <= breaks.(k + 1))
    done
  done

(* Property: every hull vertex is the strict maximum of the midpoint
   angle of its interval (hull minimality). *)
let test_each_vertex_wins_somewhere () =
  let rng = Rrms_rng.Rng.create 33 in
  for _ = 1 to 50 do
    let n = 2 + Rrms_rng.Rng.int rng 50 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 5.; Rrms_rng.Rng.float rng 5. |])
    in
    let h = Hull2d.build pts in
    let c = Hull2d.size h in
    let breaks = Hull2d.breakpoints h in
    for k = 0 to c - 1 do
      let lo = if k = 0 then 0. else breaks.(k - 1) in
      let hi = if k = c - 1 then Float.pi /. 2. else breaks.(k) in
      let mid = (lo +. hi) /. 2. in
      Alcotest.(check int)
        "vertex maximal at its interval midpoint" k (Hull2d.max_index_at h mid)
    done
  done

let suite =
  [
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "square corners" `Quick test_square_corners;
    Alcotest.test_case "three point chain" `Quick test_three_point_chain;
    Alcotest.test_case "collinear excluded" `Quick test_interior_point_excluded;
    Alcotest.test_case "dominated excluded" `Quick test_dominated_point_excluded;
    Alcotest.test_case "duplicates" `Quick test_duplicate_points;
    Alcotest.test_case "max at boundaries" `Quick test_max_index_at_boundaries;
    Alcotest.test_case "invalid input" `Quick test_empty_invalid;
    Alcotest.test_case "max at angle = brute force" `Quick
      test_max_at_angle_matches_brute_force;
    Alcotest.test_case "monotonicity" `Quick test_monotonicity_random;
    Alcotest.test_case "each vertex wins" `Quick test_each_vertex_wins_somewhere;
  ]
