(* Tiny substring-search helper for the test suite (the stdlib has no
   String.contains_substring). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end
