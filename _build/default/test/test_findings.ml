(* Regression tests that pin the reproduction findings of DESIGN.md §5:
   the concrete instances on which the paper's §3 claims fail.  These
   must keep failing in the published algorithm's favor — i.e. keep
   witnessing the bugs — so the findings remain demonstrable. *)

open Rrms_core

(* The anti-correlated instance (30 tuples, seed chain below) on which
   Property 1 (edge-weight monotonicity in the gap width) breaks:
   w(t₁,t₁₀) > w(t₁,t₁₁) on its 13-tuple skyline. *)
let property1_instance () =
  let rng = Rrms_rng.Rng.create 83 in
  let points = ref [||] in
  for _ = 1 to 9 do
    let d = Rrms_dataset.Synthetic.anticorrelated rng ~n:30 ~m:2 in
    points := Rrms_dataset.Dataset.rows d;
    (* Mirror the original experiment's RNG consumption. *)
    ignore (Rrms_rng.Rng.int rng 2)
  done;
  !points

let test_property1_violation_witness () =
  let points = property1_instance () in
  let ctx = Rrms2d.make_ctx points in
  Alcotest.(check int) "13-tuple skyline" 13 (Rrms2d.skyline_size ctx);
  let w_10 = Rrms2d.edge_weight ctx 1 10 in
  let w_11 = Rrms2d.edge_weight ctx 1 11 in
  (* The published weights themselves decrease when the gap grows. *)
  Alcotest.(check bool)
    (Printf.sprintf "Property 1 violated: w(1,10)=%.6f > w(1,11)=%.6f" w_10 w_11)
    true
    (w_10 > w_11 +. 1e-6);
  (* And the corrected weights agree here (both gaps have their tie
     angle inside the hull range), so the violation is intrinsic, not a
     zero-case artifact. *)
  Alcotest.(check (float 1e-9)) "exact = published on gap (1,10)" w_10
    (Rrms2d.edge_weight_exact ctx 1 10);
  Alcotest.(check (float 1e-9)) "exact = published on gap (1,11)" w_11
    (Rrms2d.edge_weight_exact ctx 1 11)

let test_published_suboptimal_on_witness () =
  let points = property1_instance () in
  let published = Rrms2d.solve points ~r:2 in
  let exact = Rrms2d.solve_exact points ~r:2 in
  let brute = Rrms2d.solve_brute_force points ~r:2 in
  Alcotest.(check (float 1e-9)) "exact variant is optimal" brute.Rrms2d.regret
    exact.Rrms2d.regret;
  Alcotest.(check bool)
    (Printf.sprintf "published (%.6f) misses the optimum (%.6f)"
       published.Rrms2d.regret brute.Rrms2d.regret)
    true
    (published.Rrms2d.regret > brute.Rrms2d.regret +. 1e-4)

(* The literal 7-point instance on which Algorithm 1's zero case is
   wrong: gap (2,5) of the skyline contains the hull vertex at position
   4, but the tie angle of (t₂,t₅) falls in hull-vertex 1's range, so
   the published weight is 0 while the true pair regret is positive. *)
let zero_case_points =
  [|
    [| 0.4548; 0.5449 |];
    [| 0.5668; 0.5160 |];
    [| 0.6142; 0.4509 |];
    [| 0.6903; 0.2464 |];
    [| 0.9577; 0.0897 |];
    [| 0.9606; 0.0777 |];
    [| 0.2; 0.2 |];
  |]

let test_zero_case_witness () =
  let ctx = Rrms2d.make_ctx zero_case_points in
  Alcotest.(check int) "six skyline tuples" 6 (Rrms2d.skyline_size ctx);
  let published = Rrms2d.edge_weight ctx 2 5 in
  let exact = Rrms2d.edge_weight_exact ctx 2 5 in
  Alcotest.(check (float 0.)) "Algorithm 1 returns 0" 0. published;
  Alcotest.(check bool)
    (Printf.sprintf "true pair regret is positive (%.6f)" exact)
    true (exact > 1e-3);
  (* Ground truth by numeric sweep: keep {t2, t5} against the gap. *)
  let sky = Rrms2d.skyline_order ctx in
  let selected = [| sky.(0); sky.(1); sky.(2); sky.(5) |] in
  let true_regret = Regret.exact_2d ~selected zero_case_points in
  Alcotest.(check bool)
    (Printf.sprintf "the set regret %.6f is positive too" true_regret)
    true (true_regret > 1e-3);
  (* The exact pair weight upper-bounds the true set regret. *)
  Alcotest.(check bool) "pair weight >= set regret" true
    (exact >= true_regret -. 1e-9)

let test_corrected_weight_is_clamped_tie_angle () =
  (* The corrected rule's supremum sits at the hull-range boundary when
     the tie angle falls outside it: verify against a fine sweep. *)
  let ctx = Rrms2d.make_ctx zero_case_points in
  let exact = Rrms2d.edge_weight_exact ctx 2 5 in
  let sky = Rrms2d.skyline_order ctx in
  let p i = zero_case_points.(sky.(i)) in
  let sweep = ref 0. in
  let steps = 100_000 in
  for q = 0 to steps do
    let phi = Float.pi /. 2. *. float_of_int q /. float_of_int steps in
    let w = Rrms_geom.Polar.weight_of_angle_2d phi in
    (* Database max among skyline; alternatives {t2, t5}. *)
    let best = ref neg_infinity and arg = ref 0 in
    for pos = 0 to 5 do
      let v = Rrms_geom.Vec.dot w (p pos) in
      if v > !best then begin
        best := v;
        arg := pos
      end
    done;
    if !arg > 2 && !arg < 5 then begin
      let alt =
        Float.max (Rrms_geom.Vec.dot w (p 2)) (Rrms_geom.Vec.dot w (p 5))
      in
      let reg = (!best -. alt) /. !best in
      if reg > !sweep then sweep := reg
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "corrected weight %.6f matches sweep %.6f" exact !sweep)
    true
    (Float.abs (exact -. !sweep) < 1e-4)

let suite =
  [
    Alcotest.test_case "Property 1 violation witness" `Quick
      test_property1_violation_witness;
    Alcotest.test_case "published suboptimal on witness" `Quick
      test_published_suboptimal_on_witness;
    Alcotest.test_case "Algorithm 1 zero-case witness" `Quick
      test_zero_case_witness;
    Alcotest.test_case "corrected weight = swept supremum" `Slow
      test_corrected_weight_is_clamped_tie_angle;
  ]
