(* Tests for the exact 2D dynamic-programming algorithm: edge weights
   against Theorem 2, and end-to-end optimality against brute force. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

(* The running example: three hull points with a known critical angle. *)
let example = [| [| 0.; 1. |]; [| 0.7; 0.7 |]; [| 1.; 0. |] |]

let test_ctx_basics () =
  let ctx = Rrms2d.make_ctx example in
  Alcotest.(check int) "skyline size" 3 (Rrms2d.skyline_size ctx);
  Alcotest.(check (array int)) "skyline order" [| 0; 1; 2 |]
    (Rrms2d.skyline_order ctx)

let test_edge_weight_adjacent_zero () =
  let ctx = Rrms2d.make_ctx example in
  feq "adjacent gap empty" 0. (Rrms2d.edge_weight ctx 0 1);
  feq "adjacent gap empty" 0. (Rrms2d.edge_weight ctx 1 2)

let test_edge_weight_interior () =
  let ctx = Rrms2d.make_ctx example in
  (* Removing the middle point: worst function is the diagonal, regret
     (1.4 - 1)/1.4. *)
  feq ~eps:1e-9 "interior gap" ((1.4 -. 1.) /. 1.4) (Rrms2d.edge_weight ctx 0 2)

let test_edge_weight_dummies () =
  let ctx = Rrms2d.make_ctx example in
  (* t₀ -> t₂ removes t₀..t₁: pure-A₂ loses (1 - 0.7)/1. *)
  feq "left dummy" 0.3 (Rrms2d.edge_weight ctx (-1) 1);
  feq "left dummy to first" 0. (Rrms2d.edge_weight ctx (-1) 0);
  (* t₁ -> t₊ removes t₂: pure-A₁ loses (1 - 0.7)/1. *)
  feq "right dummy" 0.3 (Rrms2d.edge_weight ctx 1 3);
  feq "last to right dummy" 0. (Rrms2d.edge_weight ctx 2 3);
  feq "everything removed" 1. (Rrms2d.edge_weight ctx (-1) 3)

let test_edge_weight_bad_args () =
  let ctx = Rrms2d.make_ctx example in
  Alcotest.check_raises "i >= j"
    (Invalid_argument "Rrms2d.edge_weight: bad positions") (fun () ->
      ignore (Rrms2d.edge_weight ctx 1 1))

(* Theorem 2 cross-check: the edge weight must equal the numerical
   supremum over a fine sweep of angles, of the regret of keeping only
   {tᵢ, tⱼ} measured against the tuples in the gap. *)
let test_edge_weight_matches_sweep () =
  let rng = Rrms_rng.Rng.create 81 in
  for _ = 1 to 25 do
    let n = 4 + Rrms_rng.Rng.int rng 20 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let ctx = Rrms2d.make_ctx points in
    let s = Rrms2d.skyline_size ctx in
    if s >= 3 then begin
      let sky = Rrms2d.skyline_order ctx in
      let i = Rrms_rng.Rng.int rng (s - 2) in
      let j = i + 2 + Rrms_rng.Rng.int rng (s - i - 2) in
      let w = Rrms2d.edge_weight ctx i j in
      (* Numerical sweep: keep ALL skyline tuples except those strictly
         inside (i, j); the edge weight is the regret this removal
         costs when the rest of the path keeps everything else. *)
      let selected =
        Array.of_list
          (List.filteri (fun pos _ -> pos <= i || pos >= j)
             (Array.to_list (Array.init s (fun p -> sky.(p)))))
      in
      let sweep = ref 0. in
      let steps = 20_000 in
      for q = 0 to steps do
        let phi = Float.pi /. 2. *. float_of_int q /. float_of_int steps in
        let wv = Rrms_geom.Polar.weight_of_angle_2d phi in
        let reg = Regret.for_function ~points ~selected wv in
        if reg > !sweep then sweep := reg
      done;
      (* The sweep keeps more alternatives than {tᵢ, tⱼ}, so it lower
         bounds the edge weight; and Theorem 2 says the bound is tight
         when the alternatives outside the gap don't interfere.  At
         minimum the edge weight must dominate the sweep. *)
      Alcotest.(check bool)
        (Printf.sprintf "edge weight %g >= swept regret %g (i=%d j=%d s=%d)" w
           !sweep i j s)
        true
        (w >= !sweep -. 1e-6)
    end
  done

let test_solve_small_known () =
  (* Four hull points; r = 2 must keep the two that minimize the worst
     gap. *)
  let points =
    [| [| 0.; 1. |]; [| 0.55; 0.9 |]; [| 0.9; 0.55 |]; [| 1.; 0. |] |]
  in
  let { Rrms2d.selected; dp_value; regret } = Rrms2d.solve points ~r:2 in
  Alcotest.(check int) "two selected" 2 (Array.length selected);
  Alcotest.(check bool) "dp >= regret" true (dp_value >= regret -. 1e-9);
  let bf = Rrms2d.solve_brute_force points ~r:2 in
  feq ~eps:1e-9 "optimal" bf.Rrms2d.regret regret;
  let ex = Rrms2d.solve_exact points ~r:2 in
  feq ~eps:1e-9 "exact variant optimal" bf.Rrms2d.regret ex.Rrms2d.regret

let test_solve_exact_equals_brute_force () =
  let rng = Rrms_rng.Rng.create 82 in
  for trial = 1 to 40 do
    let n = 4 + Rrms_rng.Rng.int rng 25 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let r = 1 + Rrms_rng.Rng.int rng 4 in
    let dp = Rrms2d.solve_exact points ~r in
    let bf = Rrms2d.solve_brute_force points ~r in
    feq ~eps:1e-9
      (Printf.sprintf "trial %d: exact DP matches brute force (n=%d r=%d)" trial
         n r)
      bf.Rrms2d.regret dp.Rrms2d.regret;
    Alcotest.(check bool) "within budget" true (Array.length dp.Rrms2d.selected <= r)
  done

let test_solve_exact_anticorrelated_brute_force () =
  (* Anti-correlated data has large skylines: the stress case, and the
     one that exposes the paper's broken monotonicity assumption. *)
  let rng = Rrms_rng.Rng.create 83 in
  for _ = 1 to 10 do
    let d = Rrms_dataset.Synthetic.anticorrelated rng ~n:30 ~m:2 in
    let points = Rrms_dataset.Dataset.rows d in
    let r = 2 + Rrms_rng.Rng.int rng 2 in
    let dp = Rrms2d.solve_exact points ~r in
    let bf = Rrms2d.solve_brute_force points ~r in
    feq ~eps:1e-9 "anticorrelated optimal" bf.Rrms2d.regret dp.Rrms2d.regret
  done

let test_published_solve_near_optimal () =
  (* The published Algorithm 1+2 relies on assumptions that fail on some
     instances (see the module documentation); it must still (a) never
     beat the optimum, and (b) stay close to it. *)
  let rng = Rrms_rng.Rng.create 87 in
  let trials = 60 in
  let excess_sum = ref 0. and excess_max = ref 0. in
  for _ = 1 to trials do
    let n = 5 + Rrms_rng.Rng.int rng 30 in
    let anti = Rrms_rng.Rng.bool rng in
    let points =
      if anti then
        Rrms_dataset.Dataset.rows
          (Rrms_dataset.Synthetic.anticorrelated rng ~n ~m:2)
      else
        Array.init n (fun _ ->
            [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let r = 1 + Rrms_rng.Rng.int rng 4 in
    let dp = Rrms2d.solve points ~r in
    let bf = Rrms2d.solve_brute_force points ~r in
    Alcotest.(check bool) "never below optimal" true
      (dp.Rrms2d.regret >= bf.Rrms2d.regret -. 1e-9);
    let excess = dp.Rrms2d.regret -. bf.Rrms2d.regret in
    excess_sum := !excess_sum +. excess;
    if excess > !excess_max then excess_max := excess
  done;
  let mean = !excess_sum /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean excess %g small" mean)
    true (mean < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "max excess %g bounded" !excess_max)
    true
    (!excess_max < 0.25)

let test_exact_weight_dominates_published () =
  let rng = Rrms_rng.Rng.create 88 in
  for _ = 1 to 20 do
    let n = 5 + Rrms_rng.Rng.int rng 25 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let ctx = Rrms2d.make_ctx points in
    let s = Rrms2d.skyline_size ctx in
    for i = -1 to s - 1 do
      for j = i + 1 to s do
        Alcotest.(check bool) "exact weight >= published weight" true
          (Rrms2d.edge_weight_exact ctx i j
          >= Rrms2d.edge_weight ctx i j -. 1e-12)
      done
    done
  done

let test_solve_whole_skyline_fits () =
  let points = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let { Rrms2d.regret; selected; _ } = Rrms2d.solve points ~r:5 in
  Alcotest.(check int) "whole skyline" 2 (Array.length selected);
  feq "zero regret" 0. regret

let test_solve_r1 () =
  let rng = Rrms_rng.Rng.create 84 in
  for _ = 1 to 10 do
    let n = 3 + Rrms_rng.Rng.int rng 15 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let dp = Rrms2d.solve_exact points ~r:1 in
    let bf = Rrms2d.solve_brute_force points ~r:1 in
    feq ~eps:1e-9 "r=1 optimal" bf.Rrms2d.regret dp.Rrms2d.regret
  done

let test_solve_monotone_in_r () =
  let rng = Rrms_rng.Rng.create 85 in
  let points =
    Array.init 60 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let prev = ref infinity in
  for r = 1 to 6 do
    let { Rrms2d.regret; _ } = Rrms2d.solve points ~r in
    Alcotest.(check bool)
      (Printf.sprintf "regret non-increasing in r (r=%d)" r)
      true
      (regret <= !prev +. 1e-9);
    prev := regret
  done

let test_ctx_reuse () =
  let rng = Rrms_rng.Rng.create 86 in
  let points =
    Array.init 40 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let ctx = Rrms2d.make_ctx points in
  let a = Rrms2d.solve ~ctx points ~r:3 in
  let b = Rrms2d.solve points ~r:3 in
  feq "ctx reuse same answer" b.Rrms2d.regret a.Rrms2d.regret

let test_theorem1_skyline_restriction () =
  (* Theorem 1: solving on the skyline alone gives the same optimum as
     solving on the whole database. *)
  let rng = Rrms_rng.Rng.create 89 in
  for _ = 1 to 15 do
    let n = 10 + Rrms_rng.Rng.int rng 60 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let r = 1 + Rrms_rng.Rng.int rng 3 in
    let full = Rrms2d.solve_exact points ~r in
    let sky = Rrms_skyline.Skyline.two_d points in
    let sky_points = Array.map (fun i -> points.(i)) sky in
    let reduced = Rrms2d.solve_exact sky_points ~r in
    (* Both selections are evaluated against their own input, but the
       skyline carries all maxima, so the regrets coincide. *)
    feq ~eps:1e-9 "Theorem 1: same optimal regret" full.Rrms2d.regret
      reduced.Rrms2d.regret
  done

let test_invalid_args () =
  Alcotest.check_raises "r = 0" (Invalid_argument "Rrms2d.solve: r must be >= 1")
    (fun () -> ignore (Rrms2d.solve example ~r:0));
  Alcotest.check_raises "empty" (Invalid_argument "Rrms2d.make_ctx: empty input")
    (fun () -> ignore (Rrms2d.make_ctx [||]))

let suite =
  [
    Alcotest.test_case "ctx basics" `Quick test_ctx_basics;
    Alcotest.test_case "edge weight: adjacent" `Quick test_edge_weight_adjacent_zero;
    Alcotest.test_case "edge weight: interior" `Quick test_edge_weight_interior;
    Alcotest.test_case "edge weight: dummies" `Quick test_edge_weight_dummies;
    Alcotest.test_case "edge weight: bad args" `Quick test_edge_weight_bad_args;
    Alcotest.test_case "edge weight vs sweep" `Slow test_edge_weight_matches_sweep;
    Alcotest.test_case "solve: small known" `Quick test_solve_small_known;
    Alcotest.test_case "solve_exact = brute force" `Slow
      test_solve_exact_equals_brute_force;
    Alcotest.test_case "solve_exact = brute force (anticorrelated)" `Slow
      test_solve_exact_anticorrelated_brute_force;
    Alcotest.test_case "published solve near-optimal" `Slow
      test_published_solve_near_optimal;
    Alcotest.test_case "exact weight dominates published" `Slow
      test_exact_weight_dominates_published;
    Alcotest.test_case "whole skyline fits" `Quick test_solve_whole_skyline_fits;
    Alcotest.test_case "r = 1" `Quick test_solve_r1;
    Alcotest.test_case "monotone in r" `Quick test_solve_monotone_in_r;
    Alcotest.test_case "ctx reuse" `Quick test_ctx_reuse;
    Alcotest.test_case "Theorem 1 skyline restriction" `Quick
      test_theorem1_skyline_restriction;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
