(* Smoke tests: every example binary must run to completion and print
   its headline output (guards the examples against bit-rot). *)

let run_example name expect =
  let cmd = Printf.sprintf "../examples/%s.exe 2>&1" name in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       match In_channel.input_line ic with
       | Some l ->
           Buffer.add_string buf l;
           Buffer.add_char buf '\n'
       | None -> raise Exit
     done
   with Exit -> ());
  let status = Unix.close_process_in ic in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c ->
      Alcotest.fail (Printf.sprintf "%s exited with %d" name c)
  | _ -> Alcotest.fail (name ^ " killed/stopped"));
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s output mentions %S" name needle)
        true
        (Astring_contains.contains out needle))
    expect

let suite =
  [
    Alcotest.test_case "quickstart" `Slow (fun () ->
        run_example "quickstart"
          [ "2D-RRMS"; "HD-RRMS"; "Theorem-4 guarantee" ]);
    Alcotest.test_case "real_estate" `Slow (fun () ->
        run_example "real_estate"
          [ "Pareto-optimal"; "simulated 100k visitors"; "naive" ]);
    Alcotest.test_case "nba_scout" `Slow (fun () ->
        run_example "nba_scout" [ "HD-RRMS"; "GREEDY"; "per-coach check" ]);
    Alcotest.test_case "flight_dashboard" `Slow (fun () ->
        run_example "flight_dashboard" [ "layer 1"; "layer-1 exact max regret" ]);
    Alcotest.test_case "live_catalog" `Slow (fun () ->
        run_example "live_catalog" [ "from-scratch check"; "amortization" ]);
  ]
