test/test_rng.ml: Alcotest Array Float Printf Rrms_rng
