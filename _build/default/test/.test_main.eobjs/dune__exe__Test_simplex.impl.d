test/test_simplex.ml: Alcotest Array Float List Printf Rrms_lp Rrms_rng Simplex
