test/test_discretize.ml: Alcotest Array Discretize Float Printf Rrms_core Rrms_geom Rrms_rng
