test/test_sweepline.ml: Alcotest Array Float Printf Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng Sweepline
