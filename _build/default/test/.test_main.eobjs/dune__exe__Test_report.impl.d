test/test_report.ml: Alcotest Ascii_chart Astring_contains Bench_rows Float List Printf QCheck QCheck_alcotest Rrms_report String
