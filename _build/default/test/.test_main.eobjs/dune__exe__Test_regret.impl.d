test/test_regret.ml: Alcotest Array Discretize Float Printf Regret Rrms_core Rrms_geom Rrms_rng
