test/test_kregret.ml: Alcotest Array Discretize Float Kregret Printf Regret Rrms2d Rrms_core Rrms_geom Rrms_rng Topk
