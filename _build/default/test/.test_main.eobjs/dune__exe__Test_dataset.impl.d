test/test_dataset.ml: Alcotest Dataset Filename Float Fun Rrms_dataset Sys
