test/test_robustness.ml: Alcotest Array Dataset Filename Float Fun List Printf QCheck QCheck_alcotest Rrms_core Rrms_dataset Rrms_lp Rrms_rng Rrms_skyline String Synthetic Sys Unix
