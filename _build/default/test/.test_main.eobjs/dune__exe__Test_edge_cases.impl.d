test/test_edge_cases.ml: Alcotest Array Bitset Discretize Float Hd_rrms Kregret Printf Regret Rrms2d Rrms_core Rrms_lp Rrms_rng Rrms_setcover Setcover Simplex
