test/test_rrms2d.ml: Alcotest Array Float List Printf Regret Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline
