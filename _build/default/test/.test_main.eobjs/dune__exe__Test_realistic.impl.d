test/test_realistic.ml: Alcotest Array Dataset Float Printf Realistic Rrms_dataset Rrms_rng Rrms_skyline
