test/test_dynamic_hd.ml: Alcotest Array Dynamic_hd Hd_rrms List Printf Regret Rrms_core Rrms_rng
