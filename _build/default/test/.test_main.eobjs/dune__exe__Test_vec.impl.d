test/test_vec.ml: Alcotest Array Float Printf QCheck QCheck_alcotest Rrms_geom Vec
