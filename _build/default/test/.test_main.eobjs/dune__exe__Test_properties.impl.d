test/test_properties.ml: Array Discretize Dynamic2d Eps_kernel Float Hd_rrms List Onion Printf QCheck QCheck_alcotest Regret Regret_matrix Rrms2d Rrms_core Rrms_geom Rrms_skyline String Sweepline
