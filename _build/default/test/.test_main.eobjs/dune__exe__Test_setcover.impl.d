test/test_setcover.ml: Alcotest Array Bitset List Rrms_rng Rrms_setcover Setcover
