test/test_examples.ml: Alcotest Astring_contains Buffer In_channel List Printf Unix
