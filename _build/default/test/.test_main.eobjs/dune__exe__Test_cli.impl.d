test/test_cli.ml: Alcotest Astring_contains Buffer Filename Fun In_channel List Printf Scanf String Sys Unix
