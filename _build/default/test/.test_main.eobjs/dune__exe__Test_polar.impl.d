test/test_polar.ml: Alcotest Array Float Polar Printf Rrms_geom Rrms_rng Vec
