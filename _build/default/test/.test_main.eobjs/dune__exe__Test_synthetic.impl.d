test/test_synthetic.ml: Alcotest Array Dataset Float Printf Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline Synthetic
