test/test_extras.ml: Alcotest Approx_hull Array Cube Discretize Float Hashtbl Printf Regret Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng Topk
