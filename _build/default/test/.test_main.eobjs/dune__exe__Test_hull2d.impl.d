test/test_hull2d.ml: Alcotest Array Float Hull2d Polar Printf Rrms_geom Rrms_rng Vec
