test/test_matrix_mrst.ml: Alcotest Array Discretize Float Mrst Printf Regret_matrix Rrms_core Rrms_rng
