test/test_findings.ml: Alcotest Array Float Printf Regret Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng
