test/test_eps_kernel.ml: Alcotest Array Discretize Eps_kernel Printf Regret Rrms_core Rrms_rng Rrms_skyline
