test/test_skyline.ml: Alcotest Array Dominance Float Fun Kdom Printf Rrms_geom Rrms_rng Rrms_skyline Skyline
