test/test_hd.ml: Alcotest Array Discretize Float Greedy Hd_greedy Hd_rrms Mrst Printf Regret Regret_matrix Rrms2d Rrms_core Rrms_dataset Rrms_rng Rrms_skyline
