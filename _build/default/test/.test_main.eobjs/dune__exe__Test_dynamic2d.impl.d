test/test_dynamic2d.ml: Alcotest Array Dynamic2d Fun List Printf Rrms2d Rrms_core Rrms_rng
