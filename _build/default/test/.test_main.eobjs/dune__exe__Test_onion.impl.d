test/test_onion.ml: Alcotest Array Float Fun Onion Printf Rrms2d Rrms_core Rrms_dataset Rrms_geom Rrms_rng
