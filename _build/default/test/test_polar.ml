(* Tests for the polar <-> Cartesian transform and 2D angle helpers. *)

open Rrms_geom

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let half_pi = Float.pi /. 2.

let test_to_cartesian_2d () =
  (* In 2D with one angle θ: v = (sin θ, cos θ). *)
  let v = Polar.to_cartesian [| 0. |] in
  feq "θ=0 → (0,1) x" 0. v.(0);
  feq "θ=0 → (0,1) y" 1. v.(1);
  let v = Polar.to_cartesian [| half_pi |] in
  feq "θ=π/2 → (1,0) x" 1. v.(0);
  feq "θ=π/2 → (1,0) y" 0. v.(1);
  let v = Polar.to_cartesian [| Float.pi /. 4. |] in
  feq "θ=π/4 x" (sqrt 0.5) v.(0);
  feq "θ=π/4 y" (sqrt 0.5) v.(1)

let test_to_cartesian_3d_paper_example () =
  (* Paper §4.3 maps t'(1,0,1) to polar angles; its worked example writes
     the axes in the opposite order from its own Algorithm 3 (a pure
     relabeling).  Under Algorithm 3's recursion the direction of (1,0,1)
     corresponds to angles (π/2, π/4). *)
  let v = Polar.to_cartesian [| Float.pi /. 2.; Float.pi /. 4. |] in
  let expect = Vec.normalize [| 1.; 0.; 1. |] in
  Alcotest.(check bool)
    "angles (π/2,π/4) → direction (1,0,1)" true
    (Vec.equal ~eps:1e-9 v expect);
  (* And the example's own order maps to (0,1,1). *)
  let v = Polar.to_cartesian [| 0.; Float.pi /. 4. |] in
  let expect = Vec.normalize [| 0.; 1.; 1. |] in
  Alcotest.(check bool)
    "angles (0,π/4) → direction (0,1,1)" true
    (Vec.equal ~eps:1e-9 v expect)

let test_to_cartesian_unit_and_nonneg () =
  let rng = Rrms_rng.Rng.create 21 in
  for _ = 1 to 500 do
    let m = 2 + Rrms_rng.Rng.int rng 6 in
    let angles =
      Array.init (m - 1) (fun _ -> Rrms_rng.Rng.uniform rng 0. half_pi)
    in
    let v = Polar.to_cartesian angles in
    feq "unit norm" 1. (Vec.norm v);
    Array.iter
      (fun x -> Alcotest.(check bool) "non-negative" true (x >= -1e-12))
      v
  done

let test_roundtrip () =
  let rng = Rrms_rng.Rng.create 22 in
  for _ = 1 to 500 do
    let m = 2 + Rrms_rng.Rng.int rng 6 in
    let angles =
      Array.init (m - 1) (fun _ -> Rrms_rng.Rng.uniform rng 0.01 (half_pi -. 0.01))
    in
    let v = Polar.to_cartesian angles in
    let angles' = Polar.to_angles v in
    Array.iteri (fun i a -> feq ~eps:1e-7 "roundtrip angle" a angles'.(i)) angles
  done

let test_to_angles_degenerate () =
  (* A vector with a zero suffix radius: (0, 1, 0) in 3D. *)
  let v = [| 0.; 1.; 0. |] in
  let angles = Polar.to_angles v in
  let v' = Polar.to_cartesian angles in
  Alcotest.(check bool) "degenerate roundtrips" true (Vec.equal ~eps:1e-9 v v')

let test_to_angles_invalid () =
  Alcotest.check_raises "negative component"
    (Invalid_argument "Polar.to_angles: negative component") (fun () ->
      ignore (Polar.to_angles [| 1.; -1. |]));
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Polar.to_angles: zero vector") (fun () ->
      ignore (Polar.to_angles [| 0.; 0. |]))

let test_angle_2d () =
  feq "pure A2 is angle 0" 0. (Polar.angle_2d [| 0.; 1. |]);
  feq "pure A1 is angle π/2" half_pi (Polar.angle_2d [| 1.; 0. |]);
  feq "diagonal is π/4" (Float.pi /. 4.) (Polar.angle_2d [| 1.; 1. |])

let test_weight_of_angle_2d () =
  let w = Polar.weight_of_angle_2d (Float.pi /. 6.) in
  feq "w1 = sin φ" 0.5 w.(0);
  feq "w2 = cos φ" (sqrt 3. /. 2.) w.(1)

let test_tie_angle_basic () =
  (* Points (0,1) and (1,0): tie under the diagonal function φ=π/4. *)
  match Polar.tie_angle_2d [| 0.; 1. |] [| 1.; 0. |] with
  | Some phi -> feq "symmetric tie at π/4" (Float.pi /. 4.) phi
  | None -> Alcotest.fail "expected a tie angle"

let test_tie_angle_dominated () =
  (* (2,2) dominates (1,1): no non-negative function ties them. *)
  Alcotest.(check bool)
    "dominated pair has no tie" true
    (Polar.tie_angle_2d [| 1.; 1. |] [| 2.; 2. |] = None)

let test_tie_angle_identical () =
  Alcotest.(check bool)
    "identical points" true
    (Polar.tie_angle_2d [| 1.; 1. |] [| 1.; 1. |] = None)

let test_tie_angle_axis_cases () =
  (match Polar.tie_angle_2d [| 1.; 2. |] [| 1.; 5. |] with
  | Some phi -> feq "equal A1 ties under pure A1" half_pi phi
  | None -> Alcotest.fail "expected tie");
  match Polar.tie_angle_2d [| 1.; 2. |] [| 5.; 2. |] with
  | Some phi -> feq "equal A2 ties under pure A2" 0. phi
  | None -> Alcotest.fail "expected tie"

let test_tie_angle_scores_equal () =
  (* The defining property: at the tie angle the scores coincide. *)
  let rng = Rrms_rng.Rng.create 23 in
  for _ = 1 to 500 do
    let p = [| Rrms_rng.Rng.float rng 10.; Rrms_rng.Rng.float rng 10. |] in
    let q = [| Rrms_rng.Rng.float rng 10.; Rrms_rng.Rng.float rng 10. |] in
    match Polar.tie_angle_2d p q with
    | None -> ()
    | Some phi ->
        let w = Polar.weight_of_angle_2d phi in
        feq ~eps:1e-9 "scores tie" (Vec.dot w p) (Vec.dot w q);
        Alcotest.(check bool) "angle in range" true (phi >= 0. && phi <= half_pi)
  done

let test_angular_distance () =
  feq "orthogonal" half_pi (Polar.angular_distance [| 1.; 0. |] [| 0.; 1. |]);
  (* acos is ill-conditioned near 1, so allow a looser tolerance. *)
  feq ~eps:1e-7 "same direction" 0.
    (Polar.angular_distance [| 1.; 1. |] [| 2.; 2. |]);
  feq "45 degrees" (Float.pi /. 4.)
    (Polar.angular_distance [| 1.; 0. |] [| 1.; 1. |])

let suite =
  [
    Alcotest.test_case "to_cartesian 2D" `Quick test_to_cartesian_2d;
    Alcotest.test_case "to_cartesian 3D (paper example)" `Quick
      test_to_cartesian_3d_paper_example;
    Alcotest.test_case "to_cartesian unit+nonneg" `Quick
      test_to_cartesian_unit_and_nonneg;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "to_angles degenerate" `Quick test_to_angles_degenerate;
    Alcotest.test_case "to_angles invalid" `Quick test_to_angles_invalid;
    Alcotest.test_case "angle_2d" `Quick test_angle_2d;
    Alcotest.test_case "weight_of_angle_2d" `Quick test_weight_of_angle_2d;
    Alcotest.test_case "tie angle basic" `Quick test_tie_angle_basic;
    Alcotest.test_case "tie angle dominated" `Quick test_tie_angle_dominated;
    Alcotest.test_case "tie angle identical" `Quick test_tie_angle_identical;
    Alcotest.test_case "tie angle axis cases" `Quick test_tie_angle_axis_cases;
    Alcotest.test_case "tie angle scores equal" `Quick
      test_tie_angle_scores_equal;
    Alcotest.test_case "angular distance" `Quick test_angular_distance;
  ]
