(* Tests for the Sweeping-Line baseline: the dual-arrangement winner
   intervals, and agreement with the independent 2D-RRMS implementation. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let test_winner_intervals_simple () =
  let points = [| [| 0.; 1. |]; [| 0.7; 0.7 |]; [| 1.; 0. |] |] in
  let w = Sweepline.winner_intervals points in
  Alcotest.(check int) "three winners" 3 (Array.length w);
  let i0, lo0, _ = w.(0) in
  Alcotest.(check int) "top-left first" 0 i0;
  feq "first interval starts at 0" 0. lo0;
  let i2, _, hi2 = w.(Array.length w - 1) in
  Alcotest.(check int) "bottom-right last" 2 i2;
  feq "last interval ends at π/2" (Float.pi /. 2.) hi2

let test_winner_intervals_tile () =
  let rng = Rrms_rng.Rng.create 91 in
  for _ = 1 to 30 do
    let n = 1 + Rrms_rng.Rng.int rng 80 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let w = Sweepline.winner_intervals points in
    Alcotest.(check bool) "at least one winner" true (Array.length w >= 1);
    (* Consecutive intervals must abut: hi of one = lo of next. *)
    for k = 0 to Array.length w - 2 do
      let _, _, hi = w.(k) and _, lo, _ = w.(k + 1) in
      feq ~eps:1e-9 "intervals abut" hi lo
    done;
    let _, lo0, _ = w.(0) in
    feq "starts at 0" 0. lo0;
    let _, _, hiN = w.(Array.length w - 1) in
    feq "ends at π/2" (Float.pi /. 2.) hiN
  done

let test_winners_match_hull2d () =
  let rng = Rrms_rng.Rng.create 92 in
  for _ = 1 to 30 do
    let n = 1 + Rrms_rng.Rng.int rng 60 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let w = Sweepline.winner_intervals points in
    let hull = Rrms_geom.Hull2d.build points in
    let winners = Array.map (fun (i, _, _) -> i) w in
    Array.sort compare winners;
    let hull_vertices = Rrms_geom.Hull2d.vertices hull in
    Array.sort compare hull_vertices;
    Alcotest.(check (array int))
      "winners = maxima hull vertices" hull_vertices winners
  done

let test_winner_with_duplicates () =
  let points = [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let w = Sweepline.winner_intervals points in
  Alcotest.(check int) "one winner among duplicates" 1 (Array.length w)

let test_solve_matches_rrms2d () =
  let rng = Rrms_rng.Rng.create 93 in
  for trial = 1 to 30 do
    let n = 3 + Rrms_rng.Rng.int rng 40 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let r = 1 + Rrms_rng.Rng.int rng 4 in
    let sl = Sweepline.solve points ~r in
    let dp = Rrms2d.solve_exact points ~r in
    feq ~eps:1e-9
      (Printf.sprintf "trial %d: sweepline = exact 2D-RRMS (n=%d r=%d)" trial n r)
      dp.Rrms2d.regret sl.Sweepline.regret;
    Alcotest.(check bool) "within budget" true (Array.length sl.Sweepline.selected <= r)
  done

let test_solve_matches_on_realistic () =
  let rng = Rrms_rng.Rng.create 94 in
  let d = Rrms_dataset.Realistic.airline rng ~n:300 in
  let points = Rrms_dataset.Dataset.rows (Rrms_dataset.Dataset.normalize d) in
  let sl = Sweepline.solve points ~r:4 in
  let dp = Rrms2d.solve_exact points ~r:4 in
  feq ~eps:1e-9 "airline-sim agreement" dp.Rrms2d.regret sl.Sweepline.regret

let test_invalid () =
  Alcotest.check_raises "r = 0" (Invalid_argument "Sweepline.solve: r must be >= 1")
    (fun () -> ignore (Sweepline.solve [| [| 1.; 1. |] |] ~r:0));
  Alcotest.check_raises "empty" (Invalid_argument "Sweepline.solve: empty input")
    (fun () -> ignore (Sweepline.solve [||] ~r:1))

let suite =
  [
    Alcotest.test_case "winner intervals simple" `Quick test_winner_intervals_simple;
    Alcotest.test_case "winner intervals tile" `Quick test_winner_intervals_tile;
    Alcotest.test_case "winners = hull vertices" `Quick test_winners_match_hull2d;
    Alcotest.test_case "duplicates" `Quick test_winner_with_duplicates;
    Alcotest.test_case "solve = exact 2D-RRMS" `Slow test_solve_matches_rrms2d;
    Alcotest.test_case "solve on realistic data" `Quick test_solve_matches_on_realistic;
    Alcotest.test_case "invalid args" `Quick test_invalid;
  ]
