(* Tests for the ONION layered index: layer structure invariants and
   exact top-k answers against brute force. *)

open Rrms_core

let random_points rng n =
  Array.init n (fun _ ->
      [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])

let brute_topk points w k =
  let order = Array.init (Array.length points) Fun.id in
  Array.sort
    (fun a b ->
      let c =
        Float.compare
          (Rrms_geom.Vec.dot w points.(b))
          (Rrms_geom.Vec.dot w points.(a))
      in
      if c <> 0 then c else compare a b)
    order;
  Array.sub order 0 (min k (Array.length order))

let test_build_partitions () =
  let rng = Rrms_rng.Rng.create 161 in
  let points = random_points rng 300 in
  let onion = Onion.build points in
  Alcotest.(check bool) "exhaustive" true (Onion.exhaustive onion);
  (* Layers partition the input. *)
  let seen = Array.make 300 false in
  for l = 0 to Onion.depth onion - 1 do
    Array.iter
      (fun i ->
        Alcotest.(check bool) "no tuple in two layers" false seen.(i);
        seen.(i) <- true)
      (Onion.layer onion l)
  done;
  Alcotest.(check bool) "every tuple in a layer" true (Array.for_all Fun.id seen);
  Alcotest.(check int) "size_upto depth = n" 300
    (Onion.size_upto onion (Onion.depth onion))

let test_layer_envelopes_nested () =
  (* For any weight, layer j's best score dominates layer j+1's. *)
  let rng = Rrms_rng.Rng.create 162 in
  let points = random_points rng 200 in
  let onion = Onion.build points in
  for _ = 1 to 50 do
    let phi = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
    let w = Rrms_geom.Polar.weight_of_angle_2d phi in
    let best l =
      Array.fold_left
        (fun acc i -> Float.max acc (Rrms_geom.Vec.dot w points.(i)))
        neg_infinity (Onion.layer onion l)
    in
    for l = 0 to Onion.depth onion - 2 do
      Alcotest.(check bool) "nested envelopes" true (best l >= best (l + 1) -. 1e-12)
    done
  done

let test_top1_exact () =
  let rng = Rrms_rng.Rng.create 163 in
  let points = random_points rng 400 in
  let onion = Onion.build ~max_layers:1 points in
  for _ = 1 to 200 do
    let phi = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
    let w = Rrms_geom.Polar.weight_of_angle_2d phi in
    let got = Onion.top1 onion w in
    let want = Rrms_geom.Vec.max_score w points in
    Alcotest.(check (float 1e-9)) "top-1 score exact" want
      (Rrms_geom.Vec.dot w points.(got))
  done

let test_topk_exact () =
  let rng = Rrms_rng.Rng.create 164 in
  for _ = 1 to 20 do
    let n = 20 + Rrms_rng.Rng.int rng 200 in
    let points = random_points rng n in
    let onion = Onion.build points in
    let k = 1 + Rrms_rng.Rng.int rng 5 in
    let phi = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
    let w = Rrms_geom.Polar.weight_of_angle_2d phi in
    let got = Onion.topk onion w ~k in
    let want = brute_topk points w k in
    Alcotest.(check int) "k results" (Array.length want) (Array.length got);
    (* Scores must match rank by rank (indices may differ on ties). *)
    Array.iteri
      (fun rank i ->
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "rank %d score" rank)
          (Rrms_geom.Vec.dot w points.(want.(rank)))
          (Rrms_geom.Vec.dot w points.(i)))
      got
  done

let test_topk_with_duplicates () =
  let points =
    [| [| 1.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 0.5; 0.5 |] |]
  in
  let onion = Onion.build points in
  let got = Onion.topk onion [| 1.; 0.1 |] ~k:2 in
  (* Both duplicates of (1,0) are the two best. *)
  let sorted = Array.copy got in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "duplicates both returned" [| 0; 1 |] sorted

let test_truncated_index_guard () =
  let rng = Rrms_rng.Rng.create 165 in
  let points = random_points rng 100 in
  let onion = Onion.build ~max_layers:2 points in
  if not (Onion.exhaustive onion) then
    Alcotest.check_raises "too-deep query rejected"
      (Invalid_argument "Onion.topk: truncated index too shallow for this k")
      (fun () -> ignore (Onion.topk onion [| 1.; 1. |] ~k:3))

let test_invalid_weights () =
  let onion = Onion.build [| [| 1.; 1. |] |] in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Onion: weights must be non-negative and non-zero")
    (fun () -> ignore (Onion.top1 onion [| -1.; 1. |]));
  Alcotest.check_raises "bad dimension"
    (Invalid_argument "Onion: weight vector not 2D") (fun () ->
      ignore (Onion.top1 onion [| 1.; 1.; 1. |]))

let test_size_tradeoff_vs_rrms () =
  (* The motivating comparison: ONION layer 1 is exact but large; the
     RRMS set is small with bounded regret. *)
  let rng = Rrms_rng.Rng.create 166 in
  let d = Rrms_dataset.Synthetic.skyline_only_2d rng ~target:400 in
  let points = Rrms_dataset.Dataset.rows d in
  let onion = Onion.build ~max_layers:1 points in
  let hull_size = Onion.size_upto onion 1 in
  let r = 8 in
  let rrms = Rrms2d.solve_exact points ~r in
  Alcotest.(check bool)
    (Printf.sprintf "hull (%d) much larger than RRMS set (%d)" hull_size r)
    true
    (hull_size > 4 * r);
  Alcotest.(check bool) "RRMS regret bounded" true (rrms.Rrms2d.regret < 0.2)

let suite =
  [
    Alcotest.test_case "layers partition input" `Quick test_build_partitions;
    Alcotest.test_case "nested envelopes" `Quick test_layer_envelopes_nested;
    Alcotest.test_case "top-1 exact" `Quick test_top1_exact;
    Alcotest.test_case "top-k exact" `Quick test_topk_exact;
    Alcotest.test_case "top-k duplicates" `Quick test_topk_with_duplicates;
    Alcotest.test_case "truncated guard" `Quick test_truncated_index_guard;
    Alcotest.test_case "invalid weights" `Quick test_invalid_weights;
    Alcotest.test_case "size tradeoff vs RRMS" `Quick test_size_tradeoff_vs_rrms;
  ]
