(* Tests for regret-ratio evaluation: closed-form cases, agreement
   between the 2D-envelope and LP evaluators, and the LP hull test. *)

open Rrms_core

let feq ?(eps = 1e-6) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let test_for_function () =
  let points = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.5; 0.5 |] |] in
  (* Keep only (0.5, 0.5); for pure-x the best is 1, kept gives 0.5. *)
  feq "regret 0.5" 0.5
    (Regret.for_function ~points ~selected:[| 2 |] [| 1.; 0. |]);
  (* Keeping the best for the function gives zero regret. *)
  feq "zero regret" 0.
    (Regret.for_function ~points ~selected:[| 0 |] [| 1.; 0. |]);
  (* Keeping everything gives zero regret. *)
  feq "full set" 0.
    (Regret.for_function ~points ~selected:[| 0; 1; 2 |] [| 0.3; 0.7 |])

let test_for_function_empty () =
  Alcotest.check_raises "empty selection"
    (Invalid_argument "Regret.for_function: empty selection") (fun () ->
      ignore (Regret.for_function ~points:[| [| 1. |] |] ~selected:[||] [| 1. |]))

let test_point_regret_lp_simple () =
  (* Set = {(0,1)}, p = (1,0): at w = (1,0), regret = (1-0)/1 = 1. *)
  feq "orthogonal corner" 1.
    (Regret.point_regret_lp ~set:[| [| 0.; 1. |] |] [| 1.; 0. |]);
  (* p dominated by the set: regret 0. *)
  feq "dominated point" 0.
    (Regret.point_regret_lp ~set:[| [| 2.; 2. |] |] [| 1.; 1. |]);
  (* p in the set: regret 0. *)
  feq "self in set" 0.
    (Regret.point_regret_lp ~set:[| [| 1.; 1. |] |] [| 1.; 1. |])

let test_point_regret_lp_known_value () =
  (* Set = {(1,0),(0,1)}, p = (0.8, 0.8).  By symmetry the worst w is
     the diagonal: regret = (1.6 - 1)/1.6 = 0.375 (the denominator is
     w·p, the score of the lost point). *)
  feq "symmetric midpoint" 0.375
    (Regret.point_regret_lp ~set:[| [| 1.; 0. |]; [| 0.; 1. |] |] [| 0.8; 0.8 |])

let test_exact_2d_simple () =
  let points = [| [| 0.; 1. |]; [| 0.7; 0.7 |]; [| 1.; 0. |] |] in
  (* Keep the two corners; drop the middle.  Worst function is the
     contour through the corners, w = (1,1)/√2: regret = (1.4-1)/1.4. *)
  feq "drop middle" ((1.4 -. 1.) /. 1.4)
    (Regret.exact_2d ~selected:[| 0; 2 |] points);
  feq "keep all" 0. (Regret.exact_2d ~selected:[| 0; 1; 2 |] points)

let test_exact_2d_vs_lp () =
  let rng = Rrms_rng.Rng.create 71 in
  for _ = 1 to 30 do
    let n = 5 + Rrms_rng.Rng.int rng 40 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let k = 1 + Rrms_rng.Rng.int rng 4 in
    let selected =
      Array.init k (fun _ -> Rrms_rng.Rng.int rng n)
    in
    let e2d = Regret.exact_2d ~selected points in
    let elp = Regret.exact_lp ~selected points in
    feq ~eps:1e-5
      (Printf.sprintf "envelope vs LP evaluator (n=%d k=%d)" n k)
      e2d elp
  done

let test_sampled_lower_bound () =
  let rng = Rrms_rng.Rng.create 72 in
  let funcs = Discretize.grid ~gamma:8 ~m:2 in
  for _ = 1 to 20 do
    let n = 5 + Rrms_rng.Rng.int rng 30 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let selected = [| Rrms_rng.Rng.int rng n |] in
    let sampled = Regret.sampled ~selected ~funcs points in
    let exact = Regret.exact_2d ~selected points in
    Alcotest.(check bool)
      (Printf.sprintf "sampled (%g) <= exact (%g)" sampled exact)
      true
      (sampled <= exact +. 1e-9)
  done

let test_extreme_points_square () =
  (* Square corners plus center: 4 extreme, 1 not. *)
  let points =
    [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |]; [| 0.5; 0.5 |] |]
  in
  Alcotest.(check bool) "corner extreme" true (Regret.is_extreme_point points 0);
  Alcotest.(check bool) "center not extreme" false
    (Regret.is_extreme_point points 4);
  Alcotest.(check int) "hull size 4" 4 (Regret.convex_hull_size points)

let test_extreme_points_collinear () =
  let points = [| [| 0.; 0. |]; [| 0.5; 0.5 |]; [| 1.; 1. |] |] in
  Alcotest.(check bool) "midpoint of a segment not extreme" false
    (Regret.is_extreme_point points 1);
  Alcotest.(check int) "segment hull = endpoints" 2
    (Regret.convex_hull_size points)

let test_extreme_matches_hull2d_maxima () =
  (* In 2D the LP-extreme points restricted to the skyline must contain
     the maxima hull vertices. *)
  let rng = Rrms_rng.Rng.create 73 in
  let points =
    Array.init 40 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let hull = Rrms_geom.Hull2d.build points in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "maxima hull vertex is LP-extreme" true
        (Regret.is_extreme_point points v))
    (Rrms_geom.Hull2d.vertices hull)

let test_maxima_count_sampled () =
  let points = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.9; 0.9 |]; [| 0.1; 0.1 |] |] in
  let funcs = Discretize.grid ~gamma:16 ~m:2 in
  let c = Regret.maxima_count_sampled ~points ~funcs in
  Alcotest.(check int) "three winners" 3 c

let test_profile_2d () =
  let rng = Rrms_rng.Rng.create 74 in
  for _ = 1 to 15 do
    let n = 5 + Rrms_rng.Rng.int rng 40 in
    let points =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let selected = [| Rrms_rng.Rng.int rng n |] in
    let profile = Regret.profile_2d ~steps:50 ~selected points in
    (* Angles sorted and within [0, π/2]. *)
    Array.iteri
      (fun i (phi, reg) ->
        Alcotest.(check bool) "angle in range" true
          (phi >= 0. && phi <= (Float.pi /. 2.) +. 1e-12);
        Alcotest.(check bool) "regret in [0,1]" true (reg >= 0. && reg <= 1.);
        if i > 0 then
          Alcotest.(check bool) "angles sorted" true (phi >= fst profile.(i - 1)))
      profile;
    (* The profile's max equals the exact regret: the breakpoints are
       among the samples, and the supremum sits at a breakpoint. *)
    let profile_max = Array.fold_left (fun acc (_, r) -> Float.max acc r) 0. profile in
    feq ~eps:1e-9 "profile max = exact" (Regret.exact_2d ~selected points) profile_max
  done

let suite =
  [
    Alcotest.test_case "for_function" `Quick test_for_function;
    Alcotest.test_case "for_function empty" `Quick test_for_function_empty;
    Alcotest.test_case "point LP simple" `Quick test_point_regret_lp_simple;
    Alcotest.test_case "point LP known value" `Quick test_point_regret_lp_known_value;
    Alcotest.test_case "exact 2D simple" `Quick test_exact_2d_simple;
    Alcotest.test_case "exact 2D = exact LP" `Slow test_exact_2d_vs_lp;
    Alcotest.test_case "sampled lower-bounds exact" `Quick test_sampled_lower_bound;
    Alcotest.test_case "extreme points: square" `Quick test_extreme_points_square;
    Alcotest.test_case "extreme points: collinear" `Quick test_extreme_points_collinear;
    Alcotest.test_case "extreme contains maxima hull" `Quick
      test_extreme_matches_hull2d_maxima;
    Alcotest.test_case "maxima count sampled" `Quick test_maxima_count_sampled;
    Alcotest.test_case "profile 2D" `Quick test_profile_2d;
  ]
