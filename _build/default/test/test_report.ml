(* Tests for bench-row parsing and ASCII chart rendering. *)

open Rrms_report

let row_line = "[fig8] n=20000 series=2DRRMS/anti time=0.1234 regret=0.0456"

let test_parse_basic () =
  match Bench_rows.parse_line row_line with
  | None -> Alcotest.fail "expected a row"
  | Some r ->
      Alcotest.(check string) "fig" "fig8" r.Bench_rows.fig;
      Alcotest.(check string) "x_name" "n" r.Bench_rows.x_name;
      Alcotest.(check string) "x" "20000" r.Bench_rows.x;
      Alcotest.(check string) "series" "2DRRMS/anti" r.Bench_rows.series;
      Alcotest.(check (option (float 1e-12))) "time" (Some 0.1234) r.Bench_rows.time;
      Alcotest.(check (option (float 1e-12))) "regret" (Some 0.0456)
        r.Bench_rows.regret;
      Alcotest.(check bool) "count absent" true (r.Bench_rows.count = None);
      Alcotest.(check bool) "not skipped" true (r.Bench_rows.skipped = None)

let test_parse_count_and_skipped () =
  (match Bench_rows.parse_line "[fig16] n=1000 series=skyline/corr time=0.0003 count=4" with
  | Some r -> Alcotest.(check (option int)) "count" (Some 4) r.Bench_rows.count
  | None -> Alcotest.fail "expected a row");
  match Bench_rows.parse_line "[fig8] n=50000 series=SweepingLine/corr skipped=quadratic-cap" with
  | Some r ->
      Alcotest.(check (option string)) "skipped" (Some "quadratic-cap")
        r.Bench_rows.skipped;
      Alcotest.(check bool) "no time" true (r.Bench_rows.time = None)
  | None -> Alcotest.fail "expected a row"

let test_parse_rejects_noise () =
  Alcotest.(check bool) "header rejected" true
    (Bench_rows.parse_line "== fig8: 2D, time vs n ==" = None);
  Alcotest.(check bool) "blank rejected" true (Bench_rows.parse_line "" = None);
  Alcotest.(check bool) "prose rejected" true
    (Bench_rows.parse_line "total bench time: 192.9s" = None);
  Alcotest.(check bool) "micro rows have no x=: rejected" true
    (Bench_rows.parse_line "[micro] monotonic-clock rrms/vec-dot-8d = 10.6 ns/run"
    = None)

let test_parse_categorical_x () =
  match Bench_rows.parse_line "[ahull] data=corr series=true-hull time=0.01 count=1" with
  | Some r ->
      Alcotest.(check string) "x_name" "data" r.Bench_rows.x_name;
      Alcotest.(check string) "x" "corr" r.Bench_rows.x;
      Alcotest.(check bool) "x not numeric" true (Bench_rows.x_as_float r = None)
  | None -> Alcotest.fail "expected a row"

let sample_rows =
  Bench_rows.parse_lines
    [
      "[fig8] n=5000 series=A time=0.1";
      "noise";
      "[fig8] n=20000 series=A time=0.4";
      "[fig8] n=5000 series=B time=1.0";
      "[fig9] r=3 series=A time=0.2";
    ]

let test_grouping () =
  Alcotest.(check (list string)) "figures in order" [ "fig8"; "fig9" ]
    (Bench_rows.figures sample_rows);
  Alcotest.(check (list string)) "series of fig8" [ "A"; "B" ]
    (Bench_rows.series_of ~fig:"fig8" sample_rows);
  Alcotest.(check int) "parsed row count" 4 (List.length sample_rows)

let test_chart_renders_markers () =
  let chart =
    Ascii_chart.render ~width:32 ~height:8 ~title:"t"
      [
        { Ascii_chart.label = "first"; points = [ (0., 0.); (1., 1.) ] };
        { Ascii_chart.label = "second"; points = [ (0.5, 0.5) ] };
      ]
  in
  Alcotest.(check bool) "contains title" true
    (String.length chart > 0
    && Astring_contains.contains chart "== t ==");
  Alcotest.(check bool) "legend first" true
    (Astring_contains.contains chart "a = first");
  Alcotest.(check bool) "legend second" true
    (Astring_contains.contains chart "b = second");
  Alcotest.(check bool) "marker a plotted" true
    (Astring_contains.contains chart "a");
  Alcotest.(check bool) "marker b plotted" true
    (Astring_contains.contains chart "b")

let test_chart_empty () =
  let chart = Ascii_chart.render ~title:"empty" [] in
  Alcotest.(check bool) "reports no data" true
    (Astring_contains.contains chart "no plottable data")

let test_chart_log_drops_nonpositive () =
  let chart =
    Ascii_chart.render ~log_y:true ~title:"log"
      [ { Ascii_chart.label = "s"; points = [ (1., 0.); (2., -1.) ] } ]
  in
  Alcotest.(check bool) "all points dropped -> no data" true
    (Astring_contains.contains chart "no plottable data")

let test_chart_single_point () =
  (* Degenerate extents must not divide by zero. *)
  let chart =
    Ascii_chart.render ~title:"one"
      [ { Ascii_chart.label = "s"; points = [ (3., 7.) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length chart > 0)

(* Round-trip: format a random row like the bench does, parse it back. *)
let prop_row_roundtrip =
  let gen =
    QCheck.Gen.(
      let* fig = oneofl [ "fig8"; "fig13"; "onion" ] in
      let* xn = oneofl [ "n"; "r"; "gamma" ] in
      let* x = int_range 1 1_000_000 in
      let* series = oneofl [ "HDRRMS"; "GREEDY/anti"; "2DRRMS-exact" ] in
      let* t = float_range 0.0001 100. in
      let* reg = float_range 0. 1. in
      return (fig, xn, x, series, t, reg))
  in
  QCheck.Test.make ~count:100 ~name:"bench row formatting round-trips"
    (QCheck.make gen)
    (fun (fig, xn, x, series, t, reg) ->
      let line =
        Printf.sprintf "[%s] %s=%d series=%s time=%.4f regret=%.4f" fig xn x
          series t reg
      in
      match Bench_rows.parse_line line with
      | None -> false
      | Some r ->
          r.Bench_rows.fig = fig
          && r.Bench_rows.x_name = xn
          && r.Bench_rows.x = string_of_int x
          && r.Bench_rows.series = series
          && (match r.Bench_rows.time with
             | Some v -> Float.abs (v -. t) < 1e-3
             | None -> false)
          && (match r.Bench_rows.regret with
             | Some v -> Float.abs (v -. reg) < 1e-3
             | None -> false))

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse count/skipped" `Quick test_parse_count_and_skipped;
    Alcotest.test_case "parse rejects noise" `Quick test_parse_rejects_noise;
    Alcotest.test_case "parse categorical x" `Quick test_parse_categorical_x;
    Alcotest.test_case "grouping" `Quick test_grouping;
    Alcotest.test_case "chart markers" `Quick test_chart_renders_markers;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
    Alcotest.test_case "chart log drops" `Quick test_chart_log_drops_nonpositive;
    Alcotest.test_case "chart single point" `Quick test_chart_single_point;
    QCheck_alcotest.to_alcotest prop_row_roundtrip;
  ]
