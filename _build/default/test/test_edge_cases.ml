(* Focused edge-case tests that the per-module suites don't hit:
   degenerate geometry (axis-aligned and zero-valued tuples), boundary
   parameter values, and numeric corner cases. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

(* ------------------------- axis-degenerate 2D --------------------- *)

let test_points_on_axes () =
  (* Tuples with zero coordinates: regret denominators and tie angles
     must stay well-defined. *)
  let points = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.; 0. |] |] in
  let res = Rrms2d.solve_exact points ~r:1 in
  (* Keeping a single axis point loses the whole other axis. *)
  feq "single-corner regret is 1" 1. res.Rrms2d.regret;
  let res2 = Rrms2d.solve_exact points ~r:2 in
  feq "both corners cover everything" 0. res2.Rrms2d.regret

let test_collinear_vertical_points () =
  (* Many tuples sharing one A₁ value: skyline keeps only the top one,
     ties must not confuse the hull chain. *)
  let points =
    [| [| 1.; 0.2 |]; [| 1.; 0.9 |]; [| 1.; 0.5 |]; [| 0.5; 1. |] |]
  in
  let ctx = Rrms2d.make_ctx points in
  Alcotest.(check int) "two skyline tuples" 2 (Rrms2d.skyline_size ctx);
  let res = Rrms2d.solve_exact points ~r:2 in
  feq "two tuples suffice" 0. res.Rrms2d.regret

let test_identical_points_everywhere () =
  let points = Array.make 10 [| 0.3; 0.7 |] in
  let res = Rrms2d.solve_exact points ~r:1 in
  feq "identical points: zero regret" 0. res.Rrms2d.regret;
  Alcotest.(check int) "one selected" 1 (Array.length res.Rrms2d.selected)

let test_single_point_hd () =
  let res = Hd_rrms.solve ~gamma:3 [| [| 0.5; 0.5; 0.5 |] |] ~r:3 in
  Alcotest.(check int) "single point selected" 1
    (Array.length res.Hd_rrms.selected);
  feq "zero eps" 0. res.Hd_rrms.eps_min

let test_all_zero_tuple () =
  (* A tuple of all zeros scores 0 under every function; regret ratios
     must not divide by zero. *)
  let points = [| [| 0.; 0. |]; [| 0.; 0. |] |] in
  let res = Rrms2d.solve_exact points ~r:1 in
  feq "all-zero database: zero regret" 0. res.Rrms2d.regret;
  feq "per-function regret 0" 0.
    (Regret.for_function ~points ~selected:[| 0 |] [| 1.; 1. |])

(* ----------------------- parameter boundaries --------------------- *)

let test_gamma_one_grid () =
  (* γ = 1: only the axis directions. *)
  let dirs = Discretize.grid ~gamma:1 ~m:2 in
  Alcotest.(check int) "two directions" 2 (Array.length dirs);
  let dirs3 = Discretize.grid ~gamma:1 ~m:3 in
  Alcotest.(check int) "four directions in 3D" 4 (Array.length dirs3)

let test_r_equals_skyline () =
  let rng = Rrms_rng.Rng.create 221 in
  let points =
    Array.init 30 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let s = Rrms2d.skyline_size (Rrms2d.make_ctx points) in
  let res = Rrms2d.solve_exact points ~r:s in
  feq "r = s: whole skyline, zero regret" 0. res.Rrms2d.regret

let test_kregret_k_equals_n () =
  let points = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  (* k = n: the target is the worst tuple; any selection wins. *)
  feq "k = n regret 0" 0.
    (Kregret.for_function ~k:2 ~points ~selected:[| 0 |] [| 1.; 0.5 |])

let test_setcover_single_set_covers_all () =
  let open Rrms_setcover in
  let s = Bitset.full 5 in
  let inst = Setcover.make_instance ~universe:5 [| s |] in
  (match Setcover.greedy inst with
  | Some chosen -> Alcotest.(check int) "greedy picks one" 1 (Array.length chosen)
  | None -> Alcotest.fail "coverable");
  match Setcover.exact inst with
  | Some chosen -> Alcotest.(check int) "exact picks one" 1 (Array.length chosen)
  | None -> Alcotest.fail "coverable"

(* --------------------------- numeric edges ------------------------ *)

let test_tiny_coordinate_scales () =
  (* Values around 1e-9: ratios must stay stable. *)
  let points =
    [| [| 1e-9; 0. |]; [| 0.; 1e-9 |]; [| 0.7e-9; 0.7e-9 |] |]
  in
  let res = Rrms2d.solve_exact points ~r:2 in
  Alcotest.(check bool) "regret within [0,1]" true
    (res.Rrms2d.regret >= 0. && res.Rrms2d.regret <= 1.);
  (* The same instance scaled up must give the same regret (scale
     invariance of the ratio). *)
  let scaled = Array.map (Array.map (fun v -> v *. 1e9)) points in
  let res' = Rrms2d.solve_exact scaled ~r:2 in
  feq ~eps:1e-6 "scale invariance" res'.Rrms2d.regret res.Rrms2d.regret

let test_huge_coordinate_scales () =
  let points = [| [| 1e12; 1. |]; [| 1.; 1e12 |]; [| 8e11; 8e11 |] |] in
  let res = Rrms2d.solve_exact points ~r:2 in
  Alcotest.(check bool) "regret within [0,1]" true
    (res.Rrms2d.regret >= 0. && res.Rrms2d.regret <= 1.)

let test_simplex_equality_only_system () =
  (* A pure equality system solved through phase 1 alone. *)
  let open Rrms_lp in
  match
    Simplex.maximize ~c:[| 0.; 0. |]
      [
        Simplex.constraint_ [| 1.; 1. |] Simplex.Eq 2.;
        Simplex.constraint_ [| 1.; -1. |] Simplex.Eq 0.;
      ]
  with
  | Simplex.Optimal { solution; _ } ->
      feq "x = 1" 1. solution.(0);
      feq "y = 1" 1. solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let suite =
  [
    Alcotest.test_case "points on axes" `Quick test_points_on_axes;
    Alcotest.test_case "collinear vertical points" `Quick
      test_collinear_vertical_points;
    Alcotest.test_case "identical points" `Quick test_identical_points_everywhere;
    Alcotest.test_case "single point HD" `Quick test_single_point_hd;
    Alcotest.test_case "all-zero tuples" `Quick test_all_zero_tuple;
    Alcotest.test_case "gamma = 1 grid" `Quick test_gamma_one_grid;
    Alcotest.test_case "r = skyline size" `Quick test_r_equals_skyline;
    Alcotest.test_case "k-regret k = n" `Quick test_kregret_k_equals_n;
    Alcotest.test_case "set cover single set" `Quick
      test_setcover_single_set_covers_all;
    Alcotest.test_case "tiny coordinates" `Quick test_tiny_coordinate_scales;
    Alcotest.test_case "huge coordinates" `Quick test_huge_coordinate_scales;
    Alcotest.test_case "equality-only simplex" `Quick
      test_simplex_equality_only_system;
  ]
