(* Tests for high-dimensional incremental maintenance. *)

open Rrms_core

let test_matches_from_scratch () =
  let rng = Rrms_rng.Rng.create 211 in
  let dyn = Dynamic_hd.create ~gamma:3 ~r:3 [||] in
  let reference = ref [] in
  for step = 1 to 40 do
    let p = Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.) in
    ignore (Dynamic_hd.insert dyn p);
    reference := p :: !reference;
    if step mod 10 = 0 then begin
      let points = Array.of_list (List.rev !reference) in
      let want = Hd_rrms.solve ~gamma:3 points ~r:3 in
      let want_regret = Regret.exact_lp ~selected:want.Hd_rrms.selected points in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "regret matches at step %d" step)
        want_regret (Dynamic_hd.regret dyn)
    end
  done

let test_dominated_absorbed () =
  let dyn =
    Dynamic_hd.create ~gamma:3 ~r:2 [| [| 1.; 1.; 1. |]; [| 0.5; 0.9; 0.2 |] |]
  in
  ignore (Dynamic_hd.regret dyn);
  let before = Dynamic_hd.recompute_count dyn in
  for _ = 1 to 10 do
    ignore (Dynamic_hd.insert dyn [| 0.2; 0.3; 0.4 |])
  done;
  ignore (Dynamic_hd.regret dyn);
  Alcotest.(check int) "dominated inserts absorbed" before
    (Dynamic_hd.recompute_count dyn);
  ignore (Dynamic_hd.insert dyn [| 2.; 0.; 0. |]);
  Alcotest.(check bool) "skyline insert dirties" true (Dynamic_hd.is_dirty dyn)

let test_remove_skyline_dirties () =
  let dyn =
    Dynamic_hd.create ~gamma:3 ~r:2
      [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.5; 0.; 0. |] |]
  in
  ignore (Dynamic_hd.regret dyn);
  let rc = Dynamic_hd.recompute_count dyn in
  (* Interior removal: no recompute. *)
  Dynamic_hd.remove dyn 2;
  ignore (Dynamic_hd.regret dyn);
  Alcotest.(check int) "interior removal free" rc (Dynamic_hd.recompute_count dyn);
  (* Skyline removal: recompute, and the answer reflects it. *)
  Dynamic_hd.remove dyn 0;
  let sel = Dynamic_hd.selection dyn in
  Alcotest.(check int) "one live skyline tuple selected" 1 (Array.length sel);
  Alcotest.(check int) "it is the remaining corner" 1 sel.(0)

let test_dimension_consistency () =
  let dyn = Dynamic_hd.create ~r:1 [||] in
  ignore (Dynamic_hd.insert dyn [| 1.; 2.; 3. |]);
  Alcotest.check_raises "dimension mismatch rejected"
    (Invalid_argument "Dynamic_hd: inconsistent tuple dimension") (fun () ->
      ignore (Dynamic_hd.insert dyn [| 1.; 2. |]))

let suite =
  [
    Alcotest.test_case "matches from-scratch" `Quick test_matches_from_scratch;
    Alcotest.test_case "dominated absorbed" `Quick test_dominated_absorbed;
    Alcotest.test_case "skyline removal" `Quick test_remove_skyline_dirties;
    Alcotest.test_case "dimension consistency" `Quick test_dimension_consistency;
  ]
