(* Tests for the k-regret extension. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let points =
  [| [| 1.; 0. |]; [| 0.9; 0.1 |]; [| 0.5; 0.5 |]; [| 0.; 1. |] |]

let test_kth_score () =
  let w = [| 1.; 0. |] in
  feq "1st" 1. (Kregret.kth_score ~k:1 w points);
  feq "2nd" 0.9 (Kregret.kth_score ~k:2 w points);
  feq "3rd" 0.5 (Kregret.kth_score ~k:3 w points);
  feq "4th" 0. (Kregret.kth_score ~k:4 w points);
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Kregret.kth_score: k out of range") (fun () ->
      ignore (Kregret.kth_score ~k:5 w points))

let test_kth_score_matches_sort () =
  let rng = Rrms_rng.Rng.create 171 in
  for _ = 1 to 50 do
    let n = 5 + Rrms_rng.Rng.int rng 50 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let w = [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |] in
    let scores = Array.map (fun p -> Rrms_geom.Vec.dot w p) pts in
    Array.sort (fun a b -> Float.compare b a) scores;
    let k = 1 + Rrms_rng.Rng.int rng n in
    feq "kth = sorted" scores.(k - 1) (Kregret.kth_score ~k w pts)
  done

let test_for_function () =
  (* Keep only (0.5, 0.5); under pure-x: k=1 target 1.0 → regret 0.5;
     k=2 target 0.9 → regret 4/9; k=3 target 0.5 → regret 0. *)
  let selected = [| 2 |] in
  let w = [| 1.; 0. |] in
  feq "k=1" 0.5 (Kregret.for_function ~k:1 ~points ~selected w);
  feq ~eps:1e-12 "k=2" ((0.9 -. 0.5) /. 0.9)
    (Kregret.for_function ~k:2 ~points ~selected w);
  feq "k=3" 0. (Kregret.for_function ~k:3 ~points ~selected w)

let test_k1_equals_regret () =
  let rng = Rrms_rng.Rng.create 172 in
  let funcs = Discretize.grid ~gamma:6 ~m:2 in
  for _ = 1 to 20 do
    let n = 5 + Rrms_rng.Rng.int rng 40 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let selected = [| Rrms_rng.Rng.int rng n |] in
    feq "k=1 sampled = 1-regret sampled"
      (Regret.sampled ~selected ~funcs pts)
      (Kregret.sampled ~k:1 ~points:pts ~selected ~funcs)
  done

let test_monotone_in_k () =
  (* A weaker target (larger k) can only shrink the regret. *)
  let rng = Rrms_rng.Rng.create 173 in
  let funcs = Discretize.grid ~gamma:6 ~m:2 in
  for _ = 1 to 20 do
    let n = 6 + Rrms_rng.Rng.int rng 40 in
    let pts =
      Array.init n (fun _ ->
          [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
    in
    let selected = [| Rrms_rng.Rng.int rng n; Rrms_rng.Rng.int rng n |] in
    let prev = ref infinity in
    for k = 1 to 5 do
      let v = Kregret.sampled ~k ~points:pts ~selected ~funcs in
      Alcotest.(check bool)
        (Printf.sprintf "non-increasing in k (k=%d)" k)
        true
        (v <= !prev +. 1e-12);
      prev := v
    done
  done

let test_layered_promise () =
  (* Serving top-k from k layers must beat serving it from layer 1. *)
  let rng = Rrms_rng.Rng.create 174 in
  let pts =
    Array.init 150 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let funcs = Discretize.grid ~gamma:8 ~m:2 in
  let select sub = (Rrms2d.solve_exact sub ~r:4).Rrms2d.selected in
  let layers = Topk.build ~select ~probe_funcs:funcs ~k:3 pts in
  let k = 3 in
  let with_all_layers =
    Kregret.layered_sampled ~points:pts ~layers:layers.Topk.layer_members
      ~funcs ~k
  in
  let with_one_layer =
    Kregret.layered_sampled ~points:pts
      ~layers:[| layers.Topk.layer_members.(0) |]
      ~funcs ~k
  in
  Alcotest.(check bool)
    (Printf.sprintf "3 layers (%g) <= 1 layer (%g)" with_all_layers
       with_one_layer)
    true
    (with_all_layers <= with_one_layer +. 1e-9);
  Alcotest.(check bool) "bounded" true (with_all_layers <= 1.)

let suite =
  [
    Alcotest.test_case "kth score" `Quick test_kth_score;
    Alcotest.test_case "kth score = sort" `Quick test_kth_score_matches_sort;
    Alcotest.test_case "for_function" `Quick test_for_function;
    Alcotest.test_case "k=1 equals 1-regret" `Quick test_k1_equals_regret;
    Alcotest.test_case "monotone in k" `Quick test_monotone_in_k;
    Alcotest.test_case "layered promise" `Quick test_layered_promise;
  ]
