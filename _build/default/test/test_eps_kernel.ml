(* Tests for the direction-net ε-kernel. *)

open Rrms_core

let random_points rng n m =
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

let test_zero_regret_on_sample () =
  let rng = Rrms_rng.Rng.create 181 in
  let pts = random_points rng 200 3 in
  let funcs = Discretize.grid ~gamma:4 ~m:3 in
  let kernel = Eps_kernel.build ~funcs pts in
  (* By construction, the kernel answers every sampled function with
     zero regret. *)
  Array.iter
    (fun w ->
      Alcotest.(check (float 1e-12))
        "zero regret on sampled function" 0.
        (Regret.for_function ~points:pts ~selected:kernel w))
    funcs

let test_guarantee_holds_exactly () =
  let rng = Rrms_rng.Rng.create 182 in
  for _ = 1 to 10 do
    let pts = random_points rng 100 3 in
    let gamma = 3 in
    let kernel = Eps_kernel.build_grid ~gamma pts in
    let true_regret = Regret.exact_lp ~selected:kernel pts in
    let bound = Eps_kernel.guarantee ~gamma ~m:3 in
    Alcotest.(check bool)
      (Printf.sprintf "regret %g <= 1-c = %g" true_regret bound)
      true
      (true_regret <= bound +. 1e-9)
  done

let test_size_bounded_and_deduplicated () =
  let rng = Rrms_rng.Rng.create 183 in
  let pts = random_points rng 500 4 in
  let funcs = Discretize.grid ~gamma:3 ~m:4 in
  let kernel = Eps_kernel.build ~funcs pts in
  Alcotest.(check bool) "size <= |F|" true
    (Array.length kernel <= Array.length funcs);
  let sorted = Array.copy kernel in
  Array.sort compare sorted;
  for i = 0 to Array.length sorted - 2 do
    Alcotest.(check bool) "no duplicate indices" true (sorted.(i) <> sorted.(i + 1))
  done

let test_kernel_members_are_skyline () =
  (* A strict maximizer of a positive function is never dominated. *)
  let rng = Rrms_rng.Rng.create 184 in
  let pts = random_points rng 150 3 in
  let kernel = Eps_kernel.build_grid ~gamma:3 pts in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "kernel member on skyline" true
        (Rrms_skyline.Skyline.is_skyline_point pts i))
    kernel

let test_finer_grid_lower_regret () =
  let rng = Rrms_rng.Rng.create 185 in
  let pts = random_points rng 300 3 in
  let r2 = Regret.exact_lp ~selected:(Eps_kernel.build_grid ~gamma:2 pts) pts in
  let r6 = Regret.exact_lp ~selected:(Eps_kernel.build_grid ~gamma:6 pts) pts in
  Alcotest.(check bool)
    (Printf.sprintf "γ=6 regret %g <= γ=2 regret %g" r6 r2)
    true (r6 <= r2 +. 1e-9)

let test_invalid () =
  Alcotest.check_raises "no points"
    (Invalid_argument "Eps_kernel.build: no points") (fun () ->
      ignore (Eps_kernel.build ~funcs:[| [| 1.; 0. |] |] [||]));
  Alcotest.check_raises "no funcs"
    (Invalid_argument "Eps_kernel.build: no functions") (fun () ->
      ignore (Eps_kernel.build ~funcs:[||] [| [| 1.; 0. |] |]))

let suite =
  [
    Alcotest.test_case "zero regret on sample" `Quick test_zero_regret_on_sample;
    Alcotest.test_case "Theorem-4 guarantee" `Quick test_guarantee_holds_exactly;
    Alcotest.test_case "size bounded + dedup" `Quick
      test_size_bounded_and_deduplicated;
    Alcotest.test_case "members on skyline" `Quick test_kernel_members_are_skyline;
    Alcotest.test_case "finer grid lower regret" `Quick
      test_finer_grid_lower_regret;
    Alcotest.test_case "invalid" `Quick test_invalid;
  ]
