(* Tests for the remaining competitors and extensions: CUBE, the
   approximate hull, and the Top-k layers. *)

open Rrms_core

let random_points rng n m =
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

let test_cube_budget () =
  let rng = Rrms_rng.Rng.create 141 in
  for _ = 1 to 10 do
    let m = 2 + Rrms_rng.Rng.int rng 3 in
    let pts = random_points rng 200 m in
    let r = m + Rrms_rng.Rng.int rng 10 in
    let res = Cube.solve pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "within budget (got %d <= %d)" (Array.length res.Cube.selected) r)
      true
      (Array.length res.Cube.selected <= r);
    Alcotest.(check bool) "non-empty" true (Array.length res.Cube.selected > 0);
    Alcotest.(check bool) "t >= 1" true (res.Cube.t_parameter >= 1)
  done

let test_cube_includes_attribute_maxima () =
  let pts =
    [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.3; 0.3; 0.3 |] |]
  in
  let res = Cube.solve pts ~r:5 in
  let has i = Array.mem i res.Cube.selected in
  Alcotest.(check bool) "max of attr 1 kept" true (has 0);
  Alcotest.(check bool) "max of attr 2 kept" true (has 1)

let test_cube_regret_reasonable () =
  (* CUBE should achieve a sane regret on smooth data (its bound is
     weak but finite). *)
  let rng = Rrms_rng.Rng.create 142 in
  let pts = random_points rng 500 3 in
  let res = Cube.solve pts ~r:12 in
  let regret = Regret.exact_lp ~selected:res.Cube.selected pts in
  Alcotest.(check bool)
    (Printf.sprintf "regret %g < 1" regret)
    true (regret < 1.)

let test_cube_published_bound () =
  (* On normalized data CUBE's regret must respect its n-independent
     bound (m-1)/(t+m-1). *)
  let rng = Rrms_rng.Rng.create 150 in
  for _ = 1 to 8 do
    let m = 2 + Rrms_rng.Rng.int rng 2 in
    let n = 200 + Rrms_rng.Rng.int rng 800 in
    let pts = random_points rng n m in
    let r = m + Rrms_rng.Rng.int rng 12 in
    let res = Cube.solve pts ~r in
    let regret = Regret.exact_lp ~selected:res.Cube.selected pts in
    let bound = Cube.bound ~m ~t:res.Cube.t_parameter in
    Alcotest.(check bool)
      (Printf.sprintf "regret %g <= CUBE bound %g (m=%d t=%d)" regret bound m
         res.Cube.t_parameter)
      true
      (regret <= bound +. 1e-9)
  done;
  (* The bound itself shrinks with t and is n-independent by
     construction. *)
  Alcotest.(check bool) "bound decreasing in t" true
    (Cube.bound ~m:4 ~t:10 < Cube.bound ~m:4 ~t:2)

let test_cube_invalid () =
  Alcotest.check_raises "r < m" (Invalid_argument "Cube.solve: r must be >= m")
    (fun () -> ignore (Cube.solve [| [| 1.; 1.; 1. |] |] ~r:2))

let test_approx_hull_2d_superset_behaviour () =
  (* §6.3's point: the approximate hull is usually LARGER than the true
     maxima hull — useless as a compact representative. *)
  let rng = Rrms_rng.Rng.create 143 in
  let d = Rrms_dataset.Synthetic.correlated rng ~n:2000 ~m:2 in
  let pts = Rrms_dataset.Dataset.rows d in
  let true_hull = Rrms_geom.Hull2d.size (Rrms_geom.Hull2d.build pts) in
  let approx = Approx_hull.maxima_hull_2d ~strips:64 pts in
  Alcotest.(check bool)
    (Printf.sprintf "approx (%d) > true hull (%d) on correlated data"
       (Array.length approx) true_hull)
    true
    (Array.length approx > true_hull)

let test_approx_hull_2d_covers_maxima () =
  (* Error guarantee: for every angle, the best kept point is close to
     the true best — here we check the weaker containment property that
     the global axis maxima are present. *)
  let rng = Rrms_rng.Rng.create 144 in
  let pts = random_points rng 500 2 in
  let approx = Approx_hull.maxima_hull_2d ~strips:16 pts in
  let best_x = ref 0 and best_y = ref 0 in
  Array.iteri
    (fun i p ->
      if p.(0) > pts.(!best_x).(0) then best_x := i;
      if p.(1) > pts.(!best_y).(1) then best_y := i)
    pts;
  Alcotest.(check bool) "max-x kept" true (Array.mem !best_x approx);
  Alcotest.(check bool) "max-y kept" true (Array.mem !best_y approx)

let test_approx_hull_2d_regret_bound () =
  (* With k strips over normalized data the kept set's regret is
     small: every strip winner is within 1/k in A1 of the true winner
     with at least its A2. *)
  let rng = Rrms_rng.Rng.create 145 in
  let pts = random_points rng 800 2 in
  let approx = Approx_hull.maxima_hull_2d ~strips:40 pts in
  let regret = Regret.exact_2d ~selected:approx pts in
  Alcotest.(check bool)
    (Printf.sprintf "approx hull regret %g small" regret)
    true (regret <= 0.15)

let test_approx_hull_nd () =
  let rng = Rrms_rng.Rng.create 146 in
  let pts = random_points rng 500 3 in
  let approx = Approx_hull.maxima_hull_nd ~grid:4 pts in
  Alcotest.(check bool) "non-empty" true (Array.length approx > 0);
  Alcotest.(check bool) "bounded by grid cells + maxima" true
    (Array.length approx <= (4 * 4) + 3);
  let sorted = Array.copy approx in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "sorted unique indices" sorted approx

let test_approx_hull_strip_coverage () =
  (* The BPF guarantee, verified pointwise: every tuple is covered by a
     kept tuple in its own strip that is at least as good on A2 (so the
     kept set loses at most one strip-width of A1). *)
  let rng = Rrms_rng.Rng.create 149 in
  let pts = random_points rng 600 2 in
  let strips = 20 in
  let kept = Approx_hull.maxima_hull_2d ~strips pts in
  let max_x = Array.fold_left (fun acc p -> Float.max acc p.(0)) 0. pts in
  let strip_of p =
    min (strips - 1) (int_of_float (p.(0) /. max_x *. float_of_int strips))
  in
  Array.iter
    (fun p ->
      let covered =
        Array.exists
          (fun k ->
            strip_of pts.(k) = strip_of p && pts.(k).(1) >= p.(1))
          kept
      in
      Alcotest.(check bool) "strip winner covers the point" true covered)
    pts

let test_topk_layers_partition () =
  let rng = Rrms_rng.Rng.create 147 in
  let pts = random_points rng 120 2 in
  let probe_funcs = Discretize.grid ~gamma:8 ~m:2 in
  let select sub = (Rrms2d.solve sub ~r:4).Rrms2d.selected in
  let layers = Topk.build ~select ~probe_funcs ~k:3 pts in
  Alcotest.(check int) "three layers" 3 (Array.length layers.Topk.layer_members);
  (* Covered sets are disjoint. *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun cover ->
      Array.iter
        (fun i ->
          Alcotest.(check bool) "no tuple covered twice" false (Hashtbl.mem seen i);
          Hashtbl.replace seen i ())
        cover)
    layers.Topk.covered;
  (* Members of layer i are covered by layer i. *)
  Array.iteri
    (fun li members ->
      Array.iter
        (fun i ->
          Alcotest.(check bool) "member covered by its layer" true
            (Array.mem i layers.Topk.covered.(li)))
        members)
    layers.Topk.layer_members

let test_topk_query () =
  let rng = Rrms_rng.Rng.create 148 in
  let pts = random_points rng 100 2 in
  let probe_funcs = Discretize.grid ~gamma:8 ~m:2 in
  let select sub = (Rrms2d.solve sub ~r:3).Rrms2d.selected in
  let layers = Topk.build ~select ~probe_funcs ~k:3 pts in
  let w = [| 0.5; 0.5 |] in
  let top3 = Topk.topk_from_layers pts layers w ~k:3 in
  Alcotest.(check bool) "returns k results" true (Array.length top3 <= 3);
  (* Scores are in decreasing order. *)
  for i = 0 to Array.length top3 - 2 do
    Alcotest.(check bool) "decreasing scores" true
      (Rrms_geom.Vec.dot w pts.(top3.(i)) >= Rrms_geom.Vec.dot w pts.(top3.(i + 1)))
  done;
  (* The top-1 answer matches the layer-1 compact set's promise: its
     regret vs the true top-1 is bounded by the layer's regret. *)
  let true_best = Rrms_geom.Vec.max_score w pts in
  let got = Rrms_geom.Vec.dot w pts.(top3.(0)) in
  let layer_regret = Regret.exact_2d ~selected:layers.Topk.layer_members.(0) pts in
  Alcotest.(check bool) "top-1 within layer regret" true
    ((true_best -. got) /. true_best <= layer_regret +. 1e-9)

let test_topk_exhaustion () =
  (* k larger than the data can sustain: trailing layers empty, no
     crash. *)
  let pts = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let probe_funcs = Discretize.grid ~gamma:4 ~m:2 in
  let select sub = (Rrms2d.solve sub ~r:2).Rrms2d.selected in
  let layers = Topk.build ~select ~probe_funcs ~k:5 pts in
  Alcotest.(check int) "first layer everything" 2
    (Array.length layers.Topk.layer_members.(0));
  Alcotest.(check int) "later layers empty" 0
    (Array.length layers.Topk.layer_members.(2))

let test_topk_invalid () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Topk.build: k must be >= 1")
    (fun () ->
      ignore
        (Topk.build
           ~select:(fun _ -> [||])
           ~probe_funcs:[||] ~k:0 [| [| 1. |] |]))

let suite =
  [
    Alcotest.test_case "cube budget" `Quick test_cube_budget;
    Alcotest.test_case "cube keeps attribute maxima" `Quick
      test_cube_includes_attribute_maxima;
    Alcotest.test_case "cube regret reasonable" `Slow test_cube_regret_reasonable;
    Alcotest.test_case "cube published bound" `Slow test_cube_published_bound;
    Alcotest.test_case "cube invalid" `Quick test_cube_invalid;
    Alcotest.test_case "approx hull superset behaviour" `Quick
      test_approx_hull_2d_superset_behaviour;
    Alcotest.test_case "approx hull covers maxima" `Quick
      test_approx_hull_2d_covers_maxima;
    Alcotest.test_case "approx hull regret bound" `Quick
      test_approx_hull_2d_regret_bound;
    Alcotest.test_case "approx hull nd" `Quick test_approx_hull_nd;
    Alcotest.test_case "approx hull strip coverage" `Quick
      test_approx_hull_strip_coverage;
    Alcotest.test_case "topk layers partition" `Quick test_topk_layers_partition;
    Alcotest.test_case "topk query" `Quick test_topk_query;
    Alcotest.test_case "topk exhaustion" `Quick test_topk_exhaustion;
    Alcotest.test_case "topk invalid" `Quick test_topk_invalid;
  ]
