(* Tests for dense vector operations. *)

open Rrms_geom

let feq ?(eps = 1e-12) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let test_dot () =
  feq "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  feq "dot orthogonal" 0. (Vec.dot [| 1.; 0. |] [| 0.; 1. |]);
  feq "dot empty" 0. (Vec.dot [||] [||])

let test_dot_mismatch () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch") (fun () ->
      ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_norm () =
  feq "norm 3-4-5" 5. (Vec.norm [| 3.; 4. |]);
  feq "norm2" 25. (Vec.norm2 [| 3.; 4. |]);
  feq "norm zero" 0. (Vec.norm [| 0.; 0.; 0. |])

let test_normalize () =
  let v = Vec.normalize [| 3.; 4. |] in
  feq "normalized x" 0.6 v.(0);
  feq "normalized y" 0.8 v.(1);
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Vec.normalize: zero vector") (fun () ->
      ignore (Vec.normalize [| 0.; 0. |]))

let test_add_sub_scale () =
  Alcotest.(check bool)
    "add" true
    (Vec.equal (Vec.add [| 1.; 2. |] [| 3.; 4. |]) [| 4.; 6. |]);
  Alcotest.(check bool)
    "sub" true
    (Vec.equal (Vec.sub [| 1.; 2. |] [| 3.; 4. |]) [| -2.; -2. |]);
  Alcotest.(check bool)
    "scale" true
    (Vec.equal (Vec.scale 2. [| 1.; -2. |]) [| 2.; -4. |])

let test_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy 2. [| 3.; 4. |] y;
  Alcotest.(check bool) "axpy" true (Vec.equal y [| 7.; 9. |])

let test_equal_eps () =
  Alcotest.(check bool)
    "within eps" true
    (Vec.equal ~eps:1e-6 [| 1. |] [| 1. +. 1e-9 |]);
  Alcotest.(check bool)
    "outside eps" false
    (Vec.equal ~eps:1e-12 [| 1. |] [| 1. +. 1e-6 |]);
  Alcotest.(check bool) "length mismatch" false (Vec.equal [| 1. |] [| 1.; 2. |])

let test_max_score () =
  let points = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.6; 0.6 |] |] in
  Alcotest.(check int)
    "pure x picks (1,0)" 0
    (Vec.max_score_index [| 1.; 0. |] points);
  Alcotest.(check int)
    "pure y picks (0,1)" 1
    (Vec.max_score_index [| 0.; 1. |] points);
  Alcotest.(check int)
    "diagonal picks (0.6,0.6)" 2
    (Vec.max_score_index [| 1.; 1. |] points);
  feq "max_score value" 1.2 (Vec.max_score [| 1.; 1. |] points)

let test_max_score_tie_break () =
  let points = [| [| 1.; 0. |]; [| 1.; 0. |] |] in
  Alcotest.(check int)
    "tie goes to smaller index" 0
    (Vec.max_score_index [| 1.; 1. |] points)

let test_max_score_empty () =
  Alcotest.check_raises "empty points"
    (Invalid_argument "Vec.max_score_index: empty array") (fun () ->
      ignore (Vec.max_score_index [| 1. |] [||]))

(* Property: dot is bilinear and symmetric. *)
let prop_dot_symmetric =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      pair
        (array_size (return n) (float_range (-10.) 10.))
        (array_size (return n) (float_range (-10.) 10.)))
  in
  QCheck.Test.make ~count:200 ~name:"dot symmetric"
    (QCheck.make gen)
    (fun (a, b) -> Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_triangle_inequality =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      pair
        (array_size (return n) (float_range (-10.) 10.))
        (array_size (return n) (float_range (-10.) 10.)))
  in
  QCheck.Test.make ~count:200 ~name:"triangle inequality"
    (QCheck.make gen)
    (fun (a, b) -> Vec.norm (Vec.add a b) <= Vec.norm a +. Vec.norm b +. 1e-9)

let prop_normalize_unit =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      array_size (return n) (float_range 0.1 10.))
  in
  QCheck.Test.make ~count:200 ~name:"normalize gives unit norm"
    (QCheck.make gen)
    (fun a -> Float.abs (Vec.norm (Vec.normalize a) -. 1.) < 1e-9)

let suite =
  [
    Alcotest.test_case "dot" `Quick test_dot;
    Alcotest.test_case "dot mismatch" `Quick test_dot_mismatch;
    Alcotest.test_case "norm" `Quick test_norm;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
    Alcotest.test_case "axpy" `Quick test_axpy;
    Alcotest.test_case "equal eps" `Quick test_equal_eps;
    Alcotest.test_case "max score" `Quick test_max_score;
    Alcotest.test_case "max score tie" `Quick test_max_score_tie_break;
    Alcotest.test_case "max score empty" `Quick test_max_score_empty;
    QCheck_alcotest.to_alcotest prop_dot_symmetric;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_normalize_unit;
  ]
