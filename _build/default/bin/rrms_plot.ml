(* rrms_plot: render bench/main.exe output as terminal charts.

   Usage:
     dune exec bench/main.exe > bench.log
     dune exec bin/rrms_plot.exe -- bench.log                 # all figures
     dune exec bin/rrms_plot.exe -- --fig fig8 --y time --logy bench.log
     dune exec bench/main.exe -- --only fig13 | dune exec bin/rrms_plot.exe

   Each figure becomes one chart; the swept parameter is the x axis and
   the chosen metric (time | regret | count) the y axis.  Categorical x
   values are plotted by their order of appearance. *)

open Rrms_report

let metric_of_string = function
  | "time" -> Ok `Time
  | "regret" -> Ok `Regret
  | "count" -> Ok `Count
  | s -> Error (Printf.sprintf "unknown metric %S (use time | regret | count)" s)

let metric_value metric (row : Bench_rows.row) =
  match metric with
  | `Time -> row.Bench_rows.time
  | `Regret -> row.Bench_rows.regret
  | `Count -> Option.map float_of_int row.Bench_rows.count

let chart_of_figure ~metric ~log_x ~log_y rows fig =
  let fig_rows = List.filter (fun r -> r.Bench_rows.fig = fig) rows in
  let series_names = Bench_rows.series_of ~fig rows in
  (* Categorical x values (e.g. data=corr) get their appearance index. *)
  let categorical = Hashtbl.create 8 in
  let x_value row =
    match Bench_rows.x_as_float row with
    | Some v -> v
    | None ->
        let key = row.Bench_rows.x in
        (match Hashtbl.find_opt categorical key with
        | Some i -> i
        | None ->
            let i = float_of_int (Hashtbl.length categorical) in
            Hashtbl.add categorical key i;
            i)
  in
  let series =
    List.map
      (fun name ->
        let points =
          List.filter_map
            (fun r ->
              if r.Bench_rows.series = name then
                Option.map (fun y -> (x_value r, y)) (metric_value metric r)
              else None)
            fig_rows
        in
        { Ascii_chart.label = name; points })
      series_names
  in
  let x_label =
    match fig_rows with r :: _ -> Some r.Bench_rows.x_name | [] -> None
  in
  let y_label =
    match metric with
    | `Time -> "time (s)"
    | `Regret -> "max regret ratio"
    | `Count -> "count"
  in
  Ascii_chart.render ~log_x ~log_y ?x_label ~y_label
    ~title:(Printf.sprintf "%s (%s)" fig y_label)
    series

let () =
  let fig_filter = ref [] in
  let metric = ref `Time in
  let log_x = ref false and log_y = ref false in
  let files = ref [] in
  let args =
    [
      ( "--fig",
        Arg.String (fun s -> fig_filter := String.split_on_char ',' s),
        "fig8,fig13  only these figures" );
      ( "--y",
        Arg.String
          (fun s ->
            match metric_of_string s with
            | Ok m -> metric := m
            | Error msg ->
                prerr_endline msg;
                exit 2),
        "time|regret|count  metric on the y axis (default time)" );
      ("--logx", Arg.Set log_x, " log-scale x axis");
      ("--logy", Arg.Set log_y, " log-scale y axis");
    ]
  in
  Arg.parse args
    (fun f -> files := f :: !files)
    "rrms_plot [--fig figN,...] [--y metric] [--logx] [--logy] [bench.log]";
  let rows =
    match !files with
    | [] -> Bench_rows.parse_channel stdin
    | fs ->
        List.concat_map
          (fun f ->
            let ic = open_in f in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> Bench_rows.parse_channel ic))
          (List.rev fs)
  in
  if rows = [] then begin
    prerr_endline "rrms_plot: no bench rows found in input";
    exit 1
  end;
  let figures = Bench_rows.figures rows in
  let wanted =
    match !fig_filter with
    | [] -> figures
    | sel -> List.filter (fun f -> List.mem f sel) figures
  in
  List.iter
    (fun fig ->
      print_endline
        (chart_of_figure ~metric:!metric ~log_x:!log_x ~log_y:!log_y rows fig);
      print_newline ())
    wanted
