(** Direction-net ε-kernels: the coreset-style counterpart of HD-RRMS.

    Keep, for every direction of a sample [F] of the function space, the
    tuple that maximizes it.  The result answers every sampled function
    with zero regret, so by Theorem 4 its regret over the {e whole}
    function space is at most [1 − c] for the sample's covering radius —
    the [ε]-kernel guarantee of the coreset literature (Agarwal et al.),
    obtained here with the paper's own machinery (it is exactly HD-RRMS
    with threshold ε = 0 and no size budget).

    Where HD-RRMS fixes the size [r] and minimizes the regret, the
    kernel fixes the regret (via the direction-net density) and lets the
    size float: at most [|F|], usually far fewer because neighbouring
    directions share winners.  The [ablation] bench contrasts the two
    trade-offs. *)

val build : funcs:Rrms_geom.Vec.t array -> Rrms_geom.Vec.t array -> int array
(** [build ~funcs points] keeps one winner per direction, deduplicated,
    in first-win order.  O(|points|·|funcs|·m).
    @raise Invalid_argument on empty points or funcs. *)

val build_grid : gamma:int -> Rrms_geom.Vec.t array -> int array
(** {!build} over the Algorithm-3 polar grid for the points' dimension. *)

val guarantee : gamma:int -> m:int -> float
(** The regret bound of {!build_grid}: [1 − c] with Theorem 4's [c] —
    i.e. [Discretize.theorem4_bound ~eps:0.]. *)
