open Rrms_geom

let kth_score ~k w points =
  let n = Array.length points in
  if k < 1 || k > n then invalid_arg "Kregret.kth_score: k out of range";
  (* Partial selection: keep the k largest scores in a small insertion
     buffer — O(n·k), fine for the small k this extension targets. *)
  let top = Array.make k neg_infinity in
  Array.iter
    (fun p ->
      let s = Vec.dot w p in
      if s > top.(k - 1) then begin
        (* insert into the sorted (descending) buffer *)
        let pos = ref (k - 1) in
        while !pos > 0 && top.(!pos - 1) < s do
          top.(!pos) <- top.(!pos - 1);
          decr pos
        done;
        top.(!pos) <- s
      end)
    points;
  top.(k - 1)

let for_function ~k ~points ~selected w =
  if Array.length selected = 0 then
    invalid_arg "Kregret.for_function: empty selection";
  let target = kth_score ~k w points in
  if target <= 0. then 0.
  else begin
    let best_sel = ref neg_infinity in
    Array.iter
      (fun i ->
        let s = Vec.dot w points.(i) in
        if s > !best_sel then best_sel := s)
      selected;
    Float.max 0. ((target -. !best_sel) /. target)
  end

let sampled ~k ~points ~selected ~funcs =
  Array.fold_left
    (fun acc w -> Float.max acc (for_function ~k ~points ~selected w))
    0. funcs

let layered_sampled ~points ~layers ~funcs ~k =
  if k < 1 then invalid_arg "Kregret.layered_sampled: k must be >= 1";
  let upto = min k (Array.length layers) in
  let union = Array.concat (Array.to_list (Array.sub layers 0 upto)) in
  if Array.length union = 0 then 1.
  else
    Array.fold_left
      (fun acc w ->
        let target = kth_score ~k w points in
        if target <= 0. then acc
        else begin
          (* k-th best answer served from the layer union *)
          let kk = min k (Array.length union) in
          let sel_points = Array.map (fun i -> points.(i)) union in
          let served = kth_score ~k:kk w sel_points in
          Float.max acc (Float.max 0. ((target -. served) /. target))
        end)
      0. funcs
