(** Approximate convex hulls à la Bentley–Preparata–Faust (CACM'82),
    for the "adopting the state-of-the-art" experiment of §6.3.

    BPF partitions one axis into [k] strips and keeps, per strip, only
    the extreme points — an O(n) ε-approximate hull with ε = 1/k.  The
    paper implements it to show that approximate-hull methods do {e not}
    solve the compact-representative problem: their output approximates
    the hull's {e shape} and is typically a {e superset} of the hull
    vertex set, so it is larger, not smaller, than the thing one wanted
    to shrink. *)

val maxima_hull_2d : strips:int -> Rrms_geom.Vec.t array -> int array
(** 2D BPF restricted to the maxima (upper-right) hull: [strips] strips
    over A₁; per non-empty strip keep the maximum-A₂ point; always
    include the global A₁ and A₂ maxima.  Error bound: every point is
    within [max A₁ / strips] (in A₁) of a kept point that is at least as
    good in A₂.  @raise Invalid_argument if [strips < 1] or empty. *)

val maxima_hull_nd : grid:int -> Rrms_geom.Vec.t array -> int array
(** The high-dimensional extension: grid the first [m-1] attributes with
    [grid] cells per axis and keep the best last-attribute point of each
    non-empty cell plus the per-attribute maxima. *)
