(** Sweeping-Line: the quadratic exact 2D baseline of Chester et al.
    (VLDB'14), reconstructed from the paper's description (§6.1).

    The algorithm works in the dual space: every tuple maps to a line
    over the ranking-function angle, and the O(n²) pairwise intersections
    of these lines are where the ranking of two tuples swaps.  Sweeping
    those events yields, for every tuple, the (possibly empty) angle
    interval on which it is the database maximum — the level-0 of the
    dual arrangement.  The optimal set is then found by a plain
    quadratic min-max path DP over the ordered skyline, with edge
    weights read off the precomputed winner intervals.

    Faithfulness note (DESIGN.md §4): the pairwise O(n²) dual
    intersection pass over {e all} tuples dominates the cost, making the
    running time quadratic in [n] and independent of the attribute
    correlation — the two properties every 2D figure of the paper relies
    on — while the result is exactly optimal, like the original.  It is
    also implemented independently of {!Rrms2d} (no shared hull or DP
    code), so the two exact algorithms cross-validate each other. *)

type result = {
  selected : int array;  (** chosen tuples, indices into the input *)
  dp_value : float;  (** optimal max-gap value found by the DP *)
  regret : float;  (** [E(selected)] recomputed by {!Regret.exact_2d} *)
}

val winner_intervals : Rrms_geom.Vec.t array -> (int * float * float) array
(** The level-0 arrangement: for every tuple that is maximal for some
    angle, its [(index, lo, hi)] winning interval over φ ∈ \[0, π/2\],
    sorted by [lo].  Computed by the O(n²) pairwise pass; exposed for
    tests (the intervals must tile \[0, π/2\] and agree with
    {!Rrms_geom.Hull2d}). *)

val solve : Rrms_geom.Vec.t array -> r:int -> result
(** Optimal RRMS by the reconstruction above.  O(n² + r·s²).
    @raise Invalid_argument if [r < 1] or the input is empty/non-2D. *)
