let maxima_hull_2d ~strips points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Approx_hull.maxima_hull_2d: empty input";
  if strips < 1 then invalid_arg "Approx_hull.maxima_hull_2d: strips < 1";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then
        invalid_arg "Approx_hull.maxima_hull_2d: dimension <> 2")
    points;
  let max_x = Array.fold_left (fun acc p -> Float.max acc p.(0)) 0. points in
  let strip_of p =
    if max_x <= 0. then 0
    else min (strips - 1) (int_of_float (p.(0) /. max_x *. float_of_int strips))
  in
  let best = Array.make strips (-1) in
  let gx = ref 0 and gy = ref 0 in
  Array.iteri
    (fun i p ->
      let s = strip_of p in
      if best.(s) < 0 || p.(1) > points.(best.(s)).(1) then best.(s) <- i;
      if p.(0) > points.(!gx).(0) then gx := i;
      if p.(1) > points.(!gy).(1) then gy := i)
    points;
  let chosen = Hashtbl.create strips in
  Array.iter (fun i -> if i >= 0 then Hashtbl.replace chosen i ()) best;
  Hashtbl.replace chosen !gx ();
  Hashtbl.replace chosen !gy ();
  let out = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
  Array.of_list (List.sort compare out)

let maxima_hull_nd ~grid points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Approx_hull.maxima_hull_nd: empty input";
  if grid < 1 then invalid_arg "Approx_hull.maxima_hull_nd: grid < 1";
  let m = Array.length points.(0) in
  let maxes = Array.make m 0. in
  Array.iter
    (fun p ->
      for d = 0 to m - 1 do
        if p.(d) > maxes.(d) then maxes.(d) <- p.(d)
      done)
    points;
  let cell_of p =
    let id = ref 0 in
    for d = 0 to m - 2 do
      let scaled = if maxes.(d) > 0. then p.(d) /. maxes.(d) else 0. in
      let c = min (grid - 1) (int_of_float (scaled *. float_of_int grid)) in
      id := (!id * grid) + c
    done;
    !id
  in
  let best_in_cell : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i p ->
      let c = cell_of p in
      match Hashtbl.find_opt best_in_cell c with
      | Some j when points.(j).(m - 1) >= p.(m - 1) -> ()
      | Some _ | None -> Hashtbl.replace best_in_cell c i)
    points;
  let chosen = Hashtbl.create 64 in
  Hashtbl.iter (fun _ i -> Hashtbl.replace chosen i ()) best_in_cell;
  for d = 0 to m - 1 do
    let b = ref 0 in
    for i = 1 to n - 1 do
      if points.(i).(d) > points.(!b).(d) then b := i
    done;
    Hashtbl.replace chosen !b ()
  done;
  let out = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
  Array.of_list (List.sort compare out)
