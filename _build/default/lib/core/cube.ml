type result = { selected : int array; t_parameter : int }

let solve points ~r =
  let n = Array.length points in
  if n = 0 then invalid_arg "Cube.solve: empty input";
  let m = Array.length points.(0) in
  if r < m then invalid_arg "Cube.solve: r must be >= m";
  let budget = r - (m - 1) in
  let t =
    if m = 2 then budget
    else
      int_of_float (Float.floor (float_of_int budget ** (1. /. float_of_int (m - 1))))
  in
  let t = max 1 t in
  (* Per-attribute maxima of the first m-1 attributes. *)
  let chosen = Hashtbl.create 16 in
  for d = 0 to m - 2 do
    let best = ref 0 in
    for i = 1 to n - 1 do
      if points.(i).(d) > points.(!best).(d) then best := i
    done;
    Hashtbl.replace chosen !best ()
  done;
  (* Grid cell of a tuple on the first m-1 attributes, scaled by the
     column maxima. *)
  let maxes = Array.make (m - 1) 0. in
  Array.iter
    (fun p ->
      for d = 0 to m - 2 do
        if p.(d) > maxes.(d) then maxes.(d) <- p.(d)
      done)
    points;
  let cell_of p =
    let id = ref 0 in
    for d = 0 to m - 2 do
      let scaled = if maxes.(d) > 0. then p.(d) /. maxes.(d) else 0. in
      let c = min (t - 1) (int_of_float (scaled *. float_of_int t)) in
      id := (!id * t) + c
    done;
    !id
  in
  (* Best last-attribute tuple per non-empty cell. *)
  let best_in_cell : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i p ->
      let c = cell_of p in
      match Hashtbl.find_opt best_in_cell c with
      | Some j when points.(j).(m - 1) >= p.(m - 1) -> ()
      | Some _ | None -> Hashtbl.replace best_in_cell c i)
    points;
  Hashtbl.iter (fun _ i -> Hashtbl.replace chosen i ()) best_in_cell;
  (* Trim to r if cell maxima plus attribute maxima overflow (possible
     when t^(m-1) > budget due to flooring interplay): keep attribute
     maxima and the best cells by last-attribute value. *)
  let all = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
  let all = List.sort (fun a b -> Float.compare points.(b).(m - 1) points.(a).(m - 1)) all in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  { selected = Array.of_list (take r all); t_parameter = t }

let bound ~m ~t =
  if m < 2 then invalid_arg "Cube.bound: m must be >= 2";
  if t < 1 then invalid_arg "Cube.bound: t must be >= 1";
  float_of_int (m - 1) /. float_of_int (t + m - 1)
