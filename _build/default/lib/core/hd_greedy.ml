type result = { selected : int array; discretized_regret : float }

let solve ?(gamma = 4) ?funcs points ~r =
  if r < 1 then invalid_arg "Hd_greedy.solve: r must be >= 1";
  if Array.length points = 0 then invalid_arg "Hd_greedy.solve: empty input";
  let m = Array.length points.(0) in
  let funcs =
    match funcs with Some f -> f | None -> Discretize.grid ~gamma ~m
  in
  let sky = Rrms_skyline.Skyline.sfs points in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let matrix = Regret_matrix.build ~points:sky_points ~funcs in
  let s = Array.length sky and k = Array.length funcs in
  let current = Array.make k infinity in
  let chosen = Array.make s false in
  let selected = ref [] in
  let steps = min r s in
  for _ = 1 to steps do
    (* Pick the row minimizing the resulting max over columns of the
       min of current coverage and the row's cells. *)
    let best_row = ref (-1) and best_val = ref infinity in
    for i = 0 to s - 1 do
      if not chosen.(i) then begin
        let worst = ref 0. in
        for f = 0 to k - 1 do
          let v = Float.min current.(f) (Regret_matrix.get matrix i f) in
          if v > !worst then worst := v
        done;
        if !worst < !best_val then begin
          best_val := !worst;
          best_row := i
        end
      end
    done;
    let i = !best_row in
    chosen.(i) <- true;
    selected := i :: !selected;
    for f = 0 to k - 1 do
      current.(f) <- Float.min current.(f) (Regret_matrix.get matrix i f)
    done
  done;
  let rows = Array.of_list (List.rev !selected) in
  {
    selected = Array.map (fun i -> sky.(i)) rows;
    discretized_regret = Regret_matrix.regret_of_rows matrix rows;
  }
