open Rrms_geom

type t = {
  points : Vec.t array;
  layers : int array array; (* indices into [points], chain order *)
  hulls : Hull2d.t array; (* the layer hulls, for O(log c) top-1 *)
  layer_maps : int array array; (* hull-local index -> original index *)
  exhaustive : bool;
}

let build ?max_layers points =
  if Array.length points = 0 then invalid_arg "Onion.build: empty input";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then invalid_arg "Onion.build: dimension <> 2")
    points;
  let limit = match max_layers with Some l -> max 1 l | None -> max_int in
  let layers = ref [] and hulls = ref [] and maps = ref [] in
  (* [remaining] maps positions of the current sub-array back to the
     original indices. *)
  let remaining = ref (Array.init (Array.length points) Fun.id) in
  let count = ref 0 in
  while Array.length !remaining > 0 && !count < limit do
    let sub = Array.map (fun i -> points.(i)) !remaining in
    let hull = Hull2d.build sub in
    let local = Hull2d.vertices hull in
    let representatives = Array.map (fun li -> !remaining.(li)) local in
    (* A layer holds every remaining tuple whose coordinates sit on the
       hull — duplicates score identically to their representative, so
       they belong to the same layer (and must not linger in
       [remaining] forever). *)
    let on_layer = Hashtbl.create 16 in
    Array.iter
      (fun i -> Hashtbl.replace on_layer (points.(i).(0), points.(i).(1)) ())
      representatives;
    let members, rest =
      Array.to_seq !remaining
      |> Seq.partition (fun i ->
             Hashtbl.mem on_layer (points.(i).(0), points.(i).(1)))
    in
    layers := Array.of_seq members :: !layers;
    hulls := hull :: !hulls;
    maps := representatives :: !maps;
    remaining := Array.of_seq rest;
    incr count
  done;
  {
    points;
    layers = Array.of_list (List.rev !layers);
    hulls = Array.of_list (List.rev !hulls);
    layer_maps = Array.of_list (List.rev !maps);
    exhaustive = Array.length !remaining = 0;
  }

let depth t = Array.length t.layers
let layer t i = Array.copy t.layers.(i)
let layer_sizes t = Array.map Array.length t.layers

let size_upto t k =
  let acc = ref 0 in
  for i = 0 to min k (depth t) - 1 do
    acc := !acc + Array.length t.layers.(i)
  done;
  !acc

let exhaustive t = t.exhaustive

let check_weight w =
  if Array.length w <> 2 then invalid_arg "Onion: weight vector not 2D";
  if w.(0) < 0. || w.(1) < 0. || (w.(0) = 0. && w.(1) = 0.) then
    invalid_arg "Onion: weights must be non-negative and non-zero"

let top1 t w =
  check_weight w;
  let phi = Polar.angle_2d w in
  let hull = t.hulls.(0) in
  let local = Hull2d.max_index_at hull phi in
  t.layer_maps.(0).(local)

let topk t w ~k =
  check_weight w;
  if k < 1 then invalid_arg "Onion.topk: k must be >= 1";
  if (not t.exhaustive) && k > depth t then
    invalid_arg "Onion.topk: truncated index too shallow for this k";
  let upto = min k (depth t) in
  let pool = ref [] in
  for i = 0 to upto - 1 do
    Array.iter (fun idx -> pool := idx :: !pool) t.layers.(i)
  done;
  let arr = Array.of_list !pool in
  Array.sort
    (fun a b ->
      let c = Float.compare (Vec.dot w t.points.(b)) (Vec.dot w t.points.(a)) in
      if c <> 0 then c else compare a b)
    arr;
  if Array.length arr <= k then arr else Array.sub arr 0 k
