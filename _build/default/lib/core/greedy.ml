type seed = First_attribute | Best_singleton | All_seeds

type result = { selected : int array; regret_lp : float }

(* One greedy run from a fixed seed tuple. *)
let run_from ?eps ~candidates ~points ~r seed_idx =
  let n = Array.length points in
  let chosen = Hashtbl.create 16 in
  Hashtbl.replace chosen seed_idx ();
  let selected = ref [ seed_idx ] in
  let steps = min r n - 1 in
  for _ = 1 to steps do
    let set = Array.of_list (List.map (fun i -> points.(i)) !selected) in
    let best = ref (-1) and best_regret = ref neg_infinity in
    Array.iter
      (fun i ->
        if not (Hashtbl.mem chosen i) then begin
          let reg = Regret.point_regret_lp ?eps ~set points.(i) in
          if reg > !best_regret then begin
            best_regret := reg;
            best := i
          end
        end)
      candidates;
    if !best >= 0 then begin
      Hashtbl.replace chosen !best ();
      selected := !best :: !selected
    end
  done;
  Array.of_list (List.rev !selected)

let solve ?eps ?(restrict_to_skyline = false) ?(seed = First_attribute) points
    ~r =
  if r < 1 then invalid_arg "Greedy.solve: r must be >= 1";
  let n = Array.length points in
  if n = 0 then invalid_arg "Greedy.solve: empty input";
  let sky = lazy (Rrms_skyline.Skyline.sfs points) in
  let candidates =
    if restrict_to_skyline then Lazy.force sky else Array.init n Fun.id
  in
  let evaluate selected = Regret.exact_lp ?eps ~selected points in
  match seed with
  | First_attribute ->
      (* The published algorithm seeds with the maximum of the first
         attribute (§4.1 critiques exactly this choice). *)
      let first = ref 0 in
      for i = 1 to n - 1 do
        if points.(i).(0) > points.(!first).(0) then first := i
      done;
      let selected = run_from ?eps ~candidates ~points ~r !first in
      { selected; regret_lp = evaluate selected }
  | Best_singleton ->
      (* Seed with the skyline tuple that is the best one-tuple answer:
         one exact regret evaluation per skyline tuple. *)
      let sky = Lazy.force sky in
      let best = ref sky.(0) and best_regret = ref infinity in
      Array.iter
        (fun i ->
          let e = evaluate [| i |] in
          if e < !best_regret then begin
            best_regret := e;
            best := i
          end)
        sky;
      let selected = run_from ?eps ~candidates ~points ~r !best in
      { selected; regret_lp = evaluate selected }
  | All_seeds ->
      (* §6.2: rerun from every skyline seed; keep the best final set. *)
      let sky = Lazy.force sky in
      let best = ref None in
      Array.iter
        (fun s ->
          let selected = run_from ?eps ~candidates ~points ~r s in
          let e = evaluate selected in
          match !best with
          | Some (be, _) when be <= e -> ()
          | _ -> best := Some (e, selected))
        sky;
      (match !best with
      | Some (regret_lp, selected) -> { selected; regret_lp }
      | None -> assert false (* the skyline is never empty *))
