(** MRST — Minimum Rows Satisfying a Threshold (§4.4.1, Algorithm 5).

    Given the discretized regret matrix and a threshold ε, find the
    fewest rows such that every column has some selected row with cell
    value ≤ ε.  The reduction: threshold the matrix to 0/1, collapse
    duplicate rows, and solve set cover — exactly (branch and bound) for
    the theoretical algorithm, or with Chvátal's greedy for the
    practical one (§4.4.3). *)

type solver = Exact | Greedy

val solve : ?solver:solver -> Regret_matrix.t -> eps:float -> int array option
(** [solve matrix ~eps] returns row indices covering every column within
    [eps], of minimum (Exact) or near-minimum (Greedy, the default)
    cardinality; [None] when some column cannot be satisfied by any
    single row. *)
