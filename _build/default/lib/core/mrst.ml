open Rrms_setcover

type solver = Exact | Greedy

let solve ?(solver = Greedy) matrix ~eps =
  let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
  (* Threshold every row into the bitset of columns it satisfies, and
     collapse duplicate rows (Algorithm 5's dedup step), remembering one
     representative row per distinct bitset. *)
  let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 64 in
  let distinct = ref [] in
  for i = 0 to n - 1 do
    let b = Bitset.create k in
    for f = 0 to k - 1 do
      if Regret_matrix.get matrix i f <= eps then Bitset.set b f
    done;
    if (not (Bitset.is_empty b)) && not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b i;
      distinct := (i, b) :: !distinct
    end
  done;
  let pairs = Array.of_list (List.rev !distinct) in
  let sets = Array.map snd pairs in
  let instance = Setcover.make_instance ~universe:k sets in
  let cover =
    match solver with
    | Greedy -> Setcover.greedy instance
    | Exact -> Setcover.exact instance
  in
  Option.map (Array.map (fun si -> fst pairs.(si))) cover
