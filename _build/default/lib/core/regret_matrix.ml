open Rrms_geom

type t = {
  cells : float array array; (* rows x cols *)
  best : float array; (* per-column best database score *)
}

let build ~points ~funcs =
  let n = Array.length points and k = Array.length funcs in
  if n = 0 then invalid_arg "Regret_matrix.build: no points";
  if k = 0 then invalid_arg "Regret_matrix.build: no functions";
  let best = Array.make k 0. in
  for f = 0 to k - 1 do
    best.(f) <- Vec.max_score funcs.(f) points
  done;
  let cells =
    Array.init n (fun i ->
        Array.init k (fun f ->
            if best.(f) <= 0. then 0.
            else
              Float.max 0. ((best.(f) -. Vec.dot funcs.(f) points.(i)) /. best.(f))))
  in
  { cells; best }

let rows t = Array.length t.cells
let cols t = Array.length t.best
let get t i f = t.cells.(i).(f)
let column_best_score t f = t.best.(f)

let distinct_values t =
  let all = Array.concat (Array.to_list t.cells) in
  Array.sort Float.compare all;
  let count = ref 0 in
  Array.iteri
    (fun i v -> if i = 0 || v <> all.(i - 1) then incr count)
    all;
  let out = Array.make !count 0. in
  let j = ref 0 in
  Array.iteri
    (fun i v ->
      if i = 0 || v <> all.(i - 1) then begin
        out.(!j) <- v;
        incr j
      end)
    all;
  out

let regret_of_rows t rs =
  if Array.length rs = 0 then
    invalid_arg "Regret_matrix.regret_of_rows: empty row set";
  let k = cols t in
  let worst = ref 0. in
  for f = 0 to k - 1 do
    let best = ref infinity in
    Array.iter
      (fun i ->
        let v = t.cells.(i).(f) in
        if v < !best then best := v)
      rs;
    if !best > !worst then worst := !best
  done;
  !worst
