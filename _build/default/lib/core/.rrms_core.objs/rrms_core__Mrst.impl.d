lib/core/mrst.ml: Array Bitset Hashtbl List Option Regret_matrix Rrms_setcover Setcover
