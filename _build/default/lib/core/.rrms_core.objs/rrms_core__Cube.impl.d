lib/core/cube.ml: Array Float Hashtbl List
