lib/core/cube.mli: Rrms_geom
