lib/core/topk.ml: Array Float Fun Hashtbl List Rrms_geom Vec
