lib/core/discretize.ml: Array Float Polar Printf Rrms_geom Rrms_rng Vec
