lib/core/dynamic2d.ml: Array Float Rrms2d Rrms_geom Vec
