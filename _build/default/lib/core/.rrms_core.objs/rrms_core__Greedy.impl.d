lib/core/greedy.ml: Array Fun Hashtbl Lazy List Regret Rrms_skyline
