lib/core/rrms2d.ml: Array Float Fun Hull2d List Polar Regret Rrms_geom Rrms_skyline Vec
