lib/core/onion.ml: Array Float Fun Hashtbl Hull2d List Polar Rrms_geom Seq Vec
