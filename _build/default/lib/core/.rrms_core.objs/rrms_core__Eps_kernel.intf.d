lib/core/eps_kernel.mli: Rrms_geom
