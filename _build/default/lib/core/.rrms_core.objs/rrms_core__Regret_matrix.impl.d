lib/core/regret_matrix.ml: Array Float Rrms_geom Vec
