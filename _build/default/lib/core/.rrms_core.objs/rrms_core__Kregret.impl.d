lib/core/kregret.ml: Array Float Rrms_geom Vec
