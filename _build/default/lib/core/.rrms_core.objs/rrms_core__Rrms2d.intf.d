lib/core/rrms2d.mli: Rrms_geom
