lib/core/discretize.mli: Rrms_geom Rrms_rng
