lib/core/topk.mli: Rrms_geom
