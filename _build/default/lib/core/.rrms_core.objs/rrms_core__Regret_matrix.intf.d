lib/core/regret_matrix.mli: Rrms_geom
