lib/core/approx_hull.mli: Rrms_geom
