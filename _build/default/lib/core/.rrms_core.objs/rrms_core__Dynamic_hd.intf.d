lib/core/dynamic_hd.mli: Rrms_geom
