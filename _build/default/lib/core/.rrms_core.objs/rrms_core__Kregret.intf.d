lib/core/kregret.mli: Rrms_geom
