lib/core/greedy.mli: Rrms_geom
