lib/core/sweepline.ml: Array Float Hashtbl List Polar Regret Rrms_geom Vec
