lib/core/eps_kernel.ml: Array Discretize Hashtbl List Rrms_geom
