lib/core/dynamic_hd.ml: Array Float Hd_rrms Regret Rrms_geom Rrms_skyline Vec
