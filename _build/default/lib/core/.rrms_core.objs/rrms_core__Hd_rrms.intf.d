lib/core/hd_rrms.mli: Mrst Regret_matrix Rrms_geom
