lib/core/hd_greedy.ml: Array Discretize Float List Regret_matrix Rrms_skyline
