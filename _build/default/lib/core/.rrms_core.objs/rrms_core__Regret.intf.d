lib/core/regret.mli: Rrms_geom
