lib/core/dynamic2d.mli: Rrms_geom
