lib/core/hd_greedy.mli: Rrms_geom
