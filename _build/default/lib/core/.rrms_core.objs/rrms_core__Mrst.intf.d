lib/core/mrst.mli: Regret_matrix
