lib/core/approx_hull.ml: Array Float Hashtbl List
