lib/core/sweepline.mli: Rrms_geom
