lib/core/regret.ml: Array Float Fun Hashtbl Hull2d List Polar Rrms_geom Rrms_lp Rrms_skyline Vec
