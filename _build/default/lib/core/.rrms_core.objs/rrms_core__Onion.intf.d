lib/core/onion.mli: Rrms_geom
