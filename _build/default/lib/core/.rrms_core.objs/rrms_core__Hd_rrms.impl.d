lib/core/hd_rrms.ml: Array Discretize Mrst Regret_matrix Rrms_skyline
