(** CUBE: the discretization baseline of Nanongkai et al. (VLDB'10)
    (§1.1, "a simple space discretization approach").

    CUBE partitions the domain of the first [m-1] attributes into
    [t = ⌊(r - m + 1)^(1/(m-1))⌋] equal intervals, keeps the tuple with
    the largest m-th attribute inside every grid cell, and adds the
    per-attribute maxima of the first [m-1] attributes.  Its regret
    bound is input-size independent but weak in practice; it completes
    the set of published competitors. *)

type result = {
  selected : int array;  (** indices into the input; at most [r] *)
  t_parameter : int;  (** the grid resolution used *)
}

val solve : Rrms_geom.Vec.t array -> r:int -> result
(** @raise Invalid_argument if [r < m] (CUBE needs at least the [m-1]
    attribute maxima plus one cell) or the input is empty. *)

val bound : m:int -> t:int -> float
(** CUBE's published guarantee (Nanongkai et al., Theorem 1): on data
    normalized to \[0,1\] per attribute, the maximum regret ratio of
    the CUBE output with grid resolution [t] is at most
    [(m - 1) / (t + m - 1)] — independent of the input size [n], which
    is the property the paper credits it with (§7).
    @raise Invalid_argument if [m < 2] or [t < 1]. *)
