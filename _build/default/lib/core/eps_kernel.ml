let build ~funcs points =
  if Array.length points = 0 then invalid_arg "Eps_kernel.build: no points";
  if Array.length funcs = 0 then invalid_arg "Eps_kernel.build: no functions";
  let seen = Hashtbl.create 64 in
  let kept = ref [] in
  Array.iter
    (fun w ->
      let i = Rrms_geom.Vec.max_score_index w points in
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        kept := i :: !kept
      end)
    funcs;
  Array.of_list (List.rev !kept)

let build_grid ~gamma points =
  if Array.length points = 0 then invalid_arg "Eps_kernel.build_grid: no points";
  let m = Array.length points.(0) in
  build ~funcs:(Discretize.grid ~gamma ~m) points

let guarantee ~gamma ~m = Discretize.theorem4_bound ~gamma ~m ~eps:0.
