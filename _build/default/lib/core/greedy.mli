(** GREEDY: the LP-based baseline of Nanongkai et al. (VLDB'10),
    re-implemented as the paper's primary high-dimensional competitor
    (§4.1, §6.1).

    Start from a seed tuple; then repeatedly add the tuple whose
    worst-case regret with respect to the current selection is largest,
    where each candidate's regret is an LP
    ({!Regret.point_regret_lp}).  Runs O(n·r) LPs, which is what makes
    it slow at scale (Figures 13–15); §4.1 also shows its regret can be
    arbitrarily worse than optimal ({!Rrms_dataset} provides the
    gadget).

    The paper traces much of GREEDY's observed regret to its seed — the
    published algorithm just takes the maximum of the first attribute —
    and sketches the obvious fixes in §6.2; all three are implemented: *)

type seed =
  | First_attribute
      (** the published rule: argmax of attribute 1 (§4.1's critique) *)
  | Best_singleton
      (** the skyline tuple with the smallest single-tuple regret
          (one LP per skyline tuple to seed) *)
  | All_seeds
      (** §6.2's brute-force fix: rerun greedy from every skyline seed
          and keep the best outcome — multiplies the cost by s *)

type result = {
  selected : int array;  (** indices into the input; exactly [min r n] *)
  regret_lp : float;
      (** exact maximum regret ratio of the selection
          ({!Regret.exact_lp}) *)
}

val solve :
  ?eps:float ->
  ?restrict_to_skyline:bool ->
  ?seed:seed ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r].  [seed] defaults to [First_attribute] (the
    published algorithm).  [restrict_to_skyline] (default [false],
    matching the published algorithm) evaluates candidate LPs only on
    skyline tuples — an easy speedup that does not change the selection
    except through tie-breaking, provided for the ablation benches.
    @raise Invalid_argument if [r < 1] or the input is empty. *)
