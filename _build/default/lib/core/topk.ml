open Rrms_geom

type layers = { layer_members : int array array; covered : int array array }

let build ~select ~probe_funcs ~k points =
  if k < 1 then invalid_arg "Topk.build: k must be >= 1";
  let members = Array.make k [||] in
  let covered = Array.make k [||] in
  (* [remaining] holds original indices of tuples still alive. *)
  let remaining = ref (Array.init (Array.length points) Fun.id) in
  (try
     for layer = 0 to k - 1 do
       if Array.length !remaining = 0 then raise Exit;
       let sub = Array.map (fun i -> points.(i)) !remaining in
       let picked_sub = select sub in
       let picked = Array.map (fun si -> !remaining.(si)) picked_sub in
       members.(layer) <- picked;
       let picked_points = Array.map (fun i -> points.(i)) picked in
       let in_picked = Hashtbl.create 16 in
       Array.iter (fun i -> Hashtbl.replace in_picked i ()) picked;
       (* A tuple is outside the layer's convex shape if some probe
          function ranks it above every selected tuple. *)
       let outside i =
         let p = points.(i) in
         Array.exists
           (fun w ->
             let score = Vec.dot w p in
             let best_sel =
               Array.fold_left
                 (fun acc q -> Float.max acc (Vec.dot w q))
                 neg_infinity picked_points
             in
             score > best_sel)
           probe_funcs
       in
       let removed = ref [] and kept = ref [] in
       Array.iter
         (fun i ->
           if Hashtbl.mem in_picked i || outside i then removed := i :: !removed
           else kept := i :: !kept)
         !remaining;
       covered.(layer) <- Array.of_list (List.rev !removed);
       remaining := Array.of_list (List.rev !kept)
     done
   with Exit -> ());
  { layer_members = members; covered }

let topk_from_layers points l w ~k =
  let pool = ref [] in
  let upto = min k (Array.length l.layer_members) in
  for layer = 0 to upto - 1 do
    Array.iter (fun i -> pool := i :: !pool) l.layer_members.(layer)
  done;
  let arr = Array.of_list !pool in
  Array.sort
    (fun a b -> Float.compare (Vec.dot w points.(b)) (Vec.dot w points.(a)))
    arr;
  if Array.length arr <= k then arr else Array.sub arr 0 k
