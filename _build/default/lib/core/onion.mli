(** ONION: layered maxima-hull indexing for 2D linear maxima queries
    (Chang et al., SIGMOD'00 — the index the paper's introduction
    motivates against).

    ONION peels the database into layers: layer 1 is the maxima hull of
    all tuples, layer 2 the maxima hull of the rest, and so on.  Because
    every tuple below a layer's chain scores below that layer's envelope
    for {e every} non-negative weight vector, the top-k answers of any
    such query lie within the first k layers, so ONION answers top-k
    {e exactly} — at the cost of storing whole hulls per layer.  The
    RRMS sets of this library are the competing design point: a fixed
    budget of [r] tuples with a bounded, non-zero regret.  The
    [onion] bench contrasts the two (index size vs answer quality).

    Only [m = 2] is supported (the paper's own ONION experiments are
    low-dimensional; peeling uses {!Rrms_geom.Hull2d}). *)

type t

val build : ?max_layers:int -> Rrms_geom.Vec.t array -> t
(** Peel up to [max_layers] (default: until exhausted) maxima-hull
    layers.  O(L·n·log n).
    @raise Invalid_argument on empty or non-2D input. *)

val depth : t -> int
(** Number of layers actually built. *)

val layer : t -> int -> int array
(** [layer t i] = members of the i-th layer (0-based), as indices into
    the original input, in chain order.  Fresh copy. *)

val layer_sizes : t -> int array

val size_upto : t -> int -> int
(** [size_upto t k] = total tuples in the first [k] layers — the index
    footprint needed to guarantee exact top-[k]. *)

val exhaustive : t -> bool
(** True when every input tuple was assigned a layer (no [max_layers]
    truncation), i.e. arbitrary-depth queries are answerable. *)

val top1 : t -> Rrms_geom.Vec.t -> int
(** Exact top-1 for non-negative weights, via an O(log c) binary search
    on layer 1's angle list.
    @raise Invalid_argument if the weight vector is not 2D or is 0. *)

val topk : t -> Rrms_geom.Vec.t -> k:int -> int array
(** Exact top-k for non-negative weights: gathers the first [k] layers
    and selects the [k] best (ties broken by smaller input index).
    Returns fewer than [k] when the whole database is smaller; raises
    [Invalid_argument] if [k] exceeds the built depth on a truncated
    index ([exhaustive t = false] and [k > depth t]) since exactness
    could not be guaranteed. *)
