(** 2D-RRMS: the paper's 2D algorithm (§3), in two variants.

    The skyline of a 2D database is totally ordered (top-left to
    bottom-right).  Selecting [r] representatives splits it into gaps
    between consecutive selected tuples; the paper models the problem as
    a min-max path search over these gaps and solves it by dynamic
    programming, evaluating each gap's weight with one binary search
    over the hull's sorted angle list ℓ (Algorithm 1) and each DP cell
    with one binary search over successors (Algorithm 2), for
    O(r·s·log s·log c) total.

    {b Reproduction finding.}  Two of the paper's structural claims do
    not hold in general, and both are exercised by random anti-correlated
    data (see the tests):

    - {e Algorithm 1's zero case}: when the maximizer at the tie angle
      of [(tᵢ, tⱼ)] falls outside the gap, the algorithm returns weight
      0 — but removed hull vertices inside the gap can still carry
      positive regret, whose worst angle then lies elsewhere in the
      gap's angle range (Theorem 2 locates the supremum at the tie
      angle only when that angle belongs to the range).
    - {e Property 1} (w(tᵢ,tⱼ) ≤ w(tᵢ,tⱼ₊₁)): enlarging a gap moves its
      right endpoint to a tuple with a larger A₁, which is a strictly
      better alternative for the A₁-heavy worst-case functions, so the
      weight can {e decrease}.  The successor binary search of
      Algorithm 2 therefore has no monotone structure to exploit and
      can return a slightly sub-optimal path.

    Accordingly {!solve} implements the published algorithm verbatim
    (linearithmic; regret within a few percent of optimal empirically),
    while {!solve_exact} fixes both issues — the clamped-tie-angle gap
    weights (still O(log c) each) and a full successor scan — at
    O(r·s²·log c) cost, and matches brute force on every tested
    instance. *)

type ctx
(** Preprocessed database: skyline order, maxima hull and angle list. *)

val make_ctx : Rrms_geom.Vec.t array -> ctx
(** @raise Invalid_argument on empty or non-2D input. *)

val skyline_order : ctx -> int array
(** Indices into the original points of the skyline, top-left →
    bottom-right (the paper's t₁ … tₛ).  Fresh copy. *)

val skyline_size : ctx -> int

val edge_weight : ctx -> int -> int -> float
(** [edge_weight ctx i j] is Algorithm 1's w(tᵢ, tⱼ) exactly as
    published: the regret at the tie angle of [(tᵢ, tⱼ)] when the hull
    maximizer at that angle lies inside the gap, 0 otherwise.
    Positions are 0-based skyline positions; [i = -1] denotes the dummy
    t₀ and [j = skyline_size ctx] the dummy t₊.  O(log c).
    @raise Invalid_argument unless [-1 <= i < j <= s]. *)

val edge_weight_exact : ctx -> int -> int -> float
(** The corrected gap weight: the exact supremum, over the angle range
    [θL, θR] on which some removed hull vertex is the database maximum,
    of the regret of answering from [{tᵢ, tⱼ}].  Monotonicity analysis
    (the regret against tᵢ rises with the angle, against tⱼ falls)
    places the supremum at the tie angle of [(tᵢ, tⱼ)] {e clamped into}
    [θL, θR] — the one-token fix to Algorithm 1's zero case — computable
    with a single O(log c) envelope query.
    Always [>= edge_weight ctx i j]. *)

type result = {
  selected : int array;
      (** chosen tuples as indices into the original input, in skyline
          order; at most [r] of them *)
  dp_value : float;
      (** the DP objective: the largest gap weight along the chosen
          path (an upper bound on the selection's true regret) *)
  regret : float;
      (** [E(selected)] recomputed independently by {!Regret.exact_2d} —
          always [<= dp_value] *)
}

val solve : ?ctx:ctx -> Rrms_geom.Vec.t array -> r:int -> result
(** The published 2D-RRMS (Algorithms 1 + 2): O(r·s·log s·log c) after
    skyline computation.  Optimal whenever the paper's monotonicity
    assumptions hold on the instance; within a few percent of optimal
    otherwise (see module preamble).  [ctx] avoids recomputing the
    skyline/hull when solving repeatedly on the same data.
    @raise Invalid_argument if [r < 1]. *)

val solve_exact : ?ctx:ctx -> Rrms_geom.Vec.t array -> r:int -> result
(** The corrected exact variant: {!edge_weight_exact} plus a full
    successor scan, O(r·s²·log c).  Returns a truly optimal set (the
    DP objective upper-bounds every selection's regret and is tight on
    an optimal path; validated against brute force in the tests). *)

val solve_brute_force : Rrms_geom.Vec.t array -> r:int -> result
(** Reference implementation: enumerate every subset of exactly
    [min r s] skyline tuples and evaluate each with {!Regret.exact_2d}.
    Exponential; for tests and the baseline discussion of §3.2. *)
