(** k-regret ratios (Chester et al., VLDB'14 — the generalization the
    paper's §5.1/§7 discuss).

    The 1-regret ratio compares the compact set's best answer to the
    database's best; the {e k-regret ratio} compares it to the
    database's k-th best:

    {v krr(C, w, k) = max(0, (kth_D(w) − max_C(w)) / kth_D(w)) v}

    so a set has small k-regret when its top answer is at least
    competitive with the k-th true answer — a weaker, often much easier
    target.  Exact maximization over all weight vectors would need the
    k-level of the dual arrangement, so this module evaluates over a
    supplied function sample (use {!Discretize.grid}), which matches how
    the k-regret literature evaluates in higher dimensions. *)

val kth_score : k:int -> Rrms_geom.Vec.t -> Rrms_geom.Vec.t array -> float
(** [kth_score ~k w points] is the k-th largest score under [w].
    O(n·k).  @raise Invalid_argument unless [1 <= k <= n]. *)

val for_function :
  k:int ->
  points:Rrms_geom.Vec.t array ->
  selected:int array ->
  Rrms_geom.Vec.t ->
  float
(** The k-regret ratio of [selected] for one weight vector.
    @raise Invalid_argument if the selection is empty or [k] is out of
    range. *)

val sampled :
  k:int ->
  points:Rrms_geom.Vec.t array ->
  selected:int array ->
  funcs:Rrms_geom.Vec.t array ->
  float
(** Maximum k-regret ratio over the function sample.  For [k = 1] this
    is {!Regret.sampled}. *)

val layered_sampled :
  points:Rrms_geom.Vec.t array ->
  layers:int array array ->
  funcs:Rrms_geom.Vec.t array ->
  k:int ->
  float
(** The §5.1 promise, measured: serve top-k queries from the union of
    the first [k] layers (e.g. {!Topk.build}'s output) and report the
    worst ratio between the k-th served answer and the true k-th
    answer, over the function sample. *)
