(** Top-k extension (§5.1): layered compact sets.

    To serve top-k queries (not just top-1) the paper proposes an
    iterative construction: compute a compact maxima set over the
    remaining tuples, remove both the selected tuples and every tuple
    that would "stick out" of the convex shape they form (i.e. beats the
    whole layer on some ranking function — those tuples belong to the
    layer's coverage, like ONION's hull layers), and repeat k times.
    The i-th query answer can then be taken from the first i layers. *)

type layers = {
  layer_members : int array array;
      (** [layer_members.(i)] = tuples selected for layer i (indices
          into the original input) *)
  covered : int array array;
      (** [covered.(i)] = tuples removed with layer i (selected or
          outside its convex shape) *)
}

val build :
  select:(Rrms_geom.Vec.t array -> int array) ->
  probe_funcs:Rrms_geom.Vec.t array ->
  k:int ->
  Rrms_geom.Vec.t array ->
  layers
(** [build ~select ~probe_funcs ~k points] runs [k] iterations.
    [select] is the single-layer algorithm on the remaining tuples
    (returning indices {e into the array it is given}); a tuple is
    outside the layer's shape when some probe function scores it above
    every selected tuple.  Stops early when no tuples remain; trailing
    layers are then empty.
    @raise Invalid_argument if [k < 1]. *)

val topk_from_layers :
  Rrms_geom.Vec.t array -> layers -> Rrms_geom.Vec.t -> k:int -> int array
(** [topk_from_layers points l w ~k] answers a top-k query for weights
    [w] from the union of the first [k] layers, returning [k] tuple
    indices in decreasing score order (fewer if the layers hold fewer
    tuples). *)
