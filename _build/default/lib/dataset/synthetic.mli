(** Synthetic data generators.

    The correlated / independent / anti-correlated families follow the
    construction of Börzsönyi, Kossmann & Stocker (ICDE'01), the standard
    benchmark generator of the skyline literature and the one the paper
    uses (§6.1).  Attribute correlation is the main driver of skyline and
    convex-hull size, which in turn drives the algorithms' behaviour:

    - {e correlated}: tuples hug the main diagonal; tiny skyline.
    - {e independent}: uniform in the unit hypercube;
      skyline ≈ O((ln n)^(m-1)).
    - {e anti-correlated}: tuples hug the hyperplane Σxᵢ ≈ const with a
      large spread along it; most tuples are on the skyline.

    All generators are deterministic given the {!Rrms_rng.Rng.t}. *)

val independent : Rrms_rng.Rng.t -> n:int -> m:int -> Dataset.t
(** Uniform in [\[0,1\]^m]. *)

val correlated : ?sigma:float -> Rrms_rng.Rng.t -> n:int -> m:int -> Dataset.t
(** Each tuple is a common uniform base value plus per-attribute Gaussian
    jitter of standard deviation [sigma] (default 0.05), clamped to
    [\[0,1\]]. *)

val anticorrelated :
  ?spread:float -> Rrms_rng.Rng.t -> n:int -> m:int -> Dataset.t
(** Each tuple sits near the hyperplane [Σ xᵢ = m·v] for a base value [v]
    concentrated around 0.5, displaced along the plane by a zero-sum
    perturbation of magnitude up to [spread] (default 0.35), clamped to
    [\[0,1\]]. *)

val of_correlation :
  [ `Correlated | `Independent | `Anticorrelated ] ->
  Rrms_rng.Rng.t ->
  n:int ->
  m:int ->
  Dataset.t
(** Dispatch on the correlation model (used by the experiment harness). *)

val skyline_only_2d : Rrms_rng.Rng.t -> target:int -> Dataset.t
(** The paper's "skyline-only" workload (Figure 10): draw points uniformly
    from the positive quadrant of the unit disk and keep only the
    non-dominated ones, repeating until at least [target] skyline points
    exist; the result is trimmed to exactly [target] tuples, every one of
    which is on the skyline of the result. *)

val in_polygon : Rrms_rng.Rng.t -> vertices:(float * float) array -> n:int -> Dataset.t
(** Uniform points inside a convex polygon with the given vertices (in
    order).  Reproduces the "curvature" discussion of §1: a k-gon yields
    an expected hull of O(k log n) while a disk yields O(n^⅓).
    @raise Invalid_argument if fewer than 3 vertices or any coordinate is
    negative. *)

val in_quarter_disk : Rrms_rng.Rng.t -> n:int -> Dataset.t
(** Uniform points in the positive quadrant of the unit disk. *)

val greedy_pathological : epsilon:float -> extra:int -> Rrms_rng.Rng.t -> Dataset.t
(** The §4.1 gadget showing GREEDY can be arbitrarily bad: the 3D points
    [e₁, e₂, e₃, (1-ε, 1-ε, 1-ε)] plus [extra] filler points uniform in
    [\[0, 1-ε)³].  With [r = 3], GREEDY picks the three unit vectors
    (regret 1 - 2ε ≈ 1) while the optimal set achieves ε. *)
