let clamp lo hi v = Float.min hi (Float.max lo v)

(* Rough US domestic flight-length distribution: a short-haul bulk, a
   mid-haul shoulder and a transcontinental tail, in miles. *)
let sample_distance rng =
  let u = Rrms_rng.Rng.float rng 1. in
  if u < 0.55 then Rrms_rng.Rng.uniform rng 150. 800.
  else if u < 0.9 then Rrms_rng.Rng.uniform rng 800. 2000.
  else Rrms_rng.Rng.uniform rng 2000. 2800.

let airline rng ~n =
  (* Elapsed time is lower-is-better, so it is flipped against a 600-min
     cap at generation (like the DOT delays): a maxima query then seeks
     the long-distance, short-duration trade-off curve, which gives the
     non-trivial skyline the 2D experiments need. *)
  let cap = 600. in
  let data =
    Array.init n (fun _ ->
        let distance = sample_distance rng in
        (* Cruise ~470 mph plus ~40 min fixed overhead and noise. *)
        let elapsed =
          (distance /. 470. *. 60.) +. 40.
          +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:12.
        in
        [| cap -. clamp 20. cap elapsed; distance |])
  in
  Dataset.create ~name:"airline-sim"
    ~attributes:[| "actual_elapsed_time"; "distance" |]
    data

(* One draw from a mixture mimicking flight delays: most flights are
   on time, a minority have a heavy exponential tail. *)
let sample_delay rng ~p_late ~tail_mean =
  if Rrms_rng.Rng.float rng 1. < p_late then
    Rrms_rng.Rng.exponential rng ~rate:(1. /. tail_mean)
  else Float.abs (Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:3.)

let dot rng ~n =
  (* Flip caps chosen near real-data extremes so flipped values stay
     non-negative. *)
  let delay_cap = 600. in
  let data =
    Array.init n (fun _ ->
        let distance = sample_distance rng in
        let air_time =
          clamp 15. 500.
            ((distance /. 470. *. 60.)
            +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:8.)
        in
        let taxi_out =
          clamp 1. 120. (Rrms_rng.Rng.gaussian rng ~mean:16. ~stddev:6.)
        in
        let taxi_in =
          clamp 1. 60. (Rrms_rng.Rng.gaussian rng ~mean:7. ~stddev:3.)
        in
        let elapsed = air_time +. taxi_out +. taxi_in in
        let dep_delay = clamp 0. delay_cap (sample_delay rng ~p_late:0.35 ~tail_mean:28.) in
        (* Arrival delay tracks departure delay minus slack made up in
           the air, plus independent arrival noise. *)
        let arr_delay =
          clamp 0. delay_cap
            ((dep_delay *. 0.85)
            +. sample_delay rng ~p_late:0.2 ~tail_mean:15.
            -. Float.abs (Rrms_rng.Rng.gaussian rng ~mean:5. ~stddev:5.))
        in
        (* Higher is better: flip delay/taxi metrics. *)
        [|
          delay_cap -. dep_delay;
          120. -. taxi_out;
          60. -. taxi_in;
          elapsed;
          air_time;
          distance;
          delay_cap -. arr_delay;
        |])
  in
  Dataset.create ~name:"dot-sim"
    ~attributes:
      [|
        "dep_delay";
        "taxi_out";
        "taxi_in";
        "actual_elapsed_time";
        "air_time";
        "distance";
        "arrival_delay";
      |]
    data

let nba rng ~n =
  let data =
    Array.init n (fun _ ->
        (* Latent factors: availability, role size and scoring skill. *)
        let gp = float_of_int (1 + Rrms_rng.Rng.int rng 82) in
        let role = Rrms_rng.Rng.float rng 1. in
        (* Minutes per game grows with role; bench players cluster low. *)
        let mpg = clamp 2. 42. (4. +. (36. *. (role ** 1.3))
                                +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:3.) in
        let minutes = gp *. mpg in
        let usage = clamp 0.05 0.38 (0.12 +. (0.18 *. role)
                                     +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:0.04) in
        (* Per-36-minute attempt rates scaled by usage. *)
        let per36 = minutes /. 36. in
        let noise s = Float.max 0. (1. +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:s) in
        let fga = per36 *. usage *. 45. *. noise 0.15 in
        let three_share = Rrms_rng.Rng.float rng 0.5 in
        let tpa = fga *. three_share *. noise 0.3 in
        let fg_pct = clamp 0.3 0.65 (Rrms_rng.Rng.gaussian rng ~mean:0.46 ~stddev:0.05) in
        let tp_pct = clamp 0.2 0.45 (Rrms_rng.Rng.gaussian rng ~mean:0.34 ~stddev:0.05) in
        let fgm = fga *. fg_pct in
        let tpm = tpa *. tp_pct in
        let fta = fga *. clamp 0.1 0.6 (Rrms_rng.Rng.gaussian rng ~mean:0.3 ~stddev:0.1) in
        let ftm = fta *. clamp 0.4 0.95 (Rrms_rng.Rng.gaussian rng ~mean:0.76 ~stddev:0.08) in
        let pts = (2. *. (fgm -. tpm)) +. (3. *. tpm) +. ftm in
        let big = Rrms_rng.Rng.float rng 1. in (* size: bigs rebound/block *)
        let oreb = per36 *. (1. +. (3.5 *. big)) *. noise 0.3 in
        let dreb = per36 *. (2. +. (6. *. big)) *. noise 0.25 in
        let reb = oreb +. dreb in
        let asts = per36 *. (1. +. (7. *. (1. -. big) *. role)) *. noise 0.3 in
        let stl = per36 *. (0.5 +. (1.2 *. role)) *. noise 0.3 in
        let blk = per36 *. (0.2 +. (2.2 *. big *. role)) *. noise 0.4 in
        let turnover = (fga *. 0.18) +. (asts *. 0.25) *. noise 0.2 in
        let pf = per36 *. clamp 0.5 6. (Rrms_rng.Rng.gaussian rng ~mean:2.8 ~stddev:0.8) in
        let r v = Float.round (Float.max 0. v) in
        [|
          r pts; r reb; r asts; r stl; r blk; r minutes; gp; r oreb; r dreb;
          r turnover; r pf; r fga; r fgm; r fta; r ftm; r tpa; r tpm;
        |])
  in
  Dataset.create ~name:"nba-sim"
    ~attributes:
      [|
        "pts"; "reb"; "asts"; "stl"; "blk"; "minutes"; "gp"; "oreb"; "dreb";
        "turnover"; "pf"; "fga"; "fgm"; "fta"; "ftm"; "tpa"; "tpm";
      |]
    data
