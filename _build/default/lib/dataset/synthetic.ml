let clamp01 v = Float.min 1. (Float.max 0. v)

let attr_names m = Array.init m (fun j -> Printf.sprintf "a%d" (j + 1))

let independent rng ~n ~m =
  let data =
    Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  Dataset.create ~name:"independent" ~attributes:(attr_names m) data

let correlated ?(sigma = 0.05) rng ~n ~m =
  let data =
    Array.init n (fun _ ->
        let base = Rrms_rng.Rng.float rng 1. in
        Array.init m (fun _ ->
            clamp01 (base +. Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:sigma)))
  in
  Dataset.create ~name:"correlated" ~attributes:(attr_names m) data

let anticorrelated ?(spread = 0.6) rng ~n ~m =
  let data =
    Array.init n (fun _ ->
        let base =
          clamp01 (Rrms_rng.Rng.gaussian rng ~mean:0.5 ~stddev:0.05)
        in
        (* Zero-sum displacement keeps the tuple near the plane
           Σxᵢ = m·base while spreading it along the plane; the base
           jitter is kept small so the along-plane spread dominates and
           the pairwise correlation is strongly negative (≈ -0.9 in 2D
           at the default spread). *)
        let u = Array.init m (fun _ -> Rrms_rng.Rng.uniform rng (-1.) 1.) in
        let mean = Array.fold_left ( +. ) 0. u /. float_of_int m in
        Array.map (fun ui -> clamp01 (base +. (spread *. (ui -. mean)))) u)
  in
  Dataset.create ~name:"anticorrelated" ~attributes:(attr_names m) data

let of_correlation kind rng ~n ~m =
  match kind with
  | `Correlated -> correlated rng ~n ~m
  | `Independent -> independent rng ~n ~m
  | `Anticorrelated -> anticorrelated rng ~n ~m

let in_quarter_disk rng ~n =
  let data =
    Array.init n (fun _ ->
        (* Rejection sampling in the unit square: ~78% acceptance. *)
        let rec draw () =
          let x = Rrms_rng.Rng.float rng 1. and y = Rrms_rng.Rng.float rng 1. in
          if (x *. x) +. (y *. y) <= 1. then [| x; y |] else draw ()
        in
        draw ())
  in
  Dataset.create ~name:"quarter-disk" ~attributes:(attr_names 2) data

(* 2D dominance filter (kept local to avoid depending on the skyline
   library from below it): sort by x descending and sweep, keeping points
   of strictly increasing y. *)
let non_dominated_2d points =
  let idx = Array.init (Array.length points) (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare points.(j).(0) points.(i).(0) in
      if c <> 0 then c else Float.compare points.(j).(1) points.(i).(1))
    idx;
  let kept = ref [] and best_y = ref neg_infinity in
  Array.iter
    (fun i ->
      if points.(i).(1) > !best_y then begin
        kept := points.(i) :: !kept;
        best_y := points.(i).(1)
      end)
    idx;
  Array.of_list !kept

let skyline_only_2d rng ~target =
  if target <= 0 then invalid_arg "Synthetic.skyline_only_2d: target <= 0";
  (* The skyline of N points drawn uniformly from the disk interior is
     only Θ(N^⅓), so the paper's "draw from the unit circle and remove
     dominated points" recipe is only practical when the draws land near
     the arc.  We sample angles uniformly with a small inward radial
     jitter (so the surviving set is curved, with the convex hull a
     proper subset of the skyline) and dominance-filter until [target]
     skyline points remain. *)
  let draw_batch k =
    Array.init k (fun _ ->
        let theta = Rrms_rng.Rng.uniform rng 0. (Float.pi /. 2.) in
        let jitter = Float.abs (Rrms_rng.Rng.gaussian rng ~mean:0. ~stddev:0.002) in
        let radius = Float.max 0.98 (1. -. jitter) in
        [| radius *. cos theta; radius *. sin theta |])
  in
  let rec grow acc =
    if Array.length acc >= target then Array.sub acc 0 target
    else
      let batch = draw_batch (max 256 target) in
      grow (non_dominated_2d (Array.append acc batch))
  in
  let data = grow [||] in
  Dataset.create ~name:"skyline-only-2d" ~attributes:(attr_names 2) data

let in_polygon rng ~vertices ~n =
  let k = Array.length vertices in
  if k < 3 then invalid_arg "Synthetic.in_polygon: need >= 3 vertices";
  Array.iter
    (fun (x, y) ->
      if x < 0. || y < 0. then
        invalid_arg "Synthetic.in_polygon: negative coordinate")
    vertices;
  (* Fan triangulation from vertex 0, with triangles picked by area. *)
  let x0, y0 = vertices.(0) in
  let tri_area (ax, ay) (bx, by) =
    Float.abs (((ax -. x0) *. (by -. y0)) -. ((ay -. y0) *. (bx -. x0))) /. 2.
  in
  let areas =
    Array.init (k - 2) (fun i -> tri_area vertices.(i + 1) vertices.(i + 2))
  in
  let total = Array.fold_left ( +. ) 0. areas in
  if total <= 0. then invalid_arg "Synthetic.in_polygon: degenerate polygon";
  let pick_triangle () =
    let r = Rrms_rng.Rng.float rng total in
    let acc = ref 0. and chosen = ref (k - 3) in
    (try
       Array.iteri
         (fun i a ->
           acc := !acc +. a;
           if r < !acc then begin
             chosen := i;
             raise Exit
           end)
         areas
     with Exit -> ());
    !chosen
  in
  let data =
    Array.init n (fun _ ->
        let i = pick_triangle () in
        let ax, ay = vertices.(i + 1) and bx, by = vertices.(i + 2) in
        (* Uniform in a triangle via the reflection trick. *)
        let u = Rrms_rng.Rng.float rng 1. and v = Rrms_rng.Rng.float rng 1. in
        let u, v = if u +. v > 1. then (1. -. u, 1. -. v) else (u, v) in
        [|
          x0 +. (u *. (ax -. x0)) +. (v *. (bx -. x0));
          y0 +. (u *. (ay -. y0)) +. (v *. (by -. y0));
        |])
  in
  Dataset.create ~name:"polygon" ~attributes:(attr_names 2) data

let greedy_pathological ~epsilon ~extra rng =
  if epsilon <= 0. || epsilon >= 0.5 then
    invalid_arg "Synthetic.greedy_pathological: epsilon must be in (0, 0.5)";
  let corner = 1. -. epsilon in
  let fixed =
    [|
      [| 1.; 0.; 0. |];
      [| 0.; 1.; 0. |];
      [| 0.; 0.; 1. |];
      [| corner; corner; corner |];
    |]
  in
  let filler =
    Array.init extra (fun _ ->
        Array.init 3 (fun _ -> Rrms_rng.Rng.float rng corner))
  in
  Dataset.create ~name:"greedy-pathological" ~attributes:(attr_names 3)
    (Array.append fixed filler)
