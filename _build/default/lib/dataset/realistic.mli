(** Simulated stand-ins for the paper's real-world datasets.

    The evaluation uses three public datasets (Airline 2008, US DOT
    on-time performance 2015, and databasebasketball.com NBA player
    seasons).  This reproduction runs in a sealed container, so the raw
    files cannot be fetched; instead each simulator below synthesizes a
    table with the same schema (ordinal attributes only), scale and —
    most importantly — correlation structure, since attribute correlation
    is what determines skyline/hull size and therefore algorithm
    behaviour.  See DESIGN.md §4 for the substitution rationale.

    All attributes are emitted "higher is better" and non-negative:
    delay-like metrics are flipped as [cap - value] at generation time so
    a maxima query prefers punctual flights, exactly as one would
    preprocess the real data for a regret-minimization study. *)

val airline : Rrms_rng.Rng.t -> n:int -> Dataset.t
(** Two strongly (negatively) dependent attributes mirroring the 2008
    Airline dataset columns used in Figure 12: [actual_elapsed_time]
    (flipped to higher-is-better against a 600-minute cap, since flight
    time is essentially distance over cruise speed plus overhead) and
    [distance].  The tight dependence leaves a narrow trade-off band
    whose upper envelope is the skyline. *)

val dot : Rrms_rng.Rng.t -> n:int -> Dataset.t
(** Seven ordinal attributes in the DOT on-time schema order:
    [dep_delay, taxi_out, taxi_in, actual_elapsed_time, air_time,
    distance, arrival_delay].  Delays are heavy-tailed (exponential
    mixture) and correlated with each other; times/distance are mutually
    correlated but nearly independent of the delays, producing the
    mid-sized skylines that make Figures 27–28 interesting.  Delay-like
    columns are flipped to higher-is-better. *)

val nba : Rrms_rng.Rng.t -> n:int -> Dataset.t
(** Seventeen per-season counting stats, driven by latent games-played,
    minutes and usage factors so that the strong positive correlations of
    real box-score data (points vs minutes vs field-goal attempts, ...)
    are present.  Attribute order puts the commonly ranked stats first
    ([pts, reb, asts, stl, blk, ...]) so projecting to the first [m]
    columns — what the vary-[m] experiments do — ranks players on
    meaningful criteria. *)
