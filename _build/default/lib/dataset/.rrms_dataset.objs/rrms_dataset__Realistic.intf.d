lib/dataset/realistic.mli: Dataset Rrms_rng
