lib/dataset/realistic.ml: Array Dataset Float Rrms_rng
