lib/dataset/synthetic.mli: Dataset Rrms_rng
