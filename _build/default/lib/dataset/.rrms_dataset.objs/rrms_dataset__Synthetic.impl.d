lib/dataset/synthetic.ml: Array Dataset Float Printf Rrms_rng
