lib/dataset/dataset.mli: Format Rrms_geom
