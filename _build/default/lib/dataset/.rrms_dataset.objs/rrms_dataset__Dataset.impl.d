lib/dataset/dataset.ml: Array Filename Float Format Fun In_channel List Printf Rrms_geom String
