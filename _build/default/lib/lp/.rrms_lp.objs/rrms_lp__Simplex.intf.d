lib/lp/simplex.mli:
