(** A dense two-phase primal simplex solver.

    OCaml ships no LP tooling, and the paper's GREEDY baseline
    [Nanongkai et al., VLDB'10] as well as exact regret-ratio evaluation
    both reduce to small dense LPs (a handful of variables, tens of
    constraints), so this hand-rolled solver is a core substrate of the
    reproduction.  It solves

    {v maximize c·x  subject to  Aᵢ·x (≤ | ≥ | =) bᵢ,  x ≥ 0 v}

    using the standard two-phase tableau method with Bland's rule, which
    guarantees termination (no cycling).  It is exact up to the floating
    tolerance [eps] and intended for {e small} problems — no sparsity, no
    revised simplex, no presolve. *)

type relation = Le | Ge | Eq

type constraint_ = {
  coeffs : float array;  (** row of A; length = number of variables *)
  relation : relation;
  rhs : float;  (** bᵢ, any sign *)
}

type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val constraint_ : float array -> relation -> float -> constraint_
(** Convenience constructor. *)

val maximize : ?eps:float -> c:float array -> constraint_ list -> status
(** [maximize ~c constraints] solves the LP above.  All variables are
    non-negative; model a free variable as a difference of two
    non-negative ones if needed.  [eps] (default [1e-9]) is the pivot /
    optimality tolerance.
    @raise Invalid_argument on dimension mismatches. *)

val minimize : ?eps:float -> c:float array -> constraint_ list -> status
(** [minimize ~c] is [maximize ~c:(-c)] with the objective negated back. *)

val feasible : ?eps:float -> int -> constraint_ list -> bool
(** [feasible nvars constraints] is [true] iff the system has a
    non-negative solution (phase 1 only). *)
