let to_cartesian angles =
  let k = Array.length angles in
  if k = 0 then invalid_arg "Polar.to_cartesian: no angles";
  let m = k + 1 in
  let v = Array.make m 0. in
  (* Algorithm 3 of the paper, 0-based: peel one cosine per coordinate
     from the highest down, carrying the product of sines as the radius. *)
  let radius = ref 1. in
  for j = m - 1 downto 1 do
    v.(j) <- !radius *. cos angles.(j - 1);
    radius := !radius *. sin angles.(j - 1)
  done;
  v.(0) <- !radius;
  v

let to_angles v =
  let m = Array.length v in
  if m < 2 then invalid_arg "Polar.to_angles: dimension must be >= 2";
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Polar.to_angles: negative component")
    v;
  let n = Vec.norm v in
  if n = 0. then invalid_arg "Polar.to_angles: zero vector";
  let angles = Array.make (m - 1) 0. in
  let radius = ref n in
  (* Invert the recursion: at step j, v.(j) = radius * cos θ_{j-1}. *)
  (try
     for j = m - 1 downto 1 do
       if !radius <= 0. then begin
         (* Remaining coordinates are all zero; leave angles at 0. *)
         raise Exit
       end;
       let c = Float.min 1. (Float.max (-1.) (v.(j) /. !radius)) in
       let theta = acos c in
       angles.(j - 1) <- theta;
       radius := !radius *. sin theta
     done
   with Exit -> ());
  angles

let angle_2d w =
  if Array.length w <> 2 then invalid_arg "Polar.angle_2d: dimension <> 2";
  atan2 w.(0) w.(1)

let weight_of_angle_2d phi = [| sin phi; cos phi |]

let tie_angle_2d p q =
  if Array.length p <> 2 || Array.length q <> 2 then
    invalid_arg "Polar.tie_angle_2d: dimension <> 2";
  (* w·p = w·q with w = (sin φ, cos φ) gives sin φ · dx = cos φ · dy, i.e.
     tan φ = dy / dx; a φ in [0, π/2] exists only when dx and dy do not
     have opposite signs. *)
  let dx = p.(0) -. q.(0) and dy = q.(1) -. p.(1) in
  if dx = 0. && dy = 0. then None
  else if dx = 0. then Some (Float.pi /. 2.) (* equal A₁: tie under pure A₁ *)
  else if dy = 0. then Some 0. (* equal A₂: tie under pure A₂ *)
  else if (dx > 0. && dy > 0.) || (dx < 0. && dy < 0.) then
    Some (atan2 (Float.abs dy) (Float.abs dx))
  else None

let angular_distance a b =
  let na = Vec.norm a and nb = Vec.norm b in
  if na = 0. || nb = 0. then
    invalid_arg "Polar.angular_distance: zero vector";
  let c = Vec.dot a b /. (na *. nb) in
  acos (Float.min 1. (Float.max (-1.) c))
