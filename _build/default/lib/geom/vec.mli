(** Dense float vectors.

    Tuples of the database and ranking-function weight vectors are both
    represented as [float array]s of length [m] (the number of attributes).
    This module collects the small amount of linear algebra the algorithms
    need; everything is allocation-conscious because these operations sit
    in the innermost loops of the regret-matrix construction. *)

type t = float array

val dim : t -> int

val dot : t -> t -> float
(** Inner product.  @raise Invalid_argument on dimension mismatch. *)

val norm2 : t -> float
(** Squared Euclidean norm. *)

val norm : t -> float

val normalize : t -> t
(** Unit vector in the same direction.  @raise Invalid_argument on the
    zero vector. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y] in place. *)

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [eps]
    (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ...)] with 6 significant digits. *)

val to_string : t -> string

val max_score_index : t -> t array -> int
(** [max_score_index w points] is the index of the point with the largest
    score [dot w p], breaking ties towards the smaller index.
    @raise Invalid_argument on an empty array. *)

val max_score : t -> t array -> float
(** Largest score [dot w p] over [points]. *)
