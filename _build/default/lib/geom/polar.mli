(** Polar coordinates on the non-negative orthant of the unit sphere.

    Linear ranking functions are identified with their weight vectors; the
    regret ratio is invariant under positive scaling of the weights, so the
    function space is exactly the portion of the unit sphere with all
    coordinates non-negative.  The paper's DISCRETIZE algorithm (§4.3)
    walks this surface on a grid of [m - 1] polar angles, each in
    [\[0, π/2\]].  This module implements the polar ↔ Cartesian transform
    in the exact convention of the paper's Algorithm 3:

    {v
      v[m]   = cos θ[m-1]
      v[m-1] = sin θ[m-1] · cos θ[m-2]
      ...
      v[1]   = sin θ[m-1] · ... · sin θ[1]
    v}

    (with 1-based indexing as in the paper; here arrays are 0-based). *)

val to_cartesian : float array -> float array
(** [to_cartesian angles] maps [m - 1] angles in [\[0, π/2\]] to a unit
    vector of dimension [m] with non-negative components.
    @raise Invalid_argument if the array is empty. *)

val to_angles : float array -> float array
(** [to_angles v] inverts {!to_cartesian} for a non-negative, non-zero
    vector [v] (which is normalized internally).  When a suffix of the
    recursion has zero radius the remaining angles are defined to be [0],
    matching what {!to_cartesian} maps back.
    @raise Invalid_argument if [v] has dimension < 2 or is not
    non-negative and non-zero. *)

val angle_2d : float array -> float
(** 2D special case: the angle [φ ∈ [0, π/2]] of a non-negative weight
    vector [(w1, w2)] measured from the +A₂ axis, i.e.
    [w(φ) ∝ (sin φ, cos φ)].  With this convention the top-left skyline
    tuple (max A₂) is the maximum at [φ = 0] and the bottom-right (max A₁)
    at [φ = π/2], matching the paper's sorted list ℓ. *)

val weight_of_angle_2d : float -> float array
(** Inverse of {!angle_2d}: [weight_of_angle_2d φ = [|sin φ; cos φ|]]. *)

val tie_angle_2d : float array -> float array -> float option
(** [tie_angle_2d p q] is the angle [φ] of the (unique, if any) ranking
    function with non-negative weights under which the 2D points [p] and
    [q] score equally — the function whose contour is the line through [p]
    and [q] (Theorem 2).  [None] if no such function exists with
    non-negative weights (i.e. one point dominates the other) or the
    points coincide. *)

val angular_distance : float array -> float array -> float
(** Angle in radians between two non-zero vectors. *)
