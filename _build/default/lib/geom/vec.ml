type t = float array

let dim = Array.length

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

let norm2 a = dot a a

let norm a = sqrt (norm2 a)

let normalize a =
  let n = norm a in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  Array.map (fun x -> x /. n) a

let add a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec.add: dimension mismatch";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec.sub: dimension mismatch";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.axpy: dimension mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set y i
      (Array.unsafe_get y i +. (a *. Array.unsafe_get x i))
  done

let equal ?(eps = 1e-12) a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > eps then ok := false) a;
      !ok)

let pp ppf v =
  Format.fprintf ppf "(@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@])"

let to_string v = Format.asprintf "%a" pp v

let max_score_index w points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Vec.max_score_index: empty array";
  let best = ref 0 and best_score = ref (dot w points.(0)) in
  for i = 1 to n - 1 do
    let s = dot w points.(i) in
    if s > !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let max_score w points = dot w points.(max_score_index w points)
