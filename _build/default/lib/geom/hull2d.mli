(** The 2D maxima hull and its sorted angle list ℓ (§3.1.2 of the paper).

    The {e maxima hull} of a set of 2D points is the chain of convex-hull
    vertices that maximize at least one linear ranking function with
    non-negative weights — the upper-right staircase of the hull, running
    from the maximum-A₂ point (top left) to the maximum-A₁ point (bottom
    right).  Walking the chain, the ranking-function angle φ (measured
    from the +A₂ axis, see {!Polar.angle_2d}) at which the maximum hands
    over from one vertex to the next is the tie angle of the two vertices;
    the paper calls the sorted list of these angles ℓ and binary-searches
    it to evaluate edge weights in O(log c). *)

type t

val build : Vec.t array -> t
(** [build points] computes the maxima hull of [points] (any 2D points,
    not necessarily a skyline; dominated points are filtered internally).
    @raise Invalid_argument if [points] is empty or not 2-dimensional. *)

val size : t -> int
(** Number of hull vertices, [c]. *)

val vertex : t -> int -> int
(** [vertex h k] is the index {e into the original input array} of the
    k-th hull vertex (0-based, top-left to bottom-right). *)

val vertex_point : t -> int -> Vec.t
(** The coordinates of the k-th hull vertex. *)

val vertices : t -> int array
(** All hull vertex input-indices, in chain order.  Fresh copy. *)

val breakpoints : t -> float array
(** The interior angles of ℓ: [breakpoints h] has length [size h - 1] and
    its k-th entry is the angle at which the maximum passes from vertex
    [k] to vertex [k+1].  Non-decreasing.  Fresh copy. *)

val max_index_at : t -> float -> int
(** [max_index_at h φ] is the hull position (0-based) of the vertex that
    maximizes the ranking function with angle [φ ∈ [0, π/2]] — a binary
    search on ℓ, O(log c).  At a breakpoint either endpoint maximizes;
    the smaller position is returned. *)

val max_point_at : t -> float -> Vec.t
(** Convenience: the coordinates of [max_index_at]. *)
