type t = {
  points : Vec.t array;
  hull : int array; (* indices into [points], top-left -> bottom-right *)
  breaks : float array; (* tie angles between consecutive hull vertices *)
}

(* Indices of the 2D skyline, sorted by A₁ ascending (hence A₂ strictly
   descending).  Duplicates of a point collapse to one representative. *)
let staircase points =
  let n = Array.length points in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare points.(i).(0) points.(j).(0) in
      if c <> 0 then c else Float.compare points.(j).(1) points.(i).(1))
    idx;
  (* Keep the first (max-A₂) point of every A₁ group, then sweep from the
     right keeping points whose A₂ strictly exceeds everything seen. *)
  let dedup = ref [] in
  Array.iteri
    (fun k i ->
      match !dedup with
      | j :: _ when points.(j).(0) = points.(i).(0) -> ignore k
      | _ -> dedup := i :: !dedup)
    idx;
  (* [dedup] is in descending A₁ order. *)
  let kept = ref [] and best_y = ref neg_infinity in
  List.iter
    (fun i ->
      if points.(i).(1) > !best_y then begin
        kept := i :: !kept;
        best_y := points.(i).(1)
      end)
    !dedup;
  (* [dedup] was descending in A₁ and [kept] prepends, so it is already
     ascending. *)
  Array.of_list !kept

let cross o a b =
  ((a.(0) -. o.(0)) *. (b.(1) -. o.(1)))
  -. ((a.(1) -. o.(1)) *. (b.(0) -. o.(0)))

let build points =
  if Array.length points = 0 then invalid_arg "Hull2d.build: empty input";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then invalid_arg "Hull2d.build: dimension <> 2")
    points;
  let stair = staircase points in
  (* Monotone chain over the staircase: walking left to right an upper
     hull makes only clockwise turns (negative cross product). *)
  let stack = Array.make (Array.length stair) 0 in
  let top = ref 0 in
  Array.iter
    (fun i ->
      let p = points.(i) in
      while
        !top >= 2
        && cross points.(stack.(!top - 2)) points.(stack.(!top - 1)) p >= 0.
      do
        decr top
      done;
      stack.(!top) <- i;
      incr top)
    stair;
  let hull = Array.sub stack 0 !top in
  let breaks =
    Array.init (Array.length hull - 1) (fun k ->
        match Polar.tie_angle_2d points.(hull.(k)) points.(hull.(k + 1)) with
        | Some phi -> phi
        | None -> assert false (* consecutive hull vertices always tie *))
  in
  { points; hull; breaks }

let size t = Array.length t.hull

let vertex t k = t.hull.(k)

let vertex_point t k = t.points.(t.hull.(k))

let vertices t = Array.copy t.hull

let breakpoints t = Array.copy t.breaks

let max_index_at t phi =
  (* Smallest k with phi <= breaks.(k); vertex k is the maximum on
     [breaks.(k-1), breaks.(k)]. *)
  let c = Array.length t.breaks in
  let lo = ref 0 and hi = ref c in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if phi <= t.breaks.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let max_point_at t phi = vertex_point t (max_index_at t phi)
