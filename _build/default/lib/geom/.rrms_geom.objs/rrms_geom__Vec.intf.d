lib/geom/vec.mli: Format
