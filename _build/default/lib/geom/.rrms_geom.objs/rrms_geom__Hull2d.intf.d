lib/geom/hull2d.mli: Vec
