lib/geom/hull2d.ml: Array Float List Polar Vec
