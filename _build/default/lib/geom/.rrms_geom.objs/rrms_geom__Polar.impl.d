lib/geom/polar.ml: Array Float Vec
