lib/geom/polar.mli:
