lib/rng/rng.mli:
