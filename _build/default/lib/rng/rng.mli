(** Deterministic pseudo-random number generation.

    A small, self-contained splitmix64 generator.  Every synthetic dataset
    in this repository is produced from an explicit seed through this
    module, so experiments are reproducible bit-for-bit across runs and
    machines (unlike [Stdlib.Random], whose algorithm may change between
    compiler releases). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same stream
    as [t] from this point on. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and the child are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output of splitmix64. *)

val int : t -> int -> int
(** [int t bound] is uniform on \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on \[0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on \[lo, hi). *)

val bool : t -> bool

val normal : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian : t -> mean:float -> stddev:float -> float

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]).
    @raise Invalid_argument if [rate <= 0.]. *)

val zipf : t -> s:float -> n:int -> int
(** [zipf t ~s ~n] samples from a Zipf distribution with exponent [s] on
    \[1, n\] by inverse-CDF over the precomputed table-free rejection
    method.  Used for skewed realistic data. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
