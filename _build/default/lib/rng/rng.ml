(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  Chosen for its tiny state, good statistical
   quality and trivially reproducible semantics. *)

type t = {
  mutable state : int64;
  (* One cached normal deviate: Box-Muller produces deviates in pairs. *)
  mutable spare_normal : float;
  mutable has_spare : bool;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; spare_normal = 0.; has_spare = false }

let copy t =
  { state = t.state; spare_normal = t.spare_normal; has_spare = t.has_spare }

let bits64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed; spare_normal = 0.; has_spare = false }

(* Top 53 bits give a uniform float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: retry while the draw falls in the final partial
     block of size [2^63 mod bound], so the result is exactly uniform. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    if raw >= limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let float t bound = unit_float t *. bound

let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare_normal
  end
  else begin
    (* Box-Muller; u1 must be strictly positive for the log. *)
    let rec positive () =
      let u = unit_float t in
      if u > 0. then u else positive ()
    in
    let u1 = positive () and u2 = unit_float t in
    let radius = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.spare_normal <- radius *. sin theta;
    t.has_spare <- true;
    radius *. cos theta
  end

let gaussian t ~mean ~stddev = mean +. (stddev *. normal t)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec positive () =
    let u = unit_float t in
    if u > 0. then u else positive ()
  in
  -.log (positive ()) /. rate

(* Rejection sampling for the Zipf distribution (Devroye 1986, ch. X.6).
   Works for any exponent s > 0 without precomputing the harmonic sum. *)
let zipf t ~s ~n =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if s <= 0. then invalid_arg "Rng.zipf: s must be positive";
  if n = 1 then 1
  else begin
    let nf = float_of_int n in
    (* Inverse of the integral of x^-s over [1, n]. *)
    let h x = if s = 1. then log x else (x ** (1. -. s) -. 1.) /. (1. -. s) in
    let h_inv y =
      if s = 1. then exp y else (1. +. ((1. -. s) *. y)) ** (1. /. (1. -. s))
    in
    let total = h (nf +. 0.5) -. h 0.5 in
    let rec draw () =
      let u = unit_float t in
      let x = h_inv (h 0.5 +. (u *. total)) in
      let k = Float.round x in
      let k = if k < 1. then 1. else if k > nf then nf else k in
      (* Accept with probability (k^-s) / envelope(x). *)
      let ratio = (k ** -.s) /. (x ** -.s) in
      if unit_float t <= ratio then int_of_float k else draw ()
    in
    draw ()
  end

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
