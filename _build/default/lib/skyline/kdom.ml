let k_dominant_skyline ~k points =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    let m = Array.length points.(0) in
    if k < 1 || k > m then
      invalid_arg "Kdom.k_dominant_skyline: k out of range";
    (* k-dominance is not transitive for k < m, so no window pruning is
       sound: test every tuple against every other. *)
    let result = ref [] in
    for i = n - 1 downto 0 do
      let p = points.(i) in
      let dominated = ref false in
      let j = ref 0 in
      while (not !dominated) && !j < n do
        if !j <> i && Dominance.k_dominates k points.(!j) p then
          dominated := true;
        incr j
      done;
      if not !dominated then result := i :: !result
    done;
    Array.of_list !result
  end

let adapt_for_size ~r points =
  if Array.length points = 0 then [||]
  else begin
    let m = Array.length points.(0) in
    (* Binary search over k: the k-dominant skyline grows with k, so find
       the largest k whose set still fits in r.  (The paper's observation
       is that the step below the full skyline is usually empty.) *)
    let best = ref [||] in
    let lo = ref 1 and hi = ref m in
    while !lo <= !hi do
      let k = (!lo + !hi) / 2 in
      let set = k_dominant_skyline ~k points in
      let size = Array.length set in
      if size > r then hi := k - 1
      else begin
        (* Fits; prefer the largest such k (a larger, more informative
           set closer to r). *)
        if size > Array.length !best then best := set;
        lo := k + 1
      end
    done;
    !best
  end
