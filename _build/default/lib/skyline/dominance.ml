let check_dims a b name =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let dominates a b =
  check_dims a b "Dominance.dominates";
  let ge = ref true and strict = ref false in
  let n = Array.length a in
  let i = ref 0 in
  while !ge && !i < n do
    let x = Array.unsafe_get a !i and y = Array.unsafe_get b !i in
    if x < y then ge := false else if x > y then strict := true;
    incr i
  done;
  !ge && !strict

let strictly_dominates a b =
  check_dims a b "Dominance.strictly_dominates";
  let ok = ref true in
  Array.iteri (fun i x -> if x <= b.(i) then ok := false) a;
  !ok

let compare a b =
  check_dims a b "Dominance.compare";
  let a_better = ref false and b_better = ref false in
  Array.iteri
    (fun i x ->
      if x > b.(i) then a_better := true
      else if x < b.(i) then b_better := true)
    a;
  match (!a_better, !b_better) with
  | true, false -> `Left
  | false, true -> `Right
  | true, true -> `Incomparable
  | false, false -> `Equal

let k_dominates k a b =
  check_dims a b "Dominance.k_dominates";
  let m = Array.length a in
  if k < 1 || k > m then invalid_arg "Dominance.k_dominates: k out of range";
  (* t k-dominates t' iff >= holds on at least k attributes and > holds
     on at least one (a strict attribute is also a >= attribute, so it
     can always be included in the k-subset). *)
  let ge = ref 0 and strict = ref false in
  Array.iteri
    (fun i x ->
      if x >= b.(i) then incr ge;
      if x > b.(i) then strict := true)
    a;
  !ge >= k && !strict
