(** Pareto dominance between tuples.

    A tuple [t] dominates [t'] (written [t ≻ t']) iff [t] is at least as
    good on every attribute and strictly better on at least one (§2,
    footnote 1).  All comparisons assume "higher is better". *)

val dominates : Rrms_geom.Vec.t -> Rrms_geom.Vec.t -> bool
(** [dominates t t'] is [t ≻ t'].
    @raise Invalid_argument on dimension mismatch. *)

val strictly_dominates : Rrms_geom.Vec.t -> Rrms_geom.Vec.t -> bool
(** Strict on {e every} attribute. *)

val compare : Rrms_geom.Vec.t -> Rrms_geom.Vec.t -> [ `Left | `Right | `Incomparable | `Equal ]
(** Three-way dominance comparison in one pass: [`Left] if the first
    argument dominates, [`Right] if the second does. *)

val k_dominates : int -> Rrms_geom.Vec.t -> Rrms_geom.Vec.t -> bool
(** [k_dominates k t t'] is Chan et al.'s relaxed dominance: there exist
    [k] attributes on which [t ≥ t'], with strict inequality on at least
    one of them (§6.3).  For [k = m] this is ordinary dominance.
    @raise Invalid_argument if [k] is not in [\[1, m\]]. *)
