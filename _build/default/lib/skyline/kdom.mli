(** k-dominant skylines [Chan et al., SIGMOD'06] and the paper's negative
    adaptation experiment (§6.3, Figure 31).

    A tuple [t] k-dominates [t'] if it is at least as good on some [k]
    attributes and strictly better on one of them; the k-dominant skyline
    is the set of tuples k-dominated by nobody.  Decreasing [k] below [m]
    shrinks the set — but, as the paper demonstrates, usually collapses
    it straight to the empty set, which is why it is unsuitable as a
    regret-minimizing representative. *)

val k_dominant_skyline : k:int -> Rrms_geom.Vec.t array -> int array
(** Indices of the tuples not k-dominated by any other tuple.  For
    [k = m] this equals the ordinary skyline (up to duplicate handling:
    duplicates never dominate each other).  O(n²·m).
    @raise Invalid_argument if [k] not in [\[1, m\]]. *)

val adapt_for_size : r:int -> Rrms_geom.Vec.t array -> int array
(** The paper's adaptation: binary-search over [k ∈ [1, m]] for the
    largest [k] whose k-dominant skyline has at most [r] tuples and is
    non-empty if possible; returns that set (possibly empty — the
    paper's point is that it usually is, because k-dominance for k < m
    is not transitive and can eliminate everything). *)
