lib/skyline/kdom.ml: Array Dominance
