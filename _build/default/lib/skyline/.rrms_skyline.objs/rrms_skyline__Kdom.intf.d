lib/skyline/kdom.mli: Rrms_geom
