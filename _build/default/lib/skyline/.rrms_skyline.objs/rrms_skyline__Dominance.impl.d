lib/skyline/dominance.ml: Array
