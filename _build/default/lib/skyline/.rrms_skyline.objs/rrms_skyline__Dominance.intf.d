lib/skyline/dominance.mli: Rrms_geom
