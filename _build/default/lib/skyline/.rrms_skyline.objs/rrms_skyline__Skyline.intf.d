lib/skyline/skyline.mli: Rrms_geom
