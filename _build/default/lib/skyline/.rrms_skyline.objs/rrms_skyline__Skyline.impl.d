lib/skyline/skyline.ml: Array Dominance Float List Seq Stdlib
