type row = {
  fig : string;
  x_name : string;
  x : string;
  series : string;
  time : float option;
  regret : float option;
  count : int option;
  skipped : string option;
}

let split_kv token =
  match String.index_opt token '=' with
  | None -> None
  | Some i ->
      Some
        ( String.sub token 0 i,
          String.sub token (i + 1) (String.length token - i - 1) )

let parse_line line =
  let line = String.trim line in
  let n = String.length line in
  if n < 3 || line.[0] <> '[' then None
  else
    match String.index_opt line ']' with
    | None -> None
    | Some close ->
        let fig = String.sub line 1 (close - 1) in
        let rest = String.trim (String.sub line (close + 1) (n - close - 1)) in
        let tokens =
          List.filter (fun t -> t <> "") (String.split_on_char ' ' rest)
        in
        let kvs = List.filter_map split_kv tokens in
        (* The first key=value pair is the swept parameter. *)
        (match kvs with
        | (x_name, x) :: _ when x_name <> "series" ->
            let find key = List.assoc_opt key kvs in
            (match find "series" with
            | None -> None
            | Some series ->
                Some
                  {
                    fig;
                    x_name;
                    x;
                    series;
                    time = Option.bind (find "time") float_of_string_opt;
                    regret = Option.bind (find "regret") float_of_string_opt;
                    count = Option.bind (find "count") int_of_string_opt;
                    skipped = find "skipped";
                  })
        | _ -> None)

let parse_lines lines = List.filter_map parse_line lines

let parse_channel ic =
  let rows = ref [] in
  (try
     while true do
       match In_channel.input_line ic with
       | None -> raise Exit
       | Some line -> (
           match parse_line line with
           | Some r -> rows := r :: !rows
           | None -> ())
     done
   with Exit -> ());
  List.rev !rows

let distinct key rows =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun r ->
      let k = key r in
      match k with
      | None -> None
      | Some k ->
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some k
          end)
    rows

let figures rows = distinct (fun r -> Some r.fig) rows

let series_of ~fig rows =
  distinct (fun r -> if r.fig = fig then Some r.series else None) rows

let x_as_float row = float_of_string_opt row.x
