(** Terminal scatter/line charts.

    Renders multiple numeric series onto a character grid with axes,
    min/max labels and a legend — enough to eyeball the shape of a
    reproduced figure (who wins, growth rate, crossovers) straight from
    a bench log, without leaving the terminal. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y); non-finite points skipped *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** [render ~title series] draws the series into a [width]×[height]
    (default 64×16) plot area.  Each series gets a marker character
    ([a], [b], …); overlapping points show the later series' marker.
    With [log_x]/[log_y], non-positive coordinates are dropped.  Returns
    the multi-line string (no trailing newline).  Series with no
    plottable points are listed in the legend as "(no data)". *)
