(** Parsing of the benchmark harness's machine-readable output.

    `bench/main.exe` prints one row per measurement:

    {v [fig8] n=20000 series=2DRRMS/anti time=0.1234 regret=0.0456 v}

    (optional fields: [time], [regret], [count]; a row may instead carry
    [skipped=<reason>]).  This module parses those rows back so the
    plotting tool — and any downstream analysis — can consume a bench
    log without ad-hoc grepping. *)

type row = {
  fig : string;  (** figure id, e.g. "fig8" *)
  x_name : string;  (** swept parameter name, e.g. "n" *)
  x : string;  (** swept parameter value, numeric or categorical *)
  series : string;  (** algorithm/series label *)
  time : float option;
  regret : float option;
  count : int option;
  skipped : string option;
}

val parse_line : string -> row option
(** [parse_line s] parses one output line; [None] for headers, blank
    lines and anything else that is not a measurement row. *)

val parse_lines : string list -> row list

val parse_channel : in_channel -> row list
(** Reads to EOF. *)

val figures : row list -> string list
(** Distinct figure ids, in first-appearance order. *)

val series_of : fig:string -> row list -> string list
(** Distinct series labels of one figure, in first-appearance order. *)

val x_as_float : row -> float option
(** Numeric interpretation of the x value, if any. *)
