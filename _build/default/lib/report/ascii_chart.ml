type series = { label : string; points : (float * float) list }

let markers = "abcdefghijklmnopqrstuvwxyz"

let transform ~log v = if log then log10 v else v

let usable ~log_x ~log_y (x, y) =
  Float.is_finite x && Float.is_finite y
  && ((not log_x) || x > 0.)
  && ((not log_y) || y > 0.)

let render ?(width = 64) ?(height = 16) ?(log_x = false) ?(log_y = false)
    ?x_label ?y_label ~title series =
  let width = max 8 width and height = max 4 height in
  let cleaned =
    List.map
      (fun s ->
        ( s.label,
          List.filter_map
            (fun p ->
              if usable ~log_x ~log_y p then
                Some
                  (transform ~log:log_x (fst p), transform ~log:log_y (snd p))
              else None)
            s.points ))
      series
  in
  let all = List.concat_map snd cleaned in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  if all = [] then begin
    Buffer.add_string buf "(no plottable data)";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let fmin l = List.fold_left Float.min infinity l in
    let fmax l = List.fold_left Float.max neg_infinity l in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = fmin ys and y1 = fmax ys in
    (* Avoid a zero-extent axis. *)
    let pad lo hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
    let x0, x1 = pad x0 x1 and y0, y1 = pad y0 y1 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      let t = (x -. x0) /. (x1 -. x0) in
      min (width - 1) (max 0 (int_of_float (t *. float_of_int (width - 1))))
    in
    let rowi y =
      let t = (y -. y0) /. (y1 -. y0) in
      (* row 0 is the top of the plot *)
      let r = int_of_float (t *. float_of_int (height - 1)) in
      min (height - 1) (max 0 (height - 1 - r))
    in
    List.iteri
      (fun si (_, pts) ->
        let marker = markers.[si mod String.length markers] in
        List.iter (fun (x, y) -> grid.(rowi y).(col x) <- marker) pts)
      cleaned;
    let unscale_y v = if log_y then 10. ** v else v in
    let unscale_x v = if log_x then 10. ** v else v in
    (* Top y label. *)
    Buffer.add_string buf (Printf.sprintf "%10.4g +" (unscale_y y1));
    Buffer.add_string buf (String.make width '-');
    Buffer.add_string buf "+\n";
    Array.iteri
      (fun i line ->
        let prefix =
          if i = height - 1 then Printf.sprintf "%10.4g |" (unscale_y y0)
          else "           |"
        in
        Buffer.add_string buf prefix;
        Buffer.add_string buf (String.init width (fun j -> line.(j)));
        Buffer.add_string buf "|\n")
      grid;
    Buffer.add_string buf "           +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_string buf "+\n";
    Buffer.add_string buf
      (Printf.sprintf "            %.4g%s%.4g\n" (unscale_x x0)
         (String.make (max 1 (width - 12)) ' ')
         (unscale_x x1));
    (match (x_label, y_label) with
    | Some xl, Some yl ->
        Buffer.add_string buf (Printf.sprintf "            x: %s%s, y: %s%s\n" xl
          (if log_x then " (log)" else "") yl (if log_y then " (log)" else ""))
    | Some xl, None ->
        Buffer.add_string buf
          (Printf.sprintf "            x: %s%s\n" xl
             (if log_x then " (log)" else ""))
    | None, Some yl ->
        Buffer.add_string buf
          (Printf.sprintf "            y: %s%s\n" yl
             (if log_y then " (log)" else ""))
    | None, None -> ());
    List.iteri
      (fun si (label, pts) ->
        let marker = markers.[si mod String.length markers] in
        Buffer.add_string buf
          (Printf.sprintf "            %c = %s%s\n" marker label
             (if pts = [] then " (no data)" else "")))
      cleaned;
    (* Trim the trailing newline. *)
    let s = Buffer.contents buf in
    if String.length s > 0 && s.[String.length s - 1] = '\n' then
      String.sub s 0 (String.length s - 1)
    else s
  end
