lib/report/bench_rows.ml: Hashtbl In_channel List Option String
