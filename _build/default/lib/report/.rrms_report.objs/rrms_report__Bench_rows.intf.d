lib/report/bench_rows.mli:
