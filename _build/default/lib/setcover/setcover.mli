(** Set cover solvers.

    The MRST oracle (§4.4.1) reduces "which tuples satisfy a regret
    threshold?" to covering the discretized ranking functions with tuple
    rows.  The paper's theoretical algorithm assumes an exact solver on
    constant-size instances; its practical variant (§4.4.3) substitutes
    Chvátal's greedy, which guarantees an [H(|U|) ≤ ln|U| + 1]
    approximation.  Both are implemented here over {!Bitset}s. *)

type instance = {
  universe : int;  (** items are [0 .. universe-1] *)
  sets : Bitset.t array;  (** each of width [universe] *)
}

val make_instance : universe:int -> Bitset.t array -> instance
(** @raise Invalid_argument if a set has the wrong width. *)

val coverable : instance -> bool
(** True iff the union of all sets is the whole universe. *)

val greedy : instance -> int array option
(** Chvátal's greedy algorithm: repeatedly take the set covering the
    most uncovered items (ties to the smallest index).  Returns the
    chosen set indices in selection order, or [None] if the instance is
    not coverable.  O(|sets|² · words). *)

val exact : ?max_sets:int -> instance -> int array option
(** Optimal cover by depth-first branch-and-bound: branch on the
    lowest-index uncovered item, prune with the greedy upper bound and a
    simple lower bound.  Exponential in general — intended for the
    constant-size instances of the theoretical HD-RRMS and for tests.
    [max_sets] (default [max_int]) aborts branches deeper than that.
    Returns [None] when not coverable (or no cover within [max_sets]). *)
