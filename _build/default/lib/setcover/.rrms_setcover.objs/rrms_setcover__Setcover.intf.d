lib/setcover/setcover.mli: Bitset
