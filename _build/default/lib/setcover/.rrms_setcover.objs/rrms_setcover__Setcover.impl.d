lib/setcover/setcover.ml: Array Bitset List
