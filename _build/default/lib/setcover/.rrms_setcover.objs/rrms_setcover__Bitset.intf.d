lib/setcover/bitset.mli:
