lib/setcover/bitset.ml: Array Hashtbl List Stdlib
