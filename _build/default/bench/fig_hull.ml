(* Figure 1: convex-hull size versus the number of attributes on
   uniformly distributed data.  The paper's point: the hull explodes
   with m, so it cannot serve as a compact representative.

   The LP extreme-point test is O(n) LPs with O(n) variables each, so
   the sample is scaled down; the growth *shape* (superlinear in m) is
   what matters. *)

open Bench_util

let run scale =
  header "fig1" "convex hull size vs number of attributes (uniform data)";
  let n = match scale with Small -> 400 | Paper -> 1500 in
  let ms = [ 2; 3; 4; 5; 6 ] in
  List.iter
    (fun m ->
      let d = synthetic `Independent ~n ~m in
      let points = Rrms_dataset.Dataset.rows d in
      let count, t = time (fun () -> Rrms_core.Regret.convex_hull_size points) in
      row "fig1" ~x:(string_of_int m) ~x_name:"m" ~series:"hull-size" ~time:t
        ~count ())
    ms;
  (* Companion curve at larger n via sampled maxima counting (cheap
     lower bound): same qualitative growth without the LP cost. *)
  let n_big = match scale with Small -> 20_000 | Paper -> 100_000 in
  List.iter
    (fun m ->
      let d = synthetic `Independent ~n:n_big ~m in
      let points = Rrms_dataset.Dataset.rows d in
      let rng = Rrms_rng.Rng.create (seed_of ("fig1-sample", m)) in
      let funcs = Rrms_core.Discretize.random rng ~count:20_000 ~m in
      let count, t =
        time (fun () -> Rrms_core.Regret.maxima_count_sampled ~points ~funcs)
      in
      row "fig1" ~x:(string_of_int m) ~x_name:"m" ~series:"maxima-sampled"
        ~time:t ~count ())
    ms
