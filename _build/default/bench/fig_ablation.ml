(* Ablation benches for the design choices DESIGN.md calls out:

   - abl-discretize: the §4.3 polar grid vs the two §5.2 alternatives
     (uniform random, force-directed) at the same |F|: covering radius
     of the direction sample and end-to-end HD-RRMS regret.
   - abl-mrst: the practical greedy set-cover oracle vs the theoretical
     exact one: accepted ε_min, output regret and time.
   - abl-greedy-skyline: GREEDY's candidate LPs over all tuples (as
     published) vs over the skyline only.
   - abl-cube: the CUBE baseline vs HD-RRMS at equal budget. *)

open Bench_util

let discretize scale =
  header "abl-discretize" "grid vs random vs force-directed directions";
  let n = match scale with Small -> 5_000 | Paper -> 20_000 in
  let m = 3 and gamma = 4 and r = 5 in
  let d = synthetic `Independent ~n ~m in
  let points = Rrms_dataset.Dataset.rows d in
  let count = (gamma + 1) * (gamma + 1) in
  let schemes =
    [
      ("grid", Rrms_core.Discretize.grid ~gamma ~m);
      ( "random",
        Rrms_core.Discretize.random
          (Rrms_rng.Rng.create (seed_of "abl-rand"))
          ~count ~m );
      ( "force-directed",
        Rrms_core.Discretize.force_directed
          (Rrms_rng.Rng.create (seed_of "abl-force"))
          ~count ~m );
    ]
  in
  List.iter
    (fun (name, funcs) ->
      let coverage =
        Rrms_core.Discretize.max_coverage_angle ~samples:3000
          (Rrms_rng.Rng.create (seed_of ("abl-cov", name)))
          funcs ~m
      in
      Printf.printf "[abl-discretize] scheme=%s coverage-angle=%.4f\n" name
        coverage;
      let res, t =
        time (fun () -> Rrms_core.Hd_rrms.solve ~funcs points ~r)
      in
      row "abl-discretize" ~x:name ~x_name:"scheme" ~series:"HDRRMS" ~time:t
        ~regret:(exact_regret points res.Rrms_core.Hd_rrms.selected)
        ())
    schemes

let mrst scale =
  header "abl-mrst" "greedy vs exact set-cover oracle inside HD-RRMS";
  let n = match scale with Small -> 2_000 | Paper -> 5_000 in
  let d = synthetic `Independent ~n ~m:3 in
  let points = Rrms_dataset.Dataset.rows d in
  List.iter
    (fun (name, solver) ->
      let res, t =
        time (fun () ->
            Rrms_core.Hd_rrms.solve ~gamma:4 ~solver points ~r:4)
      in
      Printf.printf "[abl-mrst] solver=%s eps-min=%.4f\n" name
        res.Rrms_core.Hd_rrms.eps_min;
      row "abl-mrst" ~x:name ~x_name:"solver" ~series:"HDRRMS" ~time:t
        ~regret:(exact_regret points res.Rrms_core.Hd_rrms.selected)
        ())
    [ ("greedy", Rrms_core.Mrst.Greedy); ("exact", Rrms_core.Mrst.Exact) ]

let greedy_skyline scale =
  header "abl-greedy-skyline" "GREEDY candidate LPs: all tuples vs skyline";
  let n = match scale with Small -> 20_000 | Paper -> 100_000 in
  let d = synthetic `Independent ~n ~m:4 in
  let points = Rrms_dataset.Dataset.rows d in
  List.iter
    (fun (name, restrict) ->
      let res, t =
        time (fun () ->
            Rrms_core.Greedy.solve ~restrict_to_skyline:restrict points ~r:5)
      in
      row "abl-greedy-skyline" ~x:name ~x_name:"candidates" ~series:"GREEDY"
        ~time:t ~regret:res.Rrms_core.Greedy.regret_lp ())
    [ ("all", false); ("skyline", true) ]

let cube scale =
  header "abl-cube" "CUBE baseline vs HD-RRMS at equal budget";
  let n = match scale with Small -> 10_000 | Paper -> 50_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:3 in
      let points = Rrms_dataset.Dataset.rows d in
      let r = 9 in
      let c, t_c = time (fun () -> Rrms_core.Cube.solve points ~r) in
      row "abl-cube"
        ~x:(correlation_name kind)
        ~x_name:"data" ~series:"CUBE" ~time:t_c
        ~regret:(exact_regret points c.Rrms_core.Cube.selected)
        ();
      let hd, t_hd = time (fun () -> Rrms_core.Hd_rrms.solve ~gamma:4 points ~r) in
      row "abl-cube"
        ~x:(correlation_name kind)
        ~x_name:"data" ~series:"HDRRMS" ~time:t_hd
        ~regret:(exact_regret points hd.Rrms_core.Hd_rrms.selected)
        ())
    correlations

let eps_kernel scale =
  header "abl-kernel" "ε-kernel (regret-first) vs HD-RRMS (size-first)";
  let n = match scale with Small -> 10_000 | Paper -> 50_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:3 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun gamma ->
          let kernel, t =
            time (fun () -> Rrms_core.Eps_kernel.build_grid ~gamma points)
          in
          row "abl-kernel"
            ~x:(string_of_int gamma)
            ~x_name:"gamma"
            ~series:("kernel/" ^ correlation_name kind)
            ~time:t
            ~count:(Array.length kernel)
            ~regret:(exact_regret points kernel)
            ();
          (* HD-RRMS at the kernel's size, for the opposite trade-off. *)
          let r = max 1 (Array.length kernel) in
          let hd, t_hd =
            time (fun () -> Rrms_core.Hd_rrms.solve ~gamma points ~r)
          in
          row "abl-kernel"
            ~x:(string_of_int gamma)
            ~x_name:"gamma"
            ~series:("hdrrms-samesize/" ^ correlation_name kind)
            ~time:t_hd
            ~count:(Array.length hd.Rrms_core.Hd_rrms.selected)
            ~regret:(exact_regret points hd.Rrms_core.Hd_rrms.selected)
            ())
        [ 2; 4; 6 ])
    correlations

let seeds scale =
  header "abl-seeds" "GREEDY seed strategies (§6.2)";
  let n = match scale with Small -> 2_000 | Paper -> 10_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:3 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun (name, seed) ->
          let res, t =
            time (fun () -> Rrms_core.Greedy.solve ~seed points ~r:5)
          in
          row "abl-seeds" ~x:name ~x_name:"seed"
            ~series:("GREEDY/" ^ correlation_name kind)
            ~time:t ~regret:res.Rrms_core.Greedy.regret_lp ())
        [
          ("first-attribute", Rrms_core.Greedy.First_attribute);
          ("best-singleton", Rrms_core.Greedy.Best_singleton);
          ("all-seeds", Rrms_core.Greedy.All_seeds);
        ])
    correlations

let run scale =
  discretize scale;
  mrst scale;
  greedy_skyline scale;
  cube scale;
  eps_kernel scale;
  seeds scale
