(* Figure 31 and the two "adopting the state-of-the-art" experiments of
   §6.3, plus the §4.1 GREEDY pathological gadget. *)

open Bench_util

(* Figure 31: the k-dominant-skyline adaptation.  The paper's point is
   a negative one: on all three families the binary search over k
   returns the empty set (k = m-1 already kills everything), and only
   the running time is worth plotting. *)
let fig31 scale =
  header "fig31" "k-dominant skyline adaptation (returns empty sets)";
  let n = match scale with Small -> 4_000 | Paper -> 10_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:4 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun r ->
          let set, t =
            time (fun () -> Rrms_skyline.Kdom.adapt_for_size ~r points)
          in
          row "fig31" ~x:(string_of_int r) ~x_name:"r"
            ~series:("kdom/" ^ correlation_name kind)
            ~time:t ~count:(Array.length set) ())
        [ 2; 4; 6 ])
    correlations

(* §4.1: the gadget on which GREEDY's approximation ratio is unbounded.
   With ε = 1/(2+v), GREEDY r=3 returns regret ~1-2ε while the optimum
   is ~ε. *)
let gadget _scale =
  header "gadget" "§4.1 GREEDY pathological example";
  List.iter
    (fun epsilon ->
      let rng = Rrms_rng.Rng.create (seed_of ("gadget", epsilon)) in
      let d =
        Rrms_dataset.Synthetic.greedy_pathological ~epsilon ~extra:100 rng
      in
      let points = Rrms_dataset.Dataset.rows d in
      let x = Printf.sprintf "%.3f" epsilon in
      let g, t_g = time (fun () -> Rrms_core.Greedy.solve points ~r:3) in
      row "gadget" ~x ~x_name:"eps" ~series:"GREEDY" ~time:t_g
        ~regret:g.Rrms_core.Greedy.regret_lp ();
      let hd, t_hd =
        time (fun () -> Rrms_core.Hd_rrms.solve ~gamma:6 points ~r:3)
      in
      row "gadget" ~x ~x_name:"eps" ~series:"HDRRMS" ~time:t_hd
        ~regret:(exact_regret points hd.Rrms_core.Hd_rrms.selected)
        ();
      (* The optimal-style answer: the near-diagonal corner plus two
         unit vectors. *)
      row "gadget" ~x ~x_name:"eps" ~series:"optimal-style"
        ~regret:(exact_regret points [| 3; 0; 1 |])
        ())
    [ 0.25; 0.1; 0.04 ]

(* §6.3: the approximate convex hull of Bentley-Preparata-Faust finds a
   set LARGER than the true hull — the wrong tool for compaction. *)
let ahull scale =
  header "ahull" "approximate convex hull vs true hull size";
  let n = match scale with Small -> 20_000 | Paper -> 100_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:2 in
      let points = Rrms_dataset.Dataset.rows d in
      let name = correlation_name kind in
      let hull, t_hull =
        time (fun () -> Rrms_geom.Hull2d.size (Rrms_geom.Hull2d.build points))
      in
      row "ahull" ~x:name ~x_name:"data" ~series:"true-hull" ~time:t_hull
        ~count:hull ();
      List.iter
        (fun strips ->
          let approx, t =
            time (fun () ->
                Rrms_core.Approx_hull.maxima_hull_2d ~strips points)
          in
          let selected = approx in
          row "ahull" ~x:name ~x_name:"data"
            ~series:(Printf.sprintf "bpf-%d-strips" strips)
            ~time:t
            ~count:(Array.length approx)
            ~regret:(exact_regret points selected)
            ())
        [ 32; 128 ])
    correlations
