(* Figures 13-30: the high-dimensional experiments.

   Each run times the three competitors on identical data and reports
   the exact (LP-evaluated) maximum regret ratio of every output.
   GREEDY's cost is O(n·r) LPs, so it is capped like in the paper's
   narrative (it "did not scale"); HD-RRMS and HD-GREEDY include their
   internal skyline pass in the reported time, as the paper does. *)

open Bench_util

let greedy_cap = function Small -> 50_000 | Paper -> 200_000

(* Run the three HD algorithms on one configuration and print a row
   per algorithm. *)
let run_trio fig ~scale ~x ~x_name ~suffix ~r ~gamma points =
  let hd, t_hd = time (fun () -> Rrms_core.Hd_rrms.solve ~gamma points ~r) in
  row fig ~x ~x_name ~series:("HDRRMS" ^ suffix) ~time:t_hd
    ~regret:(exact_regret points hd.Rrms_core.Hd_rrms.selected)
    ();
  let hg, t_hg = time (fun () -> Rrms_core.Hd_greedy.solve ~gamma points ~r) in
  row fig ~x ~x_name ~series:("HDGREEDY" ^ suffix) ~time:t_hg
    ~regret:(exact_regret points hg.Rrms_core.Hd_greedy.selected)
    ();
  if Array.length points <= greedy_cap scale then begin
    let g, t_g = time (fun () -> Rrms_core.Greedy.solve points ~r) in
    row fig ~x ~x_name ~series:("GREEDY" ^ suffix) ~time:t_g
      ~regret:g.Rrms_core.Greedy.regret_lp ()
  end
  else
    skipped fig ~x ~x_name ~series:("GREEDY" ^ suffix) ~reason:"lp-cap" ()

(* Figures 13-15 (+16): vary n on the three correlation families. *)
let fig_n scale =
  let ns =
    match scale with
    | Small -> [ 1_000; 5_000; 20_000; 50_000 ]
    | Paper -> [ 10_000; 50_000; 100_000; 250_000 ]
  in
  List.iteri
    (fun idx kind ->
      let fig = Printf.sprintf "fig%d" (13 + idx) in
      header fig
        (Printf.sprintf "HD, time+regret vs n (%s)" (correlation_name kind));
      let biggest = List.fold_left max 0 ns in
      let d = synthetic kind ~n:biggest ~m:4 in
      List.iter
        (fun n ->
          let points =
            Rrms_dataset.Dataset.rows (Rrms_dataset.Dataset.take d n)
          in
          run_trio fig ~scale ~x:(string_of_int n) ~x_name:"n" ~suffix:"" ~r:5
            ~gamma:4 points;
          (* Figure 16: the skyline sizes behind the same runs. *)
          let s, t_s = time (fun () -> Rrms_skyline.Skyline.size_of points) in
          row "fig16" ~x:(string_of_int n) ~x_name:"n"
            ~series:("skyline/" ^ correlation_name kind)
            ~time:t_s ~count:s ())
        ns)
    correlations

(* Figures 17-19 (+20): vary the number of attributes m. *)
let fig_m scale =
  (* m is capped at 7: the γ-grid matrix needs s·(γ+1)^(m-1) cells, and
     at m=8, γ=3 an anti-correlated skyline of ~10K rows would already
     need >1 GB (EXPERIMENTS.md argues the paper's own m=10 sweep cannot
     have been literal either). *)
  let n, gamma, ms =
    match scale with
    | Small -> (2_000, 3, [ 4; 5; 6; 7 ])
    | Paper -> (10_000, 3, [ 4; 5; 6; 7 ])
  in
  List.iteri
    (fun idx kind ->
      let fig = Printf.sprintf "fig%d" (17 + idx) in
      header fig
        (Printf.sprintf "HD, time+regret vs m (%s, γ=%d)"
           (correlation_name kind) gamma);
      List.iter
        (fun m ->
          let d = synthetic kind ~n ~m in
          let points = Rrms_dataset.Dataset.rows d in
          run_trio fig ~scale ~x:(string_of_int m) ~x_name:"m" ~suffix:"" ~r:5
            ~gamma points)
        ms)
    correlations;
  header "fig20" "HD, skyline size vs m";
  List.iter
    (fun kind ->
      List.iter
        (fun m ->
          let d = synthetic kind ~n ~m in
          let points = Rrms_dataset.Dataset.rows d in
          let s, t_s = time (fun () -> Rrms_skyline.Skyline.size_of points) in
          row "fig20" ~x:(string_of_int m) ~x_name:"m"
            ~series:("skyline/" ^ correlation_name kind)
            ~time:t_s ~count:s ())
        (3 :: ms))
    correlations

(* Figures 21-23: vary the output size r. *)
let fig_r scale =
  let n = match scale with Small -> 10_000 | Paper -> 10_000 in
  List.iteri
    (fun idx kind ->
      let fig = Printf.sprintf "fig%d" (21 + idx) in
      header fig
        (Printf.sprintf "HD, time+regret vs r (%s)" (correlation_name kind));
      let d = synthetic kind ~n ~m:4 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun r ->
          run_trio fig ~scale ~x:(string_of_int r) ~x_name:"r" ~suffix:"" ~r
            ~gamma:4 points)
        [ 2; 3; 4; 5; 6; 7 ])
    correlations

(* Figures 24-26: vary the discretization parameter γ (HD-RRMS and
   HD-GREEDY only, as in the paper). *)
let fig_gamma scale =
  let n = 10_000 in
  let gammas =
    match scale with
    | Small -> [ 2; 4; 6; 8; 10 ]
    | Paper -> [ 2; 4; 6; 8; 10; 12; 14 ]
  in
  List.iteri
    (fun idx kind ->
      let fig = Printf.sprintf "fig%d" (24 + idx) in
      header fig
        (Printf.sprintf "HD, impact of γ (%s)" (correlation_name kind));
      let d = synthetic kind ~n ~m:4 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun gamma ->
          let hd, t_hd =
            time (fun () -> Rrms_core.Hd_rrms.solve ~gamma points ~r:5)
          in
          row fig ~x:(string_of_int gamma) ~x_name:"gamma" ~series:"HDRRMS"
            ~time:t_hd
            ~regret:(exact_regret points hd.Rrms_core.Hd_rrms.selected)
            ();
          let hg, t_hg =
            time (fun () -> Rrms_core.Hd_greedy.solve ~gamma points ~r:5)
          in
          row fig ~x:(string_of_int gamma) ~x_name:"gamma" ~series:"HDGREEDY"
            ~time:t_hg
            ~regret:(exact_regret points hg.Rrms_core.Hd_greedy.selected)
            ())
        gammas)
    correlations

(* Figures 27-30: the simulated DOT and NBA datasets. *)
let fig_real scale =
  (* Figure 27: DOT, vary n (m = 4, γ = 6 as in §6.3). *)
  header "fig27" "HD, DOT-sim: time+regret vs n";
  let ns27 =
    match scale with
    | Small -> [ 25_000; 50_000; 100_000 ]
    | Paper -> [ 100_000; 200_000; 400_000 ]
  in
  let dot_full = dot ~n:(List.fold_left max 0 ns27) in
  List.iter
    (fun n ->
      let d = Rrms_dataset.Dataset.take dot_full n in
      let points = project_rows d 4 in
      run_trio "fig27" ~scale ~x:(string_of_int n) ~x_name:"n" ~suffix:"" ~r:5
        ~gamma:6 points)
    ns27;
  (* Figure 28: DOT, vary m (γ = 4 to keep the grid tractable at m=6). *)
  header "fig28" "HD, DOT-sim: time+regret vs m";
  let n28 = match scale with Small -> 25_000 | Paper -> 100_000 in
  let d28 = Rrms_dataset.Dataset.take dot_full n28 in
  List.iter
    (fun m ->
      let points = project_rows d28 m in
      run_trio "fig28" ~scale ~x:(string_of_int m) ~x_name:"m" ~suffix:"" ~r:5
        ~gamma:4 points)
    [ 3; 4; 5; 6 ];
  (* Figure 29: NBA, vary n (m = 4, γ = 6). *)
  header "fig29" "HD, NBA-sim: time+regret vs n";
  let ns29 = [ 5_000; 10_000; 15_000; 20_000 ] in
  let nba_full = nba ~n:(List.fold_left max 0 ns29) in
  List.iter
    (fun n ->
      let d = Rrms_dataset.Dataset.take nba_full n in
      let points = project_rows d 4 in
      run_trio "fig29" ~scale ~x:(string_of_int n) ~x_name:"n" ~suffix:"" ~r:5
        ~gamma:6 points)
    ns29;
  (* Figure 30: NBA, vary m. *)
  header "fig30" "HD, NBA-sim: time+regret vs m";
  let d30 = Rrms_dataset.Dataset.take nba_full 10_000 in
  List.iter
    (fun m ->
      let points = project_rows d30 m in
      run_trio "fig30" ~scale ~x:(string_of_int m) ~x_name:"m" ~suffix:"" ~r:5
        ~gamma:4 points)
    [ 3; 4; 5; 6 ]
