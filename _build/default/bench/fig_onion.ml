(* The introduction's motivating trade-off, measured: ONION's layer-1
   hull answers top-1 exactly but stores the whole hull; an RRMS set
   stores r tuples and pays a bounded regret.  Also times index
   construction and per-query latency vs a full scan. *)

open Bench_util

let run scale =
  header "onion" "index size vs regret: ONION layer 1 vs RRMS sets";
  let target = match scale with Small -> 2_000 | Paper -> 8_000 in
  let rng = Rrms_rng.Rng.create (seed_of "onion") in
  let d = Rrms_dataset.Synthetic.skyline_only_2d rng ~target in
  let points = Rrms_dataset.Dataset.rows d in
  (* ONION: exact answers, hull-sized footprint. *)
  let onion, t_build =
    time (fun () -> Rrms_core.Onion.build ~max_layers:1 points)
  in
  row "onion" ~x:"onion-layer1" ~x_name:"index" ~series:"size" ~time:t_build
    ~count:(Rrms_core.Onion.size_upto onion 1)
    ~regret:0. ();
  (* RRMS at growing budgets. *)
  List.iter
    (fun r ->
      let res, t = time (fun () -> Rrms_core.Rrms2d.solve points ~r) in
      row "onion"
        ~x:(Printf.sprintf "rrms-r%d" r)
        ~x_name:"index" ~series:"size" ~time:t
        ~count:(Array.length res.Rrms_core.Rrms2d.selected)
        ~regret:res.Rrms_core.Rrms2d.regret ())
    [ 2; 4; 8; 16; 32 ];
  (* Query latency: ONION top-1 (binary search) vs full scan, averaged
     over many random preferences. *)
  let queries = 10_000 in
  let probes =
    Array.init queries (fun i ->
        Rrms_geom.Polar.weight_of_angle_2d
          (Float.pi /. 2. *. float_of_int (i + 1) /. float_of_int (queries + 2)))
  in
  let (), t_index =
    time (fun () ->
        Array.iter (fun w -> ignore (Rrms_core.Onion.top1 onion w)) probes)
  in
  let (), t_scan =
    time (fun () ->
        Array.iter
          (fun w -> ignore (Rrms_geom.Vec.max_score_index w points))
          probes)
  in
  row "onion" ~x:"query-top1-x10k" ~x_name:"op" ~series:"onion-index"
    ~time:t_index ();
  row "onion" ~x:"query-top1-x10k" ~x_name:"op" ~series:"full-scan"
    ~time:t_scan ()
