(* Shared plumbing for the figure-reproduction harness: wall-clock
   timing, dataset construction with fixed seeds, and the tabular output
   format every figure prints. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Every figure prints rows of the form
     [fig8] x=20000 series=2DRRMS/anti time=0.123 regret=0.0456
   so the whole run greps/plots cleanly. *)
let row fig ~x ?(x_name = "x") ~series ?time ?regret ?count () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "[%s] %s=%s series=%s" fig x_name x series);
  Option.iter (fun t -> Buffer.add_string buf (Printf.sprintf " time=%.4f" t)) time;
  Option.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf " regret=%.4f" e))
    regret;
  Option.iter (fun c -> Buffer.add_string buf (Printf.sprintf " count=%d" c)) count;
  print_endline (Buffer.contents buf)

let skipped fig ~x ?(x_name = "x") ~series ~reason () =
  Printf.printf "[%s] %s=%s series=%s skipped=%s\n" fig x_name x series reason

let header fig title = Printf.printf "\n== %s: %s ==\n" fig title

(* Deterministic seed per (figure, dataset) so re-runs are identical. *)
let seed_of tag = Hashtbl.hash tag land 0xFFFFFF

type correlation = [ `Correlated | `Independent | `Anticorrelated ]

let correlation_name = function
  | `Correlated -> "corr"
  | `Independent -> "indep"
  | `Anticorrelated -> "anti"

let correlations : correlation list =
  [ `Correlated; `Independent; `Anticorrelated ]

let synthetic kind ~n ~m =
  let rng = Rrms_rng.Rng.create (seed_of ("syn", correlation_name kind, m)) in
  Rrms_dataset.Synthetic.of_correlation kind rng ~n ~m

let nba ~n =
  Rrms_dataset.Realistic.nba (Rrms_rng.Rng.create (seed_of "nba")) ~n

let dot ~n =
  Rrms_dataset.Realistic.dot (Rrms_rng.Rng.create (seed_of "dot")) ~n

let airline ~n =
  Rrms_dataset.Realistic.airline (Rrms_rng.Rng.create (seed_of "airline")) ~n

let normalized_rows d =
  Rrms_dataset.Dataset.rows (Rrms_dataset.Dataset.normalize d)

let project_rows d m =
  normalized_rows (Rrms_dataset.Dataset.project d (Array.init m Fun.id))

(* Exact regret of a selection, dispatching on dimension. *)
let exact_regret points selected =
  if Array.length selected = 0 then 1.
  else if Array.length points.(0) = 2 then
    Rrms_core.Regret.exact_2d ~selected points
  else Rrms_core.Regret.exact_lp ~selected points

(* Scaled-down experiment sizes.  [Small] is the default (full run of
   every figure in minutes); [Paper] moves closer to the published
   sizes where the asymptotics allow. *)
type scale = Small | Paper

let scale_of_string = function
  | "small" -> Ok Small
  | "paper" -> Ok Paper
  | s -> Error (Printf.sprintf "unknown scale %S (use small | paper)" s)
