bench/bench_util.ml: Array Buffer Fun Hashtbl Option Printf Rrms_core Rrms_dataset Rrms_rng Unix
