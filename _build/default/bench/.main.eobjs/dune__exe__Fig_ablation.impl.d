bench/fig_ablation.ml: Array Bench_util List Printf Rrms_core Rrms_dataset Rrms_rng
