bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Rrms_core Rrms_geom Rrms_lp Rrms_rng Rrms_setcover Rrms_skyline Staged Test Time Toolkit
