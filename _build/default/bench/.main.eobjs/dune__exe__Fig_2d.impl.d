bench/fig_2d.ml: Array Bench_util List Rrms_core Rrms_dataset Rrms_rng Rrms_skyline
