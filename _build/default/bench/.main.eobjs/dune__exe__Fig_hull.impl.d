bench/fig_hull.ml: Bench_util List Rrms_core Rrms_dataset Rrms_rng
