bench/fig_misc.ml: Array Bench_util List Printf Rrms_core Rrms_dataset Rrms_geom Rrms_rng Rrms_skyline
