bench/main.mli:
