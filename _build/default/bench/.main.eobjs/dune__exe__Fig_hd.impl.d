bench/fig_hd.ml: Array Bench_util List Printf Rrms_core Rrms_dataset Rrms_skyline
