bench/fig_onion.ml: Array Bench_util Float List Printf Rrms_core Rrms_dataset Rrms_geom Rrms_rng
