bench/main.ml: Arg Bench_util Fig_2d Fig_ablation Fig_hd Fig_hull Fig_misc Fig_onion List Micro Printf String Unix
