(* Figures 8-12: the two-dimensional experiments.

   Following §6.1, the 2D-RRMS time is the SUM of a Block-Nested-Loop
   skyline pass (the paper's preprocessing) and the algorithm proper;
   Sweeping-Line works on the raw points.  Sweeping-Line is Θ(n²), so
   it is only run up to a cap and reported as skipped beyond it — the
   paper's own figures stop timing it for the same reason (tens of
   thousands of seconds). *)

open Bench_util

let sweepline_cap = function Small -> 20_000 | Paper -> 40_000

let run_pair fig ~scale ~series_suffix ~r points =
  let n = Array.length points in
  let x = string_of_int n in
  (* 2D-RRMS = BNL skyline + the published DP; the corrected exact
     variant (DESIGN.md §5) is reported alongside. *)
  let _, t_bnl = time (fun () -> Rrms_skyline.Skyline.bnl points) in
  let res, t_dp = time (fun () -> Rrms_core.Rrms2d.solve points ~r) in
  row fig ~x ~x_name:"n"
    ~series:("2DRRMS" ^ series_suffix)
    ~time:(t_bnl +. t_dp) ~regret:res.Rrms_core.Rrms2d.regret ();
  let ex, t_ex = time (fun () -> Rrms_core.Rrms2d.solve_exact points ~r) in
  row fig ~x ~x_name:"n"
    ~series:("2DRRMS-exact" ^ series_suffix)
    ~time:(t_bnl +. t_ex) ~regret:ex.Rrms_core.Rrms2d.regret ();
  if n <= sweepline_cap scale then begin
    let sl, t_sl = time (fun () -> Rrms_core.Sweepline.solve points ~r) in
    row fig ~x ~x_name:"n"
      ~series:("SweepingLine" ^ series_suffix)
      ~time:t_sl ~regret:sl.Rrms_core.Sweepline.regret ()
  end
  else
    skipped fig ~x ~x_name:"n"
      ~series:("SweepingLine" ^ series_suffix)
      ~reason:"quadratic-cap" ()

(* Figure 8: time vs n on the three correlation families. *)
let fig8 scale =
  header "fig8" "2D, time vs dataset size (3 correlation families)";
  let ns =
    match scale with
    | Small -> [ 5_000; 20_000; 50_000; 200_000 ]
    | Paper -> [ 5_000; 20_000; 50_000; 200_000; 500_000; 1_000_000 ]
  in
  List.iter
    (fun kind ->
      let biggest = List.fold_left max 0 ns in
      let d = synthetic kind ~n:biggest ~m:2 in
      List.iter
        (fun n ->
          let points =
            Rrms_dataset.Dataset.rows (Rrms_dataset.Dataset.take d n)
          in
          run_pair "fig8" ~scale
            ~series_suffix:("/" ^ correlation_name kind)
            ~r:5 points)
        ns)
    correlations

(* Figure 9: time vs output size r (n fixed). *)
let fig9 scale =
  header "fig9" "2D, time vs output size r";
  let n = match scale with Small -> 5_000 | Paper -> 40_000 in
  List.iter
    (fun kind ->
      let d = synthetic kind ~n ~m:2 in
      let points = Rrms_dataset.Dataset.rows d in
      List.iter
        (fun r ->
          let _, t_bnl = time (fun () -> Rrms_skyline.Skyline.bnl points) in
          let res, t_dp = time (fun () -> Rrms_core.Rrms2d.solve points ~r) in
          row "fig9" ~x:(string_of_int r) ~x_name:"r"
            ~series:("2DRRMS/" ^ correlation_name kind)
            ~time:(t_bnl +. t_dp) ~regret:res.Rrms_core.Rrms2d.regret ();
          let ex, t_ex =
            time (fun () -> Rrms_core.Rrms2d.solve_exact points ~r)
          in
          row "fig9" ~x:(string_of_int r) ~x_name:"r"
            ~series:("2DRRMS-exact/" ^ correlation_name kind)
            ~time:(t_bnl +. t_ex) ~regret:ex.Rrms_core.Rrms2d.regret ();
          if n <= sweepline_cap scale then begin
            let sl, t_sl = time (fun () -> Rrms_core.Sweepline.solve points ~r) in
            row "fig9" ~x:(string_of_int r) ~x_name:"r"
              ~series:("SweepingLine/" ^ correlation_name kind)
              ~time:t_sl ~regret:sl.Rrms_core.Sweepline.regret ()
          end)
        [ 3; 4; 5; 6; 7; 8; 9; 10 ])
    correlations

(* Figure 10: skyline-only datasets (every tuple on the skyline). *)
let fig10 scale =
  header "fig10" "2D, skyline-only datasets: time vs skyline size";
  let sizes =
    match scale with
    | Small -> [ 300; 600; 1_200; 2_400; 5_000 ]
    | Paper -> [ 1_212; 2_431; 3_782; 5_335; 8_488; 12_032 ]
  in
  List.iter
    (fun target ->
      let rng = Rrms_rng.Rng.create (seed_of ("fig10", target)) in
      let d = Rrms_dataset.Synthetic.skyline_only_2d rng ~target in
      let points = Rrms_dataset.Dataset.rows d in
      let x = string_of_int target in
      let res, t_dp = time (fun () -> Rrms_core.Rrms2d.solve points ~r:5) in
      row "fig10" ~x ~x_name:"s" ~series:"2DRRMS" ~time:t_dp
        ~regret:res.Rrms_core.Rrms2d.regret ();
      let ex, t_ex = time (fun () -> Rrms_core.Rrms2d.solve_exact points ~r:5) in
      row "fig10" ~x ~x_name:"s" ~series:"2DRRMS-exact" ~time:t_ex
        ~regret:ex.Rrms_core.Rrms2d.regret ();
      let sl, t_sl = time (fun () -> Rrms_core.Sweepline.solve points ~r:5) in
      row "fig10" ~x ~x_name:"s" ~series:"SweepingLine" ~time:t_sl
        ~regret:sl.Rrms_core.Sweepline.regret ())
    sizes

(* Figure 11: simulated NBA restricted to two attributes. *)
let fig11 scale =
  header "fig11" "2D, NBA-sim (pts, reb): time vs n";
  let ns =
    match scale with
    | Small -> [ 5_000; 10_000; 15_000; 20_000 ]
    | Paper -> [ 5_000; 10_000; 15_000; 20_000 ]
  in
  let biggest = List.fold_left max 0 ns in
  let full = nba ~n:biggest in
  List.iter
    (fun n ->
      let d = Rrms_dataset.Dataset.take full n in
      let points = project_rows d 2 in
      run_pair "fig11" ~scale ~series_suffix:"" ~r:5 points)
    ns

(* Figure 12: simulated Airline at larger scale. *)
let fig12 scale =
  header "fig12" "2D, Airline-sim: time vs n";
  let ns =
    match scale with
    | Small -> [ 100_000; 250_000; 500_000 ]
    | Paper -> [ 250_000; 500_000; 1_000_000; 2_000_000 ]
  in
  let biggest = List.fold_left max 0 ns in
  let full = airline ~n:biggest in
  List.iter
    (fun n ->
      let d = Rrms_dataset.Dataset.take full n in
      let points = normalized_rows d in
      run_pair "fig12" ~scale ~series_suffix:"" ~r:5 points)
    ns
