type t = {
  name : string;
  attributes : string array;
  data : Rrms_geom.Vec.t array;
}

let bad_value v =
  if Float.is_nan v then Some "NaN"
  else if not (Float.is_finite v) then Some "non-finite"
  else if v < 0. then Some "negative"
  else None

let create ?(name = "dataset") ~attributes data =
  let m = Array.length attributes in
  if m = 0 then Rrms_guard.Guard.Error.invalid_input "Dataset.create: no attributes";
  Array.iteri
    (fun i row ->
      if Array.length row <> m then
        Rrms_guard.Guard.Error.invalid_input
          (Printf.sprintf "Dataset.create: row %d has %d values, expected %d" i
             (Array.length row) m);
      Array.iteri
        (fun j v ->
          match bad_value v with
          | Some what ->
              Rrms_guard.Guard.Error.invalid_input ~column:attributes.(j)
                (Printf.sprintf "Dataset.create: row %d has a %s value" i what)
          | None -> ())
        row)
    data;
  { name; attributes; data }

let name t = t.name
let attributes t = Array.copy t.attributes
let size t = Array.length t.data
let dim t = Array.length t.attributes
let row t i = t.data.(i)
let rows t = Array.copy t.data
let value t i j = t.data.(i).(j)

let project t cols =
  let m = dim t in
  Array.iter
    (fun j ->
      if j < 0 || j >= m then invalid_arg "Dataset.project: bad column index")
    cols;
  {
    name = t.name;
    attributes = Array.map (fun j -> t.attributes.(j)) cols;
    data = Array.map (fun r -> Array.map (fun j -> r.(j)) cols) t.data;
  }

let take t k =
  let k = min k (size t) in
  { t with data = Array.sub t.data 0 k }

let select t idxs =
  { t with data = Array.map (fun i -> t.data.(i)) idxs }

let attribute_max t j =
  Array.fold_left (fun acc r -> Float.max acc r.(j)) neg_infinity t.data

let normalize t =
  if size t = 0 then t
  else begin
    let m = dim t in
    let maxima = Array.init m (fun j -> attribute_max t j) in
    let scale = Array.map (fun mx -> if mx > 0. then 1. /. mx else 1.) maxima in
    {
      t with
      data = Array.map (fun r -> Array.mapi (fun j v -> v *. scale.(j)) r) t.data;
    }
  end

let to_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (Array.to_list t.attributes));
      output_char oc '\n';
      Array.iter
        (fun r ->
          let cells = Array.to_list (Array.map (Printf.sprintf "%.17g") r) in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        t.data)

type load_mode = Strict | Lenient

type load_warning = { line : int; column : string option; reason : string }

(* Parse one data line into a validated row, or explain what is wrong
   with it.  The column in the report is the attribute name when the
   offending cell is identifiable. *)
let parse_line ~attributes ~m line =
  let cells = String.split_on_char ',' line in
  if List.length cells <> m then
    Error
      ( None,
        Printf.sprintf "has %d cells, expected %d" (List.length cells) m )
  else begin
    let row = Array.make m 0. in
    let bad = ref None in
    List.iteri
      (fun j c ->
        if !bad = None then
          match float_of_string_opt (String.trim c) with
          | None ->
              bad :=
                Some
                  ( Some attributes.(j),
                    Printf.sprintf "not a number: %s" (String.trim c) )
          | Some v -> (
              match bad_value v with
              | Some what ->
                  bad := Some (Some attributes.(j), what ^ " value")
              | None -> row.(j) <- v))
      cells;
    match !bad with None -> Ok row | Some e -> Error e
  end

(* Header validation runs before any data row is read, so a bad header
   fails fast instead of after scanning (and possibly rejecting) the
   whole file: names must be non-empty and unique, and a header whose
   every cell parses as a number is almost certainly a headerless data
   file — rejecting it beats silently treating row 1 as column names. *)
let validate_header attributes =
  let m = Array.length attributes in
  if m = 0 || (m = 1 && attributes.(0) = "") then
    Rrms_guard.Guard.Error.invalid_input ~line:1
      "Dataset.of_csv: empty header line";
  let seen = Hashtbl.create m in
  Array.iteri
    (fun j a ->
      if a = "" then
        Rrms_guard.Guard.Error.invalid_input ~line:1
          ~column:(string_of_int (j + 1))
          "Dataset.of_csv: empty attribute name in header";
      match Hashtbl.find_opt seen a with
      | Some j' ->
          Rrms_guard.Guard.Error.invalid_input ~line:1 ~column:a
            (Printf.sprintf
               "Dataset.of_csv: duplicate attribute name (columns %d and %d)"
               (j' + 1) (j + 1))
      | None -> Hashtbl.add seen a j)
    attributes;
  if Array.for_all (fun a -> float_of_string_opt a <> None) attributes then
    Rrms_guard.Guard.Error.invalid_input ~line:1
      "Dataset.of_csv: header looks like a data row (every cell is a \
       number) — is the header line missing?"

let of_csv_report ?name:(nm = "") ?(mode = Strict) path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | Some line -> line
        | None ->
            Rrms_guard.Guard.Error.invalid_input ~line:1
              "Dataset.of_csv: empty file"
      in
      let attributes =
        Array.of_list
          (List.map String.trim
             (String.split_on_char ',' (String.trim header)))
      in
      validate_header attributes;
      let m = Array.length attributes in
      let rows = ref [] in
      let warnings = ref [] in
      let lineno = ref 1 in
      let rec read () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            incr lineno;
            let line = String.trim line in
            if line <> "" then begin
              match parse_line ~attributes ~m line with
              | Ok row -> rows := row :: !rows
              | Error (column, reason) -> (
                  match mode with
                  | Strict ->
                      Rrms_guard.Guard.Error.invalid_input ~line:!lineno
                        ?column
                        (Printf.sprintf "Dataset.of_csv: %s" reason)
                  | Lenient ->
                      warnings := { line = !lineno; column; reason } :: !warnings)
            end;
            read ()
      in
      read ();
      (* A dataset with no tuples is useless to every consumer (the
         solvers all reject empty input) — report it as Invalid_input
         here, where the line number and the dropped-row count are
         known, instead of handing back a 0-tuple dataset. *)
      if !rows = [] then
        Rrms_guard.Guard.Error.invalid_input ~line:!lineno
          (match !warnings with
          | [] -> "Dataset.of_csv: no data rows after the header"
          | ws ->
              Printf.sprintf
                "Dataset.of_csv: no valid data rows (all %d dropped)"
                (List.length ws));
      let nm = if nm = "" then Filename.remove_extension (Filename.basename path) else nm in
      ( create ~name:nm ~attributes (Array.of_list (List.rev !rows)),
        List.rev !warnings ))

let of_csv ?name path = fst (of_csv_report ?name ~mode:Strict path)

let pp ppf t =
  Format.fprintf ppf "%s: %d tuples x %d attributes" t.name (size t) (dim t)
