(** In-memory databases of numeric tuples.

    A dataset is an immutable collection of [n] tuples over [m] named
    numeric attributes, all non-negative and "higher is better" — the data
    model of the paper (§2).  Tuples are stored as one [float array] per
    row, shared with {!Rrms_geom.Vec.t} so algorithms can score rows with
    no conversion. *)

type t

val create : ?name:string -> attributes:string array -> Rrms_geom.Vec.t array -> t
(** [create ~attributes rows] builds a dataset.  Every row must have
    length [Array.length attributes] and only finite, non-negative
    values.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] (with the
    offending row and attribute) otherwise, or if there are no
    attributes. *)

val name : t -> string
val attributes : t -> string array
val size : t -> int
(** Number of tuples, [n]. *)

val dim : t -> int
(** Number of attributes, [m]. *)

val row : t -> int -> Rrms_geom.Vec.t
(** [row d i] is the i-th tuple.  The array is shared, do not mutate. *)

val rows : t -> Rrms_geom.Vec.t array
(** All rows; the outer array is fresh, the rows are shared. *)

val value : t -> int -> int -> float
(** [value d i j] is attribute [j] of tuple [i]. *)

val project : t -> int array -> t
(** [project d cols] keeps only the given attribute columns (in the given
    order).  @raise Invalid_argument on bad column indices. *)

val take : t -> int -> t
(** [take d k] is the dataset of the first [min k n] tuples.  Used by the
    vary-[n] experiments, which grow a prefix of one generated dataset. *)

val select : t -> int array -> t
(** [select d idxs] is the sub-dataset of the given row indices. *)

val normalize : t -> t
(** Scale each attribute to \[0, 1\] by dividing by its maximum (columns
    with maximum 0 are left untouched).  Regret ratios are invariant
    under per-dataset uniform scaling but not per-attribute scaling, so
    experiments normalize first, as is standard for this literature. *)

val attribute_max : t -> int -> float
(** Maximum of a column. *)

val to_csv : t -> string -> unit
(** [to_csv d path] writes a header line with attribute names and one
    comma-separated line per tuple. *)

type load_mode =
  | Strict  (** reject the file on the first malformed row *)
  | Lenient  (** drop malformed rows and report them as warnings *)

type load_warning = {
  line : int;  (** 1-based line number in the file *)
  column : string option;  (** offending attribute, when identifiable *)
  reason : string;
}

val of_csv_report :
  ?name:string -> ?mode:load_mode -> string -> t * load_warning list
(** [of_csv_report path] reads a CSV file (header required).  The
    header is validated {e before} any data row is read — attribute
    names must be non-empty and unique, and a header whose every cell
    parses as a number is rejected as a missing-header file — so a bad
    header fails fast instead of after scanning the whole file.  A row
    is malformed when its cell count differs from the header's, a cell
    is not a number, or a value is NaN, ±inf or negative.  Under
    [Strict] (the default) the first malformed row raises
    [Guard_error (Invalid_input _)] carrying its line number and
    attribute; under [Lenient] malformed rows are dropped and returned
    as warnings in file order (the warning list is empty under
    [Strict]).
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on an
    empty file, a bad header, any malformed row in [Strict] mode, or
    when no data row survives (a 0-tuple dataset is never returned). *)

val of_csv : ?name:string -> string -> t
(** [of_csv path] is [of_csv_report ~mode:Strict path] without the
    (necessarily empty) warning list. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary: name, [n], [m]. *)
