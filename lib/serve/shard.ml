module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Skyline = Rrms_skyline.Skyline
module Discretize = Rrms_core.Discretize
module Regret_matrix = Rrms_core.Regret_matrix
module Hd_rrms = Rrms_core.Hd_rrms
module Hd_greedy = Rrms_core.Hd_greedy
module Delta = Rrms_core.Delta

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

module Metrics = struct
  let c ?(deterministic = true) name help =
    Obs.Counter.make ~deterministic ~help name

  let fanouts =
    c "rrms_shard_fanout_tasks_total"
      "per-shard tasks dispatched by shard fan-outs"

  let skyline_merges =
    c "rrms_shard_skyline_merges_total"
      "merged skylines assembled from per-shard skylines"

  let matrix_merges =
    c "rrms_shard_matrix_merges_total"
      "merged regret matrices assembled from per-shard row blocks"

  let certified =
    c "rrms_shard_certified_queries_total"
      "queries answered through the certified (lossless) merge path"

  let union =
    c "rrms_shard_union_queries_total"
      "queries answered through the union (bounded-regret) merge path"

  let gather =
    c "rrms_shard_gather_queries_total"
      "queries answered by the coordinator alone (non-decomposable algo)"

  let worker_redials =
    c ~deterministic:false "rrms_shard_worker_redials_total"
      "router reconnections to a shard worker"

  let worker_failures =
    c ~deterministic:false "rrms_shard_worker_failures_total"
      "router fan-out legs that failed after the redial retry"

  let mutations =
    c "rrms_shard_mutations_total"
      "mutation batches fanned out across the in-process partitions"

  let stale_fallbacks =
    c ~deterministic:false "rrms_shard_stale_fallbacks_total"
      "queries answered by the coordinator alone after racing a mutation"

  let straggler_gap =
    Obs.Floatc.make ~deterministic:false
      ~help:"accumulated slowest-minus-fastest leg time over router fan-outs"
      "rrms_shard_fanout_straggler_seconds_total"
end

(* Annotate an outcome's cost provenance with the merge path that
   produced it — ["certified"] / ["union"] / ["gather"] — so the
   per-answer cost echo and the access log both say how the cluster
   assembled the answer. *)
let tag_merge path = function
  | Ok o -> Ok { o with Store.cost = o.Store.cost @ [ ("merge", Json.Str path) ] }
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Partition arithmetic                                                *)
(* ------------------------------------------------------------------ *)

(* Round-robin: shard [s] of [count] owns global rows ≡ s (mod count) in
   ascending order, so shard-local row [l] is global row [s + l·count].
   The same arithmetic lives in [Store.load ?shard] (the slice a worker
   process takes); the decomposability tests assert they agree. *)
let partition ~shards n =
  if shards < 1 then
    Guard.Error.invalid_input "Shard.partition: shards must be >= 1";
  if n < 0 then Guard.Error.invalid_input "Shard.partition: negative size";
  Array.init shards (fun s ->
      let len = max 0 ((n - s + shards - 1) / shards) in
      Array.init len (fun k -> s + (k * shards)))

(* ------------------------------------------------------------------ *)
(* In-process sharded store                                            *)
(* ------------------------------------------------------------------ *)

type part = {
  members : int array array;
      (* shard → its global row indices, ascending; [members.(s).(l)] is
         the global index of sub-store row [l] *)
  sub_keys : string option array;
      (* per-shard sub-store content key; [None] for an empty slice
         (n < shards) *)
}

type t = {
  shards : int;
  domains : int;
  coordinator : Store.t;
  stores : Store.t array;
  (* Serializes dataset registration and teardown end-to-end, so the
     coordinator entry and its N sub-store entries stay in lockstep
     (exactly one sub reference per resident coordinator entry).  Held
     across Store calls — safe because no store ever calls back into
     the shard layer. *)
  load_lock : Mutex.t;
  (* Guards [parts] only; never held across a Store call. *)
  p_lock : Mutex.t;
  parts : (string, part) Hashtbl.t;
}

let create ?domains ?max_inflight ?max_queue ?persist ~shards () =
  if shards < 1 then
    Guard.Error.invalid_input "Shard.create: shards must be >= 1";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> Guard.Error.invalid_input "Shard.create: domains must be >= 1"
    | None -> Rrms_parallel.Pool.default_size ()
  in
  {
    shards;
    domains;
    coordinator = Store.create ~domains ?max_inflight ?max_queue ?persist ();
    (* Each sub-store gets its own admission slot: one in-flight artifact
       build per shard, a small queue for the fan-out threads. *)
    stores =
      Array.init shards (fun _ ->
          Store.create ~domains ~max_inflight:1 ~max_queue:32 ());
    load_lock = Mutex.create ();
    p_lock = Mutex.create ();
    parts = Hashtbl.create 8;
  }

let store t = t.coordinator
let shards t = t.shards

let register t ~warnings d =
  with_lock t.load_lock (fun () ->
      let l = Store.add t.coordinator d in
      let key = l.Store.key in
      let known = with_lock t.p_lock (fun () -> Hashtbl.mem t.parts key) in
      if not known then begin
        let members = partition ~shards:t.shards (Dataset.size d) in
        let sub_keys =
          Array.mapi
            (fun s idxs ->
              if Array.length idxs = 0 then None
              else
                Some (Store.add t.stores.(s) (Dataset.select d idxs)).Store.key)
            members
        in
        with_lock t.p_lock (fun () ->
            Hashtbl.replace t.parts key { members; sub_keys })
      end;
      { l with Store.warnings })

let load t ?name ?(normalize = false) ?(lenient = false) path =
  let mode = if lenient then Dataset.Lenient else Dataset.Strict in
  let d, warns = Dataset.of_csv_report ?name ~mode path in
  let d = if normalize then Dataset.normalize d else d in
  register t ~warnings:(List.length warns) d

let add t d = register t ~warnings:0 d

(* Drop the partition record and its sub-store references — called with
   [load_lock] held, after the coordinator entry was freed. *)
let drop_parts t key =
  let part =
    with_lock t.p_lock (fun () ->
        match Hashtbl.find_opt t.parts key with
        | Some p ->
            Hashtbl.remove t.parts key;
            Some p
        | None -> None)
  in
  Option.iter
    (fun p ->
      Array.iteri
        (fun s k ->
          match k with
          | Some k -> ignore (Store.release t.stores.(s) k : Store.release)
          | None -> ())
        p.sub_keys)
    part

let release t handle =
  with_lock t.load_lock (fun () ->
      match Store.release t.coordinator handle with
      | Store.Not_loaded -> Store.Not_loaded
      | Store.Released { key; remaining = _; freed } as res ->
          if freed then drop_parts t key;
          res)

(* A pinned query can outlive the last [release]: the coordinator frees
   the entry at unpin time, and this sweeps the partition record after
   the fact. *)
let cleanup_if_freed t key =
  with_lock t.load_lock (fun () ->
      if Store.resolve t.coordinator key = None then drop_parts t key)

(* ------------------------------------------------------------------ *)
(* Fan-out                                                             *)
(* ------------------------------------------------------------------ *)

exception Sub_overloaded
exception Deadline

(* The partition record a fan-out is holding was superseded by a racing
   mutation (sub-store re-keyed, slice lengths changed).  Never an
   error: the coordinator still holds the full dataset, so the query
   falls back to the gather path — exact, merely unassisted. *)
exception Stale_partition

(* One systhread per shard; every task's exception is captured and
   rethrown after the join (lowest shard first), so a failed leg never
   leaks a running thread. *)
let fan_out t f =
  Obs.Counter.add Metrics.fanouts t.shards;
  let out = Array.make t.shards None in
  let threads =
    Array.init t.shards (fun s ->
        Thread.create
          (fun () -> out.(s) <- Some (try Ok (f s) with exn -> Error exn))
          ())
  in
  Array.iter Thread.join threads;
  Array.map
    (function
      | Some r -> r
      | None -> Error (Failure "Shard.fan_out: task produced no result"))
    out

let join results =
  Array.iter (function Ok _ -> () | Error e -> raise e) results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let budget_of (q : Protocol.query) =
  match (q.Protocol.timeout, q.Protocol.max_cells, q.Protocol.max_probes) with
  | None, None, None -> Guard.Budget.unlimited
  | timeout, max_cells, max_probes ->
      Guard.Budget.create ?timeout ?max_cells ?max_probes ()

(* Pass the deadline through honestly: the prep already spent part of
   the budget, so the store-level solve gets only what remains. *)
let remaining_query ~guard (q : Protocol.query) =
  match q.Protocol.timeout with
  | None -> q
  | Some _ -> (
      match Guard.Budget.remaining guard with
      | Some rem when rem <= 0. -> raise Deadline
      | Some rem -> { q with Protocol.timeout = Some rem }
      | None -> q)

(* ------------------------------------------------------------------ *)
(* Certified merge                                                     *)
(* ------------------------------------------------------------------ *)

(* The per-shard half of the fan-out: the sub-store's skyline artifact,
   mapped back to global indices, under the sub-store's admission
   slot. *)
let sub_skyline t part s =
  match part.sub_keys.(s) with
  | None -> [||]
  | Some key -> (
      let st = t.stores.(s) in
      match Store.pin st key with
      | None ->
          (* Released by a racing mutation's re-partition. *)
          raise Stale_partition
      | Some h ->
          Fun.protect
            ~finally:(fun () -> Store.unpin st h)
            (fun () ->
              match
                Store.with_admission st (fun () -> Store.skyline_of st h)
              with
              | Error `Overloaded -> raise Sub_overloaded
              | Ok local ->
                  let idxs = part.members.(s) in
                  let len = Array.length idxs in
                  Array.map
                    (fun l ->
                      if l < 0 || l >= len then raise Stale_partition;
                      idxs.(l))
                    local))

(* Install the merged skyline and the merged γ-matrix into the
   coordinator entry, so [Store.query_pinned] then takes its ordinary
   artifact-hit path into [solve_prepared] — the same code path over
   bit-identical inputs as the unsharded store, hence a byte-identical
   answer (the Exact merge certificate). *)
let prepare_certified t h part (q : Protocol.query) ~guard =
  (* One coherent view of the entry: artifacts computed below describe
     exactly this generation's rows, and the [expect_generation] guard
     on both preloads drops them silently if a mutation lands first
     (the query then solves on the live entry — exact, unassisted). *)
  let _, generation, _, rows = Store.pinned_snapshot h in
  let n = Array.length rows in
  let _, m = Store.pinned_dims h in
  (* Row → owning shard, from the partition record itself.  Freshly
     registered datasets are round-robin (global ≡ s mod N) but a
     mutated partition is not: inserts land on the shard that was
     shortest at insert time, so membership must be looked up, never
     recomputed from the arithmetic. *)
  let owner = Array.make n (-1) in
  Array.iteri
    (fun s idxs ->
      Array.iter (fun g -> if g >= 0 && g < n then owner.(g) <- s) idxs)
    part.members;
  let merged =
    let sky_cached, _ = Store.artifacts_cached h ~gamma:q.Protocol.gamma in
    if sky_cached then Store.skyline_of t.coordinator h
    else begin
      let parts_global = join (fan_out t (fun s -> sub_skyline t part s)) in
      Obs.Counter.incr Metrics.skyline_merges;
      let merged =
        Skyline.merge_partitions ~domains:t.domains rows parts_global
      in
      ignore
        (Store.preload_skyline ~expect_generation:generation t.coordinator h
           merged
          : bool);
      merged
    end
  in
  (match Guard.Budget.deadline_expired guard with
  | Some _ -> raise Deadline
  | None -> ());
  let gamma_used = Store.effective_gamma ~rows:(Array.length merged) ~m q in
  let _, mat_cached = Store.artifacts_cached h ~gamma:gamma_used in
  if not mat_cached then begin
    let funcs = Store.grid_of t.coordinator ~m ~gamma:gamma_used in
    (* Merged-skyline rows grouped by owning shard: each shard scores
       and fills exactly the rows it owns, in ascending row order. *)
    let rows_of = Array.make t.shards [] in
    let nrows = Array.length merged in
    for pos = nrows - 1 downto 0 do
      let gi = merged.(pos) in
      if gi < 0 || gi >= n || owner.(gi) < 0 then raise Stale_partition;
      let s = owner.(gi) in
      rows_of.(s) <- (pos, gi) :: rows_of.(s)
    done;
    let bests =
      join
        (fan_out t (fun s ->
             match rows_of.(s) with
             | [] -> None
             | l ->
                 let pts =
                   Array.of_list (List.map (fun (_, gi) -> rows.(gi)) l)
                 in
                 Some (Regret_matrix.best_scores ~domains:t.domains ~funcs pts)))
    in
    let best =
      Regret_matrix.merge_best (List.filter_map Fun.id (Array.to_list bests))
    in
    let cells = Array.make (nrows * Array.length funcs) 0. in
    ignore
      (join
         (fan_out t (fun s ->
              List.iter
                (fun (pos, gi) ->
                  Regret_matrix.fill_row ~funcs ~best cells ~row:pos rows.(gi))
                rows_of.(s))));
    Obs.Counter.incr Metrics.matrix_merges;
    ignore
      (Store.preload_matrix ~expect_generation:generation t.coordinator h
         ~gamma:gamma_used
         (Regret_matrix.import ~rows:nrows ~best ~cells)
        : bool)
  end

(* ------------------------------------------------------------------ *)
(* Union merge                                                         *)
(* ------------------------------------------------------------------ *)

let ints arr = Json.Arr (Array.to_list (Array.map Json.int arr))

(* Union (Degraded) merge: every shard solves its own slice against the
   shared global direction grid, and the union of the selections is
   returned with a certified regret bound instead of bit-identity.

   Soundness of the bound: for any scoring direction [w], the shard [j]
   owning the globally best tuple for [w] sees that tuple as its local
   best, so the union (⊇ S_j) has global regret at [w] bounded by shard
   [j]'s own continuous regret — at most theorem4_bound(γ_j, m, ε_j).
   Taking the max over shards therefore bounds every direction at
   once. *)
let union_solve t h part (q : Protocol.query) ~guard =
  let _, m = Store.pinned_dims h in
  let shard_result s =
    match part.sub_keys.(s) with
    | None -> None
    | Some key -> (
        let st = t.stores.(s) in
        match Store.pin st key with
        | None -> raise Stale_partition
        | Some hs ->
            Fun.protect
              ~finally:(fun () -> Store.unpin st hs)
              (fun () ->
                match
                  Store.with_admission st (fun () ->
                      let sky = Store.skyline_of st hs in
                      let gamma_used =
                        Store.effective_gamma ~rows:(Array.length sky) ~m q
                      in
                      let _, matrix =
                        Store.matrix_of st hs ~gamma:gamma_used ~guard
                      in
                      let idxs = part.members.(s) in
                      let len = Array.length idxs in
                      let global =
                        Array.map
                          (fun l ->
                            if l < 0 || l >= len then raise Stale_partition;
                            idxs.(l))
                          sky
                      in
                      match q.Protocol.algo with
                      | Protocol.Hd_rrms ->
                          let res =
                            Hd_rrms.solve_prepared ~domains:t.domains ~guard
                              ~skyline:global ~gamma_used ~m matrix
                              ~r:q.Protocol.r
                          in
                          ( res.Hd_rrms.selected,
                            res.Hd_rrms.discretized_regret,
                            gamma_used,
                            Array.length global )
                      | Protocol.Hd_greedy ->
                          let res =
                            Hd_greedy.solve_prepared ~domains:t.domains ~guard
                              ~skyline:global ~gamma_used matrix
                              ~r:q.Protocol.r
                          in
                          ( res.Hd_greedy.selected,
                            res.Hd_greedy.discretized_regret,
                            gamma_used,
                            Array.length global )
                      | _ -> assert false)
                with
                | Error `Overloaded -> raise Sub_overloaded
                | Ok r -> Some (s, r)))
  in
  let per_shard =
    List.filter_map Fun.id (Array.to_list (join (fan_out t shard_result)))
  in
  let selected =
    Array.of_list
      (List.sort_uniq Stdlib.compare
         (List.concat_map
            (fun (_, (sel, _, _, _)) -> Array.to_list sel)
            per_shard))
  in
  let bound =
    List.fold_left
      (fun acc (_, (_, eps, g, _)) ->
        Float.max acc (Discretize.theorem4_bound ~gamma:g ~m ~eps))
      0. per_shard
  in
  let result =
    Json.Obj
      [
        ("algo", Json.Str (Protocol.algo_to_string q.Protocol.algo));
        ("merge", Json.Str "union");
        ("selected", ints selected);
        ("size", Json.int (Array.length selected));
        ("regret_bound", Json.float bound);
        ( "shards",
          Json.Arr
            (List.map
               (fun (s, (sel, eps, g, _)) ->
                 Json.Obj
                   [
                     ("shard", Json.int s);
                     ("size", Json.int (Array.length sel));
                     ("discretized_regret", Json.float eps);
                     ("gamma_used", Json.int g);
                   ])
               per_shard) );
        ("quality", Json.Str "degraded(shard-union-merge)");
        ("degraded", Json.Bool true);
      ]
  in
  (* Cost provenance: which merge path answered and what each shard
     contributed — slice skyline size [s], its γ, and the Theorem-4
     bound it feeds into the certified union bound. *)
  let cost =
    [
      ("source", Json.Str "solve");
      ("merge", Json.Str "union");
      ("theorem4_bound", Json.float bound);
      ( "shards",
        Json.Arr
          (List.map
             (fun (s, (sel, eps, g, ssize)) ->
               Json.Obj
                 [
                   ("shard", Json.int s);
                   ("s", Json.int ssize);
                   ("selected", Json.int (Array.length sel));
                   ("gamma_used", Json.int g);
                   ( "theorem4_bound",
                     Json.float (Discretize.theorem4_bound ~gamma:g ~m ~eps) );
                 ])
             per_shard) );
    ]
  in
  (* Never cached: the union answer depends on the partition, so serving
     it to a later unsharded request would break the bit-identity
     contract of the result cache. *)
  Ok { Store.result; cached = false; cost }

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

type merge = Certified | Union

let query ?(merge = Certified) t (q : Protocol.query) =
  match Store.pin t.coordinator q.Protocol.dataset with
  | None -> Error `Unknown_dataset
  | Some h ->
      let key = Store.pinned_key h in
      Fun.protect
        ~finally:(fun () ->
          Store.unpin t.coordinator h;
          cleanup_if_freed t key)
        (fun () ->
          let part =
            with_lock t.p_lock (fun () -> Hashtbl.find_opt t.parts key)
          in
          (* A fan-out that raced a mutation's re-partition falls back
             to the coordinator alone: it holds the full (current)
             dataset, so the answer stays exact — only the shard assist
             is lost for this one query. *)
          let stale_fallback () =
            Obs.Counter.incr Metrics.stale_fallbacks;
            tag_merge "gather" (Store.query_pinned t.coordinator h q)
          in
          match (part, q.Protocol.algo, merge) with
          | Some part, (Protocol.Hd_rrms | Protocol.Hd_greedy), Certified -> (
              Obs.Counter.incr Metrics.certified;
              let guard = budget_of q in
              match prepare_certified t h part q ~guard with
              | () ->
                  tag_merge "certified"
                    (Store.query_pinned t.coordinator h
                       (remaining_query ~guard q))
              | exception Deadline -> Error `Deadline_exceeded
              | exception Sub_overloaded -> Error `Overloaded
              | exception Stale_partition -> stale_fallback ())
          | Some part, (Protocol.Hd_rrms | Protocol.Hd_greedy), Union -> (
              Obs.Counter.incr Metrics.union;
              let guard = budget_of q in
              match union_solve t h part q ~guard with
              | r -> r
              | exception Deadline -> Error `Deadline_exceeded
              | exception Sub_overloaded -> Error `Overloaded
              | exception Stale_partition -> stale_fallback ())
          | _ ->
              (* Non-decomposable algorithms (and datasets that predate
                 the partition table): the coordinator holds the full
                 dataset, so the ordinary path is trivially Exact. *)
              Obs.Counter.incr Metrics.gather;
              tag_merge "gather" (Store.query_pinned t.coordinator h q))

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

(* Translate the coordinator-validated global op stream into one local
   stream per shard.

   Simulation invariant: [assign] mirrors the current global row
   sequence, holding each row's owning shard, so a row's shard-local
   index is its rank among same-shard rows.  Restricting the global
   stream to one shard's rows yields a valid local stream, because no
   op on another shard's rows ever disturbs the relative order of this
   shard's rows: a delete shifts global indices but preserves order, an
   insert appends at the global end (which is also every shard's local
   end).  Existing rows keep their shard; an insert goes to shard
   [current_length mod shards] — round-robin over the live length, so
   slices stay balanced without moving resident rows.

   Returns the per-shard streams (in op order) and the new [members]
   arrays (ascending global indices, matching sub-store row order). *)
let translate_ops ~shards ~n0 muts =
  let assign = ref (Array.make (max 16 n0) (-1)) in
  let len = ref n0 in
  let ensure_room () =
    if !len >= Array.length !assign then begin
      let bigger = Array.make (2 * Array.length !assign) (-1) in
      Array.blit !assign 0 bigger 0 !len;
      assign := bigger
    end
  in
  for g = 0 to n0 - 1 do
    !assign.(g) <- g mod shards
  done;
  (* The initial assignment is overwritten below from the partition
     record itself — a mutated partition is no longer round-robin. *)
  let streams = Array.make shards [] in
  let push s op = streams.(s) <- op :: streams.(s) in
  let rank s i =
    let c = ref 0 in
    for j = 0 to i - 1 do
      if !assign.(j) = s then incr c
    done;
    !c
  in
  let seed members =
    Array.iteri
      (fun s idxs ->
        Array.iter (fun g -> if g >= 0 && g < n0 then !assign.(g) <- s) idxs)
      members
  in
  let run () =
    List.iter
      (fun op ->
        match op with
        | Delta.Insert v ->
            let s = !len mod shards in
            ensure_room ();
            !assign.(!len) <- s;
            incr len;
            push s (Delta.Insert v)
        | Delta.Delete i ->
            let s = !assign.(i) in
            push s (Delta.Delete (rank s i));
            Array.blit !assign (i + 1) !assign i (!len - i - 1);
            decr len
        | Delta.Upsert (i, v) ->
            let s = !assign.(i) in
            push s (Delta.Upsert (rank s i, v)))
      muts;
    let lists = Array.make shards [] in
    for g = !len - 1 downto 0 do
      lists.(!assign.(g)) <- g :: lists.(!assign.(g))
    done;
    ( Array.map (fun l -> List.rev l) streams,
      Array.map Array.of_list lists )
  in
  (seed, run)

(* Re-key the partition record after the coordinator accepted the
   batch: apply each shard's local stream to its sub-store (or rebuild
   the slice from the new coordinator dataset when the incremental path
   is unavailable), and move the record from [key0] to [new_key]. *)
let repartition t h part ~key0 ~new_key ~base_n muts =
  let d' = Store.pinned_dataset h in
  let release_sub s =
    match part.sub_keys.(s) with
    | Some k -> ignore (Store.release t.stores.(s) k : Store.release)
    | None -> ()
  in
  let fresh_sub s idxs =
    if Array.length idxs = 0 then None
    else Some (Store.add t.stores.(s) (Dataset.select d' idxs)).Store.key
  in
  let n0 =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 part.members
  in
  let members', sub_keys' =
    if n0 <> base_n then begin
      (* The record disagrees with the entry it claims to partition —
         only reachable if it was left behind by an earlier defensive
         rebuild.  Re-slice from scratch; still exact. *)
      let members' = partition ~shards:t.shards (Dataset.size d') in
      ( members',
        Array.mapi
          (fun s idxs ->
            release_sub s;
            fresh_sub s idxs)
          members' )
    end
    else begin
      let seed, run = translate_ops ~shards:t.shards ~n0 muts in
      seed part.members;
      let streams, members' = run () in
      let sub_keys' =
        Array.init t.shards (fun s ->
            let target = members'.(s) in
            if Array.length target = 0 then begin
              release_sub s;
              None
            end
            else
              match (part.sub_keys.(s), streams.(s)) with
              | Some k, [] -> Some k
              | Some k, ops -> (
                  match
                    Store.mutate ~journal:false t.stores.(s) ~dataset:k ops
                  with
                  | Ok rs -> Some rs.Store.new_key
                  | Error _ ->
                      release_sub s;
                      fresh_sub s target
                  | exception _ ->
                      release_sub s;
                      fresh_sub s target)
              | None, _ -> fresh_sub s target)
      in
      (members', sub_keys')
    end
  in
  with_lock t.p_lock (fun () ->
      Hashtbl.remove t.parts key0;
      Hashtbl.replace t.parts new_key
        { members = members'; sub_keys = sub_keys' })

let mutate ?timeout t ~dataset muts =
  with_lock t.load_lock (fun () ->
      match Store.pin t.coordinator dataset with
      | None -> Error `Unknown_dataset
      | Some h ->
          Fun.protect
            ~finally:(fun () -> Store.unpin t.coordinator h)
            (fun () ->
              let key0 = Store.pinned_key h in
              let base_n, _ = Store.pinned_dims h in
              let part =
                with_lock t.p_lock (fun () -> Hashtbl.find_opt t.parts key0)
              in
              match Store.mutate ?timeout t.coordinator ~dataset muts with
              | Error _ as e -> e
              | Ok r ->
                  Option.iter
                    (fun part ->
                      Obs.Counter.incr Metrics.mutations;
                      repartition t h part ~key0 ~new_key:r.Store.new_key
                        ~base_n muts)
                    part;
                  Ok r))

let stats t =
  match Store.stats t.coordinator with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "shard",
              Json.Obj
                [
                  ("shards", Json.int t.shards);
                  ( "sub_stores",
                    Json.Arr
                      (Array.to_list
                         (Array.map
                            (fun st ->
                              let inflight, queued = Store.admission_state st in
                              Json.Obj
                                [
                                  ("inflight", Json.int inflight);
                                  ("queued", Json.int queued);
                                ])
                            t.stores)) );
                ] );
          ])
  | j -> j

(* ------------------------------------------------------------------ *)
(* Router: fan-out over worker processes                               *)
(* ------------------------------------------------------------------ *)

module Router = struct
  exception Worker_down of string * string (* path, detail *)
  exception Worker_error of string * string * string (* path, code, msg *)

  type ds_info = { load_line : int -> string }

  type worker = {
    w_index : int;
    w_path : string;
    w_lock : Mutex.t;
    mutable conn : (in_channel * out_channel) option;
    (* Router dataset key → this worker's slice key, valid for the
       current connection only: a redial clears it, and the next use
       replays the load (which is how a restarted worker recovers). *)
    mutable w_keys : (string * string) list;
  }

  type t = {
    rt_store : Store.t;
    telemetry : Telemetry.t;
    domains : int option;
    workers : worker array;
    r_lock : Mutex.t;
    datasets : (string, ds_info) Hashtbl.t;
    sessions : int Atomic.t;
  }

  let create ?(telemetry = Telemetry.default) ?domains ?max_inflight ?max_queue
      ?persist ~workers () =
    if workers = [] then
      Guard.Error.invalid_input "Shard.Router.create: no worker sockets";
    {
      rt_store = Store.create ?domains ?max_inflight ?max_queue ?persist ();
      telemetry;
      domains;
      workers =
        Array.of_list
          (List.mapi
             (fun i p ->
               {
                 w_index = i;
                 w_path = p;
                 w_lock = Mutex.create ();
                 conn = None;
                 w_keys = [];
               })
             workers);
      r_lock = Mutex.create ();
      datasets = Hashtbl.create 8;
      sessions = Atomic.make 0;
    }

  let store rt = rt.rt_store
  let width rt = Array.length rt.workers

  (* -------------------------- worker RPC -------------------------- *)

  let disconnect w =
    (match w.conn with Some (_, oc) -> close_out_noerr oc | None -> ());
    w.conn <- None;
    w.w_keys <- []

  let ensure_conn w =
    if w.conn = None then begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX w.w_path) with
      | () ->
          w.conn <-
            Some (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise (Worker_down (w.w_path, Unix.error_message e))
    end

  let send_recv w line =
    match w.conn with
    | None -> raise (Worker_down (w.w_path, "not connected"))
    | Some (ic, oc) -> (
        try
          output_string oc line;
          output_char oc '\n';
          flush oc;
          input_line ic
        with End_of_file | Sys_error _ ->
          disconnect w;
          raise (Worker_down (w.w_path, "connection lost mid-request")))

  let rpc_once w line =
    let reply = send_recv w line in
    match Json.parse reply with
    | Error msg ->
        disconnect w;
        raise (Worker_down (w.w_path, "unparseable reply: " ^ msg))
    | Ok j -> (
        match Json.member "ok" j with
        | Some (Json.Bool true) -> j
        | _ ->
            let get name =
              match Option.bind (Json.member "error" j) (Json.member name) with
              | Some (Json.Str s) -> s
              | _ -> "internal"
            in
            raise (Worker_error (w.w_path, get "code", get "message")))

  let reply_field j name = Option.bind (Json.member "result" j) (Json.member name)

  (* The worker's key for [key]'s slice, loading it over this connection
     on first use (and after every redial). *)
  let worker_key rt w ~key =
    match List.assoc_opt key w.w_keys with
    | Some wk -> wk
    | None -> (
        let info =
          match
            with_lock rt.r_lock (fun () -> Hashtbl.find_opt rt.datasets key)
          with
          | Some i -> i
          | None ->
              raise
                (Worker_down
                   ( w.w_path,
                     Printf.sprintf
                       "dataset %s has no registered load parameters" key ))
        in
        let j = rpc_once w (info.load_line w.w_index) in
        match reply_field j "key" with
        | Some (Json.Str wk) ->
            w.w_keys <- (key, wk) :: w.w_keys;
            wk
        | _ -> raise (Worker_down (w.w_path, "malformed load reply")))

  let skyline_request ?trace ~dataset ~timeout () =
    Json.to_string
      (Json.Obj
         ([ ("req", Json.Str "skyline"); ("dataset", Json.Str dataset) ]
         @ (match timeout with
           | Some tm -> [ ("timeout", Json.float tm) ]
           | None -> [])
         @ (match trace with
           | Some t -> [ Protocol.trace_member t ]
           | None -> [])
         @ [ ("id", Json.Str "router-skyline") ]))

  (* One fan-out leg: the worker's shard-local skyline indices, plus —
     when a trace envelope rode along — the worker's span dump for the
     router's merged trace.  A transport failure redials once
     (replaying the load), so a worker restart between requests heals
     transparently; a second failure — or a semantic error — surfaces
     to the caller. *)
  let worker_skyline ?trace rt w ~key ~timeout =
    with_lock w.w_lock (fun () ->
        let attempt () =
          ensure_conn w;
          let wkey = worker_key rt w ~key in
          let j = rpc_once w (skyline_request ?trace ~dataset:wkey ~timeout ()) in
          let spans =
            match reply_field j "spans" with
            | Some (Json.Arr l) -> l
            | _ -> []
          in
          match reply_field j "indices" with
          | Some (Json.Arr l) ->
              ( Array.of_list
                  (List.map
                     (fun x ->
                       match Json.int_ x with
                       | Some i -> i
                       | None ->
                           raise
                             (Worker_down (w.w_path, "malformed skyline reply")))
                     l),
                spans )
          | _ -> raise (Worker_down (w.w_path, "malformed skyline reply"))
        in
        try attempt ()
        with Worker_down _ ->
          Obs.Counter.incr Metrics.worker_redials;
          disconnect w;
          attempt ())

  (* ------------------------- fan-out merge ------------------------ *)

  let fan_out_workers rt f =
    let n = Array.length rt.workers in
    let out = Array.make n None in
    let durs = Array.make n 0. in
    let threads =
      Array.init n (fun s ->
          Thread.create
            (fun () ->
              let t0 = Unix.gettimeofday () in
              out.(s) <- Some (try Ok (f s) with exn -> Error exn);
              durs.(s) <- Unix.gettimeofday () -. t0)
            ())
    in
    Array.iter Thread.join threads;
    (* Fan-out skew: the wall-time the fastest leg spent waiting for
       the slowest — the cluster's straggler signal in [stats]. *)
    if n > 1 then begin
      let mx = Array.fold_left Float.max neg_infinity durs in
      let mn = Array.fold_left Float.min infinity durs in
      Obs.Floatc.add Metrics.straggler_gap (Float.max 0. (mx -. mn))
    end;
    Array.map
      (function
        | Some r -> r
        | None -> Error (Failure "Router fan-out task produced no result"))
      out

  (* Splice a worker's span dump into the router's global trace buffer,
     labelled with its shard index — the cross-process half of the
     merged trace.  The events already carry the originating trace id
     and hang from the router's fan-out span via their wire [parent].
     Workers mint ids independently under the same fan-out parent, so
     two shards produce the same hierarchical ids; namespace each dump
     with its shard ([w0:…]) to keep merged ids globally unique,
     rewriting intra-dump parent references to match and leaving the
     cross-process edge (a parent outside the dump) untouched. *)
  let ingest_worker_spans s spans =
    if Obs.spans_enabled () then begin
      let evs = List.map Telemetry.span_of_json spans in
      let local = Hashtbl.create 16 in
      List.iter
        (fun ev ->
          if ev.Obs.Trace.span_id <> "" then
            Hashtbl.replace local ev.Obs.Trace.span_id ())
        evs;
      let tag id =
        if id = "" then "" else Printf.sprintf "w%d:%s" s id
      in
      List.iter
        (fun ev ->
          Obs.Trace.record
            {
              ev with
              Obs.Trace.span_id = tag ev.Obs.Trace.span_id;
              Obs.Trace.parent_id =
                (if Hashtbl.mem local ev.Obs.Trace.parent_id then
                   tag ev.Obs.Trace.parent_id
                 else ev.Obs.Trace.parent_id);
              Obs.Trace.attrs =
                ("shard", string_of_int s) :: ev.Obs.Trace.attrs;
            })
        evs
    end

  (* The envelope the router forwards on every fan-out leg: the bound
     context's trace id plus the id of the currently open span (the
     dispatch span), so worker spans hang from it.  Computed on the
     dispatching thread — fan-out legs run on fresh systhreads that
     inherit neither the context nor the open-span stack. *)
  let fan_out_trace ~deadline =
    match Obs.Ctx.current () with
    | Some c when Obs.Ctx.trace_id c <> "" ->
        Some
          {
            Protocol.trace_id = Obs.Ctx.trace_id c;
            parent_span = Obs.Span.current_id ();
            origin_request = Obs.Ctx.request_id c;
            origin_session = Obs.Ctx.session_id c;
            deadline;
          }
    | _ -> None

  (* Merge the workers' skylines into the router store's artifact; the
     regret matrix is then built locally from the merged skyline by the
     ordinary store path, so the answer is byte-identical to a
     single-process solve (same artifacts, same [solve_prepared]). *)
  let ensure_artifacts rt h (q : Protocol.query) ~guard =
    let sky_cached, _ = Store.artifacts_cached h ~gamma:q.Protocol.gamma in
    if not sky_cached then begin
      (match Guard.Budget.deadline_expired guard with
      | Some _ -> raise Deadline
      | None -> ());
      let key = Store.pinned_key h in
      let timeout =
        match q.Protocol.timeout with
        | None -> None
        | Some _ -> Guard.Budget.remaining guard
      in
      let n = Array.length rt.workers in
      let results =
        Obs.Span.with_ "router.fanout"
          ~attrs:[ ("workers", string_of_int n) ]
          (fun () ->
            let trace = fan_out_trace ~deadline:timeout in
            let results =
              fan_out_workers rt (fun s ->
                  worker_skyline ?trace rt rt.workers.(s) ~key ~timeout)
            in
            Array.iteri
              (fun s r ->
                match r with
                | Ok (_, spans) -> ingest_worker_spans s spans
                | Error _ -> ())
              results;
            results)
      in
      Array.iter (function Ok _ -> () | Error e -> raise e) results;
      let parts =
        Array.mapi
          (fun s r ->
            match r with
            | Ok (local, _) -> Array.map (fun l -> s + (l * n)) local
            | Error _ -> assert false)
          results
      in
      Obs.Counter.incr Metrics.skyline_merges;
      Obs.Span.with_ "router.certified_merge"
        ~attrs:[ ("shards", string_of_int n) ]
        (fun () ->
          let merged =
            Skyline.merge_partitions ?domains:rt.domains (Store.pinned_rows h)
              parts
          in
          ignore (Store.preload_skyline rt.rt_store h merged : bool))
    end

  (* One query against a pinned handle, fanning out for the HD
     algorithms; worker failures become [shard_failure] responses
     (never a dropped session), a worker-side deadline propagates as
     [deadline_exceeded]. *)
  let run_item rt h (q : Protocol.query) () =
    match q.Protocol.algo with
    | Protocol.Hd_rrms | Protocol.Hd_greedy -> (
        let guard = budget_of q in
        match ensure_artifacts rt h q ~guard with
        | () ->
            tag_merge "certified"
              (Store.query_pinned rt.rt_store h (remaining_query ~guard q))
        | exception Deadline -> Error `Deadline_exceeded
        | exception Worker_error (_, "deadline_exceeded", _) ->
            Error `Deadline_exceeded
        | exception Worker_error (p, code, msg) ->
            Obs.Counter.incr Metrics.worker_failures;
            raise
              (Protocol.Shard_failure
                 (Printf.sprintf "worker %s answered %s: %s" p code msg))
        | exception Worker_down (p, msg) ->
            Obs.Counter.incr Metrics.worker_failures;
            raise
              (Protocol.Shard_failure
                 (Printf.sprintf "worker %s unreachable: %s" p msg)))
    | _ -> tag_merge "gather" (Store.query_pinned rt.rt_store h q)

  let register_dataset rt ~key ~path ~name ~normalize ~lenient =
    let count = Array.length rt.workers in
    let load_line s =
      Json.to_string
        (Json.Obj
           ([ ("req", Json.Str "load"); ("path", Json.Str path) ]
           @ (match name with
             | Some nm -> [ ("name", Json.Str nm) ]
             | None -> [])
           @ [
               ("normalize", Json.Bool normalize);
               ("lenient", Json.Bool lenient);
               ("shard_index", Json.int s);
               ("shard_count", Json.int count);
               ("id", Json.Str (Printf.sprintf "router-load-%d" s));
             ]))
    in
    with_lock rt.r_lock (fun () ->
        Hashtbl.replace rt.datasets key { load_line })

  let item_error code message =
    Json.Obj
      [
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ]
        );
      ]

  (* ----------------------- cluster aggregation -------------------- *)

  let metrics_request =
    Json.to_string
      (Json.Obj
         [ ("req", Json.Str "metrics"); ("id", Json.Str "router-metrics") ])

  let worker_metrics w =
    with_lock w.w_lock (fun () ->
        let attempt () =
          ensure_conn w;
          rpc_once w metrics_request
        in
        try attempt ()
        with Worker_down _ ->
          Obs.Counter.incr Metrics.worker_redials;
          disconnect w;
          attempt ())

  (* Fraction of a process's requests answered from its result cache,
     read off its raw latency export. *)
  let hit_rate raw =
    match Json.member "histograms" raw with
    | Some (Json.Arr rows) ->
        let tot = ref 0 and hits = ref 0 in
        List.iter
          (fun r ->
            let c =
              match Json.member "count" r with
              | Some x -> Option.value ~default:0 (Json.int_ x)
              | None -> 0
            in
            tot := !tot + c;
            match Json.member "cache" r with
            | Some (Json.Str "hit") -> hits := !hits + c
            | _ -> ())
          rows;
        if !tot = 0 then 0. else float_of_int !hits /. float_of_int !tot
    | _ -> 0.

  (* The cluster view [stats] carries when answered by a router: fan
     the [metrics] op out to every worker, sum the counters (only the
     [_total] families — gauges and timers don't sum meaningfully),
     merge the raw latency histograms into cluster-wide quantiles, and
     summarize skew (per-shard busy time spread, accumulated fan-out
     straggler gap).  An unreachable worker degrades to a
     [connected: false] row — never a failed [stats]. *)
  let cluster_stats rt =
    let replies =
      Array.map
        (function Ok v -> v | Error _ -> None)
        (fan_out_workers rt (fun s ->
             match worker_metrics rt.workers.(s) with
             | j -> Some j
             | exception _ -> None))
    in
    let counter_sums : (string, float) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let is_total name =
      let n = String.length name in
      n > 6 && String.sub name (n - 6) 6 = "_total"
    in
    let add_counters kvs =
      List.iter
        (fun (name, v) ->
          if is_total name then
            match Hashtbl.find_opt counter_sums name with
            | Some prev -> Hashtbl.replace counter_sums name (prev +. v)
            | None ->
                Hashtbl.replace counter_sums name v;
                order := name :: !order)
        kvs
    in
    add_counters (Obs.snapshot ());
    let worker_counters j =
      match reply_field j "metrics" with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> match v with Json.Num x -> Some (k, x) | _ -> None)
            kvs
      | _ -> []
    in
    let busies = ref [] in
    let labeled = ref [ ("router", Telemetry.export_json rt.telemetry) ] in
    let rows =
      Array.to_list
        (Array.mapi
           (fun s reply ->
             let w = rt.workers.(s) in
             match reply with
             | None ->
                 Json.Obj
                   [
                     ("shard", Json.int s);
                     ("path", Json.Str w.w_path);
                     ("connected", Json.Bool false);
                   ]
             | Some j ->
                 let kvs = worker_counters j in
                 add_counters kvs;
                 let v name =
                   Option.value ~default:0. (List.assoc_opt name kvs)
                 in
                 let raw =
                   Option.value ~default:(Json.Obj [])
                     (reply_field j "latency_raw")
                 in
                 labeled := (string_of_int s, raw) :: !labeled;
                 let busy = v "rrms_serve_request_seconds" in
                 busies := busy :: !busies;
                 Json.Obj
                   [
                     ("shard", Json.int s);
                     ("path", Json.Str w.w_path);
                     ("connected", Json.Bool true);
                     ("busy_seconds", Json.float busy);
                     ("requests", Json.float (v "rrms_serve_requests_total"));
                     ("errors", Json.float (v "rrms_serve_errors_total"));
                     ("hit_rate", Json.float (hit_rate raw));
                   ])
           replies)
    in
    let live = List.length !busies in
    let busy_max = List.fold_left Float.max 0. !busies in
    let busy_min =
      if !busies = [] then 0. else List.fold_left Float.min infinity !busies
    in
    Json.Obj
      [
        ("processes", Json.int (1 + live));
        ("workers", Json.Arr rows);
        ( "counters",
          Json.Obj
            (List.map
               (fun name -> (name, Json.float (Hashtbl.find counter_sums name)))
               (List.sort compare !order)) );
        ("latency", Telemetry.merge_exports (List.rev !labeled));
        ( "skew",
          Json.Obj
            [
              ("busy_max_seconds", Json.float busy_max);
              ("busy_min_seconds", Json.float busy_min);
              ( "straggler_gap_seconds",
                Json.float (Obs.Floatc.value Metrics.straggler_gap) );
            ] );
      ]

  (* The router's protocol handler: [load], [query] and [batch] get the
     fan-out treatment; everything else — stats, skyline, evict, ping,
     shutdown, malformed lines — delegates to an ordinary store-backed
     session over the router's own (full-dataset) store, so reference
     bookkeeping and teardown stay the server's. *)
  let handler rt : Server.handler =
   fun () ->
    let inner = Server.store_handler ~telemetry:rt.telemetry rt.rt_store () in
    let session_id =
      Printf.sprintf "rs%d" (1 + Atomic.fetch_and_add rt.sessions 1)
    in
    let reqno = ref 0 in
    let shards = Array.length rt.workers in
    let on_line line =
      let { Protocol.id; req; trace } = Protocol.parse_request line in
      let t0 = Unix.gettimeofday () in
      let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
      let error code message =
        `Reply (Protocol.error_response ~id ~code ~message)
      in
      (* The router is a trace origin as well as a propagator: a client
         envelope is forwarded as-is; with none, global tracing (Full)
         mints one per request, so every routed query yields a merged
         cross-process trace. *)
      let traced request_id =
        match trace with
        | Some _ -> trace
        | None when Obs.spans_enabled () ->
            Some
              {
                Protocol.trace_id = "t-" ^ request_id;
                parent_span = "";
                origin_request = request_id;
                origin_session = session_id;
                deadline = None;
              }
        | None -> None
      in
      match req with
      | Ok (Protocol.Load { path; name; normalize; lenient; shard = _ }) -> (
          (* The inner session loads the full dataset (and owns the
             reference); the router records the load parameters so the
             workers can be sent their slices on first fan-out. *)
          match inner.Server.on_line line with
          | `Reply r as reply ->
              (match Json.parse r with
              | Ok j when Json.member "ok" j = Some (Json.Bool true) -> (
                  match reply_field j "key" with
                  | Some (Json.Str key) ->
                      register_dataset rt ~key ~path ~name ~normalize ~lenient
                  | _ -> ())
              | _ -> ());
              reply
          | x -> x)
      | Ok (Protocol.Query q) -> (
          incr reqno;
          let request_id = Printf.sprintf "%s-r%d" session_id !reqno in
          let dataset_key =
            match Store.resolve rt.rt_store q.Protocol.dataset with
            | Some key -> key
            | None -> q.Protocol.dataset
          in
          match
            Server.run_query ?trace:(traced request_id) ~telemetry:rt.telemetry
              ~session_id ~request_id ~dataset_key ~shards ~elapsed_ms q
              (fun () ->
                match Store.pin rt.rt_store q.Protocol.dataset with
                | None -> Error `Unknown_dataset
                | Some h ->
                    Fun.protect
                      ~finally:(fun () -> Store.unpin rt.rt_store h)
                      (run_item rt h q))
          with
          | Ok (result, cached, cost) ->
              `Reply
                (Protocol.ok_response ?cost ~id ~cached
                   ~elapsed_ms:(elapsed_ms ()) result)
          | Error (code, message) -> error code message)
      | Ok (Protocol.Batch { dataset; items }) -> (
          incr reqno;
          let base_id = Printf.sprintf "%s-r%d" session_id !reqno in
          match Store.pin rt.rt_store dataset with
          | None ->
              error "unknown_dataset"
                (Printf.sprintf
                   "no loaded dataset %S (load it first, then query by key or \
                    name)"
                   dataset)
          | Some h ->
              Fun.protect
                ~finally:(fun () -> Store.unpin rt.rt_store h)
                (fun () ->
                  let key = Store.pinned_key h in
                  let results =
                    Array.to_list
                      (Array.mapi
                         (fun i item ->
                           match item with
                           | Error (code, message) -> item_error code message
                           | Ok q -> (
                               let t0i = Unix.gettimeofday () in
                               let item_ms () =
                                 (Unix.gettimeofday () -. t0i) *. 1000.
                               in
                               let item_id =
                                 Printf.sprintf "%s.%d" base_id i
                               in
                               match
                                 Server.run_query ?trace:(traced item_id)
                                   ~telemetry:rt.telemetry ~session_id
                                   ~request_id:item_id ~dataset_key:key ~shards
                                   ~elapsed_ms:item_ms q (run_item rt h q)
                               with
                               | Ok (result, cached, cost) ->
                                   Json.Obj
                                     ([
                                        ("ok", Json.Bool true);
                                        ("cached", Json.Bool cached);
                                        ("result", result);
                                      ]
                                     @
                                     match cost with
                                     | Some c -> [ ("cost", c) ]
                                     | None -> [])
                               | Error (code, message) ->
                                   item_error code message))
                         items)
                  in
                  `Reply
                    (Protocol.ok_response ~id ~cached:false
                       ~elapsed_ms:(elapsed_ms ())
                       (Json.Obj
                          [
                            ("dataset", Json.Str key);
                            ("count", Json.int (List.length results));
                            ("results", Json.Arr results);
                          ]))))
      | Ok Protocol.Stats -> (
          match inner.Server.on_line line with
          | `Reply r as reply -> (
              match Json.parse r with
              | Ok (Json.Obj top)
                when List.assoc_opt "ok" top = Some (Json.Bool true) -> (
                  match List.assoc_opt "result" top with
                  | Some (Json.Obj fields) ->
                      let router =
                        Json.Obj
                          [
                            ( "workers",
                              Json.Arr
                                (Array.to_list
                                   (Array.map
                                      (fun w ->
                                        Json.Obj
                                          [
                                            ("path", Json.Str w.w_path);
                                            ( "connected",
                                              Json.Bool
                                                (with_lock w.w_lock (fun () ->
                                                     match w.conn with
                                                     | Some _ -> true
                                                     | None -> false)) );
                                          ])
                                      rt.workers)) );
                          ]
                      in
                      let cluster = cluster_stats rt in
                      `Reply
                        (Json.to_string
                           (Json.Obj
                              (List.map
                                 (fun (k, v) ->
                                   if k = "result" then
                                     ( k,
                                       Json.Obj
                                         (fields
                                         @ [
                                             ("router", router);
                                             ("cluster", cluster);
                                           ]) )
                                   else (k, v))
                                 top)))
                  | _ -> reply)
              | _ -> reply)
          | x -> x)
      | Ok (Protocol.Mutate _) ->
          (* The router's workers each hold a read-only slice of every
             dataset; accepting a write here would silently fork the
             router's copy away from theirs.  Documented wire code. *)
          error "read_only"
            "the shard router fans out over read-only worker slices; send \
             mutations to the store that owns the writable state (an \
             rrms-serve instance without --router)"
      | Ok (Protocol.Skyline _)
      | Ok (Protocol.Evict _)
      | Ok Protocol.Metrics | Ok Protocol.Ping | Ok Protocol.Shutdown
      | Error _ ->
          inner.Server.on_line line
    in
    { Server.on_line; on_close = (fun () -> inner.Server.on_close ()) }

  let close rt =
    Array.iter (fun w -> with_lock w.w_lock (fun () -> disconnect w)) rt.workers
end
