(** The artifact store and plan/result cache of the query service.

    The store owns every expensive intermediate of the RRMS pipeline and
    shares it across concurrent sessions:

    - {e datasets}, keyed by a 64-bit FNV-1a content hash of the loaded
      (post-transform) tuples — two sessions loading the same file, or
      two files with identical content, share one entry.  Entries are
      refcounted: each successful [load] takes a reference, [release]
      (the [evict] request, and session teardown) drops one, and the
      entry with all its artifacts is freed when the count reaches zero.
    - {e per-dataset artifacts}, computed once on first use and reused
      by every later query: the skyline index set, the 2D maxima-hull
      context, and regret matrices keyed by the γ they were built at.
      A γ'-query is served from a cached γ-matrix without rebuilding
      whenever γ' is an exact floating-point sub-grid of γ
      ({!Rrms_core.Discretize.subgrid_indices} +
      {!Rrms_core.Regret_matrix.select_cols}) — counted as a derived
      matrix, not a miss.
    - {e direction grids}, keyed [(m, γ)] store-wide (they are
      dataset-independent).
    - {e results}: the serialized deterministic part of every [Exact]
      answer, keyed by {!Protocol.cache_key}.  Degraded (budget-stopped)
      answers are never cached, so a cache hit is always bit-identical
      to an unbudgeted cold solve.  [use_cache = false] bypasses the
      read but still populates the cache.

    Admission control: at most [max_inflight] solves run concurrently;
    up to [max_queue] more wait on a condition variable; beyond that
    {!query} answers [`Overloaded] immediately (graceful shedding, the
    guard-subsystem philosophy at the service boundary).  Cache hits
    and the cheap requests bypass admission entirely.

    Every cache consults an {!Rrms_obs.Obs} counter pair
    ([rrms_serve_<kind>_{hits,misses}_total]); [stats] snapshots the
    whole registry.  All entry points are thread-safe. *)

type t

(** The serving-layer instruments, exposed so tests (and embedders) can
    assert the no-recompute contract directly: a warm query must leave
    every [*_misses] counter untouched.  All are registered in the
    global {!Rrms_obs.Obs} registry and appear in [stats]. *)
module Metrics : sig
  val datasets_loaded : Rrms_obs.Obs.Counter.t
  val dataset_hits : Rrms_obs.Obs.Counter.t
  val evictions : Rrms_obs.Obs.Counter.t
  val skyline_hits : Rrms_obs.Obs.Counter.t
  val skyline_misses : Rrms_obs.Obs.Counter.t
  val hull_hits : Rrms_obs.Obs.Counter.t
  val hull_misses : Rrms_obs.Obs.Counter.t
  val grid_hits : Rrms_obs.Obs.Counter.t
  val grid_misses : Rrms_obs.Obs.Counter.t
  val matrix_hits : Rrms_obs.Obs.Counter.t
  val matrix_misses : Rrms_obs.Obs.Counter.t

  val matrix_derived : Rrms_obs.Obs.Counter.t
  (** γ'-matrices obtained by column-selecting a cached γ-matrix. *)

  val result_hits : Rrms_obs.Obs.Counter.t
  val result_misses : Rrms_obs.Obs.Counter.t
  val overloaded : Rrms_obs.Obs.Counter.t

  val deadline_exceeded : Rrms_obs.Obs.Counter.t
  (** Queries whose end-to-end deadline — queue wait included — expired
      before the solver started. *)

  val drained : Rrms_obs.Obs.Counter.t
  (** Queries refused because the store was draining for shutdown. *)

  val queue_wait : Rrms_obs.Obs.Floatc.t
  (** Seconds spent waiting in the admission queue.  A float counter,
      so the per-request share tees into a bound {!Rrms_obs.Obs.Ctx}
      — the access log reads it from there. *)

  val resolves : Rrms_obs.Obs.Counter.t
  (** Dataset entry resolutions ({!pin}s) performed by query paths: a
      batch of [k] items adds 1, [k] single queries add [k]. *)

  val mutations : Rrms_obs.Obs.Counter.t
  (** Mutation batches applied ({!mutate} successes). *)

  val mutation_ops : Rrms_obs.Obs.Counter.t

  val results_carried : Rrms_obs.Obs.Counter.t
  (** Cached results that survived a mutation under the delta-scoped
      invalidation proof (indices remapped where needed). *)

  val results_invalidated : Rrms_obs.Obs.Counter.t

  val incs_rebased : Rrms_obs.Obs.Counter.t
  (** Pooled MRST probe states carried across a mutation by
      {!Rrms_core.Mrst.Incremental.rebase} instead of re-sorting. *)
end

val create :
  ?domains:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?persist:Persist.t ->
  unit ->
  t
(** [create ()] makes an empty store.  [domains] is the worker-domain
    count handed to every solver and artifact build (default: the
    {!Rrms_parallel.Pool.default_size} at call time, so [RRMS_DOMAINS]
    applies).  [max_inflight] defaults to [4]; [max_queue] to [16].
    [persist] attaches a durable artifact cache ({!Persist.open_dir}):
    skylines, grids, regret matrices and Exact results are written
    through to it and rehydrated on demand, so a store created over the
    same directory answers warm — bit-identically — after a restart. *)

type loaded = {
  key : string;  (** 16-hex-digit content hash — the canonical handle *)
  dataset_name : string;
  n : int;
  m : int;
  refs : int;  (** reference count after this load *)
  already_loaded : bool;  (** true on an artifact-store hit *)
  warnings : int;  (** dropped rows under lenient CSV loading *)
}

val load :
  t ->
  ?name:string ->
  ?normalize:bool ->
  ?lenient:bool ->
  ?shard:int * int ->
  string ->
  loaded
(** [load t path] reads a CSV, applies the transforms, hashes the
    content and either joins the existing entry (incrementing its
    refcount) or creates one.  [name] (default: the dataset's own name)
    is registered as an alias usable wherever a key is expected; a
    rebound alias points to the newest load.  [shard = (s, count)]
    keeps only partition member [s] of the round-robin split into
    [count] shards — global rows ≡ s (mod count), order preserved, the
    slice a worker process owns in a sharded deployment (shard-local
    row [l] is global row [s + l·count]).  The slice happens {e after}
    the transforms and {e before} hashing, so every worker's content
    key is its own.
    @raise Rrms_guard.Guard.Error.Guard_error as
    {!Rrms_dataset.Dataset.of_csv_report}, or [Invalid_input] on a bad
    or empty shard slice. *)

val add : t -> Rrms_dataset.Dataset.t -> loaded
(** [add t d] registers an in-memory dataset exactly as {!load} would
    after reading it from disk — same hashing, aliasing, refcounting and
    persistence.  The in-process shard layer uses this to populate its
    sub-stores without N re-reads of the CSV. *)

type release =
  | Not_loaded
  | Released of { key : string; remaining : int; freed : bool }

val release : t -> string -> release
(** Drop one reference (by key or alias); frees the entry and all its
    artifacts when the count reaches zero.  [key] is the resolved
    content hash (the handle may have been an alias). *)

type outcome = {
  result : Json.t;  (** the deterministic [result] member *)
  cached : bool;  (** answered from the result cache *)
  cost : (string * Json.t) list;
      (** the answer's cost-provenance fields (docs/OBSERVABILITY.md,
          "Cost provenance"): [source] (["cache"] / ["persist"] /
          ["solve"]) plus, for a fresh HD solve, the paper's cost-model
          quantities — skyline size [s], [gamma_used], matrix [cells],
          fresh vs. cache-answered [probes], the [theorem4_bound].
          Ordered fields ready for [Json.Obj]; always outside [result],
          so the answer bytes never depend on provenance. *)
}

val query :
  t ->
  Protocol.query ->
  ( outcome,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** Answer one query: result cache → persisted result → admission →
    artifacts → solver.  The protocol [timeout] is an end-to-end
    deadline stamped on entry: a request that exhausts it waiting for
    an admission slot is refused with [`Deadline_exceeded] before any
    solver work (the solver's own expiry inside the slot still raises
    the structured [Timeout] as before).  [`Draining] is the refusal
    during graceful shutdown — cache hits are still served.
    @raise Rrms_guard.Guard.Error.Guard_error for solver-level failures
    (bad [r], budget expiry with no degraded answer, …);
    [Invalid_argument] raised by the 2D solvers on non-2D data is
    translated to a structured [Invalid_input] here. *)

(** {2 Mutations}

    {!mutate} applies a batch of {!Rrms_core.Delta.mutation}s to a
    resident dataset with sequential left-to-right semantics,
    atomically: the whole maintenance pass — new rows, content hash,
    skyline ({!Rrms_core.Delta.update_skyline}), regret matrices
    ({!Rrms_core.Regret_matrix.update}), pooled MRST probe states
    ({!Rrms_core.Mrst.Incremental.rebase}) and the delta-scoped result
    cache — is computed against a consistent snapshot and installed in
    one critical section, bumping the entry's {e generation}.  Queries
    racing a mutation keep answering against the old generation (a
    valid linearization) and never pollute the new generation's caches.

    Every artifact the pass produces is {e bit-identical} to a
    from-scratch build over the mutated rows (test/test_mutate.ml
    asserts this at 1/2/4 domains); a cached result survives only with
    a proof that a fresh solve would return the same bytes (see the
    invalidation rules in docs/DYNAMIC.md).

    When the store is persistent, the batch is journaled to the
    write-ahead log ({!Persist.Wal}) before the install, so a crash at
    any point is recoverable by replay ([journal:false] marks a replay
    itself).  The entry stays resident under its {e new} content hash;
    the old hash and all name aliases re-point to it. *)

type mutated = {
  old_key : string;
  new_key : string;  (** content hash of the mutated dataset *)
  generation : int;
  n : int;  (** rows after the mutation *)
  m : int;
  ops_applied : int;
  skyline_path : string option;
      (** {!Rrms_core.Delta.path_name} of the maintenance path taken;
          [None] when no skyline was materialized (it stays lazy) *)
  matrices_updated : int;
  matrices_dropped : int;
  incs_rebased : int;
  results_kept : int;
  results_evicted : int;
}

val mutate :
  ?journal:bool ->
  ?timeout:float ->
  t ->
  dataset:string ->
  Rrms_core.Delta.mutation list ->
  ( mutated,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** Apply one mutation batch (admission-gated like a solve; [timeout]
    is the same end-to-end deadline a query gets).  On any failure —
    bad index, dimension mismatch, emptied dataset, budget expiry —
    nothing is installed and nothing is journaled.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on a
    malformed batch (including one that would empty the dataset). *)

val set_draining : t -> unit
(** Enter drain mode: every subsequent solve is refused with
    [`Draining]; in-flight solves, cached answers and the cheap
    requests (load/stats/ping) continue.  Irreversible. *)

val draining : t -> bool

val stats : t -> Json.t
(** Live snapshot: per-dataset artifact inventory, admission state, and
    the full {!Rrms_obs.Obs.snapshot}. *)

val session_release_all : t -> string list -> unit
(** Teardown helper: drop one reference per listed key (a session's
    loads), ignoring already-freed entries. *)

val resolve : t -> string -> string option
(** Content hash behind a key-or-alias handle, if loaded — the access
    log records this so its lines are join-able with [stats]. *)

val with_admission : t -> (unit -> 'a) -> ('a, [ `Overloaded ]) result
(** The raw admission gate (exposed for the burst tests): run the thunk
    in an in-flight slot, waiting in the bounded queue when saturated,
    shedding with [`Overloaded] when the queue is full too. *)

val admission_state : t -> int * int
(** [(inflight, queued)] right now. *)

(** {2 Pinned handles}

    A pin is a temporary reference to a resolved entry, taken and
    dropped under the store lock.  Query paths pin for their whole
    duration, so a concurrent release/evict — from another session or
    another shard — can never free an entry mid-solve; before pins
    existed, exactly that race could underflow the refcount.  A pin also
    amortizes resolution: the batch request pins once and runs every
    item against the same handle. *)

type handle
(** A pinned store entry.  Must be balanced with {!unpin}. *)

val pin : t -> string -> handle option
(** [pin t name] resolves a key-or-alias and takes a reference, in one
    atomic step; [None] when not loaded.  Counts in
    [rrms_serve_dataset_resolves_total]. *)

val unpin : t -> handle -> unit
(** Drop a pin.  Frees the entry when it was the last reference and the
    entry is still resident (a key re-bound to fresh identical content
    since the pin is left untouched). *)

val pinned_key : handle -> string
(** The content hash of the pinned entry. *)

val pinned_dims : handle -> int * int
(** [(n, m)] of the pinned entry's dataset. *)

val pinned_rows : handle -> Rrms_geom.Vec.t array
(** The pinned entry's tuples (post-transform, in load order) — shared,
    not copied: callers must not mutate.  The shard layer merges
    per-shard skylines against these rows.  Mutations replace the array
    wholesale (never in place), so a snapshot stays internally
    consistent even if the entry mutates afterwards. *)

val pinned_dataset : handle -> Rrms_dataset.Dataset.t
(** The pinned entry's current dataset — the shard layer slices it to
    re-seed sub-stores after a mutation. *)

val pinned_generation : handle -> int
(** The entry's mutation generation (0 at load). *)

val pinned_snapshot :
  handle -> string * int * Rrms_dataset.Dataset.t * Rrms_geom.Vec.t array
(** [(key, generation, dataset, rows)] captured atomically — the
    coherent multi-field read the shard fan-out needs. *)

val query_pinned :
  t ->
  handle ->
  Protocol.query ->
  ( outcome,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** {!query} against an already-pinned entry (the query's [dataset]
    field is ignored).  Never answers [`Unknown_dataset]; the union
    matches {!query} so callers can share error handling. *)

(** {2 Shard hooks}

    The shard layer computes merged artifacts out-of-store — per-shard
    skylines merged by {!Rrms_skyline.Skyline.merge_partitions}, matrix
    row blocks filled by {!Rrms_core.Regret_matrix.fill_row} against
    {!Rrms_core.Regret_matrix.merge_best}-merged best scores — and
    installs them here.  A subsequent {!query_pinned} then takes the
    ordinary artifact-hit path into [solve_prepared], so the merged
    answer is byte-identical to the unsharded one: same code path,
    bit-identical inputs. *)

val skyline_of : t -> handle -> int array
(** The entry's skyline artifact, computing (and persisting) it on
    first use — the per-shard half of the fan-out. *)

val matrix_of :
  t ->
  handle ->
  gamma:int ->
  guard:Rrms_guard.Guard.Budget.t ->
  int array * Rrms_core.Regret_matrix.t
(** [(skyline, matrix-at-γ)] for the entry, through the full preference
    chain (cached → derived by column selection → rehydrated → built).
    The union merge path runs this against each sub-store so per-shard
    matrices land in the per-shard artifact caches. *)

val artifacts_cached : handle -> gamma:int -> bool * bool
(** [(skyline_cached, matrix_cached_at_gamma)] — lets the shard layer
    skip the fan-out when the coordinator already holds the merged
    artifacts. *)

val preload_skyline : ?expect_generation:int -> t -> handle -> int array -> bool
(** Install a merged skyline as the entry's artifact ([false] if one is
    already present — first writer wins, later writers must have
    produced the identical array by the merge contract).  Writes through
    to persistence like a computed skyline.  [expect_generation] makes
    the install conditional: if the entry has mutated past that
    generation the artifact is silently dropped ([false]) — it
    describes rows that no longer exist.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on an
    empty or out-of-range index set. *)

val preload_matrix :
  ?expect_generation:int ->
  t ->
  handle ->
  gamma:int ->
  Rrms_core.Regret_matrix.t ->
  bool
(** Install a merged regret matrix as the entry's γ-artifact (same
    first-writer-wins and [expect_generation] contracts).
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when the
    row count disagrees with an installed skyline. *)

val grid_of : t -> m:int -> gamma:int -> Rrms_geom.Vec.t array
(** The store-wide direction grid at [(m, γ)] (cached, persisted) — the
    shard layer builds its row blocks against the same grid object the
    coordinator's solve will use. *)

val effective_gamma : rows:int -> m:int -> Protocol.query -> int
(** The γ the HD query path will actually use for [q] over a skyline of
    [rows] tuples — [q.gamma] unless the query's cell cap forces the
    solvers' auto-shrink.  The shard layer must build its merged matrix
    at this γ for {!query_pinned} to find it.
    @raise Rrms_guard.Guard.Error.Guard_error [Resource_limit] when even
    γ = 1 exceeds the cap. *)
