(** The artifact store and plan/result cache of the query service.

    The store owns every expensive intermediate of the RRMS pipeline and
    shares it across concurrent sessions:

    - {e datasets}, keyed by a 64-bit FNV-1a content hash of the loaded
      (post-transform) tuples — two sessions loading the same file, or
      two files with identical content, share one entry.  Entries are
      refcounted: each successful [load] takes a reference, [release]
      (the [evict] request, and session teardown) drops one, and the
      entry with all its artifacts is freed when the count reaches zero.
    - {e per-dataset artifacts}, computed once on first use and reused
      by every later query: the skyline index set, the 2D maxima-hull
      context, and regret matrices keyed by the γ they were built at.
      A γ'-query is served from a cached γ-matrix without rebuilding
      whenever γ' is an exact floating-point sub-grid of γ
      ({!Rrms_core.Discretize.subgrid_indices} +
      {!Rrms_core.Regret_matrix.select_cols}) — counted as a derived
      matrix, not a miss.
    - {e direction grids}, keyed [(m, γ)] store-wide (they are
      dataset-independent).
    - {e results}: the serialized deterministic part of every [Exact]
      answer, keyed by {!Protocol.cache_key}.  Degraded (budget-stopped)
      answers are never cached, so a cache hit is always bit-identical
      to an unbudgeted cold solve.  [use_cache = false] bypasses the
      read but still populates the cache.

    Admission control: at most [max_inflight] solves run concurrently;
    up to [max_queue] more wait on a condition variable; beyond that
    {!query} answers [`Overloaded] immediately (graceful shedding, the
    guard-subsystem philosophy at the service boundary).  Cache hits
    and the cheap requests bypass admission entirely.

    Every cache consults an {!Rrms_obs.Obs} counter pair
    ([rrms_serve_<kind>_{hits,misses}_total]); [stats] snapshots the
    whole registry.  All entry points are thread-safe. *)

type t

(** The serving-layer instruments, exposed so tests (and embedders) can
    assert the no-recompute contract directly: a warm query must leave
    every [*_misses] counter untouched.  All are registered in the
    global {!Rrms_obs.Obs} registry and appear in [stats]. *)
module Metrics : sig
  val datasets_loaded : Rrms_obs.Obs.Counter.t
  val dataset_hits : Rrms_obs.Obs.Counter.t
  val evictions : Rrms_obs.Obs.Counter.t
  val skyline_hits : Rrms_obs.Obs.Counter.t
  val skyline_misses : Rrms_obs.Obs.Counter.t
  val hull_hits : Rrms_obs.Obs.Counter.t
  val hull_misses : Rrms_obs.Obs.Counter.t
  val grid_hits : Rrms_obs.Obs.Counter.t
  val grid_misses : Rrms_obs.Obs.Counter.t
  val matrix_hits : Rrms_obs.Obs.Counter.t
  val matrix_misses : Rrms_obs.Obs.Counter.t

  val matrix_derived : Rrms_obs.Obs.Counter.t
  (** γ'-matrices obtained by column-selecting a cached γ-matrix. *)

  val result_hits : Rrms_obs.Obs.Counter.t
  val result_misses : Rrms_obs.Obs.Counter.t
  val overloaded : Rrms_obs.Obs.Counter.t

  val deadline_exceeded : Rrms_obs.Obs.Counter.t
  (** Queries whose end-to-end deadline — queue wait included — expired
      before the solver started. *)

  val drained : Rrms_obs.Obs.Counter.t
  (** Queries refused because the store was draining for shutdown. *)

  val queue_wait : Rrms_obs.Obs.Floatc.t
  (** Seconds spent waiting in the admission queue.  A float counter,
      so the per-request share tees into a bound {!Rrms_obs.Obs.Ctx}
      — the access log reads it from there. *)
end

val create :
  ?domains:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?persist:Persist.t ->
  unit ->
  t
(** [create ()] makes an empty store.  [domains] is the worker-domain
    count handed to every solver and artifact build (default: the
    {!Rrms_parallel.Pool.default_size} at call time, so [RRMS_DOMAINS]
    applies).  [max_inflight] defaults to [4]; [max_queue] to [16].
    [persist] attaches a durable artifact cache ({!Persist.open_dir}):
    skylines, grids, regret matrices and Exact results are written
    through to it and rehydrated on demand, so a store created over the
    same directory answers warm — bit-identically — after a restart. *)

type loaded = {
  key : string;  (** 16-hex-digit content hash — the canonical handle *)
  dataset_name : string;
  n : int;
  m : int;
  refs : int;  (** reference count after this load *)
  already_loaded : bool;  (** true on an artifact-store hit *)
  warnings : int;  (** dropped rows under lenient CSV loading *)
}

val load :
  t ->
  ?name:string ->
  ?normalize:bool ->
  ?lenient:bool ->
  string ->
  loaded
(** [load t path] reads a CSV, applies the transforms, hashes the
    content and either joins the existing entry (incrementing its
    refcount) or creates one.  [name] (default: the dataset's own name)
    is registered as an alias usable wherever a key is expected; a
    rebound alias points to the newest load.
    @raise Rrms_guard.Guard.Error.Guard_error as
    {!Rrms_dataset.Dataset.of_csv_report}. *)

type release =
  | Not_loaded
  | Released of { key : string; remaining : int; freed : bool }

val release : t -> string -> release
(** Drop one reference (by key or alias); frees the entry and all its
    artifacts when the count reaches zero.  [key] is the resolved
    content hash (the handle may have been an alias). *)

type outcome = {
  result : Json.t;  (** the deterministic [result] member *)
  cached : bool;  (** answered from the result cache *)
}

val query :
  t ->
  Protocol.query ->
  ( outcome,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** Answer one query: result cache → persisted result → admission →
    artifacts → solver.  The protocol [timeout] is an end-to-end
    deadline stamped on entry: a request that exhausts it waiting for
    an admission slot is refused with [`Deadline_exceeded] before any
    solver work (the solver's own expiry inside the slot still raises
    the structured [Timeout] as before).  [`Draining] is the refusal
    during graceful shutdown — cache hits are still served.
    @raise Rrms_guard.Guard.Error.Guard_error for solver-level failures
    (bad [r], budget expiry with no degraded answer, …);
    [Invalid_argument] raised by the 2D solvers on non-2D data is
    translated to a structured [Invalid_input] here. *)

val set_draining : t -> unit
(** Enter drain mode: every subsequent solve is refused with
    [`Draining]; in-flight solves, cached answers and the cheap
    requests (load/stats/ping) continue.  Irreversible. *)

val draining : t -> bool

val stats : t -> Json.t
(** Live snapshot: per-dataset artifact inventory, admission state, and
    the full {!Rrms_obs.Obs.snapshot}. *)

val session_release_all : t -> string list -> unit
(** Teardown helper: drop one reference per listed key (a session's
    loads), ignoring already-freed entries. *)

val resolve : t -> string -> string option
(** Content hash behind a key-or-alias handle, if loaded — the access
    log records this so its lines are join-able with [stats]. *)

val with_admission : t -> (unit -> 'a) -> ('a, [ `Overloaded ]) result
(** The raw admission gate (exposed for the burst tests): run the thunk
    in an in-flight slot, waiting in the bounded queue when saturated,
    shedding with [`Overloaded] when the queue is full too. *)

val admission_state : t -> int * int
(** [(inflight, queued)] right now. *)
