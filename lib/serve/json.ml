type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string v =
  if Float.is_nan v || not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_string t =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> Buffer.add_string b (number_string v)
    | Str s -> escape_string b s
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  (* Encode a code point as UTF-8; surrogate pairs are combined by the
     caller, lone surrogates become U+FFFD like most lenient decoders. *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else 0xFFFD
                end
                else if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD
                else cp
              in
              add_utf8 b cp
          | _ -> fail "bad escape");
          go ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors and constructors                                         *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None

let int_ = function
  (* Beyond 2^53 integrality is not meaningful in a double anyway. *)
  | Num v when Float.is_integer v && Float.abs v <= 9007199254740992. ->
      Some (int_of_float v)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let int i = Num (float_of_int i)
let float v = Num v
