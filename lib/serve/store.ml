module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Skyline = Rrms_skyline.Skyline
module Discretize = Rrms_core.Discretize
module Regret_matrix = Rrms_core.Regret_matrix
module Hd_rrms = Rrms_core.Hd_rrms
module Hd_greedy = Rrms_core.Hd_greedy
module Rrms2d = Rrms_core.Rrms2d
module Sweepline = Rrms_core.Sweepline
module Greedy = Rrms_core.Greedy
module Cube = Rrms_core.Cube
module Delta = Rrms_core.Delta
module Mrst = Rrms_core.Mrst

module Metrics = struct
  let c ?(deterministic = true) name help =
    Obs.Counter.make ~deterministic ~help name

  let datasets_loaded =
    c "rrms_serve_datasets_loaded_total" "datasets materialized in the store"

  let dataset_hits =
    c "rrms_serve_dataset_hits_total"
      "loads answered by an existing store entry (content-hash match)"

  let evictions = c "rrms_serve_evictions_total" "store entries freed"

  let skyline_hits = c "rrms_serve_skyline_hits_total" "skyline artifact hits"

  let skyline_misses =
    c "rrms_serve_skyline_misses_total" "skyline artifacts computed"

  let hull_hits = c "rrms_serve_hull_hits_total" "2D hull context hits"
  let hull_misses = c "rrms_serve_hull_misses_total" "2D hull contexts built"
  let grid_hits = c "rrms_serve_grid_hits_total" "direction-grid hits"
  let grid_misses = c "rrms_serve_grid_misses_total" "direction grids built"
  let matrix_hits = c "rrms_serve_matrix_hits_total" "regret-matrix hits"

  let matrix_misses =
    c "rrms_serve_matrix_misses_total" "regret matrices built from scratch"

  let matrix_derived =
    c "rrms_serve_matrix_derived_total"
      "regret matrices derived from a cached finer grid (column selection)"

  let result_hits = c "rrms_serve_result_hits_total" "result-cache hits"

  let result_misses =
    c "rrms_serve_result_misses_total" "result-cache misses (solver ran)"

  let mutations = c "rrms_serve_mutations_total" "mutation batches applied"

  let mutation_ops =
    c "rrms_serve_mutation_ops_total" "individual mutation ops applied"

  let results_carried =
    c "rrms_serve_results_carried_total"
      "cached results kept warm across a mutation by the delta-scoped \
       invalidation proof"

  let results_invalidated =
    c "rrms_serve_results_invalidated_total"
      "cached results evicted by a mutation"

  let incs_rebased =
    c "rrms_serve_mrst_rebased_total"
      "pooled MRST probe states rebased (sort reuse) across a mutation"

  (* One per [pin]: the query paths resolve-and-pin exactly once per
     request, so a batch of k items over one dataset adds 1 here where k
     single queries add k — the amortization the batch request exists
     for, made assertable through stats. *)
  let resolves =
    c "rrms_serve_dataset_resolves_total"
      "dataset entry resolutions performed by query paths"

  (* Shedding depends on timing and concurrency, never on the workload
     alone, so everything admission-related is non-deterministic. *)
  let overloaded =
    c ~deterministic:false "rrms_serve_overloaded_total"
      "queries shed because the admission queue was full"

  let queue_wait =
    Obs.Floatc.make
      ~help:"seconds requests spent waiting for an admission slot"
      "rrms_serve_queue_wait_seconds_total"

  let deadline_exceeded =
    c ~deterministic:false "rrms_serve_deadline_exceeded_total"
      "queries whose end-to-end deadline (including admission queue \
       wait) expired before the solver started"

  let drained =
    c ~deterministic:false "rrms_serve_drained_total"
      "queries refused because the store was draining for shutdown"

  let inflight =
    Obs.Gauge.make ~deterministic:false
      ~help:"solves currently holding an admission slot" "rrms_serve_inflight"

  let queue_depth =
    Obs.Gauge.make ~deterministic:false
      ~help:"solves waiting for an admission slot" "rrms_serve_queue_depth"
end

(* ------------------------------------------------------------------ *)
(* Content hashing                                                    *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit: cheap, dependency-free and stable across runs —
   exactly what a content-addressed cache key needs (it is not
   collision-resistant against adversaries; the store serves trusted
   local clients).  Hashed: m, n, attribute names, then the raw IEEE
   bits of every cell, so any observable dataset difference — including
   a normalize or lenient-drop difference — changes the key. *)
let fnv_prime = 0x100000001b3L

let hash_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let hash_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := hash_byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let hash_string h s =
  let h = String.fold_left (fun h c -> hash_byte h (Char.code c)) h s in
  hash_byte h 0xff

(* The cell loop runs on native ints: per-byte FNV boxes an Int64
   multiply per byte, which at ~1M boxed operations per rehash puts
   milliseconds on every mutation of a large table (the content rehash
   is the dominant maintenance cost there).  Two multiply-xor rounds
   per cell over the IEEE bits give the same guarantees the comment
   above promises — deterministic, stable across runs on 64-bit
   platforms, not adversarial-proof — at a fraction of the cost. *)
let mix_cell h bits =
  let lo = Int64.to_int bits in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let h = (h lxor lo) * 0x2545F4914F6CDD1D in
  let h = (h lxor hi) * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let hash_dataset d =
  let h = ref 0xcbf29ce484222325L in
  h := hash_int64 !h (Int64.of_int (Dataset.dim d));
  h := hash_int64 !h (Int64.of_int (Dataset.size d));
  Array.iter (fun a -> h := hash_string !h a) (Dataset.attributes d);
  let acc = ref (Int64.to_int !h) in
  for i = 0 to Dataset.size d - 1 do
    for j = 0 to Dataset.dim d - 1 do
      acc := mix_cell !acc (Int64.bits_of_float (Dataset.value d i j))
    done
  done;
  Printf.sprintf "%016Lx" (Int64.of_int !acc)

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

(* A pooled MRST probe state, valid only for the exact matrix it was
   created (or rebased) over — checkout verifies physical equality, so
   a slot left behind by a replaced matrix is simply never reused. *)
type inc_slot = { inc : Mrst.Incremental.t; for_matrix : Regret_matrix.t }

type entry = {
  (* [key]/[dataset]/[rows] are rebound wholesale by [mutate] (the row
     array itself is never mutated in place), under [t.lock] + [e_lock];
     readers outside [t.lock] snapshot them under [e_lock] so a solve
     works on one consistent generation throughout. *)
  mutable key : string;
  mutable dataset : Dataset.t;
  mutable rows : Rrms_geom.Vec.t array;
  e_lock : Mutex.t;  (* guards the artifact fields below *)
  mu_lock : Mutex.t;
      (* serializes mutations on this entry; taken before [t.lock] /
         [e_lock] and never the other way, so it cannot deadlock with
         the query paths *)
  mutable generation : int;
      (* bumped by every mutation; lets a solve that raced a mutation
         detect that its answer belongs to a previous generation *)
  mutable skyline : int array option;
  mutable hull : Rrms2d.ctx option;
  mutable matrices : (int * Regret_matrix.t) list;  (* keyed by γ *)
  mutable incs : (int * inc_slot) list;  (* keyed by γ, like [matrices] *)
  results : (string, Json.t) Hashtbl.t;  (* Protocol.cache_key → result *)
  (* NOT guarded by [e_lock]: [refs] is read and written only under
     [t.lock], together with the entry tables it keeps consistent — a
     refcount that reaches zero must atomically disappear from
     [t.entries], which [e_lock] cannot arrange. *)
  mutable refs : int;
}

type t = {
  domains : int;
  max_inflight : int;
  max_queue : int;
  persist : Persist.t option;  (* durable artifact spill, when --state-dir *)
  draining : bool Atomic.t;  (* set during graceful shutdown *)
  lock : Mutex.t;  (* guards entries, aliases and the admission state *)
  cond : Condition.t;
  entries : (string, entry) Hashtbl.t;  (* content hash → entry *)
  aliases : (string, string) Hashtbl.t;  (* dataset name → content hash *)
  g_lock : Mutex.t;  (* guards grids *)
  grids : (int * int, Rrms_geom.Vec.t array) Hashtbl.t;  (* (m, γ) → grid *)
  mutable inflight : int;
  mutable queued : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?domains ?(max_inflight = 4) ?(max_queue = 16) ?persist () =
  if max_inflight < 1 then
    Guard.Error.invalid_input "Store.create: max_inflight must be >= 1";
  if max_queue < 0 then
    Guard.Error.invalid_input "Store.create: max_queue must be >= 0";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> Guard.Error.invalid_input "Store.create: domains must be >= 1"
    | None -> Rrms_parallel.Pool.default_size ()
  in
  {
    domains;
    max_inflight;
    max_queue;
    persist;
    draining = Atomic.make false;
    lock = Mutex.create ();
    cond = Condition.create ();
    entries = Hashtbl.create 16;
    aliases = Hashtbl.create 16;
    g_lock = Mutex.create ();
    grids = Hashtbl.create 16;
    inflight = 0;
    queued = 0;
  }

(* ------------------------------------------------------------------ *)
(* Load / release                                                     *)
(* ------------------------------------------------------------------ *)

type loaded = {
  key : string;
  dataset_name : string;
  n : int;
  m : int;
  refs : int;
  already_loaded : bool;
  warnings : int;
}

(* Register an in-memory dataset: join the existing entry when the
   content hash is already resident, create one otherwise.  [load] and
   [add] are both thin wrappers over this. *)
let register t ~warnings d =
  let key = hash_dataset d in
  let r =
    with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.entries key with
      | Some e ->
          e.refs <- e.refs + 1;
          Obs.Counter.incr Metrics.dataset_hits;
          (* The alias follows the newest load even on a hit, so two
             names for identical content both resolve. *)
          Hashtbl.replace t.aliases (Dataset.name d) key;
          {
            key;
            dataset_name = Dataset.name e.dataset;
            n = Dataset.size e.dataset;
            m = Dataset.dim e.dataset;
            refs = e.refs;
            already_loaded = true;
            warnings;
          }
      | None ->
          let e =
            {
              key;
              dataset = d;
              rows = Dataset.rows d;
              e_lock = Mutex.create ();
              mu_lock = Mutex.create ();
              generation = 0;
              skyline = None;
              hull = None;
              matrices = [];
              incs = [];
              results = Hashtbl.create 16;
              refs = 1;
            }
          in
          Hashtbl.replace t.entries key e;
          Hashtbl.replace t.aliases (Dataset.name d) key;
          Obs.Counter.incr Metrics.datasets_loaded;
          {
            key;
            dataset_name = Dataset.name d;
            n = Dataset.size d;
            m = Dataset.dim d;
            refs = 1;
            already_loaded = false;
            warnings;
          })
  in
  (* Spill the dataset outside the store lock: the blob is provenance
     for the artifacts keyed by this hash, and the write must not stall
     other sessions. *)
  if not r.already_loaded then
    Option.iter (fun p -> Persist.save_dataset p ~key:r.key d) t.persist;
  r

(* The rows of partition member [s] of a round-robin split into [count]
   shards: global indices ≡ s (mod count), in ascending order, so a
   shard-local row [l] maps back to global row [s + l·count].  The same
   arithmetic lives in [Shard.partition]; a worker process loading with
   [?shard] and an in-process shard slicing the parent dataset must
   agree on it bit-for-bit. *)
let shard_slice d = function
  | None -> d
  | Some (s, count) ->
      if count < 1 || s < 0 || s >= count then
        Guard.Error.invalid_input "Store.load: bad shard index";
      let n = Dataset.size d in
      let len = (n - s + count - 1) / count in
      if len <= 0 then
        Guard.Error.invalid_input
          "Store.load: shard slice is empty (n <= shard index)";
      Dataset.select d (Array.init len (fun k -> s + (k * count)))

let load t ?name ?(normalize = false) ?(lenient = false) ?shard path =
  let mode = if lenient then Dataset.Lenient else Dataset.Strict in
  let d, warns = Dataset.of_csv_report ?name ~mode path in
  let d = if normalize then Dataset.normalize d else d in
  let d = shard_slice d shard in
  register t ~warnings:(List.length warns) d

let add t d = register t ~warnings:0 d

(* Resolve a key-or-alias under [t.lock]. *)
let find_locked t handle =
  match Hashtbl.find_opt t.entries handle with
  | Some e -> Some e
  | None -> (
      match Hashtbl.find_opt t.aliases handle with
      | Some key -> Hashtbl.find_opt t.entries key
      | None -> None)

type release =
  | Not_loaded
  | Released of { key : string; remaining : int; freed : bool }

(* Drop [e] from the tables, under [t.lock].  Callers have established
   that [e.refs] reached zero and that [e] is still the resident entry
   for its key — freeing by key alone would be wrong: the key could
   since have been re-bound to a fresh entry of identical content, and
   decrementing or removing {e that} entry is exactly the cross-shard
   refcount race this store had. *)
let free_locked t (e : entry) =
  Hashtbl.remove t.entries e.key;
  let dead =
    Hashtbl.fold
      (fun a k acc -> if k = e.key then a :: acc else acc)
      t.aliases []
  in
  List.iter (Hashtbl.remove t.aliases) dead;
  Obs.Counter.incr Metrics.evictions

let release t handle =
  with_lock t.lock (fun () ->
      match find_locked t handle with
      | None -> Not_loaded
      | Some e ->
          (* max 0: resident entries always hold at least one reference,
             but the clamp makes double-release idempotent instead of an
             underflow that frees someone else's pin. *)
          e.refs <- max 0 (e.refs - 1);
          if e.refs = 0 then begin
            free_locked t e;
            Released { key = e.key; remaining = 0; freed = true }
          end
          else Released { key = e.key; remaining = e.refs; freed = false })

let session_release_all t keys = List.iter (fun k -> ignore (release t k)) keys

let resolve t handle =
  with_lock t.lock (fun () ->
      Option.map (fun (e : entry) -> e.key) (find_locked t handle))

(* A pin is a temporary reference taken by a query path: resolve and
   increment under one [t.lock] hold, so the entry cannot be freed
   between the lookup and the bump.  The pre-pin code resolved the entry
   and then used it unprotected — a concurrent release (another session,
   another shard) could free it mid-solve, and with N sub-stores racing
   their releases the refcount could underflow.  Everything that touches
   an entry outside [t.lock] must hold a pin for the duration. *)
type handle = entry

let pin t name =
  with_lock t.lock (fun () ->
      match find_locked t name with
      | None -> None
      | Some e ->
          e.refs <- e.refs + 1;
          Obs.Counter.incr Metrics.resolves;
          Some e)

let unpin t (e : handle) =
  with_lock t.lock (fun () ->
      e.refs <- max 0 (e.refs - 1);
      if e.refs = 0 then
        (* Physical-equality check: free only if this exact entry is
           still resident (see [free_locked]). *)
        match Hashtbl.find_opt t.entries e.key with
        | Some resident when resident == e -> free_locked t e
        | _ -> ())

(* Pinned-entry accessors snapshot under [e_lock]: a concurrent
   mutation rebinds these fields atomically, so one accessor call
   returns one generation's value (callers that need several fields
   from the same generation use [pinned_snapshot]). *)
let pinned_key (e : handle) = with_lock e.e_lock (fun () -> e.key)

let pinned_dims (e : handle) =
  with_lock e.e_lock (fun () ->
      (Dataset.size e.dataset, Dataset.dim e.dataset))

let pinned_rows (e : handle) = with_lock e.e_lock (fun () -> e.rows)
let pinned_dataset (e : handle) = with_lock e.e_lock (fun () -> e.dataset)
let pinned_generation (e : handle) = with_lock e.e_lock (fun () -> e.generation)

let pinned_snapshot (e : handle) =
  with_lock e.e_lock (fun () -> (e.key, e.generation, e.dataset, e.rows))

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)
(* ------------------------------------------------------------------ *)

let with_admission t f =
  let admitted =
    with_lock t.lock (fun () ->
        if t.inflight < t.max_inflight then begin
          t.inflight <- t.inflight + 1;
          Obs.Gauge.set_int Metrics.inflight t.inflight;
          true
        end
        else if t.queued >= t.max_queue then false
        else begin
          t.queued <- t.queued + 1;
          Obs.Gauge.set_int Metrics.queue_depth t.queued;
          (* The wait lands in a float counter, which tees into any
             bound request context — that is where the access log's
             queue_wait_ms comes from. *)
          let w0 = Unix.gettimeofday () in
          while t.inflight >= t.max_inflight do
            Condition.wait t.cond t.lock
          done;
          Obs.Floatc.add Metrics.queue_wait (Unix.gettimeofday () -. w0);
          t.queued <- t.queued - 1;
          Obs.Gauge.set_int Metrics.queue_depth t.queued;
          t.inflight <- t.inflight + 1;
          Obs.Gauge.set_int Metrics.inflight t.inflight;
          true
        end)
  in
  if not admitted then begin
    Obs.Counter.incr Metrics.overloaded;
    Error `Overloaded
  end
  else
    Fun.protect
      ~finally:(fun () ->
        with_lock t.lock (fun () ->
            t.inflight <- t.inflight - 1;
            Obs.Gauge.set_int Metrics.inflight t.inflight;
            (* One slot freed can admit one waiter, but broadcast keeps
               the gate correct if max_inflight ever changes shape. *)
            Condition.broadcast t.cond))
      (fun () -> Ok (f ()))

let admission_state t = with_lock t.lock (fun () -> (t.inflight, t.queued))

(* ------------------------------------------------------------------ *)
(* Artifacts                                                          *)
(* ------------------------------------------------------------------ *)

(* Lock order everywhere: [t.lock] strictly before [e.e_lock]; [g_lock]
   only ever innermost.  Artifact builds run under the entry lock, so
   concurrent sessions querying the same dataset serialize the build
   and every one of them reuses the single copy — the whole point.

   Two further rules added with the shard layer:

   - [refs] belongs to [t.lock], not [e_lock] (see the entry type); any
     use of an entry outside [t.lock] must hold a pin, and frees check
     physical equality against the resident entry so a re-bound key is
     never touched.
   - a coordinator store never calls into a sub-store while holding any
     of its own locks: the shard fan-out runs pinned but lock-free, so
     coordinator and sub-store lock orders cannot interleave into a
     cycle.  (Shard.t relies on this: its own lock is taken only around
     its partition table, never across a Store call that could block on
     admission.) *)

let skyline_locked t e =
  match e.skyline with
  | Some sky ->
      Obs.Counter.incr Metrics.skyline_hits;
      sky
  | None -> (
      (* Disk before recompute: a restarted daemon finds the previous
         process's skyline under the same content hash.  Rehydration is
         neither a (memory) hit nor a miss — it lands in
         rrms_serve_persist_rehydrated_total instead, keeping the
         no-recompute counter contract intact for memory-only stores. *)
      let rehydrated =
        match t.persist with
        | Some p -> Persist.load_skyline p ~key:e.key
        | None -> None
      in
      match rehydrated with
      | Some sky ->
          e.skyline <- Some sky;
          sky
      | None ->
          Obs.Counter.incr Metrics.skyline_misses;
          let sky = Skyline.sfs ~domains:t.domains e.rows in
          e.skyline <- Some sky;
          Option.iter (fun p -> Persist.save_skyline p ~key:e.key sky) t.persist;
          sky)

let hull_locked e =
  match e.hull with
  | Some ctx ->
      Obs.Counter.incr Metrics.hull_hits;
      ctx
  | None ->
      Obs.Counter.incr Metrics.hull_misses;
      let ctx = Rrms2d.make_ctx e.rows in
      e.hull <- Some ctx;
      ctx

let grid_of t ~m ~gamma =
  with_lock t.g_lock (fun () ->
      match Hashtbl.find_opt t.grids (m, gamma) with
      | Some g ->
          Obs.Counter.incr Metrics.grid_hits;
          g
      | None ->
          let g =
            let rehydrated =
              match t.persist with
              | Some p -> Persist.load_grid p ~m ~gamma
              | None -> None
            in
            match rehydrated with
            | Some g -> g
            | None ->
                Obs.Counter.incr Metrics.grid_misses;
                let g = Discretize.grid ~gamma ~m in
                Option.iter (fun p -> Persist.save_grid p ~m ~gamma g) t.persist;
                g
          in
          Hashtbl.replace t.grids (m, gamma) g;
          g)

(* The γ-matrix for [e], in preference order: cached at γ → derived by
   column selection from a cached γ' > γ whose shared angles are
   bit-identical (Discretize.subgrid_indices) → built from scratch. *)
let matrix_locked t e ~sky ~m ~gamma ~guard =
  match List.assoc_opt gamma e.matrices with
  | Some mat ->
      Obs.Counter.incr Metrics.matrix_hits;
      mat
  | None -> (
      let derived =
        List.fold_left
          (fun acc (g, mat) ->
            match acc with
            | Some _ -> acc
            | None when g > gamma -> (
                match Discretize.subgrid_indices ~gamma_sub:gamma ~gamma:g ~m with
                | Some idx ->
                    (* The derived matrix is stored as an artifact and
                       scanned by every query at this γ: materialize the
                       column view so those scans read stride-1 and the
                       entry does not pin the wider γ' buffer. *)
                    Some
                      (Regret_matrix.materialize
                         (Regret_matrix.select_cols mat idx))
                | None -> None)
            | None -> None)
          None e.matrices
      in
      match derived with
      | Some mat ->
          Obs.Counter.incr Metrics.matrix_derived;
          e.matrices <- (gamma, mat) :: e.matrices;
          (* The derived matrix is a first-class artifact at this γ:
             spilled so a restart rehydrates it directly, without
             needing the wider parent it was cut from. *)
          Option.iter
            (fun p -> Persist.save_matrix p ~key:e.key ~gamma mat)
            t.persist;
          mat
      | None -> (
          let rehydrated =
            match t.persist with
            | Some p -> Persist.load_matrix p ~key:e.key ~gamma
            | None -> None
          in
          match rehydrated with
          | Some mat ->
              e.matrices <- (gamma, mat) :: e.matrices;
              mat
          | None ->
              Obs.Counter.incr Metrics.matrix_misses;
              let funcs = grid_of t ~m ~gamma in
              let sky_points = Array.map (fun i -> e.rows.(i)) sky in
              let mat =
                Regret_matrix.build ~domains:t.domains ~guard ~funcs sky_points
              in
              e.matrices <- (gamma, mat) :: e.matrices;
              Option.iter
                (fun p -> Persist.save_matrix p ~key:e.key ~gamma mat)
                t.persist;
              mat))

(* ------------------------------------------------------------------ *)
(* Shard hooks                                                        *)
(* ------------------------------------------------------------------ *)

(* The shard layer computes merged artifacts itself (per-shard skylines
   and matrix row blocks, merged by Skyline.merge_partitions /
   Regret_matrix.merge_best) and installs them here, so the ordinary
   [query] path then runs [solve_prepared] over them exactly as it would
   over its own artifacts — the merged answer is byte-identical to the
   unsharded one because it literally is the same code path on
   bit-identical inputs. *)

let skyline_of t (e : handle) = with_lock e.e_lock (fun () -> skyline_locked t e)

let matrix_of t (e : handle) ~gamma ~guard =
  let m = Dataset.dim e.dataset in
  with_lock e.e_lock (fun () ->
      let sky = skyline_locked t e in
      (sky, matrix_locked t e ~sky ~m ~gamma ~guard))

let artifacts_cached (e : handle) ~gamma =
  with_lock e.e_lock (fun () ->
      (e.skyline <> None, List.mem_assoc gamma e.matrices))

(* [expect_generation] guards against installing an artifact computed
   against a generation the entry has since mutated away from: the
   shard layer captures the generation at pin time and the preload is
   silently dropped on a mismatch (the caller's merged artifact would
   describe rows that no longer exist). *)
let preload_skyline ?expect_generation t (e : handle) sky =
  if Array.length sky = 0 then
    Guard.Error.invalid_input "Store.preload_skyline: empty skyline";
  with_lock e.e_lock (fun () ->
      if
        match expect_generation with
        | Some g -> g <> e.generation
        | None -> false
      then false
      else begin
        let n = Array.length e.rows in
        Array.iter
          (fun i ->
            if i < 0 || i >= n then
              Guard.Error.invalid_input
                "Store.preload_skyline: index out of range")
          sky;
        match e.skyline with
        | Some _ -> false
        | None ->
            e.skyline <- Some sky;
            Option.iter
              (fun p -> Persist.save_skyline p ~key:e.key sky)
              t.persist;
            true
      end)

let preload_matrix ?expect_generation t (e : handle) ~gamma mat =
  with_lock e.e_lock (fun () ->
      if
        match expect_generation with
        | Some g -> g <> e.generation
        | None -> false
      then false
      else begin
        (match e.skyline with
        | Some sky when Regret_matrix.rows mat <> Array.length sky ->
            Guard.Error.invalid_input
              "Store.preload_matrix: row count does not match the skyline"
        | _ -> ());
        if List.mem_assoc gamma e.matrices then false
        else begin
          e.matrices <- (gamma, mat) :: e.matrices;
          Option.iter
            (fun p -> Persist.save_matrix p ~key:e.key ~gamma mat)
            t.persist;
          true
        end
      end)

(* ------------------------------------------------------------------ *)
(* Query                                                              *)
(* ------------------------------------------------------------------ *)

let budget_of (q : Protocol.query) =
  match (q.timeout, q.max_cells, q.max_probes) with
  | None, None, None -> Guard.Budget.unlimited
  | timeout, max_cells, max_probes ->
      Guard.Budget.create ?timeout ?max_cells ?max_probes ()

let ints arr = Json.Arr (Array.to_list (Array.map Json.int arr))

let quality_fields q =
  [
    ("quality", Json.Str (Guard.describe q));
    ("degraded", Json.Bool (not (Guard.is_exact q)));
  ]

(* Mirror of the solvers' own cell-cap auto-shrink (Hd_rrms.shrink_gamma),
   run before the matrix artifact is chosen so a capped query fetches /
   builds the matrix it would have built cold. *)
let shrink_gamma ~max_cells ~rows ~gamma ~m =
  match max_cells with
  | None -> (gamma, None)
  | Some cap -> (
      match Discretize.fit_gamma ~rows ~max_cells:cap ~gamma ~m with
      | Some g when g = gamma -> (gamma, None)
      | Some g ->
          let requested = Discretize.matrix_cells ~rows ~gamma ~m in
          ( g,
            Some
              (Guard.Cell_cap
                 { requested; cap; gamma_from = gamma; gamma_to = g }) )
      | None ->
          Guard.Error.resource_limit
            ~what:"regret matrix cells (even at gamma = 1)"
            ~requested:(Discretize.matrix_cells ~rows ~gamma:1 ~m)
            ~limit:cap)

(* The γ the HD path will actually use for [q] over a skyline of [rows]
   tuples — exposed so the shard layer can build its merged matrix at
   the same γ the coordinator's query path will then look up. *)
let effective_gamma ~rows ~m (q : Protocol.query) =
  fst (shrink_gamma ~max_cells:q.max_cells ~rows ~gamma:q.gamma ~m)

let merge_shrink quality = function
  | None -> quality
  | Some c -> (
      match quality with
      | Guard.Exact -> Guard.Degraded [ c ]
      | Guard.Degraded rs -> Guard.Degraded (c :: rs))

let solve_query t e ~guard (q : Protocol.query) =
  let m = Dataset.dim e.dataset in
  match q.algo with
  | Protocol.Hd_rrms ->
      let sky, matrix, gamma_used, shrink, pooled =
        with_lock e.e_lock (fun () ->
            let sky = skyline_locked t e in
            let gamma_used, shrink =
              shrink_gamma ~max_cells:q.max_cells ~rows:(Array.length sky)
                ~gamma:q.gamma ~m
            in
            let matrix = matrix_locked t e ~sky ~m ~gamma:gamma_used ~guard in
            (* Check out the pooled probe state for this matrix, if any:
               the per-row sorts it carries are the expensive part of
               MRST search, and they are reusable across queries (any
               starting threshold is fine) and across mutations (via
               rebase).  Removed from the pool while in use so a
               concurrent query on the same matrix builds its own. *)
            let pooled =
              match List.assoc_opt gamma_used e.incs with
              | Some s when s.for_matrix == matrix ->
                  e.incs <- List.remove_assoc gamma_used e.incs;
                  Some s.inc
              | _ -> None
            in
            (sky, matrix, gamma_used, shrink, pooled))
      in
      let inc =
        match pooled with
        | Some i -> i
        | None -> Mrst.Incremental.create ~domains:t.domains matrix
      in
      let res =
        Hd_rrms.solve_prepared ~domains:t.domains ~guard ~skyline:sky
          ~gamma_used ~m ~inc matrix ~r:q.r
      in
      (* Return the probe state (a budget failure above simply drops it;
         the next query rebuilds).  Keyed to the matrix it served, so if
         a mutation replaced the matrix mid-solve the slot goes stale
         and is never reused. *)
      with_lock e.e_lock (fun () ->
          e.incs <-
            (gamma_used, { inc; for_matrix = matrix })
            :: List.remove_assoc gamma_used e.incs);
      let quality = merge_shrink res.Hd_rrms.quality shrink in
      ( Json.Obj
          ([
             ("algo", Json.Str "hd-rrms");
             ("selected", ints res.Hd_rrms.selected);
             ("size", Json.int (Array.length res.Hd_rrms.selected));
             ("eps_min", Json.float res.Hd_rrms.eps_min);
             ("discretized_regret", Json.float res.Hd_rrms.discretized_regret);
             ("guarantee", Json.float res.Hd_rrms.guarantee);
             ("gamma_used", Json.int res.Hd_rrms.gamma_used);
           ]
          @ quality_fields quality),
        Guard.is_exact quality,
        [
          ("s", Json.int (Array.length sky));
          ("gamma_used", Json.int gamma_used);
          ( "cells",
            Json.int (Regret_matrix.rows matrix * Regret_matrix.cols matrix) );
          ("probes", Json.int res.Hd_rrms.cost.Hd_rrms.probes);
          ("probes_fresh", Json.int res.Hd_rrms.cost.Hd_rrms.probes_fresh);
          ("probes_cached", Json.int res.Hd_rrms.cost.Hd_rrms.probes_cached);
          ("probe_state", Json.Str (if pooled = None then "fresh" else "pooled"));
          ("theorem4_bound", Json.float res.Hd_rrms.guarantee);
        ] )
  | Protocol.Hd_greedy ->
      let sky, matrix, gamma_used, shrink =
        with_lock e.e_lock (fun () ->
            let sky = skyline_locked t e in
            let gamma_used, shrink =
              shrink_gamma ~max_cells:q.max_cells ~rows:(Array.length sky)
                ~gamma:q.gamma ~m
            in
            let matrix = matrix_locked t e ~sky ~m ~gamma:gamma_used ~guard in
            (sky, matrix, gamma_used, shrink))
      in
      let res =
        Hd_greedy.solve_prepared ~domains:t.domains ~guard ~skyline:sky
          ~gamma_used matrix ~r:q.r
      in
      let quality = merge_shrink res.Hd_greedy.quality shrink in
      ( Json.Obj
          ([
             ("algo", Json.Str "hd-greedy");
             ("selected", ints res.Hd_greedy.selected);
             ("size", Json.int (Array.length res.Hd_greedy.selected));
             ( "discretized_regret",
               Json.float res.Hd_greedy.discretized_regret );
             ("gamma_used", Json.int res.Hd_greedy.gamma_used);
           ]
          @ quality_fields quality),
        Guard.is_exact quality,
        [
          ("s", Json.int (Array.length sky));
          ("gamma_used", Json.int gamma_used);
          ( "cells",
            Json.int (Regret_matrix.rows matrix * Regret_matrix.cols matrix) );
          ("steps", Json.int res.Hd_greedy.steps);
        ] )
  | Protocol.A2d | Protocol.A2d_exact ->
      (* ctx and rows from one lock hold: a mutation replaces [e.rows]
         wholesale, so the pair must come from the same generation. *)
      let ctx, rows = with_lock e.e_lock (fun () -> (hull_locked e, e.rows)) in
      let res =
        match q.algo with
        | Protocol.A2d -> Rrms2d.solve ~ctx rows ~r:q.r
        | _ -> Rrms2d.solve_exact ~ctx rows ~r:q.r
      in
      ( Json.Obj
          [
            ( "algo",
              Json.Str (if q.algo = Protocol.A2d then "2d" else "2d-exact") );
            ("selected", ints res.Rrms2d.selected);
            ("size", Json.int (Array.length res.Rrms2d.selected));
            ("dp_value", Json.float res.Rrms2d.dp_value);
            ("regret", Json.float res.Rrms2d.regret);
          ],
        true,
        [] )
  | Protocol.Sweepline ->
      let rows = with_lock e.e_lock (fun () -> e.rows) in
      let res = Sweepline.solve rows ~r:q.r in
      ( Json.Obj
          [
            ("algo", Json.Str "sweepline");
            ("selected", ints res.Sweepline.selected);
            ("size", Json.int (Array.length res.Sweepline.selected));
            ("dp_value", Json.float res.Sweepline.dp_value);
            ("regret", Json.float res.Sweepline.regret);
          ],
        true,
        [] )
  | Protocol.Greedy ->
      let rows = with_lock e.e_lock (fun () -> e.rows) in
      let res = Greedy.solve ~guard rows ~r:q.r in
      ( Json.Obj
          ([
             ("algo", Json.Str "greedy");
             ("selected", ints res.Greedy.selected);
             ("size", Json.int (Array.length res.Greedy.selected));
             ("regret_lp", Json.float res.Greedy.regret_lp);
             ("skipped_lps", Json.int res.Greedy.skipped_lps);
           ]
          @ quality_fields res.Greedy.quality),
        Guard.is_exact res.Greedy.quality,
        [ ("skipped_lps", Json.int res.Greedy.skipped_lps) ] )
  | Protocol.Cube ->
      let rows = with_lock e.e_lock (fun () -> e.rows) in
      let res = Cube.solve rows ~r:q.r in
      ( Json.Obj
          [
            ("algo", Json.Str "cube");
            ("selected", ints res.Cube.selected);
            ("size", Json.int (Array.length res.Cube.selected));
            ("t_parameter", Json.int res.Cube.t_parameter);
          ],
        true,
        [] )

(* [cost] is the answer's provenance record (docs/OBSERVABILITY.md,
   "Cost provenance"): ordered fields ready to be wrapped in an object.
   It lives OUTSIDE [result] — the cached, byte-compared member — so
   provenance can vary (cache hit vs. fresh solve, shard merge path)
   without perturbing the answer bytes. *)
type outcome = {
  result : Json.t;
  cached : bool;
  cost : (string * Json.t) list;
}

let set_draining t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

let query_pinned t (e : handle) (q : Protocol.query) =
  (
      (* The request's one end-to-end budget, stamped before the cache
         probe and the admission wait: the protocol [timeout] is a
         deadline covering queueing, not a solver allowance granted
         afresh once a slot frees up. *)
      let guard = budget_of q in
      let ckey = Protocol.cache_key q in
      (* Generation and content key captured with the cache probe: a
         solve that races a mutation still answers correctly (it ran on
         a consistent snapshot of the pre-mutation artifacts), but its
         answer describes the {e old} rows, so it must only enter the
         cache — memory or disk — if the generation is still the one it
         solved. *)
      let gen0, key0, hit =
        with_lock e.e_lock (fun () ->
            ( e.generation,
              e.key,
              if q.use_cache then Hashtbl.find_opt e.results ckey else None ))
      in
      match hit with
      | Some result ->
          Obs.Counter.incr Metrics.result_hits;
          Ok { result; cached = true; cost = [ ("source", Json.Str "cache") ] }
      | None -> (
          (* Memory miss: the previous process may have left this exact
             answer on disk.  A rehydrated result joins the memory cache
             and answers as a hit — bit-identical, because only Exact
             answers are ever persisted. *)
          let rehydrated =
            if q.use_cache then
              match t.persist with
              | Some p -> Persist.load_result p ~key:key0 ~cache_key:ckey
              | None -> None
            else None
          in
          match rehydrated with
          | Some result ->
              Obs.Counter.incr Metrics.result_hits;
              with_lock e.e_lock (fun () ->
                  if e.generation = gen0 && not (Hashtbl.mem e.results ckey)
                  then Hashtbl.add e.results ckey result);
              Ok
                {
                  result;
                  cached = true;
                  cost = [ ("source", Json.Str "persist") ];
                }
          | None ->
              if q.use_cache then Obs.Counter.incr Metrics.result_misses;
              if draining t then begin
                Obs.Counter.incr Metrics.drained;
                Error `Draining
              end
              else (
                match
                  with_admission t (fun () ->
                      (* The queue wait counted against the deadline:
                         a request that spent its whole budget waiting
                         is refused here, before any solver work. *)
                      match Guard.Budget.deadline_expired guard with
                      | Some _ -> `Deadline
                      | None -> `Solved (solve_query t e ~guard q))
                with
                | Error `Overloaded -> Error `Overloaded
                | Ok `Deadline ->
                    Obs.Counter.incr Metrics.deadline_exceeded;
                    Error `Deadline_exceeded
                | Ok (`Solved (result, cacheable, cost)) ->
                    (* Only Exact answers are cached: a budget-degraded
                       result depends on its budget, so serving it to a
                       later (maybe unbudgeted) request would break the
                       bit-identity contract.  The same rule governs the
                       disk spill. *)
                    if cacheable then begin
                      let same_gen =
                        with_lock e.e_lock (fun () ->
                            if e.generation = gen0 then begin
                              if not (Hashtbl.mem e.results ckey) then
                                Hashtbl.add e.results ckey result;
                              true
                            end
                            else false)
                      in
                      (* The disk spill is keyed by the generation the
                         solve actually ran on; skipped if a mutation
                         won the race (the answer is still returned —
                         query and mutation were concurrent, so the
                         pre-mutation ordering is a valid one). *)
                      if same_gen then
                        Option.iter
                          (fun p ->
                            Persist.save_result p ~key:key0 ~cache_key:ckey
                              result)
                          t.persist
                    end;
                    Ok
                      {
                        result;
                        cached = false;
                        cost = ("source", Json.Str "solve") :: cost;
                      })))

let query t (q : Protocol.query) =
  match pin t q.dataset with
  | None -> Error `Unknown_dataset
  | Some e ->
      (* The pin outlives the whole request — cache probe, admission
         wait, solve — so a concurrent evict cannot free the entry (or
         its artifacts) out from under the solver. *)
      Fun.protect
        ~finally:(fun () -> unpin t e)
        (fun () -> query_pinned t e q)

(* ------------------------------------------------------------------ *)
(* Mutation                                                           *)
(* ------------------------------------------------------------------ *)

type mutated = {
  old_key : string;
  new_key : string;
  generation : int;
  n : int;
  m : int;
  ops_applied : int;
  skyline_path : string option;  (* None: skyline was not materialized *)
  matrices_updated : int;
  matrices_dropped : int;
  incs_rebased : int;
  results_kept : int;
  results_evicted : int;
}

let algo_of_cache_key ckey =
  match String.index_opt ckey ';' with
  | Some i when i > 5 && String.length ckey > 5 && String.sub ckey 0 5 = "algo="
    ->
      Protocol.algo_of_string (String.sub ckey 5 (i - 5))
  | _ -> None

(* Rewrite the "selected" member of a cached answer through the plan's
   index map.  [None] (evict) if any selected index has no surviving
   image — which cannot happen for a sequence-preserving mutation, but
   the defensive check keeps a wrong remap impossible. *)
let remap_selected old_to_new json =
  match json with
  | Json.Obj fields ->
      let ok = ref true in
      let fields =
        List.map
          (fun (k, v) ->
            if k <> "selected" then (k, v)
            else
              match v with
              | Json.Arr l ->
                  ( k,
                    Json.Arr
                      (List.map
                         (fun j ->
                           match Json.int_ j with
                           | Some i
                             when i >= 0
                                  && i < Array.length old_to_new
                                  && old_to_new.(i) >= 0 ->
                               Json.int old_to_new.(i)
                           | _ ->
                               ok := false;
                               j)
                         l) )
              | _ ->
                  ok := false;
                  (k, v))
          fields
      in
      if !ok then Some (Json.Obj fields) else None
  | _ -> None

let vec_bits p =
  let b = Buffer.create (Array.length p * 8) in
  Array.iter (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v)) p;
  Buffer.contents b

(* Whether every skyline value occurs exactly once in the table.
   [Skyline.two_d] (the 2D solvers' entry point) breaks ties between
   bit-equal tuples with an unstable sort, so the representative index
   it picks is only provably stable across a mutation when there is no
   tie to break. *)
let sky_values_unique rows sky =
  let keys = Hashtbl.create (2 * Array.length sky) in
  Array.iter (fun g -> Hashtbl.replace keys (vec_bits rows.(g)) false) sky;
  let dup = ref false in
  Array.iter
    (fun p ->
      let k = vec_bits p in
      match Hashtbl.find_opt keys k with
      | None -> ()
      | Some seen -> if seen then dup := true else Hashtbl.replace keys k true)
    rows;
  not !dup

(* The incremental maintenance pass: compute the post-mutation dataset,
   skyline, matrices, probe states and surviving cached results from a
   consistent snapshot, then install everything atomically.  Runs under
   the entry's mutation lock, so there is exactly one writer; query
   paths keep running against the old generation until the install. *)
let mutate_pinned ~journal ~guard t (e : handle) muts =
  with_lock e.mu_lock (fun () ->
      let key0, gen0, d0, rows0, sky0, mats0, incs0, results0 =
        with_lock e.e_lock (fun () ->
            ( e.key,
              e.generation,
              e.dataset,
              e.rows,
              e.skyline,
              e.matrices,
              e.incs,
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.results [] ))
      in
      let m = Dataset.dim d0 in
      let plan = Delta.apply ~dim:m rows0 muts in
      if Array.length plan.Delta.rows = 0 then
        Guard.Error.invalid_input
          "Store.mutate: mutation would empty the dataset";
      let d' =
        Dataset.create ~name:(Dataset.name d0)
          ~attributes:(Dataset.attributes d0) plan.Delta.rows
      in
      let new_key = hash_dataset d' in
      let sky', path =
        match sky0 with
        | None -> (None, None)
        | Some sky ->
            let s, p =
              Delta.update_skyline ~domains:t.domains plan ~old_sky:sky
            in
            (Some s, Some p)
      in
      let preserved =
        match (sky0, sky') with
        | Some o, Some n -> Delta.sequence_preserved plan ~old_sky:o ~new_sky:n
        | _ -> false
      in
      (* Matrices: a sequence-preserving mutation leaves them untouched
         (they are pure functions of the skyline point sequence), and
         the pooled probe states with them.  Otherwise each matrix is
         updated in place-equivalent fashion — carried rows blit, fresh
         rows run the kernel — and a probe state survives by rebase
         exactly when no column's cells changed. *)
      let mats', incs', updated, dropped, rebased =
        if preserved then (mats0, incs0, 0, 0, 0)
        else
          match (sky0, sky') with
          | Some o, Some n ->
              let carried = Delta.carried_rows plan ~old_sky:o ~new_sky:n in
              let points = Array.map (fun g -> plan.Delta.rows.(g)) n in
              let rebased = ref 0 in
              let mats', incs' =
                List.fold_left
                  (fun (ms, is) (gamma, mat) ->
                    let funcs = grid_of t ~m ~gamma in
                    let mat', changed =
                      Regret_matrix.update ~domains:t.domains ~guard mat
                        ~funcs ~points ~carried
                    in
                    let is =
                      if Array.length changed = 0 then
                        match List.assoc_opt gamma incs0 with
                        | Some s when s.for_matrix == mat ->
                            incr rebased;
                            ( gamma,
                              {
                                inc =
                                  Mrst.Incremental.rebase ~domains:t.domains
                                    s.inc mat' ~carried;
                                for_matrix = mat';
                              } )
                            :: is
                        | _ -> is
                      else is
                    in
                    ((gamma, mat') :: ms, is))
                  ([], []) mats0
              in
              (List.rev mats', List.rev incs', List.length mats0, 0, !rebased)
          | _ ->
              (* No materialized skyline to carry from: matrices (which
                 exist only via preload on sub-stores in that case) are
                 dropped and rebuild lazily. *)
              ([], [], 0, List.length mats0, 0)
      in
      (* Delta-scoped result invalidation.  A cached answer survives
         only with a proof that a fresh solve over the new rows returns
         the same bytes:
         - hd-rrms / hd-greedy are pure functions of the skyline point
           sequence (via the matrix) plus (r, γ); sequence preserved ⇒
           same answer up to index names, remapped through the plan.
         - 2d / 2d-exact / sweepline additionally cite row indices of
           skyline members directly, so every survivor must have kept
           its old index, and representative picks must be tie-free
           (sky_values_unique) for the index citation to be stable.
         - greedy (LP skip counters) and cube (t-parameter grid) read
           the full raw table, dominated rows included — always
           evicted. *)
      let indices_stable =
        let ok = ref true in
        Array.iteri
          (fun i v -> if v <> i && v <> -1 then ok := false)
          plan.Delta.old_to_new;
        !ok
      in
      (* Lazy: the tie-free scan walks the whole table, and only the 2D
         family ever needs the proof — an hd-only cache must not pay
         for it on every mutation. *)
      let positional =
        lazy
          (preserved && indices_stable
          &&
          match sky' with
          | Some s -> sky_values_unique plan.Delta.rows s
          | None -> false)
      in
      let kept = ref 0 and evicted = ref 0 in
      let survivors =
        List.filter_map
          (fun (ckey, result) ->
            let keep =
              match algo_of_cache_key ckey with
              | Some (Protocol.Hd_rrms | Protocol.Hd_greedy) when preserved ->
                  remap_selected plan.Delta.old_to_new result
              | Some (Protocol.A2d | Protocol.A2d_exact | Protocol.Sweepline)
                when Lazy.force positional ->
                  Some result
              | _ -> None
            in
            match keep with
            | Some r ->
                incr kept;
                Some (ckey, r)
            | None ->
                incr evicted;
                None)
          results0
      in
      (* Write-ahead journal, after the maintenance pass proved the
         batch applies cleanly and before the in-memory install — a
         crash from here on is replayable. *)
      if journal then
        Option.iter
          (fun p ->
            Persist.Wal.append p
              { Persist.Wal.base_key = key0; new_key; ops = muts })
          t.persist;
      (* Install: rebind the entry under its new content hash and swap
         every artifact field in one critical section. *)
      with_lock t.lock (fun () ->
          (match Hashtbl.find_opt t.entries key0 with
          | Some resident when resident == e -> Hashtbl.remove t.entries key0
          | _ -> ());
          (* If another resident entry already owns [new_key] (the
             mutation made this dataset bit-identical to a separately
             loaded one), the rebind shadows it: its pins stay safe
             (unpin frees only on physical equality) but it lives until
             process exit — an accepted leak for a pathological case. *)
          Hashtbl.replace t.entries new_key e;
          let stale =
            Hashtbl.fold
              (fun a k acc -> if k = key0 then a :: acc else acc)
              t.aliases []
          in
          List.iter (fun a -> Hashtbl.replace t.aliases a new_key) stale;
          (* The old hash stays resolvable, so a client that addressed
             the dataset by content key keeps reaching it. *)
          if key0 <> new_key then Hashtbl.replace t.aliases key0 new_key;
          with_lock e.e_lock (fun () ->
              e.key <- new_key;
              e.dataset <- d';
              e.rows <- plan.Delta.rows;
              e.generation <- gen0 + 1;
              e.skyline <- sky';
              e.hull <- None;
              e.matrices <- mats';
              e.incs <- incs';
              Hashtbl.reset e.results;
              List.iter (fun (k, v) -> Hashtbl.replace e.results k v) survivors));
      Obs.Counter.incr Metrics.mutations;
      Obs.Counter.add Metrics.mutation_ops (List.length muts);
      Obs.Counter.add Metrics.results_carried !kept;
      Obs.Counter.add Metrics.results_invalidated !evicted;
      Obs.Counter.add Metrics.incs_rebased rebased;
      (* Spill the new generation's artifacts outside all locks, so a
         restart rehydrates them without replaying (the WAL record is
         then a no-op integrity check). *)
      Option.iter
        (fun p ->
          Persist.save_dataset p ~key:new_key d';
          Option.iter (fun s -> Persist.save_skyline p ~key:new_key s) sky';
          List.iter
            (fun (gamma, mat) -> Persist.save_matrix p ~key:new_key ~gamma mat)
            mats';
          List.iter
            (fun (ck, r) -> Persist.save_result p ~key:new_key ~cache_key:ck r)
            survivors)
        t.persist;
      {
        old_key = key0;
        new_key;
        generation = gen0 + 1;
        n = Array.length plan.Delta.rows;
        m;
        ops_applied = List.length muts;
        skyline_path = Option.map Delta.path_name path;
        matrices_updated = updated;
        matrices_dropped = dropped;
        incs_rebased = rebased;
        results_kept = !kept;
        results_evicted = !evicted;
      })

let mutate ?(journal = true) ?timeout t ~dataset muts =
  if muts = [] then
    Guard.Error.invalid_input "Store.mutate: empty mutation list";
  match pin t dataset with
  | None -> Error `Unknown_dataset
  | Some e ->
      Fun.protect
        ~finally:(fun () -> unpin t e)
        (fun () ->
          if draining t then begin
            Obs.Counter.incr Metrics.drained;
            Error `Draining
          end
          else
            let guard =
              match timeout with
              | None -> Guard.Budget.unlimited
              | Some _ -> Guard.Budget.create ?timeout ()
            in
            match
              with_admission t (fun () ->
                  match Guard.Budget.deadline_expired guard with
                  | Some _ -> `Deadline
                  | None -> `Done (mutate_pinned ~journal ~guard t e muts))
            with
            | Error `Overloaded -> Error `Overloaded
            | Ok `Deadline ->
                Obs.Counter.incr Metrics.deadline_exceeded;
                Error `Deadline_exceeded
            | Ok (`Done r) -> Ok r)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let level_string = function
  | Obs.Disabled -> "disabled"
  | Obs.Counters -> "counters"
  | Obs.Full -> "full"

let stats t =
  let datasets, inflight, queued =
    with_lock t.lock (fun () ->
        let ds =
          Hashtbl.fold
            (fun key e acc ->
              let fields =
                with_lock e.e_lock (fun () ->
                    [
                      ("key", Json.Str key);
                      ("name", Json.Str (Dataset.name e.dataset));
                      ("n", Json.int (Dataset.size e.dataset));
                      ("m", Json.int (Dataset.dim e.dataset));
                      ("refs", Json.int e.refs);
                      ("generation", Json.int e.generation);
                      ("skyline_cached", Json.Bool (e.skyline <> None));
                      ("hull_cached", Json.Bool (e.hull <> None));
                      ( "matrices",
                        Json.Arr
                          (List.map
                             (fun (g, _) -> Json.int g)
                             (List.sort compare e.matrices)) );
                      ("results_cached", Json.int (Hashtbl.length e.results));
                    ])
              in
              (key, Json.Obj fields) :: acc)
            t.entries []
        in
        let ds = List.sort (fun (a, _) (b, _) -> compare a b) ds in
        (List.map snd ds, t.inflight, t.queued))
  in
  let metrics =
    List.map (fun (name, v) -> (name, Json.float v)) (Obs.snapshot ())
  in
  let persist =
    match t.persist with
    | None -> Json.Null
    | Some p ->
        let s = Persist.last_scan p in
        Json.Obj
          [
            ("state_dir", Json.Str (Persist.root p));
            ("scan_valid", Json.int s.Persist.valid);
            ("scan_corrupt", Json.int s.Persist.corrupt);
            ("scan_partial", Json.int s.Persist.partial);
          ]
  in
  Json.Obj
    [
      ("datasets", Json.Arr datasets);
      ( "admission",
        Json.Obj
          [
            ("max_inflight", Json.int t.max_inflight);
            ("max_queue", Json.int t.max_queue);
            ("inflight", Json.int inflight);
            ("queued", Json.int queued);
          ] );
      ("persist", persist);
      ("draining", Json.Bool (draining t));
      ("obs_level", Json.Str (level_string (Obs.level ())));
      ("metrics", Json.Obj metrics);
    ]
