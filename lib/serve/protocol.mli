(** Wire protocol of the RRMS query service (docs/SERVING.md).

    Line-delimited JSON: one request object per line, one response
    object per line, in order.  Every request may carry an ["id"]
    member (any JSON value) which is echoed verbatim in the response —
    the standard correlation idiom, so a client may pipeline.

    Requests are [{"req": <kind>, ...}] with kinds [load], [query],
    [stats], [evict], [ping], [shutdown].  Responses are either

    {v {"id":…,"ok":true,"cached":…,"elapsed_ms":…,"result":{…}} v}

    or [{"id":…,"ok":false,"error":{"code":…,"message":…}}].  The
    [result] member is the deterministic part: for a given loaded
    dataset and query parameters it is byte-identical whether it came
    from a solver run or the result cache (test/test_serve.ml asserts
    this); [cached] and [elapsed_ms] are the per-call metadata. *)

type algo =
  | A2d  (** the published 2D DP, ["2d"] *)
  | A2d_exact  (** corrected exact 2D variant, ["2d-exact"] *)
  | Sweepline  (** quadratic exact 2D baseline, ["sweepline"] *)
  | Hd_rrms  (** Algorithm 4, ["hd-rrms"] *)
  | Hd_greedy  (** matrix-greedy ablation, ["hd-greedy"] *)
  | Greedy  (** LP-based VLDB'10 baseline, ["greedy"] *)
  | Cube  (** discretization baseline, ["cube"] *)

val algo_of_string : string -> algo option
val algo_to_string : algo -> string

type query = {
  dataset : string;  (** store key or dataset name (see {!Store}) *)
  algo : algo;
  r : int;
  gamma : int;  (** grid resolution; meaningful for the HD algorithms *)
  timeout : float option;  (** per-request wall-clock budget, seconds *)
  max_cells : int option;  (** per-request regret-matrix cell cap *)
  max_probes : int option;  (** per-request probe/iteration cap *)
  use_cache : bool;  (** [false] forces a fresh solve (cache bypass) *)
}

type request =
  | Load of {
      path : string;
      name : string option;  (** alias for later [query] requests *)
      normalize : bool;
      lenient : bool;  (** CSV {!Rrms_dataset.Dataset.load_mode} *)
    }
  | Query of query
  | Stats
  | Evict of { dataset : string }
  | Ping
  | Shutdown

(** Stable error codes of the protocol (docs/SERVING.md lists them):
    [parse], [bad_request], [invalid_input], [timeout],
    [resource_limit], [numerical], [unknown_dataset], [overloaded],
    [internal]. *)

val error_code_of_guard : Rrms_guard.Guard.Error.t -> string
(** The four structured {!Rrms_guard.Guard.Error.t} classes map to
    [invalid_input] / [timeout] / [resource_limit] / [numerical] —
    the same partition as the CLI exit codes. *)

type parsed = {
  id : Json.t;  (** the request's ["id"], [Null] when absent *)
  req : (request, string * string) result;
      (** parsed request, or [(code, message)] — [parse] for malformed
          JSON, [bad_request] for a well-formed object that is not a
          valid request *)
}

val parse_request : string -> parsed
(** Total: never raises.  The [id] is recovered even from requests
    whose body is invalid, so the error response still correlates. *)

val cache_key : query -> string
(** Canonical result-cache key.  Only the parameters that select the
    answer participate — [algo], [r], and [gamma] for the grid-based
    algorithms — never budgets or cache flags, so a budgeted request
    can be answered from a cache entry computed without budgets. *)

val ok_response :
  id:Json.t -> cached:bool -> elapsed_ms:float -> Json.t -> string
(** Serialize a success line; the last argument is [result]. *)

val error_response : id:Json.t -> code:string -> message:string -> string
