(** Wire protocol of the RRMS query service (docs/SERVING.md).

    Line-delimited JSON: one request object per line, one response
    object per line, in order.  Every request may carry an ["id"]
    member (any JSON value) which is echoed verbatim in the response —
    the standard correlation idiom, so a client may pipeline.

    Requests are [{"req": <kind>, ...}] with kinds [load], [query],
    [batch], [skyline], [stats], [evict], [ping], [shutdown].
    Responses are either

    {v {"id":…,"ok":true,"cached":…,"elapsed_ms":…,"result":{…}} v}

    or [{"id":…,"ok":false,"error":{"code":…,"message":…}}].  The
    [result] member is the deterministic part: for a given loaded
    dataset and query parameters it is byte-identical whether it came
    from a solver run or the result cache (test/test_serve.ml asserts
    this); [cached] and [elapsed_ms] are the per-call metadata. *)

type algo =
  | A2d  (** the published 2D DP, ["2d"] *)
  | A2d_exact  (** corrected exact 2D variant, ["2d-exact"] *)
  | Sweepline  (** quadratic exact 2D baseline, ["sweepline"] *)
  | Hd_rrms  (** Algorithm 4, ["hd-rrms"] *)
  | Hd_greedy  (** matrix-greedy ablation, ["hd-greedy"] *)
  | Greedy  (** LP-based VLDB'10 baseline, ["greedy"] *)
  | Cube  (** discretization baseline, ["cube"] *)

val algo_of_string : string -> algo option
val algo_to_string : algo -> string

type query = {
  dataset : string;  (** store key or dataset name (see {!Store}) *)
  algo : algo;
  r : int;
  gamma : int;  (** grid resolution; meaningful for the HD algorithms *)
  timeout : float option;  (** per-request wall-clock budget, seconds *)
  max_cells : int option;  (** per-request regret-matrix cell cap *)
  max_probes : int option;  (** per-request probe/iteration cap *)
  use_cache : bool;  (** [false] forces a fresh solve (cache bypass) *)
  explain : bool;
      (** echo the per-answer cost-provenance record in the response
          envelope (["cost"] member, a sibling of ["result"] — the
          [result] bytes are unchanged) *)
}

(** Distributed-trace envelope (docs/OBSERVABILITY.md, "Cluster tracing
    & metrics").  Any request may carry a ["trace"] object:
    [{"id": …, "parent": …, "request_id": …, "session_id": …,
    "deadline": …}] with only [id] required.  The receiving server
    binds it into the request's {!Rrms_obs.Obs.Ctx}, so spans and
    counter deltas recorded there carry the originating trace id; a
    router injects one into every fan-out leg and batch item.  The
    envelope never participates in the result cache and never changes
    the [result] bytes. *)
type trace = {
  trace_id : string;  (** wire field ["id"]; never empty *)
  parent_span : string;  (** caller's span id — the cross-process edge *)
  origin_request : string;  (** baggage: originating request id *)
  origin_session : string;  (** baggage: originating session id *)
  deadline : float option;
      (** baggage: originating absolute deadline budget, seconds *)
}

val trace_member : trace -> string * Json.t
(** The [("trace", {...})] request member encoding [t] — what a router
    splices into fan-out requests. *)

type mutation_op =
  | Op_insert of float array  (** append a tuple (["insert"]) *)
  | Op_delete of int  (** delete the tuple at this index (["delete"]) *)
  | Op_upsert of int * float array
      (** replace the tuple at this index (["upsert"]) *)

type request =
  | Load of {
      path : string;
      name : string option;  (** alias for later [query] requests *)
      normalize : bool;
      lenient : bool;  (** CSV {!Rrms_dataset.Dataset.load_mode} *)
      shard : (int * int) option;
          (** [(shard_index, shard_count)]: keep only the round-robin
              partition member — what a shard worker loads (see
              {!Store.load}) *)
    }
  | Query of query
  | Batch of { dataset : string; items : (query, string * string) result array }
      (** One dataset resolve amortized over many queries.  Items are
          parsed independently: a malformed item becomes its per-item
          [(code, message)] error and the rest still run.  Items
          inherit the batch [dataset] (repeating it verbatim is
          allowed; contradicting it is a per-item error).  At most
          {!max_batch_items} items. *)
  | Mutate of {
      dataset : string;
      ops : mutation_op array;
      timeout : float option;
    }
      (** A dataset mutation: the single-op kinds [insert] / [delete] /
          [upsert] (fields ["values"] / ["index"] on the request
          itself) and the batched kind [mutate] (an ["ops"] array of
          [{"op": …, "index": …, "values": …}] objects, at most
          {!max_batch_items}) all parse to this.  Ops apply with
          sequential left-to-right semantics, atomically: unlike batch
          query items, one malformed op fails the whole request
          ([bad_request]), and a runtime failure (bad index, dimension
          mismatch) leaves the dataset untouched.  Indices refer to the
          dataset's current row order at each step. *)
  | Skyline of { dataset : string; timeout : float option }
      (** The dataset's skyline indices — the per-shard half of the
          router fan-out.  Shard-local indices when the dataset was
          loaded with [shard]. *)
  | Stats
  | Metrics
      (** The process's metric snapshot as JSON: every registered
          {!Rrms_obs.Obs} counter/gauge/timer plus the telemetry
          histogram family in raw (mergeable) form.  A router answers
          by fanning out and merging — counters sum, histograms merge
          associatively — into the cluster-wide view. *)
  | Evict of { dataset : string }
  | Ping
  | Shutdown

val max_batch_items : int
(** Hard cap on batch size (1024): a bound on per-request memory, not a
    throughput knob. *)

(** Stable error codes of the protocol (docs/SERVING.md lists them):
    [parse], [bad_request], [invalid_input], [timeout],
    [resource_limit], [numerical], [unknown_dataset], [overloaded],
    [shard_failure], [read_only], [internal].  [read_only] is the
    documented rejection for mutation ops sent to an endpoint without
    writable state — the shard router fans out over read-only worker
    slices, so mutations must go to the workers' owning store. *)

exception Shard_failure of string
(** A shard worker became unreachable or answered an error during a
    router fan-out.  Raised by the shard layer, mapped by
    {!error_of_exn} to the [shard_failure] wire code — always a
    per-query (or per-batch-item) error, never a dropped session. *)

val error_code_of_guard : Rrms_guard.Guard.Error.t -> string
(** The four structured {!Rrms_guard.Guard.Error.t} classes map to
    [invalid_input] / [timeout] / [resource_limit] / [numerical] —
    the same partition as the CLI exit codes. *)

val error_of_exn : exn -> (string * string) option
(** The shared exception→[(code, message)] mapping used by the server,
    the batch per-item path and the shard router, so a given failure
    reports the same wire error everywhere.  [None] for exceptions that
    are not request-level errors. *)

type parsed = {
  id : Json.t;  (** the request's ["id"], [Null] when absent *)
  req : (request, string * string) result;
      (** parsed request, or [(code, message)] — [parse] for malformed
          JSON, [bad_request] for a well-formed object that is not a
          valid request *)
  trace : trace option;
      (** the request's ["trace"] envelope, when present and valid *)
}

val parse_request : string -> parsed
(** Total: never raises.  The [id] is recovered even from requests
    whose body is invalid, so the error response still correlates. *)

val cache_key : query -> string
(** Canonical result-cache key.  Only the parameters that select the
    answer participate — [algo], [r], and [gamma] for the grid-based
    algorithms — never budgets or cache flags, so a budgeted request
    can be answered from a cache entry computed without budgets. *)

val ok_response :
  ?cost:Json.t -> id:Json.t -> cached:bool -> elapsed_ms:float -> Json.t ->
  string
(** Serialize a success line; the last argument is [result].  [cost]
    (the [explain: true] provenance echo) is emitted as a sibling of
    [result], so the [result] bytes — the cached, byte-compared part —
    are identical with or without it. *)

val error_response : id:Json.t -> code:string -> message:string -> string
