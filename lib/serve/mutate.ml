module Obs = Rrms_obs.Obs
module Delta = Rrms_core.Delta

let ops_of_protocol ops =
  Array.to_list
    (Array.map
       (function
         | Protocol.Op_insert v -> Delta.Insert v
         | Protocol.Op_delete i -> Delta.Delete i
         | Protocol.Op_upsert (i, v) -> Delta.Upsert (i, v))
       ops)

let summary_json (r : Store.mutated) =
  Json.Obj
    ([
       ("key", Json.Str r.Store.new_key);
       ("old_key", Json.Str r.Store.old_key);
       ("generation", Json.int r.Store.generation);
       ("n", Json.int r.Store.n);
       ("m", Json.int r.Store.m);
       ("ops_applied", Json.int r.Store.ops_applied);
     ]
    @ (match r.Store.skyline_path with
      | Some p -> [ ("skyline_path", Json.Str p) ]
      | None -> [])
    @ [
        ("matrices_updated", Json.int r.Store.matrices_updated);
        ("matrices_dropped", Json.int r.Store.matrices_dropped);
        ("incs_rebased", Json.int r.Store.incs_rebased);
        ("results_kept", Json.int r.Store.results_kept);
        ("results_evicted", Json.int r.Store.results_evicted);
      ])

(* One mutation request under its own request context, mirroring
   [Server.run_query]: same error codes, same access-log record shape
   (algo = "mutate", r = op count), so mutation traffic shows up in the
   same telemetry pipeline as query traffic. *)
let run ?trace ~telemetry ~session_id ~request_id ~dataset_key ~elapsed_ms
    ~timeout store ~dataset ops =
  let trace_id, parent_span =
    match trace with
    | Some t -> (t.Protocol.trace_id, t.Protocol.parent_span)
    | None -> ("", "")
  in
  let ctx =
    Obs.Ctx.create ~request_id ~session_id
      ~capture_spans:(Telemetry.capture_spans telemetry || trace_id <> "")
      ~trace_id ~parent_span ()
  in
  let merge_path = ref "" in
  let outcome =
    Obs.Ctx.with_ctx ctx (fun () ->
        Obs.Span.with_ "serve.mutate"
          ~attrs:[ ("dataset", dataset_key) ]
        @@ fun () ->
        match Store.mutate ?timeout store ~dataset (ops_of_protocol ops) with
        | Ok r ->
            (merge_path :=
               match r.Store.skyline_path with Some p -> p | None -> "");
            Ok (summary_json r)
        | Error `Unknown_dataset ->
            Error
              ( "unknown_dataset",
                Printf.sprintf
                  "no loaded dataset %S (load it first, then mutate by key \
                   or name)"
                  dataset )
        | Error `Overloaded ->
            Error
              ( "overloaded",
                "admission queue is full; the mutation was shed — retry later"
              )
        | Error `Deadline_exceeded ->
            Error
              ( "deadline_exceeded",
                "the mutation's deadline expired before it started \
                 (admission queue wait counts against the timeout)" )
        | Error `Draining ->
            Error
              ( "draining",
                "the server is draining for shutdown and admits no new \
                 mutations — retry against the restarted instance" )
        | exception (Stdlib.Exit | Sys.Break) -> Error ("internal", "interrupted")
        | exception exn -> (
            match Protocol.error_of_exn exn with
            | Some e -> Error e
            | None -> Error ("internal", Printexc.to_string exn)))
  in
  let status = match outcome with Error _ -> "error" | Ok _ -> "ok" in
  Telemetry.record telemetry
    {
      Telemetry.request_id;
      session_id;
      algo = "mutate";
      dataset = dataset_key;
      r = Array.length ops;
      gamma = 0;
      cache = "miss";
      status;
      error_code =
        (match outcome with Error (code, _) -> Some code | Ok _ -> None);
      queue_wait_ms =
        1000. *. Obs.Ctx.value ctx "rrms_serve_queue_wait_seconds_total";
      elapsed_ms = elapsed_ms ();
      probes = Obs.Ctx.value ctx "rrms_hd_rrms_probes_total";
      cells = Obs.Ctx.value ctx "rrms_matrix_cells_total";
      shards = 0;
      merge = !merge_path;
    }
    ~spans:(Obs.Ctx.spans ctx);
  outcome

(* ------------------------------------------------------------------ *)
(* WAL replay                                                          *)
(* ------------------------------------------------------------------ *)

type replayed = { records : int; applied : int; skipped : int }

(* Rehydrate the mutation history at startup.  Each record names its
   base dataset by content key: if the base is not already resident
   (from a previous record's chain), its dataset blob is rehydrated and
   registered first.  The record's stored [new_key] is an end-to-end
   integrity check — the replayed mutation must land on the exact
   content hash the original process computed, else the record (and
   anything building on it) is counted as skipped rather than installing
   a state the original process never had. *)
let replay store persist =
  let applied = ref 0 and skipped = ref 0 in
  let records =
    Persist.Wal.replay persist
      (fun { Persist.Wal.base_key; new_key; ops } ->
        try
          let resolved =
            match Store.resolve store base_key with
            | Some _ -> true
            | None -> (
                match Persist.load_dataset persist ~key:base_key with
                | Some d ->
                    ignore (Store.add store d);
                    true
                | None -> false)
          in
          if not resolved then incr skipped
          else
            match
              Store.mutate ~journal:false store ~dataset:base_key ops
            with
            | Ok r when r.Store.new_key = new_key -> incr applied
            | Ok _ | Error _ -> incr skipped
        with _ -> incr skipped)
  in
  { records; applied = !applied; skipped = !skipped }
