(** Session and transport layer of the query service.

    A {e session} is one client connection speaking the line-delimited
    JSON protocol of {!Protocol}: requests are answered in order, one
    response line per request line, and every dataset reference the
    session took with [load] is dropped when it ends (so a crashed
    client never leaks store entries).  Request handling is total — a
    malformed line, an unknown request or a solver failure becomes an
    error {e response}, never a dropped connection; even an injected
    worker fault ({!Rrms_parallel.Fault}) surfaces as an [internal]
    error and leaves the session (and the server) healthy.

    Two transports share the session code:

    - {!serve_stdio}: one session over stdin/stdout — the test- and
      script-friendly mode ([rrms_serve --stdio]).
    - {!start}/{!wait}: a Unix-domain-socket daemon with one systhread
      per connection; sessions share the one {!Store.t}, which is what
      makes concurrent artifact sharing (and the admission gate) real. *)

val handle_line :
  ?telemetry:Telemetry.t ->
  Store.t ->
  string ->
  [ `Reply of string | `Shutdown of string ]
(** Handle one request line against the store (stateless with respect
    to the session; reference bookkeeping is the session loop's job).
    [`Shutdown line] is the positive response to a [shutdown] request —
    the caller sends it, then stops.  Never raises.

    Every query request runs under a fresh {!Rrms_obs.Obs.Ctx} tagged
    with process-unique session/request ids ([s3-r7]); its latency,
    cache outcome and per-request counters land in [telemetry]
    (default {!Telemetry.default}), and the [stats] request folds that
    instance's histograms into its response as a ["latency"] member. *)

val run_query :
  ?trace:Protocol.trace ->
  telemetry:Telemetry.t ->
  session_id:string ->
  request_id:string ->
  dataset_key:string ->
  shards:int ->
  elapsed_ms:(unit -> float) ->
  Protocol.query ->
  (unit ->
  ( Store.outcome,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result) ->
  (Json.t * bool * Json.t option, string * string) result
(** Run one query thunk under a fresh request context and record its
    telemetry (access-log line, latency histogram, cache outcome,
    per-request counters).  Returns the result, its cached flag, and —
    when the query asked [explain: true] — the cost-provenance object
    to echo beside the result; or the wire [(code, message)] —
    exceptions included, via {!Protocol.error_of_exn}.  With a [trace]
    envelope the whole run executes under a ["serve.query"] span bound
    to the caller's trace id and parent span (the cross-process edge).
    Shared by the single-query path, every batch item and the shard
    router, so all three report identically; [shards] is the fan-out
    width recorded in the access log (0 = unsharded). *)

type session_handler = {
  on_line : string -> [ `Reply of string | `Shutdown of string ];
  on_close : unit -> unit;
}
(** One connection's callbacks: [on_line] answers a request line,
    [on_close] runs teardown (reference release) when the session
    ends. *)

type handler = unit -> session_handler
(** A per-connection session factory — what the transports below pump.
    {!store_handler} is the standard store-backed one; the shard router
    provides its own. *)

val store_handler : ?telemetry:Telemetry.t -> Store.t -> handler
(** The store-backed protocol handler used by {!run_session},
    {!serve_stdio} and {!start}. *)

val run_handler_session :
  handler -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Pump one session for an arbitrary handler: read lines until EOF or
    [shutdown], answering each (blank lines are skipped).  Responses
    are flushed per line; [on_close] runs on the way out. *)

val run_session :
  ?telemetry:Telemetry.t ->
  Store.t ->
  in_channel ->
  out_channel ->
  [ `Eof | `Shutdown ]
(** {!run_handler_session} over {!store_handler}: pump one store-backed
    session.  Session [load] references are released on the way out. *)

val serve_stdio : ?telemetry:Telemetry.t -> Store.t -> [ `Eof | `Shutdown ]
(** [run_session] over stdin/stdout. *)

type t

val start_handler : handler -> socket:string -> t
(** Bind a Unix-domain listener at [socket] and accept in a background
    thread, one thread per connection, each pumped through the given
    handler.  A pre-existing socket file is probed: live (something
    accepts) → [Invalid_input]; stale → removed and rebound.  [SIGPIPE]
    is ignored process-wide (an abruptly closed client must not kill
    the daemon).
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when the
    path is already served, [Unix.Unix_error] on bind failures. *)

val start : ?telemetry:Telemetry.t -> Store.t -> socket:string -> t
(** {!start_handler} over {!store_handler}. *)

val stop : t -> unit
(** Ask the daemon to stop: close the listener (idempotent).  In-flight
    sessions are not interrupted. *)

val wait : t -> unit
(** Block until the accept loop exits — a [shutdown] request or {!stop}
    — then remove the socket file. *)

val drain : ?grace:float -> t -> Store.t -> unit
(** Graceful shutdown, the SIGTERM path: put the store in drain mode
    (new solves answer [draining]; cached answers and cheap requests
    keep working), close the listener, wait up to [grace] seconds
    (default 5) for in-flight and queued solves to settle, then shut
    the read side of every connected session so each session thread
    sees EOF and runs its normal teardown.  After [drain] returns,
    {!wait} completes promptly and the process can exit 0. *)
