(** Request-level telemetry for the serving layer.

    One value aggregates, across every session of a server:

    - a family of {!Rrms_obs.Obs.Hist} latency histograms keyed by
      (algo, cache outcome, status), folded into the [stats] response
      as deterministic p50/p95/p99 quantiles;
    - an optional JSONL {e access log}: one ["access"] record per query
      request (ids, parameters, cache outcome, queue wait, solve time,
      and the probe/cell counts read from the request's
      {!Rrms_obs.Obs.Ctx});
    - optional {e slow-query capture}: with [slow_ms] set, a request at
      or over the threshold writes a ["slow_query"] record carrying its
      full span trace (captured per-request, so the Counters level
      suffices — no global Full buffer required).

    All entry points are thread-safe. *)

type t

val create : ?access_log:string -> ?slow_ms:float -> unit -> t
(** [access_log] opens (truncating) the JSONL sink; [slow_ms] enables
    slow-query capture at the given threshold in milliseconds (records
    go to the access log when configured, stderr otherwise). *)

val default : t
(** Shared instance used when a server is not handed one explicitly —
    histograms keep accumulating so [stats] always has latency data.
    Has no access log and no slow-query threshold. *)

val capture_spans : t -> bool
(** Whether per-request span capture is wanted (i.e. [slow_ms] set) —
    the server passes this into {!Rrms_obs.Obs.Ctx.create}. *)

val close : t -> unit
(** Close the access-log channel, if any. *)

val reset : t -> unit
(** Drop every histogram and zero the line counters (tests). *)

(** Everything the server knows about one finished query request. *)
type request = {
  request_id : string;
  session_id : string;
  algo : string;
  dataset : string;  (** resolved content hash when loaded, else the handle *)
  r : int;
  gamma : int;
  cache : string;  (** ["hit"] | ["derived"] | ["miss"] *)
  status : string;  (** ["ok"] | ["degraded"] | ["error"] *)
  error_code : string option;
  queue_wait_ms : float;
  elapsed_ms : float;
  probes : float;
  cells : float;
  shards : int;
      (** fan-out width of the answering path: [0] for an unsharded
          store (the field is then omitted from access-log lines, so
          pre-shard log consumers see unchanged records) *)
  merge : string;
      (** the answer's merge path — ["certified"] / ["union"] /
          ["gather"] for sharded answers, [""] otherwise (omitted from
          access-log lines) *)
}

val record : t -> request -> spans:Rrms_obs.Obs.Trace.event list -> unit
(** Observe the request in its histogram, append the access-log line,
    and emit a slow-query record when the threshold says so. *)

val span_json : Rrms_obs.Obs.Trace.event -> Json.t
(** One captured span as JSON — name, domain, depth, start, dur, the
    span/parent/trace ids when the span was minted under a traced
    context, and its attrs.  The shape shared by slow-query records,
    shard-worker span dumps and the router's merged trace. *)

val span_of_json : Json.t -> Rrms_obs.Obs.Trace.event
(** Inverse of {!span_json} — the router parses worker span dumps back
    into events to splice them into its merged trace.  Missing fields
    default to empty/zero; never raises on a malformed span. *)

val to_json : t -> Json.t
(** [{"histograms": [{algo, cache, status, count, p50_ms, p95_ms,
    p99_ms, max_ms, sum_ms}], "access_log_lines": n, "slow_queries":
    n, "access_log"?: path}] — histogram entries sorted by key. *)

val export_json : t -> Json.t
(** Raw, mergeable histogram export — the per-process half of the wire
    [metrics] op: [{"histograms": [{algo, cache, status, count, sum,
    max, buckets}]}] with durations in seconds and raw bucket counts,
    so merging across processes is exact. *)

val merge_exports : (string * Json.t) list -> Json.t
(** Merge per-process {!export_json} values (labelled by shard — the
    router uses ["router"], ["0"], ["1"], …) into the cluster latency
    view: one ["all"]-labelled quantile row per key with histograms
    merged across processes ({!Rrms_obs.Obs.Hist.merge} is associative,
    so this equals a single process observing the union), followed by
    the per-process rows under their own labels. *)
