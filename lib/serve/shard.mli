(** Horizontal scale-out for the query service (docs/SERVING.md,
    "Sharding & routing").

    Two deployments share the merge machinery:

    - {e in-process sharding} ({!create}): one coordinator {!Store.t}
      holding the full dataset plus N sub-stores, each owning the
      round-robin slice of {!partition} with its own artifact cache and
      admission slot.  Per-shard skylines (and regret-matrix row
      blocks) are computed in parallel and merged into the coordinator
      entry, after which the ordinary {!Store.query_pinned} path
      answers.
    - {e router mode} ({!Router}): the shards are worker processes
      ([rrms-serve --socket]) reached over the Unix-socket protocol;
      the router fans [skyline] requests out, merges, and solves
      locally over the merged artifacts.

    Merge certificates:

    - {e Certified} (the default): the skyline of a dataset equals the
      skyline of the union of per-partition skylines
      ({!Rrms_skyline.Skyline.merge_partitions}), and the regret matrix
      decomposes row-wise once the per-direction best scores are merged
      ({!Rrms_core.Regret_matrix.merge_best}) — so the merged artifacts
      are bit-identical to unsharded ones and the answer is {e exact},
      byte-for-byte the single-store answer.
    - {e Union}: each shard solves its slice independently and the
      union of the selections is returned [degraded] with
      [regret_bound]: for any direction, the shard owning the global
      best tuple bounds the union's regret by its own Theorem-4
      guarantee, so [max] over shards of
      {!Rrms_core.Discretize.theorem4_bound} dominates the true maximum
      regret ratio.  Cheaper (no merge barrier before the solve) but
      up to [r·N] tuples and never cached. *)

(** Shard-layer instruments (global {!Rrms_obs.Obs} registry, visible in
    [stats]). *)
module Metrics : sig
  val fanouts : Rrms_obs.Obs.Counter.t
  val skyline_merges : Rrms_obs.Obs.Counter.t
  val matrix_merges : Rrms_obs.Obs.Counter.t
  val certified : Rrms_obs.Obs.Counter.t
  val union : Rrms_obs.Obs.Counter.t
  val gather : Rrms_obs.Obs.Counter.t

  val worker_redials : Rrms_obs.Obs.Counter.t
  (** Router reconnections to a worker (non-deterministic). *)

  val worker_failures : Rrms_obs.Obs.Counter.t
  (** Fan-out legs that failed after the one redial retry
      (non-deterministic). *)

  val mutations : Rrms_obs.Obs.Counter.t
  (** Mutation batches fanned out across the in-process partitions. *)

  val stale_fallbacks : Rrms_obs.Obs.Counter.t
  (** Queries that raced a mutation's re-partition and were answered by
      the coordinator alone — still exact (non-deterministic). *)

  val straggler_gap : Rrms_obs.Obs.Floatc.t
  (** Accumulated (slowest − fastest) leg wall-time over router
      fan-outs — the skew signal [stats] reports per cluster
      (non-deterministic). *)
end

val partition : shards:int -> int -> int array array
(** [partition ~shards n] is the round-robin split of [0..n-1]: member
    [s] owns the ascending global indices ≡ s (mod shards), so
    shard-local row [l] is global row [s + l·shards].  Bit-for-bit the
    arithmetic of [Store.load ?shard] — a worker process and an
    in-process shard must agree on the slice.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [shards < 1] or [n < 0]. *)

type t
(** An in-process sharded store: a coordinator plus N sub-stores. *)

val create :
  ?domains:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?persist:Persist.t ->
  shards:int ->
  unit ->
  t
(** The coordinator store gets [max_inflight]/[max_queue]/[persist] as
    {!Store.create}; each sub-store gets its own single admission slot.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [shards < 1]. *)

val store : t -> Store.t
(** The coordinator store — for [stats], drain integration and direct
    (unsharded) access. *)

val shards : t -> int

val load :
  t -> ?name:string -> ?normalize:bool -> ?lenient:bool -> string -> Store.loaded
(** Load a CSV into the coordinator {e and} slice it across the
    sub-stores (one parse, N {!Store.add}s).  Same contract as
    {!Store.load}. *)

val add : t -> Rrms_dataset.Dataset.t -> Store.loaded
(** {!load} for an in-memory dataset. *)

val release : t -> string -> Store.release
(** Drop one coordinator reference; when the entry is freed the
    partition record and the sub-store slices are freed with it. *)

type merge =
  | Certified  (** lossless merge: byte-identical to unsharded *)
  | Union  (** per-shard solves, union + certified bound, [degraded] *)

val query :
  ?merge:merge ->
  t ->
  Protocol.query ->
  ( Store.outcome,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** Answer one query (default [Certified]).  The HD algorithms fan out
    per-shard work; the rest run on the coordinator alone (trivially
    exact).  [`Overloaded] when any sub-store sheds; the query [timeout]
    is one end-to-end deadline — fan-out time counts against the solve.
    Error union and exceptions as {!Store.query}. *)

val mutate :
  ?timeout:float ->
  t ->
  dataset:string ->
  Rrms_core.Delta.mutation list ->
  ( Store.mutated,
    [ `Overloaded | `Unknown_dataset | `Deadline_exceeded | `Draining ] )
  result
(** Apply one mutation batch to the coordinator {e and} its partitions
    (docs/DYNAMIC.md).  The coordinator's {!Store.mutate} runs first —
    it validates, journals and installs the new generation — then the
    global op stream is translated into one shard-local stream per
    sub-store: existing rows keep their shard, inserts round-robin over
    the live length, and each slice is maintained by its own
    incremental {!Store.mutate} (rebuilt from the new dataset only if
    that fails).  The partition record moves to the new content key, so
    subsequent certified merges stay bit-identical to an unsharded
    solve over the mutated dataset.  Queries racing the re-partition
    fall back to the coordinator alone (exact; counted by
    {!Metrics.stale_fallbacks}).  Serialized with loads and releases;
    datasets registered directly on the coordinator store (no partition
    record) mutate there alone. *)

val stats : t -> Json.t
(** Coordinator {!Store.stats} plus a ["shard"] member (shard count,
    per-sub-store admission state). *)

(** Fan-out router over worker processes speaking the wire protocol. *)
module Router : sig
  type t

  val create :
    ?telemetry:Telemetry.t ->
    ?domains:int ->
    ?max_inflight:int ->
    ?max_queue:int ->
    ?persist:Persist.t ->
    workers:string list ->
    unit ->
    t
  (** A router over the worker Unix-socket paths, in shard order:
      worker [s] of [N] is sent [load] with [shard_index = s],
      [shard_count = N].  Worker connections are dialled lazily on
      first fan-out and redialled (with the dataset loads replayed)
      once per request on transport failure — a restarted worker heals
      transparently.  The router's own store holds the full dataset and
      does the merge, solve, result caching and telemetry.
      @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
      [workers] is empty. *)

  val store : t -> Store.t
  (** The router's full-dataset store (drain integration, tests). *)

  val width : t -> int
  (** Number of workers. *)

  val handler : t -> Server.handler
  (** The protocol handler: plug into {!Server.start_handler} (socket
      daemon) or {!Server.run_handler_session} (stdio).  [query] and
      [batch] over the HD algorithms fan out [skyline] requests and
      answer from merged artifacts — byte-identical to a single-process
      server; other algorithms and requests run on the router's store
      directly.  Worker failures answer [shard_failure] (per query or
      per batch item — the session survives); a worker-side deadline
      expiry propagates as [deadline_exceeded].  Mutation requests are
      rejected with the documented [read_only] code: the workers hold
      read-only slices, so a write accepted here would fork the
      router's copy away from theirs. *)

  val close : t -> unit
  (** Drop all worker connections (the workers themselves keep
      running). *)
end
