(** Durable content-addressed artifact cache of the query service.

    A {!t} manages one state directory ([rrms-serve --state-dir]) of
    self-validating blobs, one artifact per file:

    - [dataset-<key>.blob] — the loaded (post-transform) tuples,
    - [skyline-<key>.blob] — the skyline index set,
    - [matrix-<key>-g<γ>.blob] — a regret matrix at γ,
    - [grid-m<m>-g<γ>.blob] — a direction grid (dataset-independent),
    - [result-<key>-<h>.blob] — one serialized [Exact] answer,

    where [<key>] is the store's 16-hex-digit FNV-1a content hash, so a
    blob written by one process is addressable by any later one that
    loads the same dataset content.

    {b Write protocol.}  Every save writes a private temp file in the
    same directory, [fsync]s it, atomically renames it over the final
    name, then [fsync]s the directory.  A crash — including SIGKILL —
    can therefore leave only (a) the complete old state, (b) the
    complete new state, or (c) a leftover temp file, never a
    half-written blob under the final name.  Saves never raise: a full
    disk or permission error is counted
    ([rrms_serve_persist_write_errors_total]) and the service continues
    memory-only.

    {b Blob format.}  A fixed header (magic, format version, kind,
    payload length, 64-bit FNV-1a payload checksum) followed by the
    payload.  Loads verify all five fields; any mismatch — torn write,
    flipped bit, wrong version, truncation — discards the blob
    (unlinking it, counting it in
    [rrms_serve_persist_corrupt_blobs_total]) and returns [None], so a
    corrupt blob is never rehydrated.

    {b Startup scan.}  {!open_dir} creates the directory if needed,
    deletes leftover temp files (crash litter from an interrupted
    write), and validates every [*.blob] header + checksum, unlinking
    and counting the corrupt ones.  Artifacts are {e not} decoded at
    scan time — rehydration stays lazy, on first demand.

    Rehydrated artifacts are decoded from the exact bytes the original
    process serialized (IEEE bits for every float), so answers served
    from a rehydrated artifact are bit-identical to the cold solve that
    produced it — the same contract the in-memory caches keep. *)

type t

module Metrics : sig
  val writes : Rrms_obs.Obs.Counter.t
  val write_errors : Rrms_obs.Obs.Counter.t

  val rehydrated : Rrms_obs.Obs.Counter.t
  (** Blobs successfully loaded and decoded. *)

  val corrupt : Rrms_obs.Obs.Counter.t
  (** Blobs discarded (scan or load time) as torn / corrupt /
      wrong-version — the chaos drill asserts this stays 0 on a clean
      SIGKILL-and-restart cycle. *)

  val partial_cleaned : Rrms_obs.Obs.Counter.t
  (** Leftover temp files removed by the startup scan. *)

  val blobs_scanned : Rrms_obs.Obs.Counter.t
  (** Blob files examined (validated) by the startup scan — with
      [corrupt], gives the scan's discard rate. *)

  val rehydrate_seconds : Rrms_obs.Obs.Timer.t
  (** Latency of one blob load + decode attempt (hits and misses
      alike) — the rehydration cost [stats] exposes. *)

  val wal_appends : Rrms_obs.Obs.Counter.t
  (** Mutation records durably appended to the write-ahead log. *)

  val wal_replayed : Rrms_obs.Obs.Counter.t
  (** Mutation records replayed from the log at rehydration. *)

  val wal_torn : Rrms_obs.Obs.Counter.t
  (** Torn / corrupt log tails detected (and truncated away by the
      next append). *)
end

(** Fault injection for the durability layer, mirroring
    {!Rrms_parallel.Fault}: [RRMS_SERVE_FAULT] arms a process-wide
    fault that fires inside {!t}'s write path, which is how tests and
    CI kill the daemon mid-write and prove recovery. *)
module Fault : sig
  type mode =
    | Crash of int
        (** [crash@N]: on the Nth blob write of the process, persist
            half the payload to the temp file and [_exit 137] — the
            SIGKILL-mid-write scenario. *)
    | Torn of int option
        (** [torn_write] (every write) or [torn_write@N] (the Nth
            only): complete the rename with a truncated payload, so the
            blob exists but fails validation — the lying-disk
            scenario. *)
    | Stall of float
        (** [stall@MS]: sleep [MS] milliseconds before each write —
            slow-disk latency injection (keeps all results exact). *)

  val set : mode -> unit
  val clear : unit -> unit
  val active : unit -> bool

  val configure_from_env : unit -> unit
  (** Parse [RRMS_SERVE_FAULT] ([crash@N] | [torn_write] |
      [torn_write@N] | [stall@MS]) and arm it; malformed or absent
      values leave injection disabled.  Called by [rrms-serve] at
      startup and by {!open_dir}. *)
end

type scan = {
  valid : int;  (** blobs that passed header + checksum validation *)
  corrupt : int;  (** blobs discarded (and unlinked) by the scan *)
  partial : int;  (** leftover temp files removed *)
}

val open_dir : string -> t
(** Open (creating if absent) a state directory and run the startup
    scan.  @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input]
    when the path exists and is not a directory, or cannot be
    created. *)

val root : t -> string

val last_scan : t -> scan
(** The startup scan's tallies — surfaced in the [stats] response so a
    chaos drill can assert "zero corrupt blobs loaded" from outside. *)

(** {2 Artifact codecs} — every [save_*] is atomic and non-raising;
    every [load_*] returns [None] for missing {e or} corrupt (counted,
    unlinked) blobs. *)

val save_dataset : t -> key:string -> Rrms_dataset.Dataset.t -> unit
val load_dataset : t -> key:string -> Rrms_dataset.Dataset.t option
val save_skyline : t -> key:string -> int array -> unit
val load_skyline : t -> key:string -> int array option

val save_matrix :
  t -> key:string -> gamma:int -> Rrms_core.Regret_matrix.t -> unit

val load_matrix :
  t -> key:string -> gamma:int -> Rrms_core.Regret_matrix.t option

val save_grid : t -> m:int -> gamma:int -> Rrms_geom.Vec.t array -> unit
val load_grid : t -> m:int -> gamma:int -> Rrms_geom.Vec.t array option

val save_result : t -> key:string -> cache_key:string -> Json.t -> unit
(** The blob embeds [cache_key] itself (the file name only carries its
    hash), so a load can reject a colliding key instead of serving the
    wrong answer. *)

val load_result : t -> key:string -> cache_key:string -> Json.t option

(** {2 Write-ahead delta log} — docs/DYNAMIC.md describes the format.

    Mutations are journaled to a single append-only file
    ([mutations.wal]) in the state directory {e before} they are
    installed in memory, so a crash at any point leaves a replayable
    prefix.  Each record reuses the blob header (magic, version, kind,
    length, FNV-1a checksum) followed by the base dataset key, the
    expected post-mutation key, and the op list.  {!Wal.append}
    validates the log's tail first and truncates a torn final record
    (counted in [rrms_serve_persist_wal_torn_total]) before writing, so
    torn tails self-heal; appends [fsync] before returning.  Like every
    persist write, appends never raise — an I/O failure degrades that
    mutation to memory-only durability and is counted. *)
module Wal : sig
  val file : string
  (** File name of the log inside the state directory
      ([mutations.wal]); deliberately not [*.blob], so the startup
      blob scan ignores it. *)

  type record = {
    base_key : string;  (** dataset key the ops apply to *)
    new_key : string;
        (** content hash of the post-mutation dataset — an integrity
            check: replay verifies the recomputed key matches and stops
            the chain on a mismatch *)
    ops : Rrms_core.Delta.mutation list;
  }

  val append : t -> record -> unit
  (** Durably append one record at the validated end of the log
      (truncating a torn tail first).  Never raises. *)

  val replay : t -> (record -> unit) -> int
  (** Scan the log from the start, calling the function on every valid
      record in order; stops at the first torn / corrupt record.
      Returns the number of records replayed.  The callback must not
      raise. *)
end
