module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Regret_matrix = Rrms_core.Regret_matrix

module Metrics = struct
  (* Everything here depends on what an earlier process left on disk,
     never on the workload alone. *)
  let c name help = Obs.Counter.make ~deterministic:false ~help name

  let writes = c "rrms_serve_persist_writes_total" "artifact blobs persisted"

  let write_errors =
    c "rrms_serve_persist_write_errors_total"
      "artifact spills abandoned on an I/O error (service degrades to \
       memory-only)"

  let rehydrated =
    c "rrms_serve_persist_rehydrated_total"
      "artifacts rehydrated from the state directory"

  let blobs_scanned =
    c "rrms_serve_persist_blobs_scanned_total"
      "blob files examined by the startup scan"

  let rehydrate_seconds =
    Obs.Timer.make ~help:"blob load + decode latency (hits and misses alike)"
      "rrms_serve_persist_rehydrate_seconds"

  let corrupt =
    c "rrms_serve_persist_corrupt_blobs_total"
      "blobs discarded as torn, corrupt or version-mismatched"

  let partial_cleaned =
    c "rrms_serve_persist_partial_writes_cleaned_total"
      "leftover temp files removed by the startup scan"

  let wal_appends =
    c "rrms_serve_persist_wal_appends_total"
      "mutation records appended to the write-ahead delta log"

  let wal_replayed =
    c "rrms_serve_persist_wal_replayed_total"
      "mutation records replayed from the write-ahead delta log"

  let wal_torn =
    c "rrms_serve_persist_wal_torn_total"
      "write-ahead log tails discarded as torn or corrupt"
end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

module Fault = struct
  type mode = Crash of int | Torn of int option | Stall of float

  let current : mode option Atomic.t = Atomic.make None

  (* Process-wide 1-based write ordinal, so crash@N / torn_write@N are
     deterministic for a scripted sequence of requests. *)
  let write_ordinal = Atomic.make 0

  let set m = Atomic.set current (Some m)
  let clear () = Atomic.set current None
  let active () = Atomic.get current <> None

  (* "crash@N" | "torn_write" | "torn_write@N" | "stall@MS". *)
  let parse s =
    match String.split_on_char '@' (String.trim s) with
    | [ "torn_write" ] -> Some (Torn None)
    | [ "torn_write"; n ] ->
        Option.map (fun n -> Torn (Some n)) (int_of_string_opt n)
    | [ "crash"; n ] -> Option.map (fun n -> Crash n) (int_of_string_opt n)
    | [ "stall"; ms ] -> (
        match float_of_string_opt ms with
        | Some ms when ms >= 0. -> Some (Stall ms)
        | _ -> None)
    | _ -> None

  let configure_from_env () =
    match Sys.getenv_opt "RRMS_SERVE_FAULT" with
    | None -> ()
    | Some s -> ( match parse s with Some m -> set m | None -> ())

  (* What the fault layer decides for one blob write. *)
  type action = Write_ok | Write_torn | Write_crash

  let on_write () =
    match Atomic.get current with
    | None -> Write_ok
    | Some m -> (
        let n = 1 + Atomic.fetch_and_add write_ordinal 1 in
        match m with
        | Stall ms ->
            if ms > 0. then Unix.sleepf (ms /. 1000.);
            Write_ok
        | Torn None -> Write_torn
        | Torn (Some at) -> if n = at then Write_torn else Write_ok
        | Crash at -> if n = at then Write_crash else Write_ok)
end

(* ------------------------------------------------------------------ *)
(* Blob format                                                        *)
(* ------------------------------------------------------------------ *)

(* Header (22 bytes): magic "RRMB" | format version u8 | kind u8 |
   payload length u64le | FNV-1a-64 payload checksum u64le, then the
   payload.  Everything multi-byte is little-endian via Bytes.set_*;
   floats travel as their IEEE bits, so decode is bit-exact. *)

let magic = "RRMB"
let version = 1
let header_len = 22

type kind =
  | Dataset_blob
  | Skyline_blob
  | Grid_blob
  | Matrix_blob
  | Result_blob
  | Wal_record

let kind_byte = function
  | Dataset_blob -> 1
  | Skyline_blob -> 2
  | Grid_blob -> 3
  | Matrix_blob -> 4
  | Result_blob -> 5
  | Wal_record -> 6

let kind_of_byte = function
  | 1 -> Some Dataset_blob
  | 2 -> Some Skyline_blob
  | 3 -> Some Grid_blob
  | 4 -> Some Matrix_blob
  | 5 -> Some Result_blob
  | 6 -> Some Wal_record
  | _ -> None

let fnv_prime = 0x100000001b3L

let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let header ~kind payload =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 (kind_byte kind);
  Bytes.set_int64_le b 6 (Int64.of_int (String.length payload));
  Bytes.set_int64_le b 14 (checksum payload);
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Payload codec                                                      *)
(* ------------------------------------------------------------------ *)

module Codec = struct
  let u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
  let f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

  let str buf s =
    u64 buf (String.length s);
    Buffer.add_string buf s

  let floats buf a =
    u64 buf (Array.length a);
    Array.iter (f64 buf) a

  exception Truncated

  type reader = { payload : string; mutable pos : int }

  let reader payload = { payload; pos = 0 }

  let need r n =
    if n < 0 || r.pos + n > String.length r.payload then raise Truncated

  let ru64 r =
    need r 8;
    let v = Int64.to_int (String.get_int64_le r.payload r.pos) in
    r.pos <- r.pos + 8;
    if v < 0 then raise Truncated;
    v

  let rf64 r =
    need r 8;
    let v = Int64.float_of_bits (String.get_int64_le r.payload r.pos) in
    r.pos <- r.pos + 8;
    v

  let rstr r =
    let n = ru64 r in
    need r n;
    let s = String.sub r.payload r.pos n in
    r.pos <- r.pos + n;
    s

  let rfloats r =
    let n = ru64 r in
    need r (n * 8);
    Array.init n (fun _ -> rf64 r)

  let finished r = r.pos = String.length r.payload
end

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

type scan = { valid : int; corrupt : int; partial : int }

type t = {
  root : string;
  mutable scan : scan;
  (* Validated length of the write-ahead log's good prefix, computed
     lazily on first WAL touch.  Appends write at this offset (after
     truncating any torn tail) so a torn record never strands the
     records appended after it. *)
  mutable wal_end : int option;
}

let root t = t.root
let last_scan t = t.scan

let tmp_marker = ".tmp-"
let tmp_seq = Atomic.make 0

let is_tmp name =
  let m = String.length tmp_marker and n = String.length name in
  let rec scan i = i + m <= n && (String.sub name i m = tmp_marker || scan (i + 1)) in
  scan 0

(* Read and validate one blob file.  [Ok payload] when every header
   field and the checksum hold; [Error `Missing] when the file does not
   exist; [Error `Corrupt] for anything else — short file, bad magic,
   unknown version or kind, length or checksum mismatch. *)
let read_blob ~kind path =
  match open_in_bin path with
  | exception Sys_error _ -> Error `Missing
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let size = in_channel_length ic in
            if size < header_len then Error `Corrupt
            else begin
              let h = really_input_string ic header_len in
              let plen = Int64.to_int (String.get_int64_le h 6) in
              let sum = String.get_int64_le h 14 in
              if
                String.sub h 0 4 <> magic
                || String.get_uint8 h 4 <> version
                || kind_of_byte (String.get_uint8 h 5) <> Some kind
                || plen < 0
                || size <> header_len + plen
              then Error `Corrupt
              else
                let payload = really_input_string ic plen in
                if checksum payload <> sum then Error `Corrupt
                else Ok payload
            end
          with End_of_file | Sys_error _ -> Error `Corrupt)

(* Validation for the startup scan: same checks, kind only needs to be
   known, payload is not decoded. *)
let blob_valid path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let size = in_channel_length ic in
            size >= header_len
            &&
            let h = really_input_string ic header_len in
            let plen = Int64.to_int (String.get_int64_le h 6) in
            String.sub h 0 4 = magic
            && String.get_uint8 h 4 = version
            && kind_of_byte (String.get_uint8 h 5) <> None
            && plen >= 0
            && size = header_len + plen
            && checksum (really_input_string ic plen) = String.get_int64_le h 14
          with End_of_file | Sys_error _ -> false)

let scan_dir root =
  let names = try Sys.readdir root with Sys_error _ -> [||] in
  Array.sort compare names;
  let tally = ref { valid = 0; corrupt = 0; partial = 0 } in
  Array.iter
    (fun name ->
      let path = Filename.concat root name in
      if is_tmp name then begin
        (try Sys.remove path with Sys_error _ -> ());
        Obs.Counter.incr Metrics.partial_cleaned;
        tally := { !tally with partial = !tally.partial + 1 }
      end
      else if Filename.check_suffix name ".blob" then begin
        Obs.Counter.incr Metrics.blobs_scanned;
        if blob_valid path then
          tally := { !tally with valid = !tally.valid + 1 }
        else begin
          (try Sys.remove path with Sys_error _ -> ());
          Obs.Counter.incr Metrics.corrupt;
          tally := { !tally with corrupt = !tally.corrupt + 1 }
        end
      end)
    names;
  !tally

let open_dir path =
  Fault.configure_from_env ();
  (try
     if not (Sys.file_exists path) then Unix.mkdir path 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
   | Unix.Unix_error (e, _, _) ->
       Guard.Error.invalid_input
         (Printf.sprintf "Persist.open_dir: cannot create %s: %s" path
            (Unix.error_message e)));
  if not (Sys.is_directory path) then
    Guard.Error.invalid_input
      (Printf.sprintf "Persist.open_dir: %s is not a directory" path);
  { root = path; scan = scan_dir path; wal_end = None }

(* ------------------------------------------------------------------ *)
(* Atomic write                                                       *)
(* ------------------------------------------------------------------ *)

let fsync_dir root =
  match Unix.openfile root [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_raw ~fsync path (chunks : string list) =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun s ->
          let b = Bytes.unsafe_of_string s in
          let n = Bytes.length b in
          let off = ref 0 in
          while !off < n do
            off := !off + Unix.write fd b !off (n - !off)
          done)
        chunks;
      if fsync then Unix.fsync fd)

let half s = String.sub s 0 (String.length s / 2)

(* The one write path: temp file in the same directory, fsync, atomic
   rename over the final name, directory fsync.  The injected faults
   land here — [Write_crash] dies with SIGKILL's exit code leaving only
   temp litter, [Write_torn] renames a truncated payload into place so
   the final name holds a checksummed-as-full but short blob. *)
let write_blob t ~kind ~name payload =
  let final = Filename.concat t.root name in
  let tmp =
    Printf.sprintf "%s%s%d-%d" final tmp_marker (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let hdr = header ~kind payload in
  match Fault.on_write () with
  | Fault.Write_crash ->
      (* Half-written temp file, then die as if SIGKILLed: no rename, no
         cleanup, no at_exit — the startup scan must cope. *)
      (try write_raw ~fsync:true tmp [ hdr; half payload ]
       with Unix.Unix_error _ -> ());
      Unix._exit 137
  | (Fault.Write_ok | Fault.Write_torn) as action -> (
      let body =
        if action = Fault.Write_torn then [ hdr; half payload ]
        else [ hdr; payload ]
      in
      try
        write_raw ~fsync:true tmp body;
        Unix.rename tmp final;
        fsync_dir t.root;
        Obs.Counter.incr Metrics.writes
      with Unix.Unix_error _ | Sys_error _ ->
        Obs.Counter.incr Metrics.write_errors;
        try Sys.remove tmp with Sys_error _ -> ())

(* Load one blob and decode it.  A blob that exists but fails any check
   — header, checksum, or decode — is unlinked and counted corrupt, and
   the caller proceeds as on a miss. *)
let load_blob t ~kind ~name decode =
  Obs.Timer.time Metrics.rehydrate_seconds (fun () ->
      let path = Filename.concat t.root name in
      match read_blob ~kind path with
      | Error `Missing -> None
      | Error `Corrupt ->
          Obs.Counter.incr Metrics.corrupt;
          (try Sys.remove path with Sys_error _ -> ());
          None
      | Ok payload -> (
          match decode (Codec.reader payload) with
          | v ->
              Obs.Counter.incr Metrics.rehydrated;
              Some v
          | exception _ ->
              Obs.Counter.incr Metrics.corrupt;
              (try Sys.remove path with Sys_error _ -> ());
              None))

(* ------------------------------------------------------------------ *)
(* Artifact codecs                                                    *)
(* ------------------------------------------------------------------ *)

let dataset_name key = Printf.sprintf "dataset-%s.blob" key
let skyline_name key = Printf.sprintf "skyline-%s.blob" key
let matrix_name key gamma = Printf.sprintf "matrix-%s-g%d.blob" key gamma
let grid_name m gamma = Printf.sprintf "grid-m%d-g%d.blob" m gamma

(* The result file name carries only a hash of the cache key; the full
   key lives in the payload and is compared on load, so a hash collision
   degrades to a miss instead of a wrong answer. *)
let result_name key ckey =
  Printf.sprintf "result-%s-%016Lx.blob" key (checksum ckey)

let save_dataset t ~key d =
  let buf = Buffer.create 4096 in
  Codec.str buf (Dataset.name d);
  let attrs = Dataset.attributes d in
  Codec.u64 buf (Array.length attrs);
  Array.iter (Codec.str buf) attrs;
  let n = Dataset.size d and m = Dataset.dim d in
  Codec.u64 buf n;
  Codec.u64 buf m;
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      Codec.f64 buf (Dataset.value d i j)
    done
  done;
  write_blob t ~kind:Dataset_blob ~name:(dataset_name key)
    (Buffer.contents buf)

let load_dataset t ~key =
  load_blob t ~kind:Dataset_blob ~name:(dataset_name key) (fun r ->
      let name = Codec.rstr r in
      let na = Codec.ru64 r in
      let attrs = Array.init na (fun _ -> Codec.rstr r) in
      let n = Codec.ru64 r in
      let m = Codec.ru64 r in
      if m <> na then raise Codec.Truncated;
      Codec.need r (n * m * 8);
      let rows =
        Array.init n (fun _ -> Array.init m (fun _ -> Codec.rf64 r))
      in
      if not (Codec.finished r) then raise Codec.Truncated;
      Dataset.create ~name ~attributes:attrs rows)

let save_skyline t ~key sky =
  let buf = Buffer.create 256 in
  Codec.u64 buf (Array.length sky);
  Array.iter (Codec.u64 buf) sky;
  write_blob t ~kind:Skyline_blob ~name:(skyline_name key)
    (Buffer.contents buf)

let load_skyline t ~key =
  load_blob t ~kind:Skyline_blob ~name:(skyline_name key) (fun r ->
      let n = Codec.ru64 r in
      Codec.need r (n * 8);
      let sky = Array.init n (fun _ -> Codec.ru64 r) in
      if not (Codec.finished r) then raise Codec.Truncated;
      sky)

let save_matrix t ~key ~gamma mat =
  let best, cells = Regret_matrix.export mat in
  let buf = Buffer.create (8 * (Array.length cells + Array.length best + 2)) in
  Codec.u64 buf (Regret_matrix.rows mat);
  Codec.floats buf best;
  Codec.floats buf cells;
  write_blob t ~kind:Matrix_blob ~name:(matrix_name key gamma)
    (Buffer.contents buf)

let load_matrix t ~key ~gamma =
  load_blob t ~kind:Matrix_blob ~name:(matrix_name key gamma) (fun r ->
      let rows = Codec.ru64 r in
      let best = Codec.rfloats r in
      let cells = Codec.rfloats r in
      if not (Codec.finished r) then raise Codec.Truncated;
      Regret_matrix.import ~rows ~best ~cells)

let save_grid t ~m ~gamma grid =
  let buf = Buffer.create 4096 in
  Codec.u64 buf (Array.length grid);
  Codec.u64 buf m;
  Array.iter (fun v -> Array.iter (Codec.f64 buf) v) grid;
  write_blob t ~kind:Grid_blob ~name:(grid_name m gamma) (Buffer.contents buf)

let load_grid t ~m ~gamma =
  load_blob t ~kind:Grid_blob ~name:(grid_name m gamma) (fun r ->
      let n = Codec.ru64 r in
      let m' = Codec.ru64 r in
      if m' <> m then raise Codec.Truncated;
      Codec.need r (n * m * 8);
      let g = Array.init n (fun _ -> Array.init m (fun _ -> Codec.rf64 r)) in
      if not (Codec.finished r) then raise Codec.Truncated;
      g)

let save_result t ~key ~cache_key result =
  let buf = Buffer.create 512 in
  Codec.str buf cache_key;
  Codec.str buf (Json.to_string result);
  write_blob t ~kind:Result_blob ~name:(result_name key cache_key)
    (Buffer.contents buf)

let load_result t ~key ~cache_key =
  Option.join
    (load_blob t ~kind:Result_blob ~name:(result_name key cache_key) (fun r ->
         let stored_key = Codec.rstr r in
         let body = Codec.rstr r in
         if not (Codec.finished r) then raise Codec.Truncated;
         if stored_key <> cache_key then None
         else
           match Json.parse body with
           | Ok j -> Some j
           | Error _ -> raise Codec.Truncated))

(* ------------------------------------------------------------------ *)
(* Write-ahead delta log                                               *)
(* ------------------------------------------------------------------ *)

module Wal = struct
  let file = "mutations.wal"

  type record = {
    base_key : string;
    new_key : string;
    ops : Rrms_core.Delta.mutation list;
  }

  let path t = Filename.concat t.root file

  let encode { base_key; new_key; ops } =
    let buf = Buffer.create 256 in
    Codec.str buf base_key;
    Codec.str buf new_key;
    Codec.u64 buf (List.length ops);
    List.iter
      (fun op ->
        match op with
        | Rrms_core.Delta.Insert p ->
            Codec.u64 buf 1;
            Codec.floats buf p
        | Rrms_core.Delta.Delete i ->
            Codec.u64 buf 2;
            Codec.u64 buf i
        | Rrms_core.Delta.Upsert (i, p) ->
            Codec.u64 buf 3;
            Codec.u64 buf i;
            Codec.floats buf p)
      ops;
    Buffer.contents buf

  let decode r =
    let base_key = Codec.rstr r in
    let new_key = Codec.rstr r in
    let n = Codec.ru64 r in
    let ops =
      List.init n (fun _ ->
          match Codec.ru64 r with
          | 1 -> Rrms_core.Delta.Insert (Codec.rfloats r)
          | 2 -> Rrms_core.Delta.Delete (Codec.ru64 r)
          | 3 ->
              let i = Codec.ru64 r in
              Rrms_core.Delta.Upsert (i, Codec.rfloats r)
          | _ -> raise Codec.Truncated)
    in
    if not (Codec.finished r) then raise Codec.Truncated;
    { base_key; new_key; ops }

  (* Sequential scan of the log: call [f] on every valid record, stop at
     the first torn / corrupt one.  Returns the byte offset after the
     last valid record, the record count, and whether a bad tail was
     seen. *)
  let scan_records path f =
    match open_in_bin path with
    | exception Sys_error _ -> (0, 0, false)
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let size = in_channel_length ic in
            let ok_end = ref 0 and count = ref 0 and torn = ref false in
            (try
               let continue_ = ref true in
               while !continue_ do
                 let pos = pos_in ic in
                 if pos = size then continue_ := false
                 else if pos + header_len > size then begin
                   torn := true;
                   continue_ := false
                 end
                 else begin
                   let h = really_input_string ic header_len in
                   let plen = Int64.to_int (String.get_int64_le h 6) in
                   if
                     String.sub h 0 4 <> magic
                     || String.get_uint8 h 4 <> version
                     || String.get_uint8 h 5 <> kind_byte Wal_record
                     || plen < 0
                     || pos + header_len + plen > size
                   then begin
                     torn := true;
                     continue_ := false
                   end
                   else begin
                     let payload = really_input_string ic plen in
                     if checksum payload <> String.get_int64_le h 14 then begin
                       torn := true;
                       continue_ := false
                     end
                     else
                       match decode (Codec.reader payload) with
                       | record ->
                           f record;
                           ok_end := pos_in ic;
                           incr count
                       | exception Codec.Truncated ->
                           torn := true;
                           continue_ := false
                   end
                 end
               done
             with End_of_file | Sys_error _ -> torn := true);
            (!ok_end, !count, !torn))

  let valid_end t =
    match t.wal_end with
    | Some e -> e
    | None ->
        let e, _, torn = scan_records (path t) (fun _ -> ()) in
        if torn then Obs.Counter.incr Metrics.wal_torn;
        t.wal_end <- Some e;
        e

  (* Append one checksummed record at the validated end of the log,
     fsync'd before the caller proceeds to install the mutation.  Like
     every persist write this never raises: an I/O failure is counted
     and the service degrades to memory-only durability for that
     mutation.  The injected faults land here exactly as on the blob
     path: a crash dies mid-record with SIGKILL's exit code, a torn
     write leaves a half record that the next append (or the startup
     scan) truncates away. *)
  let append t record =
    let payload = encode record in
    let hdr = header ~kind:Wal_record payload in
    let e = valid_end t in
    let write chunks =
      let fd =
        Unix.openfile (path t) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.ftruncate fd e with Unix.Unix_error _ -> ());
          ignore (Unix.lseek fd e Unix.SEEK_SET);
          List.iter
            (fun s ->
              let b = Bytes.unsafe_of_string s in
              let n = Bytes.length b in
              let off = ref 0 in
              while !off < n do
                off := !off + Unix.write fd b !off (n - !off)
              done)
            chunks;
          Unix.fsync fd)
    in
    match Fault.on_write () with
    | Fault.Write_crash ->
        (try write [ hdr; half payload ] with Unix.Unix_error _ -> ());
        Unix._exit 137
    | Fault.Write_torn ->
        (* wal_end stays at the pre-write offset: the next append (or
           the next process's scan) truncates the torn record away. *)
        (try write [ hdr; half payload ] with Unix.Unix_error _ -> ());
        Obs.Counter.incr Metrics.write_errors
    | Fault.Write_ok -> (
        try
          write [ hdr; payload ];
          t.wal_end <- Some (e + String.length hdr + String.length payload);
          Obs.Counter.incr Metrics.wal_appends
        with Unix.Unix_error _ | Sys_error _ ->
          Obs.Counter.incr Metrics.write_errors)

  let replay t f =
    let count_ok = ref 0 in
    let e, count, torn =
      scan_records (path t) (fun record ->
          f record;
          incr count_ok;
          Obs.Counter.incr Metrics.wal_replayed)
    in
    ignore !count_ok;
    if torn then Obs.Counter.incr Metrics.wal_torn;
    t.wal_end <- Some e;
    count
end
