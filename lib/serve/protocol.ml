module Guard = Rrms_guard.Guard

type algo = A2d | A2d_exact | Sweepline | Hd_rrms | Hd_greedy | Greedy | Cube

let algo_of_string = function
  | "2d" -> Some A2d
  | "2d-exact" -> Some A2d_exact
  | "sweepline" -> Some Sweepline
  | "hd-rrms" -> Some Hd_rrms
  | "hd-greedy" -> Some Hd_greedy
  | "greedy" -> Some Greedy
  | "cube" -> Some Cube
  | _ -> None

let algo_to_string = function
  | A2d -> "2d"
  | A2d_exact -> "2d-exact"
  | Sweepline -> "sweepline"
  | Hd_rrms -> "hd-rrms"
  | Hd_greedy -> "hd-greedy"
  | Greedy -> "greedy"
  | Cube -> "cube"

type query = {
  dataset : string;
  algo : algo;
  r : int;
  gamma : int;
  timeout : float option;
  max_cells : int option;
  max_probes : int option;
  use_cache : bool;
  explain : bool;
}

(* Optional distributed-trace envelope: any request may carry a
   ["trace"] object; a router injects one into every fan-out leg and
   batch item so worker spans and counter deltas land under the
   originating trace id.  The envelope never participates in caching —
   [cache_key] ignores it — and never changes the [result] bytes. *)
type trace = {
  trace_id : string;
  parent_span : string;
  origin_request : string;
  origin_session : string;
  deadline : float option;
}

let trace_member t =
  ( "trace",
    Json.Obj
      (("id", Json.Str t.trace_id)
      :: ((if t.parent_span <> "" then [ ("parent", Json.Str t.parent_span) ]
           else [])
         @ (if t.origin_request <> "" then
              [ ("request_id", Json.Str t.origin_request) ]
            else [])
         @ (if t.origin_session <> "" then
              [ ("session_id", Json.Str t.origin_session) ]
            else [])
         @
         match t.deadline with
         | Some d -> [ ("deadline", Json.float d) ]
         | None -> [])) )

type mutation_op =
  | Op_insert of float array
  | Op_delete of int
  | Op_upsert of int * float array

type request =
  | Load of {
      path : string;
      name : string option;
      normalize : bool;
      lenient : bool;
      shard : (int * int) option;
    }
  | Query of query
  | Batch of { dataset : string; items : (query, string * string) result array }
  | Mutate of {
      dataset : string;
      ops : mutation_op array;
      timeout : float option;
    }
  | Skyline of { dataset : string; timeout : float option }
  | Stats
  | Metrics
  | Evict of { dataset : string }
  | Ping
  | Shutdown

let error_code_of_guard : Guard.Error.t -> string = function
  | Guard.Error.Invalid_input _ -> "invalid_input"
  | Guard.Error.Timeout _ -> "timeout"
  | Guard.Error.Resource_limit _ -> "resource_limit"
  | Guard.Error.Numerical _ -> "numerical"

exception Shard_failure of string

(* The one exception→wire-error mapping, shared by the store server, the
   batch per-item path and the shard router so a given failure reports
   the same code everywhere.  [None] means "not a request-level error":
   the caller decides between 500-style internal and re-raise. *)
let error_of_exn = function
  | Guard.Error.Guard_error err ->
      Some (error_code_of_guard err, Guard.Error.to_string err)
  | Invalid_argument msg | Failure msg -> Some ("invalid_input", msg)
  | Shard_failure msg -> Some ("shard_failure", msg)
  | Rrms_parallel.Fault.Injected w ->
      Some ("internal", Printf.sprintf "injected fault in worker %d" w)
  | _ -> None

type parsed = {
  id : Json.t;
  req : (request, string * string) result;
  trace : trace option;
}

(* Field readers over the request object; every shape problem becomes a
   [bad_request] with the offending field named, never an exception. *)
exception Bad_request of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad_request msg)) fmt

let req_string obj field =
  match Json.member field obj with
  | Some (Json.Str s) when s <> "" -> s
  | Some _ -> bad "field %S must be a non-empty string" field
  | None -> bad "missing required field %S" field

let opt_string obj field =
  match Json.member field obj with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> bad "field %S must be a string" field

let opt_bool obj field ~default =
  match Json.member field obj with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" field

let req_int obj field =
  match Json.member field obj with
  | Some j -> (
      match Json.int_ j with
      | Some i -> i
      | None -> bad "field %S must be an integer" field)
  | None -> bad "missing required field %S" field

let opt_int obj field =
  match Json.member field obj with
  | None | Some Json.Null -> None
  | Some j -> (
      match Json.int_ j with
      | Some i -> Some i
      | None -> bad "field %S must be an integer" field)

let opt_number obj field =
  match Json.member field obj with
  | None | Some Json.Null -> None
  | Some (Json.Num v) when Float.is_finite v -> Some v
  | Some _ -> bad "field %S must be a finite number" field

let parse_query obj =
  let dataset = req_string obj "dataset" in
  let algo =
    let s = req_string obj "algo" in
    match algo_of_string s with
    | Some a -> a
    | None ->
        bad
          "unknown algo %S (expected 2d | 2d-exact | sweepline | hd-rrms | \
           hd-greedy | greedy | cube)"
          s
  in
  let r = req_int obj "r" in
  if r < 1 then bad "field \"r\" must be >= 1";
  let gamma = match opt_int obj "gamma" with None -> 4 | Some g -> g in
  if gamma < 1 then bad "field \"gamma\" must be >= 1";
  let timeout = opt_number obj "timeout" in
  (match timeout with
  | Some t when t <= 0. -> bad "field \"timeout\" must be > 0"
  | _ -> ());
  let check_pos field v =
    match v with
    | Some c when c < 1 -> bad "field %S must be >= 1" field
    | _ -> v
  in
  let max_cells = check_pos "max_cells" (opt_int obj "max_cells") in
  let max_probes = check_pos "max_probes" (opt_int obj "max_probes") in
  let use_cache = opt_bool obj "cache" ~default:true in
  let explain = opt_bool obj "explain" ~default:false in
  Query
    {
      dataset;
      algo;
      r;
      gamma;
      timeout;
      max_cells;
      max_probes;
      use_cache;
      explain;
    }

let max_batch_items = 1024

(* Parse one batch item: the batch-level dataset is authoritative, so an
   item either omits "dataset" or repeats it verbatim.  Item-shape
   problems become per-item errors, not a batch-level failure — the
   other items still run. *)
let parse_batch_item ~dataset i obj =
  match
    (match Json.member "dataset" obj with
    | Some (Json.Str d) when d <> dataset ->
        bad "item dataset %S must match the batch dataset" d
    | _ -> ());
    let obj =
      match obj with
      | Json.Obj fields when not (List.mem_assoc "dataset" fields) ->
          Json.Obj (("dataset", Json.Str dataset) :: fields)
      | _ -> obj
    in
    parse_query obj
  with
  | Query q -> Ok q
  | _ -> assert false (* parse_query only builds Query *)
  | exception Bad_request msg ->
      Error ("bad_request", Printf.sprintf "item %d: %s" i msg)

let parse_batch obj =
  let dataset = req_string obj "dataset" in
  match Json.member "items" obj with
  | Some (Json.Arr items) ->
      if items = [] then bad "field \"items\" must not be empty";
      if List.length items > max_batch_items then
        bad "field \"items\" exceeds the %d-item batch limit" max_batch_items;
      let items =
        Array.of_list
          (List.mapi
             (fun i item ->
               match item with
               | Json.Obj _ -> parse_batch_item ~dataset i item
               | _ ->
                   Error
                     ( "bad_request",
                       Printf.sprintf "item %d: must be an object" i ))
             items)
      in
      Batch { dataset; items }
  | Some _ -> bad "field \"items\" must be an array"
  | None -> bad "missing required field \"items\""

(* Mutation parsing.  Unlike batch items, a mutation batch is
   transactional — it applies atomically or not at all — so any
   malformed op fails the whole request with [bad_request]. *)
let req_values obj =
  match Json.member "values" obj with
  | Some (Json.Arr (_ :: _ as l)) ->
      Array.of_list
        (List.map
           (function
             | Json.Num v when Float.is_finite v && v >= 0. -> v
             | _ ->
                 bad
                   "field \"values\" must contain finite non-negative numbers")
           l)
  | Some _ -> bad "field \"values\" must be a non-empty array of numbers"
  | None -> bad "missing required field \"values\""

let req_index obj =
  let i = req_int obj "index" in
  if i < 0 then bad "field \"index\" must be >= 0";
  i

let parse_op obj =
  match req_string obj "op" with
  | "insert" -> Op_insert (req_values obj)
  | "delete" -> Op_delete (req_index obj)
  | "upsert" -> Op_upsert (req_index obj, req_values obj)
  | k -> bad "unknown mutation op %S (expected insert | delete | upsert)" k

let parse_mutation obj ops =
  let timeout = opt_number obj "timeout" in
  (match timeout with
  | Some t when t <= 0. -> bad "field \"timeout\" must be > 0"
  | _ -> ());
  Mutate { dataset = req_string obj "dataset"; ops; timeout }

let parse_mutate_batch obj =
  match Json.member "ops" obj with
  | Some (Json.Arr ops) ->
      if ops = [] then bad "field \"ops\" must not be empty";
      if List.length ops > max_batch_items then
        bad "field \"ops\" exceeds the %d-op batch limit" max_batch_items;
      let ops =
        Array.of_list
          (List.mapi
             (fun i op ->
               match op with
               | Json.Obj _ -> (
                   try parse_op op
                   with Bad_request msg -> bad "op %d: %s" i msg)
               | _ -> bad "op %d: must be an object" i)
             ops)
      in
      parse_mutation obj ops
  | Some _ -> bad "field \"ops\" must be an array"
  | None -> bad "missing required field \"ops\""

let parse_body obj =
  match Json.member "req" obj with
  | None -> bad "missing required field \"req\""
  | Some (Json.Str kind) -> (
      match kind with
      | "load" ->
          let shard =
            match (opt_int obj "shard_index", opt_int obj "shard_count") with
            | None, None -> None
            | Some s, Some count ->
                if count < 1 then bad "field \"shard_count\" must be >= 1";
                if s < 0 || s >= count then
                  bad "field \"shard_index\" must be in [0, shard_count)";
                Some (s, count)
            | _ ->
                bad
                  "fields \"shard_index\" and \"shard_count\" must be given \
                   together"
          in
          Load
            {
              path = req_string obj "path";
              name = opt_string obj "name";
              normalize = opt_bool obj "normalize" ~default:false;
              lenient = opt_bool obj "lenient" ~default:false;
              shard;
            }
      | "query" -> parse_query obj
      | "batch" -> parse_batch obj
      | "insert" -> parse_mutation obj [| Op_insert (req_values obj) |]
      | "delete" -> parse_mutation obj [| Op_delete (req_index obj) |]
      | "upsert" ->
          parse_mutation obj [| Op_upsert (req_index obj, req_values obj) |]
      | "mutate" -> parse_mutate_batch obj
      | "skyline" ->
          let timeout = opt_number obj "timeout" in
          (match timeout with
          | Some t when t <= 0. -> bad "field \"timeout\" must be > 0"
          | _ -> ());
          Skyline { dataset = req_string obj "dataset"; timeout }
      | "stats" -> Stats
      | "metrics" -> Metrics
      | "evict" -> Evict { dataset = req_string obj "dataset" }
      | "ping" -> Ping
      | "shutdown" -> Shutdown
      | k ->
          bad
            "unknown request kind %S (expected load | query | batch | insert \
             | delete | upsert | mutate | skyline | stats | metrics | evict | \
             ping | shutdown)"
            k)
  | Some _ -> bad "field \"req\" must be a string"

(* The trace envelope is parsed independently of the body: a valid
   envelope on a malformed request still scopes the error handling, and
   a malformed envelope fails the request like any other bad field. *)
let parse_trace obj =
  match Json.member "trace" obj with
  | None | Some Json.Null -> None
  | Some (Json.Obj _ as t) ->
      let trace_id = req_string t "id" in
      let parent_span = Option.value ~default:"" (opt_string t "parent") in
      let origin_request =
        Option.value ~default:"" (opt_string t "request_id")
      in
      let origin_session =
        Option.value ~default:"" (opt_string t "session_id")
      in
      let deadline = opt_number t "deadline" in
      Some { trace_id; parent_span; origin_request; origin_session; deadline }
  | Some _ -> bad "field \"trace\" must be an object"

let parse_request line =
  match Json.parse line with
  | Error msg -> { id = Json.Null; req = Error ("parse", msg); trace = None }
  | Ok (Json.Obj _ as obj) -> (
      let id = Option.value ~default:Json.Null (Json.member "id" obj) in
      match
        let trace = parse_trace obj in
        (parse_body obj, trace)
      with
      | req, trace -> { id; req = Ok req; trace }
      | exception Bad_request msg ->
          { id; req = Error ("bad_request", msg); trace = None })
  | Ok _ ->
      {
        id = Json.Null;
        req = Error ("bad_request", "request must be an object");
        trace = None;
      }

let cache_key q =
  (* Budgets and cache flags never select the answer; γ only matters to
     the grid-discretized algorithms. *)
  let base = Printf.sprintf "algo=%s;r=%d" (algo_to_string q.algo) q.r in
  match q.algo with
  | Hd_rrms | Hd_greedy -> Printf.sprintf "%s;gamma=%d" base q.gamma
  | A2d | A2d_exact | Sweepline | Greedy | Cube -> base

(* [cost] is a response-envelope sibling of [result], never inside it:
   the [result] bytes are what the cache stores and what byte-identity
   tests compare, so provenance must not perturb them. *)
let ok_response ?cost ~id ~cached ~elapsed_ms result =
  Json.to_string
    (Json.Obj
       ([
          ("id", id);
          ("ok", Json.Bool true);
          ("cached", Json.Bool cached);
          ("elapsed_ms", Json.float elapsed_ms);
          ("result", result);
        ]
       @ match cost with Some c -> [ ("cost", c) ] | None -> []))

let error_response ~id ~code ~message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ]
         );
       ])
