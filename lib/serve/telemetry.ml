(* Request-level telemetry for the serving layer: keyed latency
   histograms, the JSONL access log, and slow-query capture.

   One [t] aggregates across every session of a server.  The histogram
   family is keyed by (algo, cache outcome, status) — the three axes
   that explain a latency: which solver ran, whether it ran at all
   (hit/derived/miss), and whether it finished exact, degraded or
   failed.  Quantiles come from {!Rrms_obs.Obs.Hist}, so they are
   deterministic in the multiset of observations.

   The access log is newline-delimited JSON, one ["access"] record per
   query request, written and flushed as the response goes out; when
   [slow_ms] is set, a request at or over the threshold additionally
   writes a ["slow_query"] record carrying its full span trace (the
   per-request capture works at the Counters level — no global Full
   trace buffer needed). *)

module Obs = Rrms_obs.Obs

type key = { k_algo : string; k_cache : string; k_status : string }

type t = {
  mutex : Mutex.t; (* guards hists, the channel, and the line counters *)
  hists : (key, Obs.Hist.t) Hashtbl.t;
  access : out_channel option;
  access_path : string option;
  slow_ms : float option;
  mutable access_lines : int;
  mutable slow_queries : int;
}

let create ?access_log ?slow_ms () =
  {
    mutex = Mutex.create ();
    hists = Hashtbl.create 16;
    access = Option.map open_out access_log;
    access_path = access_log;
    slow_ms;
    access_lines = 0;
    slow_queries = 0;
  }

(* The shared instance behind every [?telemetry] default: a server that
   never configured telemetry still accumulates latency histograms, so
   [stats] always has quantiles to report. *)
let default = create ()

let capture_spans t = t.slow_ms <> None
let close t = match t.access with Some oc -> close_out_noerr oc | None -> ()

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.hists;
  t.access_lines <- 0;
  t.slow_queries <- 0;
  Mutex.unlock t.mutex

type request = {
  request_id : string;
  session_id : string;
  algo : string;
  dataset : string;  (** resolved content hash when loaded, else the handle *)
  r : int;
  gamma : int;
  cache : string;  (** ["hit"] | ["derived"] | ["miss"] *)
  status : string;  (** ["ok"] | ["degraded"] | ["error"] *)
  error_code : string option;
  queue_wait_ms : float;
  elapsed_ms : float;
  probes : float;
  cells : float;
  shards : int;  (** fan-out width; [0] for an unsharded store *)
  merge : string;  (** answer's merge path; [""] for an unsharded answer *)
}

let hist_for t k =
  match Hashtbl.find_opt t.hists k with
  | Some h -> h
  | None ->
      let h = Obs.Hist.create () in
      Hashtbl.add t.hists k h;
      h

let span_json (ev : Obs.Trace.event) =
  Json.Obj
    ([
       ("name", Json.Str ev.Obs.Trace.name);
       ("domain", Json.int ev.Obs.Trace.domain);
       ("depth", Json.int ev.Obs.Trace.depth);
       ("start", Json.float ev.Obs.Trace.start);
       ("dur", Json.float ev.Obs.Trace.dur);
     ]
    @ (let opt key v =
         if v = "" then [] else [ (key, Json.Str v) ]
       in
       opt "span_id" ev.Obs.Trace.span_id
       @ opt "parent_id" ev.Obs.Trace.parent_id
       @ opt "trace_id" ev.Obs.Trace.trace_id)
    @ [
        ( "attrs",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.Str v)) ev.Obs.Trace.attrs) );
      ])

(* Inverse of [span_json], for the router splicing worker span dumps
   into its merged trace.  Missing fields default (empty / zero) — a
   malformed span never fails the merge, it just carries less. *)
let span_of_json j =
  let str f = match Json.member f j with Some (Json.Str s) -> s | _ -> "" in
  let int f =
    match Json.member f j with
    | Some x -> Option.value ~default:0 (Json.int_ x)
    | None -> 0
  in
  let num f = match Json.member f j with Some (Json.Num v) -> v | _ -> 0. in
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
          kvs
    | _ -> []
  in
  {
    Obs.Trace.name = str "name";
    domain = int "domain";
    depth = int "depth";
    start = num "start";
    dur = num "dur";
    attrs;
    span_id = str "span_id";
    parent_id = str "parent_id";
    trace_id = str "trace_id";
  }

let request_fields r =
  [
    ("request_id", Json.Str r.request_id);
    ("session_id", Json.Str r.session_id);
    ("algo", Json.Str r.algo);
    ("dataset", Json.Str r.dataset);
    ("r", Json.int r.r);
    ("gamma", Json.int r.gamma);
    ("cache", Json.Str r.cache);
    ("status", Json.Str r.status);
  ]
  @ (match r.error_code with
    | Some c -> [ ("error_code", Json.Str c) ]
    | None -> [])
  @ (if r.shards > 0 then [ ("shards", Json.int r.shards) ] else [])
  @ (if r.merge <> "" then [ ("merge", Json.Str r.merge) ] else [])
  @ [
      ("queue_wait_ms", Json.float r.queue_wait_ms);
      ("elapsed_ms", Json.float r.elapsed_ms);
      ("probes", Json.float r.probes);
      ("cells", Json.float r.cells);
    ]

let access_line r =
  Json.to_string (Json.Obj (("type", Json.Str "access") :: request_fields r))

let slow_line r spans =
  Json.to_string
    (Json.Obj
       ((("type", Json.Str "slow_query") :: request_fields r)
       @ [ ("spans", Json.Arr (List.map span_json spans)) ]))

let record t (r : request) ~spans =
  let k = { k_algo = r.algo; k_cache = r.cache; k_status = r.status } in
  Mutex.lock t.mutex;
  let h = hist_for t k in
  Obs.Hist.observe h (r.elapsed_ms /. 1000.);
  (match t.access with
  | Some oc ->
      output_string oc (access_line r);
      output_char oc '\n';
      flush oc;
      t.access_lines <- t.access_lines + 1
  | None -> ());
  (match t.slow_ms with
  | Some threshold when r.elapsed_ms >= threshold ->
      t.slow_queries <- t.slow_queries + 1;
      let line = slow_line r spans in
      (match t.access with
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          flush oc
      | None -> prerr_endline line)
  | Some _ | None -> ());
  Mutex.unlock t.mutex

let quantile_ms h q = 1000. *. Obs.Hist.quantile h q

let to_json t =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold
      (fun k h acc ->
        ( k,
          Json.Obj
            [
              ("algo", Json.Str k.k_algo);
              ("cache", Json.Str k.k_cache);
              ("status", Json.Str k.k_status);
              ("count", Json.int (Obs.Hist.count h));
              ("p50_ms", Json.float (quantile_ms h 0.5));
              ("p95_ms", Json.float (quantile_ms h 0.95));
              ("p99_ms", Json.float (quantile_ms h 0.99));
              ("max_ms", Json.float (1000. *. Obs.Hist.max_value h));
              ("sum_ms", Json.float (1000. *. Obs.Hist.sum h));
            ] )
        :: acc)
      t.hists []
  in
  let access_lines = t.access_lines and slow_queries = t.slow_queries in
  Mutex.unlock t.mutex;
  let entries =
    List.sort
      (fun ((a : key), _) (b, _) ->
        compare (a.k_algo, a.k_cache, a.k_status) (b.k_algo, b.k_cache, b.k_status))
      entries
  in
  Json.Obj
    ([
       ("histograms", Json.Arr (List.map snd entries));
       ("access_log_lines", Json.int access_lines);
       ("slow_queries", Json.int slow_queries);
     ]
    @
    match t.access_path with
    | Some p -> [ ("access_log", Json.Str p) ]
    | None -> [])

(* ------------------------------------------------------------------ *)
(* Raw (mergeable) export and the cluster merge — the two halves of the
   wire [metrics] op.  Export carries seconds and raw bucket counts, so
   a router merging N worker exports gets exactly the histogram a
   single process observing the union would hold. *)

let sorted_entries t =
  Mutex.lock t.mutex;
  let entries = Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists [] in
  Mutex.unlock t.mutex;
  List.sort
    (fun ((a : key), _) (b, _) ->
      compare
        (a.k_algo, a.k_cache, a.k_status)
        (b.k_algo, b.k_cache, b.k_status))
    entries

let key_fields k =
  [
    ("algo", Json.Str k.k_algo);
    ("cache", Json.Str k.k_cache);
    ("status", Json.Str k.k_status);
  ]

let export_json t =
  Json.Obj
    [
      ( "histograms",
        Json.Arr
          (List.map
             (fun (k, h) ->
               Json.Obj
                 (key_fields k
                 @ [
                     ("count", Json.int (Obs.Hist.count h));
                     ("sum", Json.float (Obs.Hist.sum h));
                     ("max", Json.float (Obs.Hist.max_value h));
                     ( "buckets",
                       Json.Arr
                         (Array.to_list
                            (Array.map Json.int (Obs.Hist.buckets h))) );
                   ]))
             (sorted_entries t)) );
    ]

let hist_of_export j =
  let str f = match Json.member f j with Some (Json.Str s) -> s | _ -> "" in
  let int f =
    match Json.member f j with
    | Some x -> Option.value ~default:0 (Json.int_ x)
    | None -> 0
  in
  let num f =
    match Json.member f j with Some (Json.Num v) -> v | _ -> 0.
  in
  let buckets =
    match Json.member "buckets" j with
    | Some (Json.Arr l) ->
        Array.of_list
          (List.map (fun x -> Option.value ~default:0 (Json.int_ x)) l)
    | _ -> [||]
  in
  ( { k_algo = str "algo"; k_cache = str "cache"; k_status = str "status" },
    Obs.Hist.import ~count:(int "count") ~sum:(num "sum")
      ~max_value:(num "max") ~buckets )

let summary_row ~shard k h =
  Json.Obj
    (("shard", Json.Str shard)
    :: key_fields k
    @ [
        ("count", Json.int (Obs.Hist.count h));
        ("p50_ms", Json.float (quantile_ms h 0.5));
        ("p95_ms", Json.float (quantile_ms h 0.95));
        ("p99_ms", Json.float (quantile_ms h 0.99));
        ("max_ms", Json.float (1000. *. Obs.Hist.max_value h));
        ("sum_ms", Json.float (1000. *. Obs.Hist.sum h));
      ])

(* Merge per-process exports into the cluster latency view: one
   ["all"]-labelled row per key (histograms merged across processes,
   quantiles recomputed — identical to a single process observing the
   union), followed by the per-process rows under their shard labels,
   in the given order. *)
let merge_exports labeled =
  let parse (label, j) =
    match Json.member "histograms" j with
    | Some (Json.Arr rows) -> List.map (fun r -> (label, hist_of_export r)) rows
    | _ -> []
  in
  let per_shard = List.concat_map parse labeled in
  let merged : (key, Obs.Hist.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (_, (k, h)) ->
      match Hashtbl.find_opt merged k with
      | Some prev -> Hashtbl.replace merged k (Obs.Hist.merge prev h)
      | None ->
          Hashtbl.replace merged k h;
          order := k :: !order)
    per_shard;
  let keys =
    List.sort
      (fun (a : key) b ->
        compare
          (a.k_algo, a.k_cache, a.k_status)
          (b.k_algo, b.k_cache, b.k_status))
      (List.rev !order)
  in
  let all_rows =
    List.map (fun k -> summary_row ~shard:"all" k (Hashtbl.find merged k)) keys
  in
  let shard_rows =
    List.map (fun (label, (k, h)) -> summary_row ~shard:label k h) per_shard
  in
  Json.Obj [ ("histograms", Json.Arr (all_rows @ shard_rows)) ]
