module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs

module Metrics = struct
  let requests =
    Obs.Counter.make ~help:"requests handled by the serving layer"
      "rrms_serve_requests_total"

  let errors =
    Obs.Counter.make ~help:"requests answered with an error response"
      "rrms_serve_errors_total"

  let sessions =
    Obs.Counter.make ~deterministic:false
      ~help:"client sessions accepted (socket transport)"
      "rrms_serve_sessions_total"

  let open_sessions =
    Obs.Gauge.make ~deterministic:false ~help:"sessions currently connected"
      "rrms_serve_open_sessions"

  let request_seconds =
    Obs.Timer.make ~help:"request handling latency" "rrms_serve_request_seconds"

  let batch_requests =
    Obs.Counter.make ~help:"batch requests handled"
      "rrms_serve_batch_requests_total"

  let batch_items =
    Obs.Counter.make ~help:"individual items carried by batch requests"
      "rrms_serve_batch_items_total"
end

(* Remove the first occurrence only: a session that loaded the same
   content twice holds two references and must drop both at teardown. *)
let rec remove_one key = function
  | [] -> []
  | k :: rest when k = key -> rest
  | k :: rest -> k :: remove_one key rest

(* Session identities are process-global ("s1", "s2", …); request ids
   append a per-session sequence number ("s2-r7").  Both ride on every
   span executed on the request's behalf — including pool-worker spans
   — and key the access log, which is what makes concurrent sessions'
   telemetry separable again. *)
let session_seq = Atomic.make 0
let new_session_id () = Printf.sprintf "s%d" (1 + Atomic.fetch_and_add session_seq 1)

let ints arr = Json.Arr (Array.to_list (Array.map Json.int arr))

(* Run one query under its own request context and record its telemetry;
   [run] produces the store outcome (a plain [Store.query], a pinned
   batch item, or the router's merged fan-out).  Shared by the
   single-query path, every batch item and the shard router, so all
   three produce identical error codes and access-log records. *)
let run_query ?trace ~telemetry ~session_id ~request_id ~dataset_key ~shards
    ~elapsed_ms (q : Protocol.query) run =
  (* A trace envelope binds the request into the caller's distributed
     trace: spans minted here carry its trace id and hang from the
     caller's span (the cross-process edge), and span capture turns on
     so the worker can hand its span dump back.  Without an envelope
     nothing changes — ids stay empty and the wire bytes are identical. *)
  let trace_id, parent_span =
    match trace with
    | Some t -> (t.Protocol.trace_id, t.Protocol.parent_span)
    | None -> ("", "")
  in
  let ctx =
    Obs.Ctx.create ~request_id ~session_id
      ~capture_spans:(Telemetry.capture_spans telemetry || trace_id <> "")
      ~trace_id ~parent_span ()
  in
  let cache_outcome = ref "miss" in
  let degraded = ref false in
  let cost = ref [] in
  let outcome =
    Obs.Ctx.with_ctx ctx (fun () ->
        match
          Obs.Span.with_ "serve.query"
            ~attrs:
              [
                ("algo", Protocol.algo_to_string q.Protocol.algo);
                ("dataset", dataset_key);
              ]
            run
        with
        | Ok { Store.result; cached; cost = c } ->
            cost := c;
            (if cached then cache_outcome := "hit"
             else if Obs.Ctx.value ctx "rrms_serve_matrix_derived_total" > 0.
             then cache_outcome := "derived");
            (match Json.member "degraded" result with
            | Some (Json.Bool true) -> degraded := true
            | _ -> ());
            Ok (result, cached)
        | Error `Unknown_dataset ->
            Error
              ( "unknown_dataset",
                Printf.sprintf
                  "no loaded dataset %S (load it first, then query by key or \
                   name)"
                  q.Protocol.dataset )
        | Error `Overloaded ->
            Error
              ( "overloaded",
                "admission queue is full; the request was shed — retry later"
              )
        | Error `Deadline_exceeded ->
            Error
              ( "deadline_exceeded",
                "the request's deadline expired before the solver started \
                 (admission queue wait counts against the timeout) — raise \
                 the timeout or retry when the server is less loaded" )
        | Error `Draining ->
            Error
              ( "draining",
                "the server is draining for shutdown and admits no new \
                 solves — retry against the restarted instance" )
        | exception (Stdlib.Exit | Sys.Break) -> Error ("internal", "interrupted")
        | exception exn -> (
            match Protocol.error_of_exn exn with
            | Some e -> Error e
            | None -> Error ("internal", Printexc.to_string exn)))
  in
  let status =
    match outcome with
    | Error _ -> "error"
    | Ok _ -> if !degraded then "degraded" else "ok"
  in
  let merge_path =
    match List.assoc_opt "merge" !cost with
    | Some (Json.Str s) -> s
    | _ -> ""
  in
  Telemetry.record telemetry
    {
      Telemetry.request_id;
      session_id;
      algo = Protocol.algo_to_string q.Protocol.algo;
      dataset = dataset_key;
      r = q.Protocol.r;
      gamma = q.Protocol.gamma;
      cache = !cache_outcome;
      status;
      error_code =
        (match outcome with Error (code, _) -> Some code | Ok _ -> None);
      queue_wait_ms =
        1000. *. Obs.Ctx.value ctx "rrms_serve_queue_wait_seconds_total";
      elapsed_ms = elapsed_ms ();
      probes = Obs.Ctx.value ctx "rrms_hd_rrms_probes_total";
      cells = Obs.Ctx.value ctx "rrms_matrix_cells_total";
      shards;
      merge = merge_path;
    }
    ~spans:(Obs.Ctx.spans ctx);
  match outcome with
  | Error _ as e -> e
  | Ok (result, cached) ->
      let cost_echo =
        if q.Protocol.explain then Some (Json.Obj !cost) else None
      in
      Ok (result, cached, cost_echo)

(* One request line → one response.  [session] collects the dataset
   references this connection holds, for teardown.  Total: every
   exception — structured guard errors, solver [Invalid_argument]s,
   injected worker faults — becomes an error response. *)
let dispatch ~telemetry ~session_id ~reqno store session line =
  let t0 = Unix.gettimeofday () in
  let { Protocol.id; req; trace } = Protocol.parse_request line in
  Obs.Counter.incr Metrics.requests;
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
  let ok ?(cached = false) ?cost result =
    `Reply
      (Protocol.ok_response ?cost ~id ~cached ~elapsed_ms:(elapsed_ms ())
         result)
  in
  let error_code = ref None in
  let error code message =
    Obs.Counter.incr Metrics.errors;
    error_code := Some code;
    `Reply (Protocol.error_response ~id ~code ~message)
  in
  let safe f =
    try f () with
    | Stdlib.Exit | Sys.Break -> error "internal" "interrupted"
    | exn -> (
        match Protocol.error_of_exn exn with
        | Some (code, message) -> error code message
        | None -> error "internal" (Printexc.to_string exn))
  in
  let reply =
    match req with
    | Error (code, message) -> error code message
    | Ok (Protocol.Load { path; name; normalize; lenient; shard }) ->
        safe (fun () ->
            let l = Store.load store ?name ~normalize ~lenient ?shard path in
            session := l.Store.key :: !session;
            ok
              (Json.Obj
                 [
                   ("key", Json.Str l.Store.key);
                   ("name", Json.Str l.Store.dataset_name);
                   ("n", Json.int l.Store.n);
                   ("m", Json.int l.Store.m);
                   ("refs", Json.int l.Store.refs);
                   ("already_loaded", Json.Bool l.Store.already_loaded);
                   ("warnings", Json.int l.Store.warnings);
                 ]))
    | Ok (Protocol.Query q) ->
        (* The whole query — result-cache probe, admission wait, solver,
           pool chunks — runs under one request context; every counter
           delta and span lands there as well as in the global
           registry, giving the access log its per-request cost
           attribution. *)
        incr reqno;
        let request_id = Printf.sprintf "%s-r%d" session_id !reqno in
        let dataset_key =
          match Store.resolve store q.Protocol.dataset with
          | Some key -> key
          | None -> q.Protocol.dataset
        in
        (match
           run_query ?trace ~telemetry ~session_id ~request_id ~dataset_key
             ~shards:0 ~elapsed_ms q (fun () -> Store.query store q)
         with
        | Ok (result, cached, cost) -> ok ~cached ?cost result
        | Error (code, message) -> error code message)
    | Ok (Protocol.Batch { dataset; items }) ->
        (* One resolve, many items: the dataset is pinned once and every
           item runs against the pinned handle; items answer in order,
           each with its own [ok]/[error] status, its own request
           context ("s1-r2.0", "s1-r2.1", …) and its own access-log
           line, so a failed item never hides or aborts the others. *)
        incr reqno;
        let base_id = Printf.sprintf "%s-r%d" session_id !reqno in
        Obs.Counter.incr Metrics.batch_requests;
        Obs.Counter.add Metrics.batch_items (Array.length items);
        safe (fun () ->
            match Store.pin store dataset with
            | None ->
                error "unknown_dataset"
                  (Printf.sprintf
                     "no loaded dataset %S (load it first, then query by key \
                      or name)"
                     dataset)
            | Some h ->
                Fun.protect
                  ~finally:(fun () -> Store.unpin store h)
                  (fun () ->
                    let key = Store.pinned_key h in
                    let item_error code message =
                      Json.Obj
                        [
                          ("ok", Json.Bool false);
                          ( "error",
                            Json.Obj
                              [
                                ("code", Json.Str code);
                                ("message", Json.Str message);
                              ] );
                        ]
                    in
                    let results =
                      Array.to_list
                        (Array.mapi
                           (fun i item ->
                             match item with
                             | Error (code, message) -> item_error code message
                             | Ok q -> (
                                 let t0i = Unix.gettimeofday () in
                                 let item_ms () =
                                   (Unix.gettimeofday () -. t0i) *. 1000.
                                 in
                                 match
                                   run_query ?trace ~telemetry ~session_id
                                     ~request_id:
                                       (Printf.sprintf "%s.%d" base_id i)
                                     ~dataset_key:key ~shards:0
                                     ~elapsed_ms:item_ms q (fun () ->
                                       Store.query_pinned store h q)
                                 with
                                 | Ok (result, cached, cost) ->
                                     Json.Obj
                                       ([
                                          ("ok", Json.Bool true);
                                          ("cached", Json.Bool cached);
                                          ("result", result);
                                        ]
                                       @
                                       match cost with
                                       | Some c -> [ ("cost", c) ]
                                       | None -> [])
                                 | Error (code, message) ->
                                     item_error code message))
                           items)
                    in
                    ok
                      (Json.Obj
                         [
                           ("dataset", Json.Str key);
                           ("count", Json.int (List.length results));
                           ("results", Json.Arr results);
                         ])))
    | Ok (Protocol.Mutate { dataset; ops; timeout }) ->
        (* Mutations follow the query discipline: one request context,
           admission-gated inside the store, end-to-end deadline, one
           access-log line (algo = "mutate"). *)
        incr reqno;
        let request_id = Printf.sprintf "%s-r%d" session_id !reqno in
        let dataset_key =
          match Store.resolve store dataset with
          | Some key -> key
          | None -> dataset
        in
        (match
           Mutate.run ?trace ~telemetry ~session_id ~request_id ~dataset_key
             ~elapsed_ms ~timeout store ~dataset ops
         with
        | Ok result -> ok result
        | Error (code, message) -> error code message)
    | Ok (Protocol.Skyline { dataset; timeout }) ->
        (* The per-shard half of the router fan-out: compute (or fetch)
           the dataset's skyline artifact under admission, honouring the
           forwarded remaining deadline.  With a trace envelope, the
           work runs under a context bound to the originating trace and
           the reply carries this worker's span dump, so the router can
           splice it into one merged cluster trace. *)
        safe (fun () ->
            let budget =
              match timeout with
              | None -> Guard.Budget.unlimited
              | Some t -> Guard.Budget.create ~timeout:t ()
            in
            let ctx =
              match trace with
              | Some t ->
                  incr reqno;
                  Some
                    (Obs.Ctx.create
                       ~request_id:
                         (if t.Protocol.origin_request <> "" then
                            t.Protocol.origin_request
                          else Printf.sprintf "%s-r%d" session_id !reqno)
                       ~session_id ~capture_spans:true
                       ~trace_id:t.Protocol.trace_id
                       ~parent_span:t.Protocol.parent_span ())
              | None -> None
            in
            match Store.pin store dataset with
            | None ->
                error "unknown_dataset"
                  (Printf.sprintf "no loaded dataset %S" dataset)
            | Some h ->
                Fun.protect
                  ~finally:(fun () -> Store.unpin store h)
                  (fun () ->
                    let outcome =
                      Obs.Ctx.scoped ctx (fun () ->
                          Obs.Span.with_ "serve.skyline"
                            ~attrs:[ ("dataset", dataset) ] (fun () ->
                              Store.with_admission store (fun () ->
                                  match
                                    Guard.Budget.deadline_expired budget
                                  with
                                  | Some _ -> `Deadline
                                  | None -> `Sky (Store.skyline_of store h))))
                    in
                    match outcome with
                    | Error `Overloaded ->
                        error "overloaded"
                          "admission queue is full; the request was shed — \
                           retry later"
                    | Ok `Deadline ->
                        error "deadline_exceeded"
                          "the request's deadline expired before the skyline \
                           computation started"
                    | Ok (`Sky sky) ->
                        let n, m = Store.pinned_dims h in
                        let span_dump =
                          match ctx with
                          | None -> []
                          | Some c ->
                              [
                                ( "spans",
                                  Json.Arr
                                    (List.map Telemetry.span_json
                                       (Obs.Ctx.spans c)) );
                              ]
                        in
                        ok
                          (Json.Obj
                             ([
                                ("key", Json.Str (Store.pinned_key h));
                                ("n", Json.int n);
                                ("m", Json.int m);
                                ("size", Json.int (Array.length sky));
                                ("indices", ints sky);
                              ]
                             @ span_dump))))
    | Ok (Protocol.Evict { dataset }) ->
        safe (fun () ->
            match Store.release store dataset with
            | Store.Not_loaded ->
                error "unknown_dataset"
                  (Printf.sprintf "no loaded dataset %S" dataset)
            | Store.Released { key; remaining; freed } ->
                session := remove_one key !session;
                ok
                  (Json.Obj
                     [
                       ("key", Json.Str key);
                       ("remaining_refs", Json.int remaining);
                       ("freed", Json.Bool freed);
                     ]))
    | Ok Protocol.Stats ->
        safe (fun () ->
            (* Restart count travels via the environment: the supervisor
               parent sets RRMS_SERVE_RESTARTS before each fork, so the
               serving child can report its own incarnation number. *)
            let restarts =
              match Sys.getenv_opt "RRMS_SERVE_RESTARTS" with
              | Some s -> Option.value ~default:0 (int_of_string_opt s)
              | None -> 0
            in
            match Store.stats store with
            | Json.Obj fields ->
                ok
                  (Json.Obj
                     (fields
                     @ [
                         ("latency", Telemetry.to_json telemetry);
                         ( "supervisor",
                           Json.Obj [ ("restarts", Json.int restarts) ] );
                       ]))
            | j -> ok j)
    | Ok Protocol.Metrics ->
        (* The raw, mergeable half of cluster observability: the global
           counter snapshot plus the latency histograms as raw bucket
           counts (seconds).  A router fans this out and merges the
           exports — counters sum, histograms merge associatively — so
           [stats] against a router reports cluster-wide quantiles. *)
        safe (fun () ->
            ok
              (Json.Obj
                 [
                   ( "metrics",
                     Json.Obj
                       (List.map
                          (fun (name, v) -> (name, Json.float v))
                          (Obs.snapshot ())) );
                   ("latency_raw", Telemetry.export_json telemetry);
                 ]))
    | Ok Protocol.Ping -> ok (Json.Obj [ ("pong", Json.Bool true) ])
    | Ok Protocol.Shutdown ->
        `Shutdown
          (Protocol.ok_response ~id ~cached:false ~elapsed_ms:(elapsed_ms ())
             (Json.Obj [ ("stopping", Json.Bool true) ]))
  in
  Obs.Timer.observe Metrics.request_seconds (Unix.gettimeofday () -. t0);
  reply

let handle_line ?(telemetry = Telemetry.default) store line =
  dispatch ~telemetry ~session_id:(new_session_id ()) ~reqno:(ref 0) store
    (ref []) line

(* A transport-agnostic session: the line pump and the socket daemon
   below work for any per-connection handler, so the shard router (a
   protocol speaker that is not a plain store) reuses them verbatim.
   [handler] is invoked once per connection and returns that session's
   line/close callbacks. *)
type session_handler = {
  on_line : string -> [ `Reply of string | `Shutdown of string ];
  on_close : unit -> unit;
}

type handler = unit -> session_handler

let store_handler ?(telemetry = Telemetry.default) store () =
  let session = ref [] in
  let session_id = new_session_id () in
  let reqno = ref 0 in
  {
    on_line =
      (fun line -> dispatch ~telemetry ~session_id ~reqno store session line);
    on_close = (fun () -> Store.session_release_all store !session);
  }

let run_handler_session (h : handler) ic oc =
  let s = h () in
  let finish outcome =
    s.on_close ();
    outcome
  in
  let send str =
    try
      output_string oc str;
      output_char oc '\n';
      flush oc;
      true
    with Sys_error _ -> false
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> finish `Eof
    | exception Sys_error _ -> finish `Eof
    | line ->
        if String.trim line = "" then loop ()
        else (
          match s.on_line line with
          | `Reply r -> if send r then loop () else finish `Eof
          | `Shutdown r ->
              ignore (send r);
              finish `Shutdown)
  in
  loop ()

let run_session ?telemetry store ic oc =
  run_handler_session (store_handler ?telemetry store) ic oc

let serve_stdio ?telemetry store = run_session ?telemetry store stdin stdout

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket daemon                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  (* Connected session sockets, so a drain can EOF them after their
     in-flight work settles — that is what unblocks each session
     thread's [input_line] and runs its reference teardown. *)
  sessions_lock : Mutex.t;
  mutable session_fds : Unix.file_descr list;
}

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try Unix.close t.listener with Unix.Unix_error _ -> ()

(* A pre-existing socket file is either a live server (connect
   succeeds → refuse to double-bind) or a leftover from a crashed one
   (connection refused → unlink and take over). *)
let probe_stale path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      Guard.Error.invalid_input
        (Printf.sprintf "socket %s is already being served" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let start_handler (h : handler) ~socket:path =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  probe_stale path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX path);
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      path;
      listener;
      stopping = Atomic.make false;
      accept_thread = None;
      sessions_lock = Mutex.create ();
      session_fds = [];
    }
  in
  let with_sessions f =
    Mutex.lock t.sessions_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_lock) f
  in
  let session fd =
    with_sessions (fun () -> t.session_fds <- fd :: t.session_fds);
    Obs.Counter.incr Metrics.sessions;
    Obs.Gauge.set Metrics.open_sessions
      (Obs.Gauge.value Metrics.open_sessions +. 1.);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let outcome = try run_handler_session h ic oc with _ -> `Eof in
    (* ic and oc share [fd]; one close releases it. *)
    close_out_noerr oc;
    with_sessions (fun () ->
        t.session_fds <- List.filter (fun fd' -> fd' != fd) t.session_fds);
    Obs.Gauge.set Metrics.open_sessions
      (Obs.Gauge.value Metrics.open_sessions -. 1.);
    match outcome with `Shutdown -> stop t | `Eof -> ()
  in
  (* Poll-accept so [stop] (from another thread, possibly a session
     answering [shutdown]) reliably unblocks the loop on every OS. *)
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept listener with
          | fd, _ ->
              ignore (Thread.create session fd);
              accept_loop ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
              accept_loop ()
          | exception Unix.Unix_error (_, _, _) ->
              if not (Atomic.get t.stopping) then accept_loop ())
      | exception Unix.Unix_error (_, _, _) ->
          if not (Atomic.get t.stopping) then accept_loop ()
    end
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let start ?telemetry store ~socket =
  start_handler (store_handler ?telemetry store) ~socket

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  try Sys.remove t.path with Sys_error _ -> ()

(* Graceful drain: refuse new solves, stop accepting connections, let
   the in-flight requests settle inside their own budgets, then EOF the
   connected sessions so each one runs its normal teardown (releasing
   its dataset references) and the process can exit cleanly.  Sessions
   that never go idle are cut off when [grace] runs out — their solves
   were already running under cooperative budgets, and the refusal path
   answered everything newly arrived. *)
let drain ?(grace = 5.) t store =
  Store.set_draining store;
  stop t;
  let deadline = Unix.gettimeofday () +. grace in
  let rec settle () =
    let inflight, queued = Store.admission_state store in
    if (inflight > 0 || queued > 0) && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      settle ()
    end
  in
  settle ();
  (* One beat for the just-finished solves' responses to flush before
     the read side of every session is shut. *)
  Thread.delay 0.05;
  let fds =
    Mutex.lock t.sessions_lock;
    let fds = t.session_fds in
    Mutex.unlock t.sessions_lock;
    fds
  in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    fds
