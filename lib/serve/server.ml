module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs

module Metrics = struct
  let requests =
    Obs.Counter.make ~help:"requests handled by the serving layer"
      "rrms_serve_requests_total"

  let errors =
    Obs.Counter.make ~help:"requests answered with an error response"
      "rrms_serve_errors_total"

  let sessions =
    Obs.Counter.make ~deterministic:false
      ~help:"client sessions accepted (socket transport)"
      "rrms_serve_sessions_total"

  let open_sessions =
    Obs.Gauge.make ~deterministic:false ~help:"sessions currently connected"
      "rrms_serve_open_sessions"

  let request_seconds =
    Obs.Timer.make ~help:"request handling latency" "rrms_serve_request_seconds"
end

(* Remove the first occurrence only: a session that loaded the same
   content twice holds two references and must drop both at teardown. *)
let rec remove_one key = function
  | [] -> []
  | k :: rest when k = key -> rest
  | k :: rest -> k :: remove_one key rest

(* Session identities are process-global ("s1", "s2", …); request ids
   append a per-session sequence number ("s2-r7").  Both ride on every
   span executed on the request's behalf — including pool-worker spans
   — and key the access log, which is what makes concurrent sessions'
   telemetry separable again. *)
let session_seq = Atomic.make 0
let new_session_id () = Printf.sprintf "s%d" (1 + Atomic.fetch_and_add session_seq 1)

(* One request line → one response.  [session] collects the dataset
   references this connection holds, for teardown.  Total: every
   exception — structured guard errors, solver [Invalid_argument]s,
   injected worker faults — becomes an error response. *)
let dispatch ~telemetry ~session_id ~reqno store session line =
  let t0 = Unix.gettimeofday () in
  let { Protocol.id; req } = Protocol.parse_request line in
  Obs.Counter.incr Metrics.requests;
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
  let ok ?(cached = false) result =
    `Reply (Protocol.ok_response ~id ~cached ~elapsed_ms:(elapsed_ms ()) result)
  in
  let error_code = ref None in
  let error code message =
    Obs.Counter.incr Metrics.errors;
    error_code := Some code;
    `Reply (Protocol.error_response ~id ~code ~message)
  in
  let safe f =
    try f () with
    | Guard.Error.Guard_error err ->
        error (Protocol.error_code_of_guard err) (Guard.Error.to_string err)
    | Invalid_argument msg | Failure msg -> error "invalid_input" msg
    | Rrms_parallel.Fault.Injected w ->
        error "internal" (Printf.sprintf "injected fault in worker %d" w)
    | Stdlib.Exit | Sys.Break -> error "internal" "interrupted"
    | exn -> error "internal" (Printexc.to_string exn)
  in
  let reply =
    match req with
    | Error (code, message) -> error code message
    | Ok (Protocol.Load { path; name; normalize; lenient }) ->
        safe (fun () ->
            let l = Store.load store ?name ~normalize ~lenient path in
            session := l.Store.key :: !session;
            ok
              (Json.Obj
                 [
                   ("key", Json.Str l.Store.key);
                   ("name", Json.Str l.Store.dataset_name);
                   ("n", Json.int l.Store.n);
                   ("m", Json.int l.Store.m);
                   ("refs", Json.int l.Store.refs);
                   ("already_loaded", Json.Bool l.Store.already_loaded);
                   ("warnings", Json.int l.Store.warnings);
                 ]))
    | Ok (Protocol.Query q) ->
        (* The whole query — result-cache probe, admission wait, solver,
           pool chunks — runs under one request context; every counter
           delta and span lands there as well as in the global
           registry, giving the access log its per-request cost
           attribution. *)
        incr reqno;
        let request_id = Printf.sprintf "%s-r%d" session_id !reqno in
        let ctx =
          Obs.Ctx.create ~request_id ~session_id
            ~capture_spans:(Telemetry.capture_spans telemetry)
            ()
        in
        let cache_outcome = ref "miss" in
        let degraded = ref false in
        let reply =
          Obs.Ctx.with_ctx ctx (fun () ->
              safe (fun () ->
                  match Store.query store q with
                  | Ok { Store.result; cached } ->
                      (if cached then cache_outcome := "hit"
                       else if
                         Obs.Ctx.value ctx "rrms_serve_matrix_derived_total"
                         > 0.
                       then cache_outcome := "derived");
                      (match Json.member "degraded" result with
                      | Some (Json.Bool true) -> degraded := true
                      | _ -> ());
                      ok ~cached result
                  | Error `Unknown_dataset ->
                      error "unknown_dataset"
                        (Printf.sprintf
                           "no loaded dataset %S (load it first, then query \
                            by key or name)"
                           q.Protocol.dataset)
                  | Error `Overloaded ->
                      error "overloaded"
                        "admission queue is full; the request was shed — \
                         retry later"
                  | Error `Deadline_exceeded ->
                      error "deadline_exceeded"
                        "the request's deadline expired before the solver \
                         started (admission queue wait counts against the \
                         timeout) — raise the timeout or retry when the \
                         server is less loaded"
                  | Error `Draining ->
                      error "draining"
                        "the server is draining for shutdown and admits no \
                         new solves — retry against the restarted instance"))
        in
        let status =
          match !error_code with
          | Some _ -> "error"
          | None -> if !degraded then "degraded" else "ok"
        in
        Telemetry.record telemetry
          {
            Telemetry.request_id;
            session_id;
            algo = Protocol.algo_to_string q.Protocol.algo;
            dataset =
              (match Store.resolve store q.Protocol.dataset with
              | Some key -> key
              | None -> q.Protocol.dataset);
            r = q.Protocol.r;
            gamma = q.Protocol.gamma;
            cache = !cache_outcome;
            status;
            error_code = !error_code;
            queue_wait_ms =
              1000. *. Obs.Ctx.value ctx "rrms_serve_queue_wait_seconds_total";
            elapsed_ms = elapsed_ms ();
            probes = Obs.Ctx.value ctx "rrms_hd_rrms_probes_total";
            cells = Obs.Ctx.value ctx "rrms_matrix_cells_total";
          }
          ~spans:(Obs.Ctx.spans ctx);
        reply
    | Ok (Protocol.Evict { dataset }) ->
        safe (fun () ->
            match Store.release store dataset with
            | Store.Not_loaded ->
                error "unknown_dataset"
                  (Printf.sprintf "no loaded dataset %S" dataset)
            | Store.Released { key; remaining; freed } ->
                session := remove_one key !session;
                ok
                  (Json.Obj
                     [
                       ("key", Json.Str key);
                       ("remaining_refs", Json.int remaining);
                       ("freed", Json.Bool freed);
                     ]))
    | Ok Protocol.Stats ->
        safe (fun () ->
            (* Restart count travels via the environment: the supervisor
               parent sets RRMS_SERVE_RESTARTS before each fork, so the
               serving child can report its own incarnation number. *)
            let restarts =
              match Sys.getenv_opt "RRMS_SERVE_RESTARTS" with
              | Some s -> Option.value ~default:0 (int_of_string_opt s)
              | None -> 0
            in
            match Store.stats store with
            | Json.Obj fields ->
                ok
                  (Json.Obj
                     (fields
                     @ [
                         ("latency", Telemetry.to_json telemetry);
                         ( "supervisor",
                           Json.Obj [ ("restarts", Json.int restarts) ] );
                       ]))
            | j -> ok j)
    | Ok Protocol.Ping -> ok (Json.Obj [ ("pong", Json.Bool true) ])
    | Ok Protocol.Shutdown ->
        `Shutdown
          (Protocol.ok_response ~id ~cached:false ~elapsed_ms:(elapsed_ms ())
             (Json.Obj [ ("stopping", Json.Bool true) ]))
  in
  Obs.Timer.observe Metrics.request_seconds (Unix.gettimeofday () -. t0);
  reply

let handle_line ?(telemetry = Telemetry.default) store line =
  dispatch ~telemetry ~session_id:(new_session_id ()) ~reqno:(ref 0) store
    (ref []) line

let run_session ?(telemetry = Telemetry.default) store ic oc =
  let session = ref [] in
  let session_id = new_session_id () in
  let reqno = ref 0 in
  let finish outcome =
    Store.session_release_all store !session;
    outcome
  in
  let send s =
    try
      output_string oc s;
      output_char oc '\n';
      flush oc;
      true
    with Sys_error _ -> false
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> finish `Eof
    | exception Sys_error _ -> finish `Eof
    | line ->
        if String.trim line = "" then loop ()
        else (
          match dispatch ~telemetry ~session_id ~reqno store session line with
          | `Reply r -> if send r then loop () else finish `Eof
          | `Shutdown r ->
              ignore (send r);
              finish `Shutdown)
  in
  loop ()

let serve_stdio ?telemetry store = run_session ?telemetry store stdin stdout

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket daemon                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  (* Connected session sockets, so a drain can EOF them after their
     in-flight work settles — that is what unblocks each session
     thread's [input_line] and runs its reference teardown. *)
  sessions_lock : Mutex.t;
  mutable session_fds : Unix.file_descr list;
}

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try Unix.close t.listener with Unix.Unix_error _ -> ()

(* A pre-existing socket file is either a live server (connect
   succeeds → refuse to double-bind) or a leftover from a crashed one
   (connection refused → unlink and take over). *)
let probe_stale path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      Guard.Error.invalid_input
        (Printf.sprintf "socket %s is already being served" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let start ?telemetry store ~socket:path =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  probe_stale path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX path);
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      path;
      listener;
      stopping = Atomic.make false;
      accept_thread = None;
      sessions_lock = Mutex.create ();
      session_fds = [];
    }
  in
  let with_sessions f =
    Mutex.lock t.sessions_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_lock) f
  in
  let session fd =
    with_sessions (fun () -> t.session_fds <- fd :: t.session_fds);
    Obs.Counter.incr Metrics.sessions;
    Obs.Gauge.set Metrics.open_sessions
      (Obs.Gauge.value Metrics.open_sessions +. 1.);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let outcome = try run_session ?telemetry store ic oc with _ -> `Eof in
    (* ic and oc share [fd]; one close releases it. *)
    close_out_noerr oc;
    with_sessions (fun () ->
        t.session_fds <- List.filter (fun fd' -> fd' != fd) t.session_fds);
    Obs.Gauge.set Metrics.open_sessions
      (Obs.Gauge.value Metrics.open_sessions -. 1.);
    match outcome with `Shutdown -> stop t | `Eof -> ()
  in
  (* Poll-accept so [stop] (from another thread, possibly a session
     answering [shutdown]) reliably unblocks the loop on every OS. *)
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept listener with
          | fd, _ ->
              ignore (Thread.create session fd);
              accept_loop ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
              accept_loop ()
          | exception Unix.Unix_error (_, _, _) ->
              if not (Atomic.get t.stopping) then accept_loop ())
      | exception Unix.Unix_error (_, _, _) ->
          if not (Atomic.get t.stopping) then accept_loop ()
    end
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  try Sys.remove t.path with Sys_error _ -> ()

(* Graceful drain: refuse new solves, stop accepting connections, let
   the in-flight requests settle inside their own budgets, then EOF the
   connected sessions so each one runs its normal teardown (releasing
   its dataset references) and the process can exit cleanly.  Sessions
   that never go idle are cut off when [grace] runs out — their solves
   were already running under cooperative budgets, and the refusal path
   answered everything newly arrived. *)
let drain ?(grace = 5.) t store =
  Store.set_draining store;
  stop t;
  let deadline = Unix.gettimeofday () +. grace in
  let rec settle () =
    let inflight, queued = Store.admission_state store in
    if (inflight > 0 || queued > 0) && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      settle ()
    end
  in
  settle ();
  (* One beat for the just-finished solves' responses to flush before
     the read side of every session is shut. *)
  Thread.delay 0.05;
  let fds =
    Mutex.lock t.sessions_lock;
    let fds = t.session_fds in
    Mutex.unlock t.sessions_lock;
    fds
  in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    fds
