(** Minimal JSON for the wire protocol of [rrms.serve].

    The serving layer is zero-new-dependency by design (ROADMAP:
    nothing beyond the toolchain), so this is a small, complete
    JSON implementation: a recursive-descent parser for one request
    line and a deterministic printer for the response line.

    Determinism matters more than prettiness here: the result cache
    stores {!t} values and the protocol tests assert that a cache hit
    serializes {e bit-identically} to the cold solve that populated it.
    The printer therefore emits object fields in construction order,
    escapes strings canonically, and prints floats with ["%.17g"]
    (round-trip exact) — integral values within [2^53] are printed
    without a decimal point so counters read naturally. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing garbage after the document, and
    any syntax error, yield [Error message]; the parser accepts the
    full JSON grammar (nesting, escapes, [\uXXXX], exponents) but — by
    design for a line-delimited protocol — no literal newlines inside
    strings (they cannot appear in one line anyway). *)

val to_string : t -> string
(** Deterministic single-line serialization (see preamble).  Non-finite
    numbers (which valid requests cannot produce, but a defensive
    printer must handle) are emitted as [null]. *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val str : t -> string option
val num : t -> float option

val int_ : t -> int option
(** [Num v] when [v] is integral and fits an [int]. *)

val bool_ : t -> bool option

(** {2 Constructors} *)

val int : int -> t
val float : float -> t
