(** Serve-protocol front-end of the mutation subsystem
    (docs/DYNAMIC.md).

    Translates the wire-level {!Protocol.mutation_op}s into
    {!Rrms_core.Delta.mutation}s, runs {!Store.mutate} under a request
    context with the same telemetry/error-code discipline as the query
    path, and drives write-ahead-log replay at startup. *)

val ops_of_protocol :
  Protocol.mutation_op array -> Rrms_core.Delta.mutation list

val summary_json : Store.mutated -> Json.t
(** The deterministic [result] member of a successful mutation
    response: new/old content key, generation, row count, the skyline
    maintenance path taken, and the artifact/cache carry-over tallies. *)

val run :
  ?trace:Protocol.trace ->
  telemetry:Telemetry.t ->
  session_id:string ->
  request_id:string ->
  dataset_key:string ->
  elapsed_ms:(unit -> float) ->
  timeout:float option ->
  Store.t ->
  dataset:string ->
  Protocol.mutation_op array ->
  (Json.t, string * string) result
(** Execute one mutation request.  Total: every failure — unknown
    dataset, shedding, deadline, malformed batch, solver guard error —
    becomes the documented [(code, message)] pair.  Records an
    access-log line with [algo = "mutate"] and [r] = op count; with a
    [trace] envelope the work runs under a ["serve.mutate"] span bound
    to the originating trace, and the access record carries the
    skyline maintenance path as its [merge] field. *)

type replayed = {
  records : int;  (** valid WAL records scanned *)
  applied : int;  (** records replayed to the expected content hash *)
  skipped : int;
      (** records dropped: base dataset not rehydratable, replay
          failure, or a post-replay content hash that contradicts the
          journaled one (integrity stop) *)
}

val replay : Store.t -> Persist.t -> replayed
(** Replay the directory's write-ahead delta log into the store —
    called by [rrms-serve] after opening a [--state-dir], before
    serving.  For each record the base dataset is resolved (resident,
    or rehydrated from its blob); the mutation is re-applied with
    [journal:false]; and the resulting content hash must equal the
    journaled [new_key] — bit-identity of the rehydrated state is
    checked, not assumed.  Never raises. *)
