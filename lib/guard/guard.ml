module Obs = Rrms_obs.Obs

module Metrics = struct
  let probes =
    Obs.Counter.make
      ~help:"budgeted probe boundaries crossed (MRST probes, greedy steps)"
      "rrms_guard_probes_total"

  (* Deadline stops depend on wall-clock time, so stop counts are not
     reproducible across runs. *)
  let stops =
    Obs.Counter.make ~deterministic:false
      ~help:"budget stop decisions (deadline or probe cap)"
      "rrms_guard_stops_total"

  let errors =
    Obs.Counter.make ~deterministic:false
      ~help:"structured guard errors raised" "rrms_guard_errors_total"
end

module Error = struct
  type t =
    | Invalid_input of {
        what : string;
        line : int option;
        column : string option;
      }
    | Timeout of { elapsed : float; limit : float }
    | Resource_limit of { what : string; requested : int; limit : int }
    | Numerical of { what : string }

  exception Guard_error of t

  let to_string = function
    | Invalid_input { what; line; column } ->
        let where =
          match (line, column) with
          | Some l, Some c -> Printf.sprintf " (line %d, column %s)" l c
          | Some l, None -> Printf.sprintf " (line %d)" l
          | None, Some c -> Printf.sprintf " (column %s)" c
          | None, None -> ""
        in
        Printf.sprintf "invalid input: %s%s" what where
    | Timeout { elapsed; limit } ->
        Printf.sprintf "timeout: %.3fs elapsed, limit %.3fs" elapsed limit
    | Resource_limit { what; requested; limit } ->
        Printf.sprintf "resource limit: %s needs %d, limit %d" what requested
          limit
    | Numerical { what } -> Printf.sprintf "numerical error: %s" what

  let exit_code = function
    | Invalid_input _ -> 65 (* EX_DATAERR *)
    | Timeout _ -> 75 (* EX_TEMPFAIL *)
    | Resource_limit _ -> 69 (* EX_UNAVAILABLE *)
    | Numerical _ -> 70 (* EX_SOFTWARE *)

  let raise_error e =
    Obs.Counter.incr Metrics.errors;
    raise (Guard_error e)

  let invalid_input ?line ?column what =
    raise_error (Invalid_input { what; line; column })

  let timeout ~elapsed ~limit = raise_error (Timeout { elapsed; limit })

  let resource_limit ~what ~requested ~limit =
    raise_error (Resource_limit { what; requested; limit })

  let numerical what = raise_error (Numerical { what })

  let () =
    Printexc.register_printer (function
      | Guard_error e -> Some ("Guard_error: " ^ to_string e)
      | _ -> None)
end

type reason =
  | Deadline of { elapsed : float; limit : float }
  | Probe_cap of { probes : int; limit : int }
  | Cell_cap of { requested : int; cap : int; gamma_from : int; gamma_to : int }
  | Numerical_skips of int

type quality = Exact | Degraded of reason list

let describe_reason = function
  | Deadline { elapsed; limit } ->
      Printf.sprintf "deadline %.3fs/%.3fs" elapsed limit
  | Probe_cap { probes; limit } -> Printf.sprintf "probe-cap %d/%d" probes limit
  | Cell_cap { requested; cap; gamma_from; gamma_to } ->
      Printf.sprintf "cell-cap %d>%d gamma %d->%d" requested cap gamma_from
        gamma_to
  | Numerical_skips n -> Printf.sprintf "numerical-skips %d" n

let describe = function
  | Exact -> "exact"
  | Degraded reasons ->
      Printf.sprintf "degraded(%s)"
        (String.concat "; " (List.map describe_reason reasons))

let degrade q reason =
  match q with
  | Exact -> Degraded [ reason ]
  | Degraded rs -> Degraded (rs @ [ reason ])

let is_exact = function Exact -> true | Degraded _ -> false

module Budget = struct
  type t = {
    started : float;
    timeout : float option;
    max_cells : int option;
    max_probes : int option;
    probes : int ref;
  }

  let unlimited =
    {
      started = 0.;
      timeout = None;
      max_cells = None;
      max_probes = None;
      probes = ref 0;
    }

  let create ?timeout ?max_cells ?max_probes () =
    {
      started = Unix.gettimeofday ();
      timeout;
      max_cells;
      max_probes;
      probes = ref 0;
    }

  let is_unlimited t =
    t.timeout = None && t.max_cells = None && t.max_probes = None

  let elapsed t =
    if t.timeout = None then 0. else Unix.gettimeofday () -. t.started

  let timeout t = t.timeout
  let max_cells t = t.max_cells

  let remaining t =
    Option.map
      (fun limit -> limit -. (Unix.gettimeofday () -. t.started))
      t.timeout

  let deadline_expired t =
    match t.timeout with
    | None -> None
    | Some limit ->
        let e = Unix.gettimeofday () -. t.started in
        if e >= limit then Some (Deadline { elapsed = e; limit }) else None

  let note_probe t =
    Obs.Counter.incr Metrics.probes;
    incr t.probes

  let probes_used t = !(t.probes)

  let stop_reason t =
    let r =
      match deadline_expired t with
      | Some _ as r -> r
      | None -> (
          match t.max_probes with
          | Some limit when !(t.probes) >= limit ->
              Some (Probe_cap { probes = !(t.probes); limit })
          | Some _ | None -> None)
    in
    if r <> None then Obs.Counter.incr Metrics.stops;
    r

  let check_cells t ~what cells =
    match t.max_cells with
    | Some limit when cells > limit ->
        Error.resource_limit ~what ~requested:cells ~limit
    | Some _ | None -> ()

  let check_deadline_exn t =
    match deadline_expired t with
    | Some (Deadline { elapsed; limit }) -> Error.timeout ~elapsed ~limit
    | Some _ | None -> ()
end
