(** Structured errors, cooperative budgets and anytime-result tags for
    the solver stack.

    The north star is a long-running service: a malformed CSV row, an
    oversized [(γ+1)^(m−1)] regret matrix or a degenerate LP must
    surface as a typed, reportable condition — never as a bare
    [failwith] — and a slow solve must be able to stop at a budget
    boundary and still return a {e certified} answer.  Theorem 4's
    additive form [E ≤ c·ε + (1 − c)] makes that possible: the bound
    holds for whatever discretized regret ε the partial computation
    actually achieved, so "best so far" is still a guaranteed result,
    just a looser one.

    This module is deliberately dependency-free (only [Unix] for the
    wall clock) so every layer — dataset loading, the LP substrate, the
    solvers, the CLI — can share one error vocabulary. *)

module Error : sig
  (** The error classes of the system.  Each maps to a distinct CLI
      exit code (see {!exit_code} and docs/ROBUSTNESS.md). *)
  type t =
    | Invalid_input of {
        what : string;  (** human-readable description *)
        line : int option;  (** 1-based source line (CSV loader) *)
        column : string option;  (** attribute name or index *)
      }  (** malformed or out-of-domain input data *)
    | Timeout of { elapsed : float; limit : float }
        (** a wall-clock deadline expired where no degraded answer was
            possible *)
    | Resource_limit of { what : string; requested : int; limit : int }
        (** an allocation guard refused to proceed (e.g. the regret
            matrix would exceed the cell cap even at γ = 1) *)
    | Numerical of { what : string }
        (** LP unboundedness / degeneracy or other numerical collapse *)

  exception Guard_error of t
  (** The single structured exception of the system.  A printer is
      registered, so an uncaught [Guard_error] still renders readably. *)

  val to_string : t -> string

  val exit_code : t -> int
  (** Stable per-class CLI exit codes (sysexits-flavoured):
      [Invalid_input → 65], [Timeout → 75], [Resource_limit → 69],
      [Numerical → 70].  Exit 3 (degraded success) and cmdliner's 124
      are documented alongside in docs/ROBUSTNESS.md. *)

  val invalid_input : ?line:int -> ?column:string -> string -> 'a
  (** Raise [Guard_error (Invalid_input …)]. *)

  val timeout : elapsed:float -> limit:float -> 'a
  val resource_limit : what:string -> requested:int -> limit:int -> 'a
  val numerical : string -> 'a
end

(** Why a result is weaker than the exact one. *)
type reason =
  | Deadline of { elapsed : float; limit : float }
      (** the wall-clock budget expired; the result is the best answer
          certified before expiry *)
  | Probe_cap of { probes : int; limit : int }
      (** the probe/iteration cap was hit (deterministic degradation,
          used by tests) *)
  | Cell_cap of { requested : int; cap : int; gamma_from : int; gamma_to : int }
      (** γ was auto-shrunk so the matrix fits the cell cap *)
  | Numerical_skips of int
      (** this many per-point LPs were skipped as unbounded/degenerate *)

type quality =
  | Exact  (** the full computation ran to completion *)
  | Degraded of reason list
      (** anytime result: still carries a certified bound, but a budget
          or numerical guard weakened it.  The list is non-empty and in
          occurrence order. *)

val describe_reason : reason -> string

val describe : quality -> string
(** ["exact"] or ["degraded(reason; …)"] — the CLI's [degraded:] line. *)

val degrade : quality -> reason -> quality
(** Append one reason (keeps occurrence order). *)

val is_exact : quality -> bool

module Budget : sig
  (** A cooperative computation budget: a wall-clock deadline, a cap on
      regret-matrix cells, and a cap on solver probes/iterations.  The
      clock starts when the budget is created.  Budgets are checked at
      probe / iteration boundaries only — nothing is interrupted
      mid-kernel, which is what keeps degraded results deterministic
      for a fixed probe count. *)

  type t

  val unlimited : t
  (** No limits; every check passes.  The shared default. *)

  val create : ?timeout:float -> ?max_cells:int -> ?max_probes:int -> unit -> t
  (** [create ()] stamps the start time.  [timeout] is wall-clock
      seconds; [max_cells] bounds [rows × cols] of any regret matrix
      built under this budget; [max_probes] bounds binary-search probes
      (HD-RRMS) or greedy iterations (HD-GREEDY / GREEDY) — the
      deterministic degradation knob. *)

  val is_unlimited : t -> bool
  val elapsed : t -> float
  val timeout : t -> float option
  val max_cells : t -> int option

  val deadline_expired : t -> reason option
  (** [Some (Deadline …)] once the wall clock has passed the timeout. *)

  val remaining : t -> float option
  (** Wall-clock seconds left before the deadline ([None] without one;
      negative once expired).  Lets a service propagate one end-to-end
      deadline across queueing and solve stages instead of granting
      each stage a fresh clock. *)

  val note_probe : t -> unit
  (** Count one probe / iteration against [max_probes]. *)

  val probes_used : t -> int

  val stop_reason : t -> reason option
  (** Deadline first, then probe cap: the reason to stop now, if any. *)

  val check_cells : t -> what:string -> int -> unit
  (** @raise Error.Guard_error [Resource_limit] when the cell count
      exceeds [max_cells]. *)

  val check_deadline_exn : t -> unit
  (** @raise Error.Guard_error [Timeout] on expiry — for call sites
      that have no degraded answer to offer (e.g. dataset loading). *)
end
