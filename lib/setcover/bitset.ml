type t = { width : int; words : int array }

let bits_per_word = 63 (* OCaml native ints *)

let nwords width = (width + bits_per_word - 1) / bits_per_word

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make (max 1 (nwords width)) 0 }

let width t = t.width

let copy t = { width = t.width; words = Array.copy t.words }

let check t i name =
  if i < 0 || i >= t.width then invalid_arg (name ^ ": index out of range")

let set t i =
  check t i "Bitset.set";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i "Bitset.clear";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i "Bitset.mem";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let check_widths a b name =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch")

let union_into s ~into =
  check_widths s into "Bitset.union_into";
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) s.words

let inter_count a b =
  check_widths a b "Bitset.inter_count";
  let acc = ref 0 in
  Array.iteri
    (fun i w -> acc := !acc + popcount (w land b.words.(i)))
    a.words;
  !acc

let diff_count s ~minus =
  check_widths s minus "Bitset.diff_count";
  let acc = ref 0 in
  Array.iteri
    (fun i w -> acc := !acc + popcount (w land lnot minus.words.(i)))
    s.words;
  !acc

let subset s ~of_ =
  check_widths s of_ "Bitset.subset";
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot of_.words.(i) <> 0 then ok := false) s.words;
  !ok

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash t.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

(* A full word has all 63 logical bits set; as a native int that is
   every bit of the representation, i.e. -1 — the same value per-bit
   [set] produces, so word-level and bit-level fills compare equal. *)
let full_word = -1

let check_prefix t n name =
  if n < 0 || n > t.width then invalid_arg (name ^ ": prefix out of range")

let set_range_prefix t n =
  check_prefix t n "Bitset.set_range_prefix";
  let fw = n / bits_per_word and r = n mod bits_per_word in
  for w = 0 to fw - 1 do
    t.words.(w) <- full_word
  done;
  (* (1 lsl r) - 1 sets bits [0, r); the r = 62 case wraps through
     min_int to max_int, which is exactly bits 0..61. *)
  if r > 0 then t.words.(fw) <- t.words.(fw) lor ((1 lsl r) - 1)

let clear_range_prefix t n =
  check_prefix t n "Bitset.clear_range_prefix";
  let fw = n / bits_per_word and r = n mod bits_per_word in
  for w = 0 to fw - 1 do
    t.words.(w) <- 0
  done;
  if r > 0 then t.words.(fw) <- t.words.(fw) land lnot ((1 lsl r) - 1)

let full width =
  let t = create width in
  set_range_prefix t width;
  t

let of_list width elems =
  let t = create width in
  List.iter (fun i -> set t i) elems;
  t
