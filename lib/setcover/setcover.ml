module Obs = Rrms_obs.Obs

module Metrics = struct
  let greedy_calls =
    Obs.Counter.make ~help:"greedy set-cover invocations"
      "rrms_setcover_greedy_calls_total"

  let greedy_iterations =
    Obs.Counter.make
      ~help:"greedy set-cover selection rounds (Chvatal iterations)"
      "rrms_setcover_greedy_iterations_total"

  let exact_branches =
    Obs.Counter.make
      ~help:"branch-and-bound nodes explored by the exact cover solver"
      "rrms_setcover_exact_branches_total"
end

type instance = { universe : int; sets : Bitset.t array }

let make_instance ~universe sets =
  Array.iter
    (fun s ->
      if Bitset.width s <> universe then
        invalid_arg "Setcover.make_instance: set width mismatch")
    sets;
  { universe; sets }

let union_all t =
  let u = Bitset.create t.universe in
  Array.iter (fun s -> Bitset.union_into s ~into:u) t.sets;
  u

let coverable t = Bitset.count (union_all t) = t.universe

let greedy t =
  Obs.Counter.incr Metrics.greedy_calls;
  let covered = Bitset.create t.universe in
  let chosen = ref [] in
  let remaining = ref t.universe in
  let progress = ref true in
  (* |s| is an upper bound on s's gain forever, so a set whose total
     count cannot beat the current best is skipped without touching its
     words; the surviving candidates pay one word-level intersection
     popcount (gain = |s| − |s ∩ covered|) instead of a per-bit loop. *)
  let counts = Array.map Bitset.count t.sets in
  while !remaining > 0 && !progress do
    Obs.Counter.incr Metrics.greedy_iterations;
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun i s ->
        if counts.(i) > !best_gain then begin
          let gain = counts.(i) - Bitset.inter_count s covered in
          if gain > !best_gain then begin
            best := i;
            best_gain := gain
          end
        end)
      t.sets;
    if !best < 0 then progress := false
    else begin
      Bitset.union_into t.sets.(!best) ~into:covered;
      chosen := !best :: !chosen;
      remaining := !remaining - !best_gain
    end
  done;
  if !remaining > 0 then None else Some (Array.of_list (List.rev !chosen))

let exact ?(max_sets = max_int) t =
  if t.universe = 0 then Some [||]
  else begin
    (* Upper bound from greedy (if within max_sets). *)
    let best : int list option ref =
      match greedy t with
      | Some g when Array.length g <= max_sets ->
          ref (Some (Array.to_list g))
      | _ -> ref None
    in
    let best_size () =
      match !best with Some l -> List.length l | None -> max_sets + 1
    in
    (* For each item, the sets containing it (branching candidates). *)
    let containing = Array.make t.universe [] in
    Array.iteri
      (fun i s -> Bitset.iter (fun item -> containing.(item) <- i :: containing.(item)) s)
      t.sets;
    Array.iteri (fun item l -> containing.(item) <- List.rev l) containing;
    (* Max set size, for the ceiling lower bound. *)
    let max_size =
      Array.fold_left (fun acc s -> max acc (Bitset.count s)) 1 t.sets
    in
    let rec first_uncovered covered i =
      if i >= t.universe then None
      else if Bitset.mem covered i then first_uncovered covered (i + 1)
      else Some i
    in
    let rec branch covered chosen depth =
      Obs.Counter.incr Metrics.exact_branches;
      match first_uncovered covered 0 with
      | None -> if depth < best_size () then best := Some chosen
      | Some item ->
          let uncovered = t.universe - Bitset.count covered in
          let lower = (uncovered + max_size - 1) / max_size in
          if depth + lower < best_size () then
            (* Branch over every set that covers the first uncovered
               item: some chosen set must. *)
            List.iter
              (fun i ->
                let covered' = Bitset.copy covered in
                Bitset.union_into t.sets.(i) ~into:covered';
                branch covered' (i :: chosen) (depth + 1))
              containing.(item)
    in
    branch (Bitset.create t.universe) [] 0;
    match !best with
    | Some l -> Some (Array.of_list (List.rev l))
    | None -> None
  end
