(** Fixed-width bitsets over the universe [0, width).

    The MRST oracle (§4.4.1) turns every tuple row of the thresholded
    regret matrix into the set of ranking-function columns it covers;
    with `|F| = (γ+1)^(m-1)` columns these sets are wide but dense, so a
    packed int-array bitset keeps both the dedup step and the greedy
    cover fast. *)

type t

val create : int -> t
(** All-zero bitset of the given width.  @raise Invalid_argument if the
    width is negative. *)

val width : t -> int
val copy : t -> t
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val count : t -> int
(** Number of set bits. *)

val union_into : t -> into:t -> unit
(** [union_into s ~into] sets [into <- into ∪ s]. *)

val inter_count : t -> t -> int
(** [inter_count a b] = |a ∩ b|, one popcount per word, no allocation. *)

val diff_count : t -> minus:t -> int
(** [diff_count s ~minus] = |s \ minus| without allocating. *)

val subset : t -> of_:t -> bool
(** [subset s ~of_:t] is [s ⊆ t]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order usable as a [Map]/[Hashtbl] key (lexicographic on the
    packed words). *)

val hash : t -> int

val iter : (int -> unit) -> t -> unit
(** Iterate set bit positions in increasing order. *)

val elements : t -> int list

val set_range_prefix : t -> int -> unit
(** [set_range_prefix t n] sets bits [0, n) whole words at a time (other
    bits are left untouched).  The MRST prefix slide uses it when a
    threshold admits a row's every column.
    @raise Invalid_argument unless [0 <= n <= width t]. *)

val clear_range_prefix : t -> int -> unit
(** [clear_range_prefix t n] clears bits [0, n) whole words at a time.
    @raise Invalid_argument unless [0 <= n <= width t]. *)

val full : int -> t
(** [full width]: all bits set. *)

val of_list : int -> int list -> t
(** [of_list width elems].  @raise Invalid_argument on out-of-range
    elements. *)
