module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs

module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"GREEDY (LP-based) solves" "rrms_greedy_solves_total"

  let runs =
    Obs.Counter.make ~help:"greedy runs (one per seed tried)"
      "rrms_greedy_runs_total"

  let steps =
    Obs.Counter.make ~help:"greedy selection steps across all runs"
      "rrms_greedy_steps_total"

  let lp_skips =
    Obs.Counter.make
      ~help:"candidate LPs skipped on structured numerical errors"
      "rrms_greedy_lp_skips_total"
end

type seed = First_attribute | Best_singleton | All_seeds

type result = {
  selected : int array;
  regret_lp : float;
  skipped_lps : int;
  quality : Guard.quality;
}

(* One greedy run from a fixed seed tuple.  [skips] counts candidate
   LPs abandoned on a structured Numerical error (unbounded or
   degenerate-stalled simplex); such candidates are simply not eligible
   this step — the selection stays well-defined, just blind to them.
   [stopped] latches the first budget stop across all runs. *)
let run_from ?eps ~guard ~skips ~stopped ~candidates ~points ~r seed_idx =
  Obs.Counter.incr Metrics.runs;
  let n = Array.length points in
  let chosen = Hashtbl.create 16 in
  Hashtbl.replace chosen seed_idx ();
  let selected = ref [ seed_idx ] in
  let steps = min r n - 1 in
  (try
     for _ = 1 to steps do
       (match Guard.Budget.stop_reason guard with
       | Some reason ->
           if !stopped = None then stopped := Some reason;
           raise Exit
       | None -> ());
       Guard.Budget.note_probe guard;
       Obs.Counter.incr Metrics.steps;
       let set = Array.of_list (List.map (fun i -> points.(i)) !selected) in
       let best = ref (-1) and best_regret = ref neg_infinity in
       Array.iter
         (fun i ->
           if not (Hashtbl.mem chosen i) then begin
             match Regret.point_regret_lp_checked ?eps ~set points.(i) with
             | Ok reg ->
                 if reg > !best_regret then begin
                   best_regret := reg;
                   best := i
                 end
             | Error _ ->
                 incr skips;
                 Obs.Counter.incr Metrics.lp_skips
           end)
         candidates;
       if !best >= 0 then begin
         Hashtbl.replace chosen !best ();
         selected := !best :: !selected
       end
     done
   with Exit -> ());
  Array.of_list (List.rev !selected)

let solve ?eps ?(restrict_to_skyline = false) ?(seed = First_attribute)
    ?(guard = Guard.Budget.unlimited) points ~r =
  if r < 1 then Guard.Error.invalid_input "Greedy.solve: r must be >= 1";
  let n = Array.length points in
  if n = 0 then Guard.Error.invalid_input "Greedy.solve: empty input";
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "greedy.solve" @@ fun () ->
  let sky = lazy (Rrms_skyline.Skyline.sfs points) in
  let candidates =
    if restrict_to_skyline then Lazy.force sky else Array.init n Fun.id
  in
  let skips = ref 0 in
  let stopped = ref None in
  let run_from = run_from ?eps ~guard ~skips ~stopped ~candidates ~points ~r in
  (* The final certification sweep shares the same budget; LPs it skips
     or leaves unevaluated are folded into the degradation report. *)
  let evaluate selected =
    let report = Regret.exact_lp_guarded ?eps ~guard ~selected points in
    skips := !skips + report.Regret.skipped_numerical;
    if report.Regret.timed_out && !stopped = None then
      stopped := Guard.Budget.deadline_expired guard;
    report.Regret.regret
  in
  let finish selected regret_lp =
    let reasons =
      (match !stopped with Some s -> [ s ] | None -> [])
      @ (if !skips > 0 then [ Guard.Numerical_skips !skips ] else [])
    in
    {
      selected;
      regret_lp;
      skipped_lps = !skips;
      quality = (if reasons = [] then Guard.Exact else Guard.Degraded reasons);
    }
  in
  match seed with
  | First_attribute ->
      (* The published algorithm seeds with the maximum of the first
         attribute (§4.1 critiques exactly this choice). *)
      let first = ref 0 in
      for i = 1 to n - 1 do
        if points.(i).(0) > points.(!first).(0) then first := i
      done;
      let selected = run_from !first in
      finish selected (evaluate selected)
  | Best_singleton ->
      (* Seed with the skyline tuple that is the best one-tuple answer:
         one exact regret evaluation per skyline tuple. *)
      let sky = Lazy.force sky in
      let best = ref sky.(0) and best_regret = ref infinity in
      (try
         Array.iter
           (fun i ->
             (match Guard.Budget.deadline_expired guard with
             | Some reason ->
                 if !stopped = None then stopped := Some reason;
                 raise Exit
             | None -> ());
             let e = evaluate [| i |] in
             if e < !best_regret then begin
               best_regret := e;
               best := i
             end)
           sky
       with Exit -> ());
      let selected = run_from !best in
      finish selected (evaluate selected)
  | All_seeds ->
      (* §6.2: rerun from every skyline seed; keep the best final set.
         A deadline stop keeps whatever seeds finished — the first seed
         always runs, so there is always a result to return. *)
      let sky = Lazy.force sky in
      let best = ref None in
      (try
         Array.iteri
           (fun pos s ->
             (if pos > 0 then
                match Guard.Budget.deadline_expired guard with
                | Some reason ->
                    if !stopped = None then stopped := Some reason;
                    raise Exit
                | None -> ());
             let selected = run_from s in
             let e = evaluate selected in
             match !best with
             | Some (be, _) when be <= e -> ()
             | _ -> best := Some (e, selected))
           sky
       with Exit -> ());
      (match !best with
      | Some (regret_lp, selected) -> finish selected regret_lp
      | None -> assert false (* the skyline is never empty *))
