open Rrms_setcover
module Obs = Rrms_obs.Obs

module Metrics = struct
  (* Fresh probes rebuild every row bitset; incremental probes slide
     the per-row prefix pointers.  Together with the hd_rrms probe
     cache hit/miss counters these expose exactly where Algorithm 4's
     O(log (distinct values)) probes spend their work. *)
  let fresh_solves =
    Obs.Counter.make ~help:"from-scratch MRST probes (full O(s*|F|) rescan)"
      "rrms_mrst_fresh_solves_total"

  let incremental_solves =
    Obs.Counter.make ~help:"incremental MRST probes (prefix-slid bitsets)"
      "rrms_mrst_incremental_solves_total"

  let cells_crossed =
    Obs.Counter.make
      ~help:"matrix cells whose threshold membership changed across all \
             incremental probes"
      "rrms_mrst_cells_crossed_total"
end

type solver = Exact | Greedy

(* Dedup thresholded row bitsets in row order (Algorithm 5's dedup
   step), keep one representative row per distinct non-empty bitset, and
   hand the distinct sets to the cover solver.  The iteration order is
   fixed, so the answer does not depend on how the bitsets were
   produced (from-scratch scan or incremental prefix slicing). *)
let cover_of_bitsets ?(solver = Greedy) ~universe bitsets =
  let n = Array.length bitsets in
  let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 64 in
  let distinct = ref [] in
  for i = 0 to n - 1 do
    let b = bitsets.(i) in
    if (not (Bitset.is_empty b)) && not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b i;
      distinct := (i, b) :: !distinct
    end
  done;
  let pairs = Array.of_list (List.rev !distinct) in
  let sets = Array.map snd pairs in
  let instance = Setcover.make_instance ~universe sets in
  let cover =
    match solver with
    | Greedy -> Setcover.greedy instance
    | Exact -> Setcover.exact instance
  in
  Option.map (Array.map (fun si -> fst pairs.(si))) cover

let solve ?solver ?domains matrix ~eps =
  Obs.Counter.incr Metrics.fresh_solves;
  let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
  (* Threshold every row into the bitset of columns it satisfies; rows
     are independent, so the scan fans out across the domain pool.  The
     row is blitted into a per-worker scratch buffer once, so the
     threshold loop reads contiguous floats even on a column view. *)
  let bitsets = Array.make n (Bitset.create 0) in
  Rrms_parallel.parallel_for_with ?domains ~min_chunk:16
    ~scratch:(fun () -> Array.make k 0.)
    n
    (fun row i ->
      Regret_matrix.blit_row matrix i row;
      let b = Bitset.create k in
      for f = 0 to k - 1 do
        if Array.unsafe_get row f <= eps then Bitset.set b f
      done;
      bitsets.(i) <- b);
  cover_of_bitsets ?solver ~universe:k bitsets

module Incremental = struct
  type t = {
    universe : int;
    order : int array array; (* per row: columns sorted by cell value *)
    sorted : float array array; (* the cell values in that order *)
    bits : Bitset.t array; (* current thresholded bitset per row *)
    pos : int array; (* per row: #leading sorted columns currently set *)
  }

  let create ?domains matrix =
    let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
    let order = Array.make n [||] and sorted = Array.make n [||] in
    Rrms_parallel.parallel_for ?domains ~min_chunk:8 n (fun i ->
        (* Copy the row once (one contiguous blit on a flat matrix) and
           tandem-sort values with their column indices — same
           (value, column) order as a comparator sort, without the
           per-comparison closure call. *)
        let vals = Array.make k 0. in
        Regret_matrix.blit_row matrix i vals;
        let ord = Array.init k Fun.id in
        Fsort.sort_pairs vals ord;
        order.(i) <- ord;
        sorted.(i) <- vals);
    {
      universe = k;
      order;
      sorted;
      bits = Array.init n (fun _ -> Bitset.create k);
      pos = Array.make n 0;
    }

  let rows t = Array.length t.bits

  (* After a mutation, most skyline rows survive with bitwise-identical
     matrix cells (Regret_matrix.update reports this as an empty
     changed-column list).  Their sorted orders are pure functions of
     the row's cells, so the O(|F| log |F|) tandem sorts can be carried
     over by reference — create() never mutates order/sorted after
     construction — and only genuinely new rows pay a sort.  Bitsets and
     prefix positions always restart empty: they are probe state, and
     the next advance/advance_many moves bidirectionally from any
     starting point. *)
  let rebase ?domains old matrix ~carried =
    let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
    if old.universe <> k then
      invalid_arg "Mrst.Incremental.rebase: column counts differ";
    if Array.length carried <> n then
      invalid_arg "Mrst.Incremental.rebase: carried length mismatch";
    Array.iter
      (fun j ->
        if j >= rows old then
          invalid_arg "Mrst.Incremental.rebase: carried row out of range")
      carried;
    let order = Array.make n [||] and sorted = Array.make n [||] in
    Rrms_parallel.parallel_for ?domains ~min_chunk:8 n (fun i ->
        let j = carried.(i) in
        if j >= 0 then begin
          order.(i) <- old.order.(j);
          sorted.(i) <- old.sorted.(j)
        end
        else begin
          let vals = Array.make k 0. in
          Regret_matrix.blit_row matrix i vals;
          let ord = Array.init k Fun.id in
          Fsort.sort_pairs vals ord;
          order.(i) <- ord;
          sorted.(i) <- vals
        end);
    {
      universe = k;
      order;
      sorted;
      bits = Array.init n (fun _ -> Bitset.create k);
      pos = Array.make n 0;
    }

  (* Slide row [i]'s bitset from its current prefix to [target] sorted
     columns.  The all-columns and no-columns targets collapse to
     word-level prefix fills/clears (the prefix basis is sorted order,
     but "every column" and "no column" are basis-independent); anything
     else flips exactly the bits whose membership changed. *)
  let slide_row_bits t i target =
    let ord = t.order.(i) and b = t.bits.(i) in
    let k = Array.length ord in
    let p0 = t.pos.(i) in
    if target > p0 then begin
      if target = k then Bitset.set_range_prefix b k
      else
        for q = p0 to target - 1 do
          Bitset.set b ord.(q)
        done
    end
    else if target < p0 then begin
      if target = 0 then Bitset.clear_range_prefix b k
      else
        for q = p0 - 1 downto target do
          Bitset.clear b ord.(q)
        done
    end;
    t.pos.(i) <- target

  (* Move every row's prefix pointer to the new threshold: advance while
     the next sorted value fits, retreat while the last one no longer
     does.  Each probe costs O(#cells crossing the threshold) instead of
     a full O(s·|F|) rescan. *)
  let advance ?domains t ~eps =
    let n = rows t in
    Rrms_parallel.parallel_for ?domains ~min_chunk:64 n (fun i ->
        let vals = t.sorted.(i) in
        let k = Array.length vals in
        let p0 = t.pos.(i) in
        let p = ref p0 in
        while !p < k && Array.unsafe_get vals !p <= eps do
          incr p
        done;
        while !p > 0 && Array.unsafe_get vals (!p - 1) > eps do
          decr p
        done;
        slide_row_bits t i !p;
        (* One add per row, not per cell: the counter total is the sum
           of per-row pointer moves, identical for every chunking. *)
        Obs.Counter.add Metrics.cells_crossed (abs (!p - p0)))

  let solve ?solver ?domains t ~eps =
    Obs.Counter.incr Metrics.incremental_solves;
    advance ?domains t ~eps;
    cover_of_bitsets ?solver ~universe:t.universe t.bits

  (* Batched probing: resolve a whole ascending threshold schedule with
     one pass over each row's sorted values.  Positions are pure
     functions of (row values, threshold) — identical to what a
     sequence of [advance] calls would compute — and the bits are slid
     once, directly to the last (largest) threshold. *)
  let advance_many ?domains t ~eps =
    let j_count = Array.length eps in
    if j_count = 0 then
      invalid_arg "Mrst.Incremental.advance_many: empty schedule";
    for j = 1 to j_count - 1 do
      if Float.compare eps.(j - 1) eps.(j) > 0 then
        invalid_arg "Mrst.Incremental.advance_many: schedule not ascending"
    done;
    let n = rows t in
    let res = Array.init j_count (fun _ -> Array.make n 0) in
    Rrms_parallel.parallel_for ?domains ~min_chunk:64 n (fun i ->
        let vals = t.sorted.(i) in
        let k = Array.length vals in
        let p0 = t.pos.(i) in
        let p = ref p0 in
        let crossed = ref 0 in
        (* First threshold: the pointer may move either way from the
           current state; every later one only advances. *)
        let e0 = eps.(0) in
        while !p < k && Array.unsafe_get vals !p <= e0 do
          incr p
        done;
        while !p > 0 && Array.unsafe_get vals (!p - 1) > e0 do
          decr p
        done;
        crossed := abs (!p - p0);
        (Array.unsafe_get res 0).(i) <- !p;
        for j = 1 to j_count - 1 do
          let e = Array.unsafe_get eps j in
          let before = !p in
          while !p < k && Array.unsafe_get vals !p <= e do
            incr p
          done;
          crossed := !crossed + (!p - before);
          (Array.unsafe_get res j).(i) <- !p
        done;
        slide_row_bits t i !p;
        (* Same total as an ascending sequence of [advance] calls:
           |first move| plus the forward deltas. *)
        Obs.Counter.add Metrics.cells_crossed !crossed);
    res

  let solve_at ?solver ?domains t ~pos =
    if Array.length pos <> rows t then
      invalid_arg "Mrst.Incremental.solve_at: position array length mismatch";
    Obs.Counter.incr Metrics.incremental_solves;
    let n = rows t in
    Rrms_parallel.parallel_for ?domains ~min_chunk:64 n (fun i ->
        let target = pos.(i) in
        if target < 0 || target > Array.length t.order.(i) then
          invalid_arg "Mrst.Incremental.solve_at: position out of range";
        let p0 = t.pos.(i) in
        slide_row_bits t i target;
        Obs.Counter.add Metrics.cells_crossed (abs (target - p0)));
    cover_of_bitsets ?solver ~universe:t.universe t.bits
end
