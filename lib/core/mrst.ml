open Rrms_setcover
module Obs = Rrms_obs.Obs

module Metrics = struct
  (* Fresh probes rebuild every row bitset; incremental probes slide
     the per-row prefix pointers.  Together with the hd_rrms probe
     cache hit/miss counters these expose exactly where Algorithm 4's
     O(log (distinct values)) probes spend their work. *)
  let fresh_solves =
    Obs.Counter.make ~help:"from-scratch MRST probes (full O(s*|F|) rescan)"
      "rrms_mrst_fresh_solves_total"

  let incremental_solves =
    Obs.Counter.make ~help:"incremental MRST probes (prefix-slid bitsets)"
      "rrms_mrst_incremental_solves_total"

  let cells_crossed =
    Obs.Counter.make
      ~help:"matrix cells whose threshold membership changed across all \
             incremental probes"
      "rrms_mrst_cells_crossed_total"
end

type solver = Exact | Greedy

(* Dedup thresholded row bitsets in row order (Algorithm 5's dedup
   step), keep one representative row per distinct non-empty bitset, and
   hand the distinct sets to the cover solver.  The iteration order is
   fixed, so the answer does not depend on how the bitsets were
   produced (from-scratch scan or incremental prefix slicing). *)
let cover_of_bitsets ?(solver = Greedy) ~universe bitsets =
  let n = Array.length bitsets in
  let seen : (Bitset.t, int) Hashtbl.t = Hashtbl.create 64 in
  let distinct = ref [] in
  for i = 0 to n - 1 do
    let b = bitsets.(i) in
    if (not (Bitset.is_empty b)) && not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b i;
      distinct := (i, b) :: !distinct
    end
  done;
  let pairs = Array.of_list (List.rev !distinct) in
  let sets = Array.map snd pairs in
  let instance = Setcover.make_instance ~universe sets in
  let cover =
    match solver with
    | Greedy -> Setcover.greedy instance
    | Exact -> Setcover.exact instance
  in
  Option.map (Array.map (fun si -> fst pairs.(si))) cover

let solve ?solver ?domains matrix ~eps =
  Obs.Counter.incr Metrics.fresh_solves;
  let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
  (* Threshold every row into the bitset of columns it satisfies; rows
     are independent, so the scan fans out across the domain pool. *)
  let bitsets = Array.make n (Bitset.create 0) in
  Rrms_parallel.parallel_for ?domains ~min_chunk:16 n (fun i ->
      let b = Bitset.create k in
      for f = 0 to k - 1 do
        if Regret_matrix.get matrix i f <= eps then Bitset.set b f
      done;
      bitsets.(i) <- b);
  cover_of_bitsets ?solver ~universe:k bitsets

module Incremental = struct
  type t = {
    universe : int;
    order : int array array; (* per row: columns sorted by cell value *)
    sorted : float array array; (* the cell values in that order *)
    bits : Bitset.t array; (* current thresholded bitset per row *)
    pos : int array; (* per row: #leading sorted columns currently set *)
  }

  let create ?domains matrix =
    let n = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
    let order = Array.make n [||] and sorted = Array.make n [||] in
    Rrms_parallel.parallel_for ?domains ~min_chunk:8 n (fun i ->
        (* Copy the row once so the sort comparator touches a flat local
           array instead of re-reading the matrix on every comparison. *)
        let vals = Array.init k (fun f -> Regret_matrix.get matrix i f) in
        let ord = Array.init k Fun.id in
        Array.sort
          (fun a b ->
            let c = Float.compare vals.(a) vals.(b) in
            if c <> 0 then c else Stdlib.compare a b)
          ord;
        order.(i) <- ord;
        sorted.(i) <- Array.map (fun f -> vals.(f)) ord);
    {
      universe = k;
      order;
      sorted;
      bits = Array.init n (fun _ -> Bitset.create k);
      pos = Array.make n 0;
    }

  let rows t = Array.length t.bits

  (* Move every row's prefix pointer to the new threshold: set bits
     while the next sorted value fits, clear while the last one no
     longer does.  Each probe costs O(#cells crossing the threshold)
     instead of a full O(s·|F|) rescan. *)
  let advance ?domains t ~eps =
    let n = rows t in
    Rrms_parallel.parallel_for ?domains ~min_chunk:64 n (fun i ->
        let ord = t.order.(i) and vals = t.sorted.(i) and b = t.bits.(i) in
        let k = Array.length vals in
        let p0 = t.pos.(i) in
        let p = ref p0 in
        while !p < k && vals.(!p) <= eps do
          Bitset.set b ord.(!p);
          incr p
        done;
        while !p > 0 && vals.(!p - 1) > eps do
          decr p;
          Bitset.clear b ord.(!p)
        done;
        t.pos.(i) <- !p;
        (* One add per row, not per cell: the counter total is the sum
           of per-row pointer moves, identical for every chunking. *)
        Obs.Counter.add Metrics.cells_crossed (abs (!p - p0)))

  let solve ?solver ?domains t ~eps =
    Obs.Counter.incr Metrics.incremental_solves;
    advance ?domains t ~eps;
    cover_of_bitsets ?solver ~universe:t.universe t.bits
end
