open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let lp_evals =
    Obs.Counter.make ~help:"point-regret LPs formulated and solved"
      "rrms_regret_lp_evals_total"
end

let for_function ~points ~selected w =
  if Array.length selected = 0 then
    invalid_arg "Regret.for_function: empty selection";
  let best_all = Vec.max_score w points in
  let best_sel = ref neg_infinity in
  Array.iter
    (fun i ->
      let s = Vec.dot w points.(i) in
      if s > !best_sel then best_sel := s)
    selected;
  if best_all <= 0. then 0.
  else Float.max 0. ((best_all -. !best_sel) /. best_all)

(* LP of Nanongkai et al.:  maximize x  subject to
     w·p = 1,   w·(p - q) >= x  for every q in the set,   w, x >= 0.
   The optimum is exactly sup_w (w·p - max_q w·q)/(w·p): the ratio is
   scale-invariant in w so normalizing w·p = 1 loses nothing.  An
   infeasible system means even x = 0 is unreachable, i.e. the set beats
   p everywhere: regret 0. *)
let point_regret_lp_checked ?eps ~set p =
  if Array.length set = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret.point_regret_lp: empty set";
  Obs.Counter.incr Metrics.lp_evals;
  let m = Array.length p in
  (* Variables: w_0 .. w_{m-1}, x. *)
  let nvars = m + 1 in
  let objective = Array.make nvars 0. in
  objective.(m) <- 1.;
  let normalization =
    let row = Array.make nvars 0. in
    Array.blit p 0 row 0 m;
    Rrms_lp.Simplex.constraint_ row Rrms_lp.Simplex.Eq 1.
  in
  let gap_rows =
    Array.to_list
      (Array.map
         (fun q ->
           let row = Array.make nvars 0. in
           for j = 0 to m - 1 do
             row.(j) <- p.(j) -. q.(j)
           done;
           row.(m) <- -1.;
           Rrms_lp.Simplex.constraint_ row Rrms_lp.Simplex.Ge 0.)
         set)
  in
  match Rrms_lp.Simplex.maximize ?eps ~c:objective (normalization :: gap_rows) with
  | Rrms_lp.Simplex.Optimal { objective = v; _ } ->
      Ok (Float.min 1. (Float.max 0. v))
  | Rrms_lp.Simplex.Infeasible -> Ok 0.
  | Rrms_lp.Simplex.Unbounded ->
      (* x <= w·p - w·q <= w·p = 1, so a true unbounded verdict is
         impossible — only numerical collapse produces one. *)
      Error "point-regret LP reported unbounded (x is bounded by 1)"
  | Rrms_lp.Simplex.Degenerate { pivots } ->
      Error
        (Printf.sprintf "point-regret LP stalled after %d degenerate pivots"
           pivots)

let point_regret_lp ?eps ~set p =
  match point_regret_lp_checked ?eps ~set p with
  | Ok v -> v
  | Error what -> Rrms_guard.Guard.Error.numerical what

type eval_report = {
  regret : float;
  evaluated : int;
  total : int;
  skipped_numerical : int;
  timed_out : bool;
}

let exact_lp_guarded ?eps ?(guard = Rrms_guard.Guard.Budget.unlimited)
    ~selected points =
  if Array.length selected = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret.exact_lp: empty selection";
  let set = Array.map (fun i -> points.(i)) selected in
  (* The maximizer of the per-point regret is a skyline point: a
     dominated point scores below its dominator for every function. *)
  let sky = Rrms_skyline.Skyline.sfs points in
  let total = Array.length sky in
  let regret = ref 0. in
  let evaluated = ref 0 and skipped = ref 0 in
  let timed_out = ref false in
  (try
     Array.iter
       (fun i ->
         (match Rrms_guard.Guard.Budget.deadline_expired guard with
         | Some _ ->
             timed_out := true;
             raise Exit
         | None -> ());
         (match point_regret_lp_checked ?eps ~set points.(i) with
         | Ok v -> if v > !regret then regret := v
         | Error _ -> incr skipped);
         incr evaluated)
       sky
   with Exit -> ());
  {
    regret = !regret;
    evaluated = !evaluated;
    total;
    skipped_numerical = !skipped;
    timed_out = !timed_out;
  }

let exact_lp ?eps ~selected points =
  if Array.length selected = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret.exact_lp: empty selection";
  let set = Array.map (fun i -> points.(i)) selected in
  let sky = Rrms_skyline.Skyline.sfs points in
  Array.fold_left
    (fun acc i -> Float.max acc (point_regret_lp ?eps ~set points.(i)))
    0. sky

let exact_2d ~selected points =
  if Array.length selected = 0 then
    invalid_arg "Regret.exact_2d: empty selection";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then invalid_arg "Regret.exact_2d: dimension <> 2")
    points;
  let hull_all = Hull2d.build points in
  let hull_sel = Hull2d.build (Array.map (fun i -> points.(i)) selected) in
  (* On any angle interval where both the database envelope and the
     subset envelope are realized by fixed points, the regret ratio
     1 - F(q)/F(p) is monotone in the angle, so its maximum over all
     angles is attained at an envelope breakpoint (or the domain ends). *)
  let candidates =
    Array.concat
      [
        [| 0.; Float.pi /. 2. |];
        Hull2d.breakpoints hull_all;
        Hull2d.breakpoints hull_sel;
      ]
  in
  Array.fold_left
    (fun acc phi ->
      let w = Polar.weight_of_angle_2d phi in
      let best_all = Vec.dot w (Hull2d.max_point_at hull_all phi) in
      let best_sel = Vec.dot w (Hull2d.max_point_at hull_sel phi) in
      if best_all <= 0. then acc
      else Float.max acc ((best_all -. best_sel) /. best_all))
    0. candidates

let profile_2d ?(steps = 200) ~selected points =
  if Array.length selected = 0 then
    invalid_arg "Regret.profile_2d: empty selection";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then
        invalid_arg "Regret.profile_2d: dimension <> 2")
    points;
  let hull_all = Hull2d.build points in
  let hull_sel = Hull2d.build (Array.map (fun i -> points.(i)) selected) in
  let half_pi = Float.pi /. 2. in
  let angles =
    Array.concat
      [
        Array.init (steps + 1) (fun q ->
            half_pi *. float_of_int q /. float_of_int steps);
        Hull2d.breakpoints hull_all;
        Hull2d.breakpoints hull_sel;
      ]
  in
  Array.sort Float.compare angles;
  Array.map
    (fun phi ->
      let w = Polar.weight_of_angle_2d phi in
      let best_all = Vec.dot w (Hull2d.max_point_at hull_all phi) in
      let best_sel = Vec.dot w (Hull2d.max_point_at hull_sel phi) in
      let reg =
        if best_all <= 0. then 0.
        else Float.max 0. ((best_all -. best_sel) /. best_all)
      in
      (phi, reg))
    angles

let sampled ~selected ~funcs points =
  Array.fold_left
    (fun acc w -> Float.max acc (for_function ~points ~selected w))
    0. funcs

let is_extreme_point ?eps points i =
  let n = Array.length points in
  let m = Array.length points.(i) in
  let p = points.(i) in
  (* p is NOT extreme iff p = Σ λ_j q_j with λ >= 0, Σ λ = 1 over the
     other points.  Variables: one λ per other point. *)
  let others = Array.of_list (List.filter (fun j -> j <> i) (List.init n Fun.id)) in
  let k = Array.length others in
  if k = 0 then true
  else begin
    let rows = ref [] in
    for d = 0 to m - 1 do
      let row = Array.map (fun j -> points.(j).(d)) others in
      rows := Rrms_lp.Simplex.constraint_ row Rrms_lp.Simplex.Eq p.(d) :: !rows
    done;
    let ones = Array.make k 1. in
    rows := Rrms_lp.Simplex.constraint_ ones Rrms_lp.Simplex.Eq 1. :: !rows;
    not (Rrms_lp.Simplex.feasible ?eps k !rows)
  end

let convex_hull_size ?eps points =
  let n = Array.length points in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if is_extreme_point ?eps points i then incr count
  done;
  !count

let maxima_count_sampled ~points ~funcs =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun w ->
      let i = Vec.max_score_index w points in
      if not (Hashtbl.mem seen i) then Hashtbl.add seen i ())
    funcs;
  Hashtbl.length seen
