(** HD-RRMS: the paper's high-dimensional approximation algorithm
    (§4.4, Algorithm 4).

    Pipeline: restrict to the skyline (Theorem 1) → discretize the
    function space with the polar γ-grid (Algorithm 3) → build the
    regret matrix → binary-search its sorted distinct cell values,
    asking the MRST set-cover oracle at each candidate ε for a row set
    of size ≤ r.  The smallest feasible ε is optimal {e for the
    discretized function set}, and Theorem 4 lifts it to the full
    continuous space: [E ≤ c·ε_min + (1 − c) ≤ c·E_opt + (1 − c)].

    With the exact set-cover oracle this is the theoretical algorithm;
    with Chvátal's greedy (the default) it is the practical §4.4.3
    variant.  §4.4.3 and §6.1 describe two acceptance policies for the
    greedy cover, both implemented here as {!budget}:

    - {!Strict} (§6.1, the default): accept a cover only if its size is
      at most [r].  Output never exceeds [r], but since the greedy
      cover can be up to [H(|F|)] times larger than optimal, the binary
      search may settle above the grid optimum.
    - {!Inflated} (§4.4.3's alternative): accept covers up to
      [r·(ln|F| + 1)].  Whenever a size-[r] cover exists the greedy one
      passes, so [eps_min] is at most the grid optimum for [r] and
      Theorem 4's bound holds against it — at the cost of returning up
      to [r·(ln|F| + 1)] tuples. *)

type budget = Strict | Inflated

type result = {
  selected : int array;
      (** chosen tuples (indices into the input points); at most [r]
          under the [Strict] budget, up to [r·(ln|F|+1)] under
          [Inflated] *)
  eps_min : float;
      (** the smallest accepted discretized regret (ε_min of §4.4.1) *)
  guarantee : float;
      (** Theorem 4's bound [c·ε_min + (1 − c)] on the true regret *)
  discretized_regret : float;
      (** [max_f min_{t∈selected} M[t,f]] of the returned set — equals
          [eps_min] up to set-cover slack *)
}

val solve :
  ?gamma:int ->
  ?solver:Mrst.solver ->
  ?budget:budget ->
  ?funcs:Rrms_geom.Vec.t array ->
  ?domains:int ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r] runs HD-RRMS with [gamma] grid partitions per
    angle (default 4, the paper's default), the given MRST [solver]
    (default [Greedy]) and acceptance [budget] (default [Strict]).  [funcs] overrides the discretized function set
    entirely (for the §5.2 alternative discretizations; Theorem 4's
    [guarantee] field is then computed from [gamma] anyway and should be
    ignored by the caller).  [domains] spreads the skyline pass, the
    matrix build and every MRST probe over a worker-domain pool
    (default {!Rrms_parallel.Pool.default_size}); the result is
    bit-identical for every domain count.
    @raise Invalid_argument if [r < 1] or the input is empty. *)

val solve_on_matrix :
  ?solver:Mrst.solver ->
  ?domains:int ->
  ?max_size:int ->
  Regret_matrix.t ->
  r:int ->
  (int array * float) option
(** The core binary search of Algorithm 4, exposed for tests: returns
    (row set, ε_min) over an arbitrary matrix, accepting covers of size
    at most [max_size] (default [r]); [None] if nothing satisfies even
    the largest cell value.  Probes run through {!Mrst.Incremental}
    (prefix-sliced bitsets plus a per-threshold probe cache) and return
    exactly what from-scratch {!Mrst.solve} probes would. *)
