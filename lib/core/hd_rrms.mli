(** HD-RRMS: the paper's high-dimensional approximation algorithm
    (§4.4, Algorithm 4).

    Pipeline: restrict to the skyline (Theorem 1) → discretize the
    function space with the polar γ-grid (Algorithm 3) → build the
    regret matrix → binary-search its sorted distinct cell values,
    asking the MRST set-cover oracle at each candidate ε for a row set
    of size ≤ r.  The smallest feasible ε is optimal {e for the
    discretized function set}, and Theorem 4 lifts it to the full
    continuous space: [E ≤ c·ε_min + (1 − c) ≤ c·E_opt + (1 − c)].

    With the exact set-cover oracle this is the theoretical algorithm;
    with Chvátal's greedy (the default) it is the practical §4.4.3
    variant.  §4.4.3 and §6.1 describe two acceptance policies for the
    greedy cover, both implemented here as {!budget}:

    - {!Strict} (§6.1, the default): accept a cover only if its size is
      at most [r].  Output never exceeds [r], but since the greedy
      cover can be up to [H(|F|)] times larger than optimal, the binary
      search may settle above the grid optimum.
    - {!Inflated} (§4.4.3's alternative): accept covers up to
      [r·(ln|F| + 1)].  Whenever a size-[r] cover exists the greedy one
      passes, so [eps_min] is at most the grid optimum for [r] and
      Theorem 4's bound holds against it — at the cost of returning up
      to [r·(ln|F| + 1)] tuples.

    {2 Budgets and anytime degradation}

    [solve] and the matrix search accept a {!Rrms_guard.Guard.Budget.t}.
    The budget is consulted only at probe boundaries, so a degraded run
    is deterministic for a fixed probe cap and bit-identical across
    domain counts.  When the budget stops the binary search early, the
    solver still returns a certified answer: either the best threshold
    accepted so far, or — if none was accepted yet — a one-probe
    fallback at the largest distinct cell value, where a single-row
    cover always exists.  Either way Theorem 4's bound is computed from
    the returned set's {e achieved} discretized regret, so the
    [guarantee] field stays valid (just looser) under degradation. *)

type budget = Strict | Inflated

(** Per-solve cost provenance: the paper's cost-model quantities for
    {e one} answer — as opposed to the process-cumulative
    [rrms_hd_rrms_*] counters.  The serving layer threads this record
    through shard merges into the per-answer ["cost"] echo
    (docs/OBSERVABILITY.md, "Cost provenance"). *)
type cost = {
  probes : int;  (** binary-search probes executed (incl. the fallback) *)
  probes_fresh : int;  (** probes that paid an MRST solve *)
  probes_cached : int;
      (** probes answered from the threshold-index cache *)
}

type result = {
  selected : int array;
      (** chosen tuples (indices into the input points); at most [r]
          under the [Strict] budget, up to [r·(ln|F|+1)] under
          [Inflated]; never empty *)
  eps_min : float;
      (** the smallest accepted discretized regret (ε_min of §4.4.1) *)
  guarantee : float;
      (** Theorem 4's bound [c·ε + (1 − c)] on the true regret, with
          [ε = discretized_regret] — valid even when [quality] is
          [Degraded] *)
  discretized_regret : float;
      (** [max_f min_{t∈selected} M[t,f]] of the returned set — equals
          [eps_min] up to set-cover slack *)
  gamma_used : int;
      (** the grid resolution actually used — smaller than the
          requested [gamma] when a cell cap forced a shrink *)
  quality : Rrms_guard.Guard.quality;
      (** [Exact] when the full binary search ran at the requested γ;
          [Degraded reasons] records every budget intervention *)
  cost : cost;  (** this answer's probe accounting *)
}

val solve :
  ?gamma:int ->
  ?solver:Mrst.solver ->
  ?budget:budget ->
  ?funcs:Rrms_geom.Vec.t array ->
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r] runs HD-RRMS with [gamma] grid partitions per
    angle (default 4, the paper's default), the given MRST [solver]
    (default [Greedy]) and acceptance [budget] (default [Strict]).
    [funcs] overrides the discretized function set entirely (for the
    §5.2 alternative discretizations; Theorem 4's [guarantee] field is
    then computed from [gamma] anyway and should be ignored by the
    caller).  [domains] spreads the skyline pass, the matrix build and
    every MRST probe over a worker-domain pool (default
    {!Rrms_parallel.Pool.default_size}); the result is bit-identical
    for every domain count.

    When [guard] carries a cell cap and [funcs] is not given, [gamma]
    auto-shrinks to the largest γ' whose matrix fits the cap (recorded
    as a [Cell_cap] degradation reason); an explicit [funcs] makes the
    cap a hard check instead.  A deadline or probe cap stops the binary
    search at a probe boundary and the best-so-far (or the certified
    fallback) is returned with [quality = Degraded].
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [r < 1] or the input is empty, [Resource_limit] if no γ' ≥ 1 fits
    the cell cap. *)

type search = {
  found : (int array * float) option;
      (** (row set, ε) for the best accepted threshold; [None] only if
          nothing satisfies even the largest cell value *)
  probes : int;  (** MRST probes actually executed by the search loop *)
  probes_fresh : int;  (** probes that paid an MRST solve *)
  probes_cached : int;
      (** probes answered from the threshold-index cache *)
  stopped : Rrms_guard.Guard.reason option;
      (** [Some _] iff the budget cut the binary search short *)
}

val search_on_matrix :
  ?solver:Mrst.solver ->
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  ?max_size:int ->
  ?inc:Mrst.Incremental.t ->
  Regret_matrix.t ->
  r:int ->
  search
(** The core binary search of Algorithm 4 over an arbitrary matrix,
    accepting covers of size at most [max_size] (default [r]).  Probes
    run through {!Mrst.Incremental} (prefix-sliced bitsets plus a
    per-threshold probe cache) and return exactly what from-scratch
    {!Mrst.solve} probes would.  [inc] supplies a ready
    {!Mrst.Incremental.t} for this matrix (e.g. pooled across queries,
    or {!Mrst.Incremental.rebase}d across a mutation), skipping the
    per-row sort setup; any starting probe state is fine because every
    slide is bidirectional.  The search mutates it and leaves it at the
    last probed threshold.  The [guard] is checked before every
    probe; on stop, if no threshold was accepted yet, one fallback
    probe at the largest distinct value recovers a certified
    single-row answer (so [found = None] with a stopped budget implies
    an empty or degenerate matrix).
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [inc]'s row count does not match [matrix]. *)

val solve_on_matrix :
  ?solver:Mrst.solver ->
  ?domains:int ->
  ?max_size:int ->
  Regret_matrix.t ->
  r:int ->
  (int array * float) option
(** [search_on_matrix] without a budget, returning just [found] —
    the pre-guard interface, kept for tests and benchmarks. *)

val solve_prepared :
  ?solver:Mrst.solver ->
  ?budget:budget ->
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  ?inc:Mrst.Incremental.t ->
  skyline:int array ->
  gamma_used:int ->
  m:int ->
  Regret_matrix.t ->
  r:int ->
  result
(** The back half of {!solve}, starting from precomputed artifacts:
    [matrix] is the regret matrix whose row [i] is the tuple
    [skyline.(i)] of the original database, [gamma_used] the grid
    resolution the matrix was built at, and [m] the dimensionality
    (both feed Theorem 4's [guarantee]).  [selected] is reported in
    original-database indices via [skyline].  {!solve} itself is
    [skyline → grid → matrix → solve_prepared], so an answer computed
    on cached artifacts — the resident query server's warm path — is
    bit-identical to a cold [solve].  No cell-cap shrinking happens
    here (the matrix is already built); deadline / probe budgets apply
    to the binary search exactly as in {!solve}.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [r < 1] or [skyline] and [matrix] disagree on the row count. *)
