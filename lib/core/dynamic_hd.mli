(** Incremental maintenance of a high-dimensional compact set.

    The m-dimensional sibling of {!Dynamic2d}: inserts dominated by the
    current skyline and removals of non-skyline tuples are absorbed
    without recomputation; anything else lazily re-runs {!Hd_rrms} on
    the live tuples.  Because HD-RRMS is an approximation, the cached
    answer is "a valid HD-RRMS output for the current table", not a
    global optimum; {!regret} reports its exact LP-evaluated maximum
    regret ratio. *)

type t

val create : ?gamma:int -> r:int -> Rrms_geom.Vec.t array -> t
(** Start from an initial table (may be empty); [gamma] (default 4) is
    passed through to {!Hd_rrms.solve}.  All tuples must share one
    dimension [>= 2].
    @raise Invalid_argument if [r < 1] or tuples are invalid. *)

val size : t -> int
val insert : t -> Rrms_geom.Vec.t -> int
val remove : t -> int -> unit
val get : t -> int -> Rrms_geom.Vec.t option

val selection : t -> int array
(** Handles of the current compact set (recomputes if dirty). *)

val skyline : t -> int array
(** Handles of the current skyline, in the order {!Rrms_skyline.Skyline.sfs}
    returns them over the live tuples (ascending-handle enumeration);
    recomputes if dirty. *)

val direction_maxima : t -> int array
(** One entry per γ-grid direction: the live handle scoring highest in
    that direction ([-1] only when the table is empty), ties broken to
    the lowest handle.  Maintained incrementally — inserts displace a
    beaten maximum, removing a maximum marks its slots stale, and stale
    slots are rebuilt lazily here by a scan of the live tuples — so
    reading after any insert/remove interleaving equals a from-scratch
    scan.  Returns [[||]] before the first tuple fixes the dimension. *)

val regret : t -> float
(** Exact ({!Regret.exact_lp}) maximum regret ratio of {!selection}. *)

val recompute_count : t -> int
val is_dirty : t -> bool
