open Rrms_geom
module Guard = Rrms_guard.Guard
module Skyline = Rrms_skyline.Skyline
module Obs = Rrms_obs.Obs

module Metrics = struct
  let applied =
    Obs.Counter.make ~help:"dataset mutations applied" "rrms_delta_ops_total"

  (* Skyline maintenance outcome per mutation batch: remaps and merges
     are the incremental wins, rebuilds the fallback. *)
  let sky_remap =
    Obs.Counter.make ~help:"skyline updates resolved by pure index remap"
      "rrms_delta_skyline_remaps_total"

  let sky_merge =
    Obs.Counter.make ~help:"skyline updates resolved by partition merge"
      "rrms_delta_skyline_merges_total"

  let sky_rebuild =
    Obs.Counter.make ~help:"skyline updates requiring a full from-scratch pass"
      "rrms_delta_skyline_rebuilds_total"
end

type mutation = Insert of Vec.t | Delete of int | Upsert of int * Vec.t

type plan = {
  rows : Vec.t array;
  old_to_new : int array;
  new_to_old : int array;
  fresh : int array;
}

let check_value ~dim ~what p =
  if Array.length p <> dim then
    Guard.Error.invalid_input
      (Printf.sprintf "%s: value has %d attributes, dataset has %d" what
         (Array.length p) dim);
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0. then
        Guard.Error.invalid_input
          (Printf.sprintf "%s: values must be finite and non-negative" what))
    p

(* Sequential left-to-right semantics over one growable buffer of
   (value, origin) pairs: Insert appends a fresh value, Delete i removes
   the i-th element of the *current* sequence, Upsert i replaces its
   value in place — destroying the old identity, so artifacts treat it
   as delete-at + insert-at.  [origin] is the base-row index a value was
   carried from, or -1 once the value is fresh. *)
let apply ?dim rows muts =
  let n0 = Array.length rows in
  let dim =
    match dim with
    | Some d -> d
    | None ->
        if n0 = 0 then
          Guard.Error.invalid_input "Delta.apply: empty base needs ~dim"
        else Array.length rows.(0)
  in
  (* Size the buffer for this batch, not for doubling-growth: at most
     [inserts] values join the sequence, and over-allocating 2n on a
     large table costs more than the batch itself. *)
  let inserts =
    List.fold_left
      (fun acc op -> match op with Insert _ -> acc + 1 | _ -> acc)
      0 muts
  in
  let cap = ref (Int.max 8 (n0 + inserts)) in
  let vals = ref (Array.make !cap [||]) in
  let orig = ref (Array.make !cap (-1)) in
  Array.blit rows 0 !vals 0 n0;
  for i = 0 to n0 - 1 do
    !orig.(i) <- i
  done;
  let len = ref n0 in
  let grow () =
    if !len = !cap then begin
      let cap' = !cap * 2 in
      let vals' = Array.make cap' [||] and orig' = Array.make cap' (-1) in
      Array.blit !vals 0 vals' 0 !len;
      Array.blit !orig 0 orig' 0 !len;
      cap := cap';
      vals := vals';
      orig := orig'
    end
  in
  let check_index ~what i =
    if i < 0 || i >= !len then
      Guard.Error.invalid_input
        (Printf.sprintf "%s: index %d out of range (current size %d)" what i
           !len)
  in
  List.iter
    (fun op ->
      Obs.Counter.incr Metrics.applied;
      match op with
      | Insert p ->
          check_value ~dim ~what:"Delta.apply insert" p;
          grow ();
          !vals.(!len) <- p;
          !orig.(!len) <- -1;
          incr len
      | Delete i ->
          check_index ~what:"Delta.apply delete" i;
          Array.blit !vals (i + 1) !vals i (!len - i - 1);
          Array.blit !orig (i + 1) !orig i (!len - i - 1);
          decr len
      | Upsert (i, p) ->
          check_index ~what:"Delta.apply upsert" i;
          check_value ~dim ~what:"Delta.apply upsert" p;
          !vals.(i) <- p;
          !orig.(i) <- -1)
    muts;
  let n = !len in
  let rows' = Array.sub !vals 0 n in
  let new_to_old = Array.sub !orig 0 n in
  let old_to_new = Array.make n0 (-1) in
  let fresh = ref [] in
  for i = n - 1 downto 0 do
    let o = new_to_old.(i) in
    if o >= 0 then old_to_new.(o) <- i else fresh := i :: !fresh
  done;
  { rows = rows'; old_to_new; new_to_old; fresh = Array.of_list !fresh }

type skyline_path = Remap | Merge | Rebuild

let path_name = function
  | Remap -> "remap"
  | Merge -> "merge"
  | Rebuild -> "rebuild"

(* Correctness of the incremental paths.  FAST is available iff every
   old-skyline member survives with its value intact: then any surviving
   base row outside the old skyline is still (weakly) dominated by a
   surviving skyline member, so every new skyline representative lies in
   remap(old_sky) ∪ fresh — exactly merge_partitions' joint-coverage
   contract, which makes the merge bit-identical to a from-scratch sfs.
   With additionally no fresh rows (pure deletes of non-skyline rows),
   the skyline set is unchanged and the monotone index remap preserves
   sfs's sum-descending / index-ascending order and its lowest-index
   duplicate representatives, so the remap alone *is* the sfs output.
   Deleting or upserting a skyline member voids the invariant (a row it
   dominated may surface), hence the full rebuild. *)
let update_skyline ?domains plan ~old_sky =
  let n0 = Array.length plan.old_to_new in
  Array.iter
    (fun g ->
      if g < 0 || g >= n0 then
        Guard.Error.invalid_input
          "Delta.update_skyline: skyline index out of range for the base")
    old_sky;
  let survives = Array.for_all (fun g -> plan.old_to_new.(g) >= 0) old_sky in
  if not survives then begin
    Obs.Counter.incr Metrics.sky_rebuild;
    (Skyline.sfs ?domains plan.rows, Rebuild)
  end
  else begin
    let remapped = Array.map (fun g -> plan.old_to_new.(g)) old_sky in
    if Array.length plan.fresh = 0 then begin
      Obs.Counter.incr Metrics.sky_remap;
      (remapped, Remap)
    end
    else begin
      Obs.Counter.incr Metrics.sky_merge;
      ( Skyline.merge_partitions ?domains plan.rows [| remapped; plan.fresh |],
        Merge )
    end
  end

let sequence_preserved plan ~old_sky ~new_sky =
  Array.length old_sky = Array.length new_sky
  &&
  let ok = ref true in
  Array.iteri
    (fun i g ->
      let o = plan.new_to_old.(g) in
      if o < 0 || o <> old_sky.(i) then ok := false)
    new_sky;
  !ok

let carried_rows plan ~old_sky ~new_sky =
  let n0 = Array.length plan.old_to_new in
  let pos = Array.make n0 (-1) in
  Array.iteri
    (fun i g ->
      if g < 0 || g >= n0 then
        Guard.Error.invalid_input
          "Delta.carried_rows: skyline index out of range for the base"
      else pos.(g) <- i)
    old_sky;
  Array.map
    (fun g ->
      let o = plan.new_to_old.(g) in
      if o >= 0 then pos.(o) else -1)
    new_sky
