(** HD-GREEDY: greedy selection over the discretized regret matrix
    (§6.1).

    The paper introduces this algorithm to ablate its two ideas: it uses
    the discretized matrix (idea 1) but replaces the set-cover reduction
    (idea 2) with a greedy loop that repeatedly adds the tuple giving
    the largest reduction of the current max-column regret.  O(r·s·|F|). *)

type result = {
  selected : int array;  (** indices into the input points; exactly
                             [min r s] of them *)
  discretized_regret : float;
      (** [max_f min_{t∈selected} M[t,f]] at termination *)
}

val solve :
  ?gamma:int ->
  ?funcs:Rrms_geom.Vec.t array ->
  ?domains:int ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r] with the γ-grid discretization (default
    [gamma = 4]) or an explicit function sample [funcs].  The skyline
    pass, the matrix build and each greedy argmin sweep run on
    [domains] worker domains (default
    {!Rrms_parallel.Pool.default_size}) with bit-identical results.
    @raise Invalid_argument if [r < 1] or the input is empty. *)
