(** HD-GREEDY: greedy selection over the discretized regret matrix
    (§6.1).

    The paper introduces this algorithm to ablate its two ideas: it uses
    the discretized matrix (idea 1) but replaces the set-cover reduction
    (idea 2) with a greedy loop that repeatedly adds the tuple giving
    the largest reduction of the current max-column regret.  O(r·s·|F|). *)

type result = {
  selected : int array;
      (** indices into the input points; exactly [min r s] of them on
          an [Exact] run, possibly fewer (but ≥ 1) under a budget stop *)
  discretized_regret : float;
      (** [max_f min_{t∈selected} M[t,f]] at termination *)
  gamma_used : int;
      (** the grid resolution actually used — smaller than requested
          when a cell cap forced a shrink *)
  quality : Rrms_guard.Guard.quality;
      (** [Exact], or [Degraded] with the budget interventions *)
  steps : int;
      (** greedy argmin sweeps actually taken — this answer's cost
          provenance; equals [Array.length selected] *)
}

val solve_prepared :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  skyline:int array ->
  gamma_used:int ->
  Regret_matrix.t ->
  r:int ->
  result
(** The greedy loop on precomputed artifacts: [matrix]'s row [i] is
    tuple [skyline.(i)] of the original database; [gamma_used] is only
    echoed into the result.  {!solve} is [skyline → grid → matrix →
    solve_prepared], so a warm answer on cached artifacts (the query
    server's path) is bit-identical to a cold [solve].  No cell-cap
    shrinking happens here; deadline / probe budgets bound the greedy
    steps exactly as in {!solve}.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [r < 1] or [skyline] and [matrix] disagree on the row count. *)

val solve :
  ?gamma:int ->
  ?funcs:Rrms_geom.Vec.t array ->
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r] with the γ-grid discretization (default
    [gamma = 4]) or an explicit function sample [funcs].  The skyline
    pass, the matrix build and each greedy argmin sweep run on
    [domains] worker domains (default
    {!Rrms_parallel.Pool.default_size}) with bit-identical results.

    The [guard] is checked between greedy steps (each step counts as
    one probe): the first step always runs, so the result is never
    empty, and a budget stop simply truncates the selection — the
    reported [discretized_regret] is exact for the truncated set.
    When [guard] carries a cell cap and [funcs] is not given, [gamma]
    auto-shrinks just as in {!Hd_rrms.solve}.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [r < 1] or the input is empty, [Resource_limit] if no γ' ≥ 1 fits
    the cell cap. *)
