(** MRST — Minimum Rows Satisfying a Threshold (§4.4.1, Algorithm 5).

    Given the discretized regret matrix and a threshold ε, find the
    fewest rows such that every column has some selected row with cell
    value ≤ ε.  The reduction: threshold the matrix to 0/1, collapse
    duplicate rows, and solve set cover — exactly (branch and bound) for
    the theoretical algorithm, or with Chvátal's greedy for the
    practical one (§4.4.3). *)

type solver = Exact | Greedy

val solve :
  ?solver:solver -> ?domains:int -> Regret_matrix.t -> eps:float -> int array option
(** [solve matrix ~eps] returns row indices covering every column within
    [eps], of minimum (Exact) or near-minimum (Greedy, the default)
    cardinality; [None] when some column cannot be satisfied by any
    single row.  The per-row thresholding scan fans out over [domains]
    worker domains (default {!Rrms_parallel.Pool.default_size}); the
    answer is identical for every domain count. *)

(** Incremental probing for Algorithm 4's binary search.

    [solve] rebuilds every row bitset from scratch in O(s·|F|) per
    probe.  The binary search, however, only ever moves the threshold —
    so [create] sorts each row's columns by cell value once, and each
    probe then derives the new bitsets by sliding a per-row prefix
    pointer, touching only the cells whose membership actually changed.
    A full search costs O(s·|F|·log|F|) setup plus O(changed cells) per
    probe, instead of O(s·|F|) per probe.

    For every ε, [Incremental.solve t ~eps] returns exactly what
    [solve matrix ~eps] returns — the probe sequence may move the
    threshold in either direction. *)
module Incremental : sig
  type t

  val create : ?domains:int -> Regret_matrix.t -> t
  (** Sort every row's columns by cell value (parallel over rows,
      deterministic: ties break on column index) and start with the
      empty prefix, i.e. a threshold below every cell. *)

  val rows : t -> int

  val rebase : ?domains:int -> t -> Regret_matrix.t -> carried:int array -> t
  (** [rebase old matrix ~carried] is [create matrix] at reduced cost:
      [carried.(i)] names the row of [old] whose matrix cells are
      bitwise identical to row [i] of [matrix] ([-1] when there is no
      such row).  Carried rows share [old]'s per-row sorted orders by
      reference (they are immutable after creation); only fresh rows pay
      the tandem sort.  Probe state (bitsets, prefix positions) starts
      empty, exactly as after [create].  The caller owns the cell-equality
      contract — pair with {!Regret_matrix.update} returning an empty
      changed-column list.
      @raise Invalid_argument on a column-count or [carried] mismatch. *)

  val advance : ?domains:int -> t -> eps:float -> unit
  (** Slide every row's prefix pointer to the new threshold without
      solving; exposed for tests and custom probe loops. *)

  val solve : ?solver:solver -> ?domains:int -> t -> eps:float -> int array option
  (** [solve t ~eps] = [Mrst.solve matrix ~eps] for the matrix [t] was
      created from, at incremental cost. *)

  val advance_many : ?domains:int -> t -> eps:float array -> int array array
  (** [advance_many t ~eps] resolves the whole ascending threshold
      schedule [eps] in a single pass over each row's sorted values:
      result[j].(i) is row [i]'s prefix length at threshold [eps.(j)] —
      bit-identical to the [t.pos] states a sequence of
      [advance ~eps:eps.(j)] calls would traverse.  The structure is
      left at the last (largest) threshold, with its bitsets slid there
      directly.  Feed the recorded positions to {!solve_at} to probe
      any schedule entry without re-comparing cell values — one
      row-touch per batch instead of one per probe.
      @raise Invalid_argument if [eps] is empty or not ascending (in
      [Float.compare] order). *)

  val solve_at :
    ?solver:solver -> ?domains:int -> t -> pos:int array -> int array option
  (** [solve_at t ~pos] slides every row's bitset to the recorded prefix
      length [pos.(i)] (no value comparisons) and solves the cover:
      equal to [solve t ~eps] for the threshold that produced [pos] via
      {!advance_many}.
      @raise Invalid_argument if [pos] has the wrong length or an entry
      outside [0, cols]. *)
end
