(** The discretized regret matrix M (§4.2–4.3).

    Rows are candidate tuples (the skyline suffices, by Theorem 1),
    columns are the discretized ranking functions; cell [(i, f)] is the
    regret ratio a user of function [f] suffers if tuple [i] alone is
    kept.  HD-RRMS and HD-GREEDY both operate on this matrix.

    The storage is a single flat row-major unboxed float buffer; column
    subsets ({!select_cols}) are zero-copy views onto the same buffer.
    Matrices are immutable after {!build}. *)

type t

val build :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  funcs:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t array ->
  t
(** [build ~funcs points] computes the full matrix in O(|points|·|F|·m),
    spread over [domains] worker domains (default:
    {!Rrms_parallel.Pool.default_size}; the result is bit-identical for
    every domain count).  Rows are exactly the given points (pre-filter
    to the skyline for the paper's setting).  Columns whose best
    database score is not positive yield all-zero regret.  When [guard]
    carries a cell cap, the [rows × cols] estimate is checked {e
    before} allocating.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if either
    array is empty, [Resource_limit] if the matrix would exceed the
    guard's cell cap. *)

val update :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  t ->
  funcs:Rrms_geom.Vec.t array ->
  points:Rrms_geom.Vec.t array ->
  carried:int array ->
  t * int array
(** [update t ~funcs ~points ~carried] is
    [(build ~funcs points, changed_cols)] computed incrementally:
    [points] is the {e new} row set and [carried.(i)] names the old row
    of [t] holding the same point ([-1] for a fresh row).  Columns whose
    best score provably did not move (the old best is positive, a
    carried row's [0.] cell witnesses that it is still attained, and no
    fresh row exceeds it) blit every carried cell verbatim; all other
    columns rerun {!build}'s best scan and cell kernel in the new row
    order.  The result is bit-identical to [build ~funcs points] for
    every split of rows into carried/fresh and every domain count.
    [changed_cols] lists (ascending) the columns whose best score is not
    bitwise equal to [t]'s — when it is empty, every carried row's cells
    are unchanged from [t], which is what lets MRST probe state rebase
    ({!Mrst.Incremental.rebase}).  [funcs] must be the grid [t] was
    built with and carried points must be the identical values.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on empty
    points, a funcs/width mismatch, or a bad [carried] spec;
    [Resource_limit] past the guard's cell cap. *)

val append_rows :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  t ->
  funcs:Rrms_geom.Vec.t array ->
  points:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t array ->
  t * int array
(** [append_rows t ~funcs ~points fresh] extends the matrix with new
    bottom rows: [points] are [t]'s current rows (in order), [fresh]
    the appended points.  Equivalent to
    [update ~points:(points ⧺ fresh) ~carried:[|0;…;n-1;-1;…|]].
    @raise Rrms_guard.Guard.Error.Guard_error as {!update}, and
    [Invalid_input] when [fresh] is empty or [points] does not match
    [rows t]. *)

val mask_rows :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  t ->
  funcs:Rrms_geom.Vec.t array ->
  points:Rrms_geom.Vec.t array ->
  keep:int array ->
  t * int array
(** [mask_rows t ~funcs ~points ~keep] retires rows: the result has
    exactly the rows [keep] (old indices, in the given order), i.e.
    [update ~points:(points.(keep.(0)), …) ~carried:keep].
    @raise Rrms_guard.Guard.Error.Guard_error as {!update}, and
    [Invalid_input] when [keep] is empty or out of range. *)

val best_scores :
  ?domains:int ->
  funcs:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t array ->
  float array
(** [best_scores ~funcs points] is phase one of {!build} on its own: the
    per-column best database score over [points], bit-identical to the
    scores {!build} would compute on the same points.  A shard computes
    this over its own tuples; {!merge_best} combines the shards.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if either
    array is empty. *)

val merge_best : float array list -> float array
(** [merge_best parts] is the pointwise maximum of per-shard best-score
    vectors.  Because every score is a plain float maximum, the merged
    vector equals — bit for bit — the best scores {!build} computes over
    the union of the shards' points, for any grouping of points into
    shards.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on an
    empty list or mismatched lengths. *)

val fill_row :
  funcs:Rrms_geom.Vec.t array ->
  best:float array ->
  float array ->
  row:int ->
  Rrms_geom.Vec.t ->
  unit
(** [fill_row ~funcs ~best data ~row p] writes point [p]'s regret cells
    into rows [row] of the zero-initialized flat buffer [data] (row
    width = [length best]), using exactly {!build}'s cell kernel.
    Filling every row of a zero buffer this way and calling {!import}
    with the {!merge_best}-merged best vector reconstructs {!build}'s
    matrix over the same points bit-for-bit — this is the shard
    row-block path of the serving layer.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [funcs] and [best] disagree; [Invalid_argument] when [row] is out of
    range for [data]. *)

val select_cols : t -> int array -> t
(** [select_cols t cols] is the sub-matrix of the given function
    columns, in the given order — a zero-copy {e view} sharing the
    parent's flat buffer through a column map (a view of a view composes
    the maps, staying one indirection deep).  Cell values and per-column
    best scores are the parent's verbatim, so solving on the sub-matrix
    is bit-identical to solving on a matrix built from the corresponding
    function subset.  Pairs with {!Discretize.subgrid_indices} to serve
    a γ'-grid query from a cached γ-grid matrix; use {!materialize}
    when the result is kept long-term (e.g. stored as an artifact).
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on a bad
    column index or when [cols] is empty. *)

val materialize : t -> t
(** [materialize t] is [t] with its cells gathered into a fresh
    contiguous buffer (a no-op, returning [t] itself, when [t] is
    already contiguous).  Use after {!select_cols} when the view will
    outlive the parent matrix or be scanned many times: a materialized
    matrix drops the parent buffer reference and reads stride-1. *)

val is_view : t -> bool
(** [is_view t] is [true] iff [t] reads through a non-trivial column
    map, i.e. {!materialize} would gather. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get t i f] = M\[i, f\].
    @raise Invalid_argument when [i] or [f] is out of range. *)

val column_best_score : t -> int -> float
(** The database-wide best score of column [f]'s function. *)

val blit_row : t -> int -> float array -> unit
(** [blit_row t i dst] copies row [i]'s [cols t] cells into
    [dst.(0 .. cols t - 1)] — a single [Array.blit] on contiguous
    matrices, a gather on views.
    @raise Invalid_argument if [i] is out of range or [dst] is shorter
    than [cols t]. *)

val row_update_mins : t -> int -> float array -> unit
(** [row_update_mins t i mins] folds row [i] into the per-column running
    minima: [mins.(f) <- min mins.(f) M[i,f]] for every column, using
    the same [<] comparison as {!regret_of_rows}. *)

val row_worst_against : t -> int -> float array -> float
(** [row_worst_against t i current] =
    [max_f (Float.min current.(f) M[i,f])]: the maximum regret of a set
    whose per-column minima are [current] after adding row [i].  The
    inner HD-GREEDY sweep, one contiguous row scan per candidate. *)

val export : t -> float array * float array
(** [export t] is [(best, cells)]: the per-column best scores and the
    row-major cells of the materialized matrix — everything a durable
    artifact store needs to reconstruct [t] byte-for-byte with
    {!import}.  Both arrays are fresh copies. *)

val import : rows:int -> best:float array -> cells:float array -> t
(** [import ~rows ~best ~cells] rebuilds a contiguous matrix from an
    {!export}.  The cells array is adopted (not copied); the distinct
    cache starts empty and is recomputed deterministically from the
    cells, so a rehydrated matrix is observationally identical to the
    one exported.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when the
    dimensions are empty or [cells] is not [rows × length best]. *)

val distinct_values : t -> float array
(** All distinct cell values, sorted ascending — the binary-search
    domain of Algorithm 4.  Includes at least [0.] when the matrix has a
    zero cell.  Computed once per matrix (one flatten + one sort + one
    dedup scan) and cached — matrices are immutable, so the cache never
    invalidates and repeated solver calls on a stored artifact pay
    nothing.  The returned array is the cache itself: treat it as
    read-only. *)

val regret_of_rows : t -> int array -> float
(** [regret_of_rows t rs] = the discretized maximum regret of keeping
    the row subset [rs]: [max_f min_{i∈rs} M[i,f]].
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if [rs]
    is empty, [Invalid_argument] on an out-of-range row index. *)
