(** The discretized regret matrix M (§4.2–4.3).

    Rows are candidate tuples (the skyline suffices, by Theorem 1),
    columns are the discretized ranking functions; cell [(i, f)] is the
    regret ratio a user of function [f] suffers if tuple [i] alone is
    kept.  HD-RRMS and HD-GREEDY both operate on this matrix. *)

type t

val build :
  ?domains:int ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  funcs:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t array ->
  t
(** [build ~funcs points] computes the full matrix in O(|points|·|F|·m),
    spread over [domains] worker domains (default:
    {!Rrms_parallel.Pool.default_size}; the result is bit-identical for
    every domain count).  Rows are exactly the given points (pre-filter
    to the skyline for the paper's setting).  Columns whose best
    database score is not positive yield all-zero regret.  When [guard]
    carries a cell cap, the [rows × cols] estimate is checked {e
    before} allocating.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if either
    array is empty, [Resource_limit] if the matrix would exceed the
    guard's cell cap. *)

val select_cols : t -> int array -> t
(** [select_cols t cols] is the sub-matrix of the given function
    columns, in the given order — cells and per-column best scores are
    copied verbatim, so solving on the sub-matrix is bit-identical to
    solving on a matrix built from the corresponding function subset.
    Pairs with {!Discretize.subgrid_indices} to serve a γ'-grid query
    from a cached γ-grid matrix.
    @raise Invalid_argument on a bad column index,
    [Guard_error Invalid_input] when [cols] is empty. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get t i f] = M\[i, f\]. *)

val column_best_score : t -> int -> float
(** The database-wide best score of column [f]'s function. *)

val distinct_values : t -> float array
(** All distinct cell values, sorted ascending — the binary-search
    domain of Algorithm 4.  Includes at least [0.] when the matrix has a
    zero cell.  One flatten + one sort + one dedup scan, so
    duplicate-heavy matrices pay O(s·|F|·log(s·|F|)) once. *)

val regret_of_rows : t -> int array -> float
(** [regret_of_rows t rs] = the discretized maximum regret of keeping
    the row subset [rs]: [max_f min_{i∈rs} M[i,f]].
    @raise Invalid_argument if [rs] is empty. *)
