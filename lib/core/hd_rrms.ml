module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs

module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"HD-RRMS solves" "rrms_hd_rrms_solves_total"

  (* Algorithm 4 probe accounting: each binary-search step either hits
     the threshold-index cache or pays one (incremental) MRST solve. *)
  let probes =
    Obs.Counter.make ~help:"binary-search probes issued by HD-RRMS"
      "rrms_hd_rrms_probes_total"

  let cache_hits =
    Obs.Counter.make ~help:"probes answered from the threshold-index cache"
      "rrms_hd_rrms_probe_cache_hits_total"

  let cache_misses =
    Obs.Counter.make ~help:"probes that required an MRST solve"
      "rrms_hd_rrms_probe_cache_misses_total"

  (* Paper quantity gamma: discretization actually used (post-shrink). *)
  let gamma_used =
    Obs.Gauge.make ~help:"gamma used by the last HD-RRMS solve"
      "rrms_hd_rrms_gamma_used"
end

(* Per-solve cost provenance (the paper's cost-model quantities for one
   answer, as opposed to the process-cumulative Metrics counters): how
   many binary-search probes ran and how many of them paid a fresh MRST
   solve vs. rode the threshold-index cache. *)
type cost = { probes : int; probes_fresh : int; probes_cached : int }

type result = {
  selected : int array;
  eps_min : float;
  guarantee : float;
  discretized_regret : float;
  gamma_used : int;
  quality : Guard.quality;
  cost : cost;
}

type budget = Strict | Inflated

type search = {
  found : (int array * float) option;
  probes : int;
  probes_fresh : int;
  probes_cached : int;
  stopped : Guard.reason option;
}

(* Algorithm 4: binary search over the sorted distinct cell values; each
   probe asks MRST whether some row set of size <= max_size satisfies
   the threshold (max_size = r for the §6.1 rule; r·H(|F|) for §4.4.3's
   alternative).  Probes go through Mrst.Incremental, and threshold work
   is batched: the midpoints the next [batch_depth] search steps can
   visit are known ahead of time (they form the implicit search tree on
   [low, high]), so one [advance_many] pass resolves the whole
   candidate schedule per row and each probe then slides bitsets to a
   precomputed position without re-comparing cell values.  The visited
   probe sequence, the per-threshold answers, and the cache behaviour
   are exactly those of the plain adaptive binary search.

   The guard is consulted at probe boundaries only, so a degraded
   search is deterministic for a fixed probe count: the probe sequence
   depends only on the matrix, never on the pool size or timing. *)
let batch_depth = 4

let search_on_matrix ?solver ?domains ?(guard = Guard.Budget.unlimited)
    ?max_size ?inc matrix ~r =
  let max_size = match max_size with Some s -> s | None -> r in
  let values = Regret_matrix.distinct_values matrix in
  let inc =
    (* A caller-supplied structure (the serve layer pools them across
       queries and rebases them across mutations) must belong to this
       matrix; probe state may be anywhere — every slide is
       bidirectional from the current position. *)
    match inc with
    | Some i when Mrst.Incremental.rows i = Regret_matrix.rows matrix -> i
    | Some _ ->
        Guard.Error.invalid_input
          "Hd_rrms.search_on_matrix: incremental state does not match the \
           matrix"
    | None -> Mrst.Incremental.create ?domains matrix
  in
  let cache : (int, int array option) Hashtbl.t = Hashtbl.create 16 in
  (* Per-row prefix positions for the current batch's candidate
     midpoints, keyed by value index; rebuilt once per batch. *)
  let positions : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let fresh = ref 0 in
  let cached = ref 0 in
  let probe mid =
    match Hashtbl.find_opt cache mid with
    | Some answer ->
        Obs.Counter.incr Metrics.cache_hits;
        incr cached;
        answer
    | None ->
        Obs.Counter.incr Metrics.cache_misses;
        incr fresh;
        let answer =
          match Hashtbl.find_opt positions mid with
          | Some pos -> Mrst.Incremental.solve_at ?solver ?domains inc ~pos
          | None ->
              (* Off-schedule threshold (the degraded fallback's top
                 probe): pay the value-comparing slide. *)
              Mrst.Incremental.solve ?solver ?domains inc ~eps:values.(mid)
        in
        Hashtbl.add cache mid answer;
        answer
  in
  let prepare_batch lo hi =
    Hashtbl.reset positions;
    let mids = ref [] in
    (* Both branches of every step, [batch_depth] levels deep: each
       interval's midpoint is distinct, and every midpoint the adaptive
       walk can reach within the batch is among them. *)
    let rec collect lo hi d =
      if d > 0 && lo <= hi then begin
        let mid = (lo + hi) / 2 in
        if not (Hashtbl.mem cache mid) then mids := mid :: !mids;
        collect lo (mid - 1) (d - 1);
        collect (mid + 1) hi (d - 1)
      end
    in
    collect lo hi batch_depth;
    match !mids with
    | [] -> ()
    | l ->
        let mids = Array.of_list l in
        Array.sort Stdlib.compare mids;
        let schedule = Array.map (fun m -> values.(m)) mids in
        let pos = Mrst.Incremental.advance_many ?domains inc ~eps:schedule in
        Array.iteri (fun j m -> Hashtbl.add positions m pos.(j)) mids
  in
  let best = ref None in
  let stopped = ref None in
  let probes = ref 0 in
  let low = ref 0 and high = ref (Array.length values - 1) in
  (try
     while !low <= !high do
       (match Guard.Budget.stop_reason guard with
       | Some reason ->
           stopped := Some reason;
           raise Exit
       | None -> ());
       prepare_batch !low !high;
       let steps = ref 0 in
       while !low <= !high && !steps < batch_depth do
         (match Guard.Budget.stop_reason guard with
         | Some reason ->
             stopped := Some reason;
             raise Exit
         | None -> ());
         Guard.Budget.note_probe guard;
         incr probes;
         incr steps;
         Obs.Counter.incr Metrics.probes;
         let mid = (!low + !high) / 2 in
         match probe mid with
         | Some rows when Array.length rows <= max_size ->
             best := Some (rows, values.(mid));
             high := mid - 1
         | Some _ | None -> low := mid + 1
       done
     done
   with Exit -> ());
  (* Anytime fallback: if the budget stopped the search before any
     acceptance, one probe at the largest distinct value always
     succeeds (every row satisfies every column there, so the cover is
     a single row) and its certificate is still exact for that
     threshold.  One bounded extra probe buys a non-empty, certified,
     deterministic degraded answer. *)
  (match (!best, !stopped) with
  | None, Some _ ->
      let top = Array.length values - 1 in
      if top >= 0 then begin
        match probe top with
        | Some rows when Array.length rows <= max_size ->
            best := Some (rows, values.(top))
        | Some _ | None -> ()
      end
  | _ -> ());
  {
    found = !best;
    probes = !probes;
    probes_fresh = !fresh;
    probes_cached = !cached;
    stopped = !stopped;
  }

let solve_on_matrix ?solver ?domains ?max_size matrix ~r =
  (search_on_matrix ?solver ?domains ?max_size matrix ~r).found

(* Pick the discretization that fits the guard's cell cap: the largest
   gamma' <= gamma with s·(gamma'+1)^(m-1) cells under the cap.  Raises
   Resource_limit when even gamma' = 1 does not fit. *)
let shrink_gamma ~guard ~rows ~gamma ~m =
  match Guard.Budget.max_cells guard with
  | None -> (gamma, None)
  | Some cap -> (
      match Discretize.fit_gamma ~rows ~max_cells:cap ~gamma ~m with
      | Some g when g = gamma -> (gamma, None)
      | Some g ->
          let requested = Discretize.matrix_cells ~rows ~gamma ~m in
          ( g,
            Some
              (Guard.Cell_cap
                 { requested; cap; gamma_from = gamma; gamma_to = g }) )
      | None ->
          Guard.Error.resource_limit
            ~what:"regret matrix cells (even at gamma = 1)"
            ~requested:(Discretize.matrix_cells ~rows ~gamma:1 ~m)
            ~limit:cap)

(* The back half of Algorithm 4, starting from precomputed artifacts: a
   regret matrix over the skyline rows plus the skyline index map.  Both
   [solve] and the resident query server (lib/serve) end up here, so a
   server answer on cached artifacts is bit-identical to a cold
   [solve] by construction. *)
let solve_prepared ?solver ?(budget = Strict) ?domains
    ?(guard = Guard.Budget.unlimited) ?inc ~skyline ~gamma_used ~m matrix ~r =
  if r < 1 then
    Guard.Error.invalid_input "Hd_rrms.solve_prepared: r must be >= 1";
  if Array.length skyline <> Regret_matrix.rows matrix then
    Guard.Error.invalid_input
      (Printf.sprintf
         "Hd_rrms.solve_prepared: skyline has %d entries, matrix has %d rows"
         (Array.length skyline) (Regret_matrix.rows matrix));
  Obs.Gauge.set_int Metrics.gamma_used gamma_used;
  let max_size =
    match budget with
    | Strict -> r
    | Inflated ->
        (* Chvátal: greedy cover <= H(|F|)·opt <= (ln|F| + 1)·opt, so a
           size-r optimal cover always passes this acceptance bound. *)
        let h = log (float_of_int (Regret_matrix.cols matrix)) +. 1. in
        max r (int_of_float (ceil (float_of_int r *. h)))
  in
  let search =
    Obs.Span.with_ "hd_rrms.search" (fun () ->
        search_on_matrix ?solver ?domains ~guard ~max_size ?inc matrix ~r)
  in
  match search.found with
  | Some (rows, eps_min) ->
      let selected = Array.map (fun i -> skyline.(i)) rows in
      let discretized_regret = Regret_matrix.regret_of_rows matrix rows in
      let reasons =
        match search.stopped with Some s -> [ s ] | None -> []
      in
      {
        selected;
        eps_min;
        (* Theorem 4 lifts the set's achieved grid regret, which is
           never above the accepted threshold — so certifying from
           [discretized_regret] is both valid and the tighter bound,
           including for budget-degraded answers. *)
        guarantee =
          Discretize.theorem4_bound ~gamma:gamma_used ~m
            ~eps:discretized_regret;
        discretized_regret;
        gamma_used;
        quality =
          (if reasons = [] then Guard.Exact else Guard.Degraded reasons);
        cost =
          {
            probes = search.probes;
            probes_fresh = search.probes_fresh;
            probes_cached = search.probes_cached;
          };
      }
  | None ->
      (* Unreachable for a well-formed matrix: at the largest distinct
         value every row satisfies every column, so any single row is a
         cover of size 1 <= r — and the degraded fallback probes exactly
         that threshold. *)
      assert false

let solve ?(gamma = 4) ?solver ?(budget = Strict) ?funcs ?domains
    ?(guard = Guard.Budget.unlimited) points ~r =
  if r < 1 then Guard.Error.invalid_input "Hd_rrms.solve: r must be >= 1";
  if Array.length points = 0 then
    Guard.Error.invalid_input "Hd_rrms.solve: empty input";
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "hd_rrms.solve" (fun () ->
  let m = Array.length points.(0) in
  (* Theorem 1: the optimal set lives on the skyline. *)
  let sky = Obs.Span.with_ "hd_rrms.skyline" (fun () ->
      Rrms_skyline.Skyline.sfs ?domains points)
  in
  let s = Array.length sky in
  let gamma_used, funcs, shrink_reason =
    match funcs with
    | Some f ->
        (* Explicit function set: the cell cap is a hard check — there
           is no gamma to shrink. *)
        Guard.Budget.check_cells guard ~what:"regret matrix cells"
          (s * Array.length f);
        (gamma, f, None)
    | None ->
        let g, reason = shrink_gamma ~guard ~rows:s ~gamma ~m in
        (g, Discretize.grid ~gamma:g ~m, reason)
  in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let matrix =
    Obs.Span.with_ "hd_rrms.matrix" (fun () ->
        Regret_matrix.build ?domains ~guard ~funcs sky_points)
  in
  let res =
    solve_prepared ?solver ~budget ?domains ~guard ~skyline:sky ~gamma_used
      ~m matrix ~r
  in
  match shrink_reason with
  | None -> res
  | Some c ->
      {
        res with
        quality =
          (match res.quality with
          | Guard.Exact -> Guard.Degraded [ c ]
          | Guard.Degraded rs -> Guard.Degraded (c :: rs));
      })
