type result = {
  selected : int array;
  eps_min : float;
  guarantee : float;
  discretized_regret : float;
}

type budget = Strict | Inflated

(* Algorithm 4: binary search over the sorted distinct cell values; each
   probe asks MRST whether some row set of size <= max_size satisfies
   the threshold (max_size = r for the §6.1 rule; r·H(|F|) for §4.4.3's
   alternative).  Probes go through Mrst.Incremental, so each one costs
   O(cells crossing the threshold) instead of an O(s·|F|) matrix rescan,
   and a cache keyed by the threshold's index in the sorted value array
   makes repeated thresholds free. *)
let solve_on_matrix ?solver ?domains ?max_size matrix ~r =
  let max_size = match max_size with Some s -> s | None -> r in
  let values = Regret_matrix.distinct_values matrix in
  let inc = Mrst.Incremental.create ?domains matrix in
  let cache : (int, int array option) Hashtbl.t = Hashtbl.create 16 in
  let probe mid =
    match Hashtbl.find_opt cache mid with
    | Some answer -> answer
    | None ->
        let answer = Mrst.Incremental.solve ?solver ?domains inc ~eps:values.(mid) in
        Hashtbl.add cache mid answer;
        answer
  in
  let best = ref None in
  let low = ref 0 and high = ref (Array.length values - 1) in
  while !low <= !high do
    let mid = (!low + !high) / 2 in
    (match probe mid with
    | Some rows when Array.length rows <= max_size ->
        best := Some (rows, values.(mid));
        high := mid - 1
    | Some _ | None -> low := mid + 1)
  done;
  !best

let solve ?(gamma = 4) ?solver ?(budget = Strict) ?funcs ?domains points ~r =
  if r < 1 then invalid_arg "Hd_rrms.solve: r must be >= 1";
  if Array.length points = 0 then invalid_arg "Hd_rrms.solve: empty input";
  let m = Array.length points.(0) in
  let funcs =
    match funcs with Some f -> f | None -> Discretize.grid ~gamma ~m
  in
  (* Theorem 1: the optimal set lives on the skyline. *)
  let sky = Rrms_skyline.Skyline.sfs ?domains points in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let matrix = Regret_matrix.build ?domains ~funcs sky_points in
  let max_size =
    match budget with
    | Strict -> r
    | Inflated ->
        (* Chvátal: greedy cover <= H(|F|)·opt <= (ln|F| + 1)·opt, so a
           size-r optimal cover always passes this acceptance bound. *)
        let h = log (float_of_int (Array.length funcs)) +. 1. in
        max r (int_of_float (ceil (float_of_int r *. h)))
  in
  match solve_on_matrix ?solver ?domains ~max_size matrix ~r with
  | Some (rows, eps_min) ->
      let selected = Array.map (fun i -> sky.(i)) rows in
      {
        selected;
        eps_min;
        guarantee = Discretize.theorem4_bound ~gamma ~m ~eps:eps_min;
        discretized_regret = Regret_matrix.regret_of_rows matrix rows;
      }
  | None ->
      (* Unreachable for a well-formed matrix: at the largest distinct
         value every row satisfies every column, so any single row is a
         cover of size 1 <= r. *)
      assert false
