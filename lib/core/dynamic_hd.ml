open Rrms_geom

type t = {
  r : int;
  gamma : int;
  mutable dim : int option; (* fixed by the first tuple seen *)
  mutable store : Vec.t option array;
  mutable used : int;
  mutable live : int;
  mutable dirty : bool;
  mutable selection : int array; (* handles *)
  mutable regret : float;
  mutable skyline : int array; (* handles *)
  mutable recomputes : int;
  (* Candidate buffer: one slot per γ-grid direction holding the live
     handle with the best score in that direction, or -1 when the slot
     is stale (its holder was removed) and must be lazily rebuilt.
     Initialized on the first tuple, once the dimension is known. *)
  mutable dirs : Vec.t array;
  mutable dir_best : int array;
}

let check_tuple t p =
  if Array.length p < 2 then
    invalid_arg "Dynamic_hd: tuples must have dimension >= 2";
  (match t.dim with
  | Some m when m <> Array.length p ->
      invalid_arg "Dynamic_hd: inconsistent tuple dimension"
  | Some _ -> ()
  | None ->
      let m = Array.length p in
      t.dim <- Some m;
      t.dirs <- Discretize.grid ~gamma:t.gamma ~m;
      t.dir_best <- Array.make (Array.length t.dirs) (-1));
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0. then
        invalid_arg "Dynamic_hd: values must be finite and non-negative")
    p

let create ?(gamma = 4) ~r points =
  if r < 1 then invalid_arg "Dynamic_hd.create: r must be >= 1";
  let n = Array.length points in
  let t =
    {
      r;
      gamma;
      dim = None;
      store = Array.make (max 8 (2 * n)) None;
      used = 0;
      live = 0;
      dirty = true;
      selection = [||];
      regret = 0.;
      skyline = [||];
      recomputes = 0;
      dirs = [||];
      dir_best = [||];
    }
  in
  Array.iter
    (fun p ->
      check_tuple t p;
      t.store.(t.used) <- Some p;
      t.used <- t.used + 1;
      t.live <- t.live + 1)
    points;
  t

let size t = t.live

let live_handles t =
  let acc = ref [] in
  for h = t.used - 1 downto 0 do
    if t.store.(h) <> None then acc := h :: !acc
  done;
  Array.of_list !acc

let recompute t =
  let handles = live_handles t in
  if Array.length handles = 0 then begin
    t.selection <- [||];
    t.regret <- 0.;
    t.skyline <- [||]
  end
  else begin
    let points =
      Array.map
        (fun h -> match t.store.(h) with Some p -> p | None -> assert false)
        handles
    in
    let sky = Rrms_skyline.Skyline.sfs points in
    t.skyline <- Array.map (fun i -> handles.(i)) sky;
    let res = Hd_rrms.solve ~gamma:t.gamma points ~r:t.r in
    t.selection <- Array.map (fun i -> handles.(i)) res.Hd_rrms.selected;
    t.regret <- Regret.exact_lp ~selected:res.Hd_rrms.selected points
  end;
  t.recomputes <- t.recomputes + 1;
  t.dirty <- false

let ensure t = if t.dirty then recompute t

let grow t =
  if t.used = Array.length t.store then begin
    let bigger = Array.make (2 * Array.length t.store) None in
    Array.blit t.store 0 bigger 0 t.used;
    t.store <- bigger
  end

let covered t p =
  Array.exists
    (fun h ->
      match t.store.(h) with
      | Some q ->
          let ge = ref true in
          Array.iteri (fun j x -> if x < p.(j) then ge := false) q;
          !ge
      | None -> false)
    t.skyline

(* Maintained invariant: a non-stale slot (-1 is stale) always holds
   the live argmax of its direction — inserts displace it on a strictly
   better score, removals of the holder mark the slot stale, and stale
   slots are rebuilt only when read ([direction_maxima]) by scanning
   live handles ascending.  Strict [>] everywhere keeps ties on the
   lowest handle, so the lazy rebuild and the eager displacement agree
   on every slot. *)
let insert t p =
  check_tuple t p;
  grow t;
  let handle = t.used in
  (* A tuple strictly beating some maintained direction maximum cannot
     be dominated (a dominator would score at least as high), so it is
     a new skyline point: mark dirty without the O(|sky|·m) scan. *)
  let beats = ref false in
  Array.iteri
    (fun d h ->
      if h >= 0 then
        match t.store.(h) with
        | Some q ->
            if Vec.dot t.dirs.(d) p > Vec.dot t.dirs.(d) q then begin
              beats := true;
              t.dir_best.(d) <- handle
            end
        | None -> t.dir_best.(d) <- -1)
    t.dir_best;
  t.store.(handle) <- Some p;
  t.used <- t.used + 1;
  t.live <- t.live + 1;
  if not t.dirty then
    if !beats then t.dirty <- true
    else if not (covered t p) then t.dirty <- true;
  handle

let remove t handle =
  if handle < 0 || handle >= t.used then
    invalid_arg "Dynamic_hd.remove: unknown handle";
  match t.store.(handle) with
  | None -> ()
  | Some _ ->
      t.store.(handle) <- None;
      t.live <- t.live - 1;
      (* The removed tuple may have been a per-direction maximum; its
         slots go stale here and are rebuilt lazily on the next read. *)
      Array.iteri
        (fun d h -> if h = handle then t.dir_best.(d) <- -1)
        t.dir_best;
      if (not t.dirty) && Array.mem handle t.skyline then t.dirty <- true

let direction_maxima t =
  Array.iteri
    (fun d h ->
      if h < 0 then begin
        let dir = t.dirs.(d) in
        let best = ref (-1) and best_v = ref neg_infinity in
        for c = 0 to t.used - 1 do
          match t.store.(c) with
          | Some q ->
              let v = Vec.dot dir q in
              if v > !best_v then begin
                best_v := v;
                best := c
              end
          | None -> ()
        done;
        t.dir_best.(d) <- !best
      end)
    t.dir_best;
  Array.copy t.dir_best

let get t handle =
  if handle < 0 || handle >= t.used then
    invalid_arg "Dynamic_hd.get: unknown handle";
  t.store.(handle)

let selection t =
  ensure t;
  Array.copy t.selection

let skyline t =
  ensure t;
  Array.copy t.skyline

let regret t =
  ensure t;
  t.regret

let recompute_count t = t.recomputes
let is_dirty t = t.dirty
