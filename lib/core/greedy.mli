(** GREEDY: the LP-based baseline of Nanongkai et al. (VLDB'10),
    re-implemented as the paper's primary high-dimensional competitor
    (§4.1, §6.1).

    Start from a seed tuple; then repeatedly add the tuple whose
    worst-case regret with respect to the current selection is largest,
    where each candidate's regret is an LP
    ({!Regret.point_regret_lp}).  Runs O(n·r) LPs, which is what makes
    it slow at scale (Figures 13–15); §4.1 also shows its regret can be
    arbitrarily worse than optimal ({!Rrms_dataset} provides the
    gadget).

    The paper traces much of GREEDY's observed regret to its seed — the
    published algorithm just takes the maximum of the first attribute —
    and sketches the obvious fixes in §6.2; all three are implemented: *)

type seed =
  | First_attribute
      (** the published rule: argmax of attribute 1 (§4.1's critique) *)
  | Best_singleton
      (** the skyline tuple with the smallest single-tuple regret
          (one LP per skyline tuple to seed) *)
  | All_seeds
      (** §6.2's brute-force fix: rerun greedy from every skyline seed
          and keep the best outcome — multiplies the cost by s *)

type result = {
  selected : int array;
      (** indices into the input; exactly [min r n] on an [Exact] run,
          possibly fewer (but ≥ 1) under a budget stop *)
  regret_lp : float;
      (** exact maximum regret ratio of the selection
          ({!Regret.exact_lp}); a lower bound when the final sweep
          itself was cut short ([quality] says so) *)
  skipped_lps : int;
      (** candidate/evaluation LPs abandoned on a structured
          [Numerical] simplex error (unbounded or degenerate-stalled)
          instead of crashing the run *)
  quality : Rrms_guard.Guard.quality;
      (** [Exact], or [Degraded] with the deadline stop and/or
          [Numerical_skips] count *)
}

val solve :
  ?eps:float ->
  ?restrict_to_skyline:bool ->
  ?seed:seed ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  Rrms_geom.Vec.t array ->
  r:int ->
  result
(** [solve points ~r].  [seed] defaults to [First_attribute] (the
    published algorithm).  [restrict_to_skyline] (default [false],
    matching the published algorithm) evaluates candidate LPs only on
    skyline tuples — an easy speedup that does not change the selection
    except through tie-breaking, provided for the ablation benches.

    The [guard] is checked between augmentation steps (each counts one
    probe), between seeds under [All_seeds] / [Best_singleton], and
    inside the final exact-regret sweep
    ({!Regret.exact_lp_guarded}).  The seed tuple is always selected,
    so the result is never empty; a budget stop truncates the
    selection and is reported through [quality].
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [r < 1] or the input is empty. *)
