(** Dataset deltas: the core maintenance layer of the mutation
    subsystem.

    A mutation batch is applied with sequential left-to-right semantics
    to produce a {!plan}: the new row array plus the index
    correspondence between the old and new datasets.  The plan is what
    every incremental artifact step consumes — skyline maintenance
    here, matrix row carry-over via {!Regret_matrix.update}, MRST probe
    reuse via {!Mrst.Incremental.rebase}, and the serve layer's
    delta-scoped result-cache invalidation. *)

type mutation =
  | Insert of Rrms_geom.Vec.t  (** append a tuple at the end *)
  | Delete of int  (** remove the tuple at this current index *)
  | Upsert of int * Rrms_geom.Vec.t
      (** replace the tuple at this current index; the old identity is
          destroyed (artifact-wise a delete-at + insert-at: the row
          keeps its position but counts as fresh) *)

type plan = {
  rows : Rrms_geom.Vec.t array;  (** the mutated dataset's rows *)
  old_to_new : int array;
      (** base index → new index; [-1] when deleted or value-destroyed
          by an upsert *)
  new_to_old : int array;
      (** new index → base index it was carried from; [-1] for a fresh
          value (insert or upsert) *)
  fresh : int array;  (** new indices with no base origin, ascending *)
}

val apply : ?dim:int -> Rrms_geom.Vec.t array -> mutation list -> plan
(** [apply rows muts] executes the batch in order.  Indices are
    interpreted against the {e current} sequence at each step (so a
    delete shifts everything after it, exactly like applying the ops
    one at a time).  Inserted/upserted values must have the base
    dimensionality ([dim] overrides it, required for an empty base) and
    be finite and non-negative.  The result may be empty — callers that
    must keep a dataset resident reject that case themselves.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] on a bad
    index, a dimension mismatch, or a non-finite / negative value. *)

type skyline_path =
  | Remap  (** pure index remap of the old skyline *)
  | Merge  (** {!Rrms_skyline.Skyline.merge_partitions} of old ∪ fresh *)
  | Rebuild  (** full from-scratch {!Rrms_skyline.Skyline.sfs} *)

val path_name : skyline_path -> string

val update_skyline :
  ?domains:int -> plan -> old_sky:int array -> int array * skyline_path
(** [update_skyline plan ~old_sky] is
    [Rrms_skyline.Skyline.sfs plan.rows] — bit-identical indices in
    bit-identical order — computed by the cheapest valid path.  When
    every old skyline member survives with its value intact, surviving
    non-skyline rows are still dominated by surviving members, so
    merging [remap(old_sky)] with [plan.fresh] satisfies
    [merge_partitions]' joint-coverage contract (and with no fresh rows
    at all, the remap alone is already the sfs output).  Deleting or
    upserting a skyline member forces the rebuild.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [old_sky] does not index the plan's base. *)

val sequence_preserved : plan -> old_sky:int array -> new_sky:int array -> bool
(** [sequence_preserved plan ~old_sky ~new_sky] is [true] iff the new
    skyline is, position by position, the same point sequence as the
    old one (same length, and [new_sky.(i)] carries exactly the base
    row [old_sky.(i)]).  Then every artifact that is a pure function of
    the skyline point sequence — the regret matrix, and any Theorem-1
    solver answer up to index names — is unchanged, which is the
    delta-invalidation rule that lets cached results survive a
    mutation with their [selected] indices remapped. *)

val carried_rows : plan -> old_sky:int array -> new_sky:int array -> int array
(** [carried_rows plan ~old_sky ~new_sky] maps each new skyline
    position to the old skyline position holding the identical point
    ([-1] for fresh rows) — the [carried] spec for
    {!Regret_matrix.update} / {!Mrst.Incremental.rebase}.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] when
    [old_sky] does not index the plan's base. *)
