(* Closure-free sorting kernels for the regret-matrix hot paths.

   [Array.sort Float.compare] pays an indirect closure call per
   comparison; on the n·k cell flatten behind [distinct_values] (~10^6
   floats) and the per-row column sorts behind [Mrst.Incremental.create]
   that dominates the whole Algorithm-4 setup.  Both sorts here produce
   output bit-identical to the [Float.compare]-based ones they replace:
   regret ratios are non-negative finite floats, whose IEEE-754 bit
   patterns (as unsigned integers) order exactly like [Float.compare].

   - [sort] is an LSD radix sort on the bit patterns when every value
     lies in [0, 2) (always true for regret ratios of non-negative
     scores), falling back to [Array.sort Float.compare] otherwise — so
     exotic inputs (NaN, negatives, huge ratios) keep the old total
     order to the bit.
   - [sort_pairs] is a tandem quicksort of (value, index) pairs with
     direct [Float.compare] calls and index tie-break — the unique
     sorted output of a strict total order, so the algorithm choice
     cannot change the result. *)

(* Bit pattern of a float in [0, 2) fits in 62 bits: the sign bit is 0
   and the biased exponent is at most 0x3FF, so the pattern is at most
   0x3FFFFFFFFFFFFFFF — exact in an OCaml native int. *)
let key_of_float x = Int64.to_int (Int64.bits_of_float x)

let radix_passes = 4 (* 4 x 16-bit digits cover the 62 significant bits *)
let digit_width = 16
let digit_count = 1 lsl digit_width
let digit_mask = digit_count - 1

let radix_sort_keys keys tmp n =
  (* One scan builds the histogram of every pass; passes whose digits
     are all equal (common in the high bits of a [0, 2) value) are
     skipped without touching the data. *)
  let hist = Array.make (radix_passes * digit_count) 0 in
  for i = 0 to n - 1 do
    let k = Array.unsafe_get keys i in
    for p = 0 to radix_passes - 1 do
      let d = (k lsr (p * digit_width)) land digit_mask in
      let slot = (p * digit_count) + d in
      Array.unsafe_set hist slot (Array.unsafe_get hist slot + 1)
    done
  done;
  let src = ref keys and dst = ref tmp in
  for p = 0 to radix_passes - 1 do
    let base = p * digit_count in
    let trivial =
      (* A pass is a no-op when one digit value owns every element. *)
      let rec find d = if hist.(base + d) > 0 then d else find (d + 1) in
      hist.(base + find 0) = n
    in
    if not trivial then begin
      (* Exclusive prefix sums turn counts into destination offsets. *)
      let acc = ref 0 in
      for d = 0 to digit_count - 1 do
        let c = hist.(base + d) in
        hist.(base + d) <- !acc;
        acc := !acc + c
      done;
      let s = !src and t = !dst in
      let shift = p * digit_width in
      for i = 0 to n - 1 do
        let k = Array.unsafe_get s i in
        let slot = base + ((k lsr shift) land digit_mask) in
        let pos = Array.unsafe_get hist slot in
        Array.unsafe_set hist slot (pos + 1);
        Array.unsafe_set t pos k
      done;
      src := t;
      dst := s
    end
  done;
  !src

let sort (a : float array) =
  let n = Array.length a in
  if n > 1 then begin
    (* Applicability scan: every value in [0, 2) (NaN fails both
       comparisons and takes the fallback).  -0. shares +0.'s radix key,
       so the signed-zero counts let the zero run be rewritten in
       [Float.compare] order (-0. strictly first) afterwards. *)
    let ok = ref true and neg_zeros = ref 0 and pos_zeros = ref 0 in
    for i = 0 to n - 1 do
      let x = Array.unsafe_get a i in
      if not (x >= 0. && x < 2.) then ok := false
      else if x = 0. then
        if Float.sign_bit x then incr neg_zeros else incr pos_zeros
    done;
    if not !ok then Array.sort Float.compare a
    else begin
      let keys = Array.make n 0 and tmp = Array.make n 0 in
      for i = 0 to n - 1 do
        Array.unsafe_set keys i (key_of_float (Array.unsafe_get a i))
      done;
      let sorted = radix_sort_keys keys tmp n in
      for i = 0 to n - 1 do
        Array.unsafe_set a i
          (Int64.float_of_bits (Int64.of_int (Array.unsafe_get sorted i)))
      done;
      (* Zero keys sort to the front; restore the -0. < +0. order. *)
      for i = 0 to !neg_zeros - 1 do
        a.(i) <- -0.
      done;
      for i = !neg_zeros to !neg_zeros + !pos_zeros - 1 do
        a.(i) <- 0.
      done
    end
  end

let insertion_cutoff = 12

let sort_pairs (vals : float array) (idx : int array) =
  let n = Array.length vals in
  if Array.length idx <> n then invalid_arg "Fsort.sort_pairs: length mismatch";
  (* Strict lexicographic (Float.compare value, index) order; indices
     are the tie-break, so equal pairs cannot occur on distinct slots. *)
  let swap i j =
    let v = Array.unsafe_get vals i in
    Array.unsafe_set vals i (Array.unsafe_get vals j);
    Array.unsafe_set vals j v;
    let x = Array.unsafe_get idx i in
    Array.unsafe_set idx i (Array.unsafe_get idx j);
    Array.unsafe_set idx j x
  in
  let lt_vi v i j =
    let c = Float.compare v (Array.unsafe_get vals j) in
    c < 0 || (c = 0 && i < Array.unsafe_get idx j)
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let v = Array.unsafe_get vals i and x = Array.unsafe_get idx i in
      let j = ref (i - 1) in
      while !j >= lo && lt_vi v x !j do
        Array.unsafe_set vals (!j + 1) (Array.unsafe_get vals !j);
        Array.unsafe_set idx (!j + 1) (Array.unsafe_get idx !j);
        decr j
      done;
      Array.unsafe_set vals (!j + 1) v;
      Array.unsafe_set idx (!j + 1) x
    done
  in
  (* Quicksort with median-of-3 pivot and Hoare partition, recursing on
     the smaller side so the stack stays logarithmic. *)
  let rec qsort lo hi =
    if hi - lo >= insertion_cutoff then begin
      let mid = lo + ((hi - lo) / 2) in
      (* Order lo/mid/hi, leaving the median at [mid]. *)
      if lt_vi vals.(mid) idx.(mid) lo then swap lo mid;
      if lt_vi vals.(hi) idx.(hi) lo then swap lo hi;
      if lt_vi vals.(hi) idx.(hi) mid then swap mid hi;
      let pv = Array.unsafe_get vals mid and px = Array.unsafe_get idx mid in
      (* Compare position [q] against the pivot pair (pv, px); the pivot
         is an element of the slice, so both scans stop at it. *)
      let below_pivot q =
        let c = Float.compare (Array.unsafe_get vals q) pv in
        c < 0 || (c = 0 && Array.unsafe_get idx q < px)
      in
      let above_pivot q =
        let c = Float.compare (Array.unsafe_get vals q) pv in
        c > 0 || (c = 0 && Array.unsafe_get idx q > px)
      in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while below_pivot !i do
          incr i
        done;
        while above_pivot !j do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      if !j - lo < hi - !i then begin
        qsort lo !j;
        qsort !i hi
      end
      else begin
        qsort !i hi;
        qsort lo !j
      end
    end
    else insertion lo hi
  in
  if n > 1 then qsort 0 (n - 1)
