(** Regret-ratio definitions and evaluation (§2 of the paper).

    For a database [D], a compact set [C ⊆ D] and a linear ranking
    function with weights [w ≥ 0], the regret ratio is

    {v rr(C, w) = (max_{t∈D} w·t − max_{t∈C} w·t) / max_{t∈D} w·t v}

    and the {e maximum regret ratio} [E(C)] is its supremum over all
    non-negative weight vectors.  This module evaluates [E(C)]:

    - exactly in 2D via convex-hull envelopes ({!exact_2d});
    - exactly in any dimension via one LP per skyline point ({!exact_lp});
    - approximately via a supplied set of sample functions ({!sampled}).

    It also provides the LP-based per-point regret that the GREEDY
    baseline needs, and the LP extreme-point test behind Figure 1's
    convex-hull-size experiment. *)

val for_function :
  points:Rrms_geom.Vec.t array -> selected:int array -> Rrms_geom.Vec.t -> float
(** [for_function ~points ~selected w] is the regret ratio of the subset
    for one weight vector.  Zero when the database's best score for [w]
    is not positive.  @raise Invalid_argument if [selected] is empty. *)

val point_regret_lp :
  ?eps:float -> set:Rrms_geom.Vec.t array -> Rrms_geom.Vec.t -> float
(** [point_regret_lp ~set p] is [sup_w (w·p − max_{q∈set} w·q) / (w·p)]
    clamped to [\[0, 1\]] — the worst-case regret a user whose favourite
    is [p] suffers when restricted to [set] (the LP of Nanongkai et al.
    used by GREEDY).  [0.] when [p] is dominated by [set] for every
    function.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if [set]
    is empty, or [Numerical] when the LP is numerically degenerate
    (use {!point_regret_lp_checked} to handle that without an
    exception). *)

val point_regret_lp_checked :
  ?eps:float ->
  set:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t ->
  (float, string) result
(** Like {!point_regret_lp}, but a numerically degenerate or
    spuriously-unbounded LP comes back as [Error description] instead
    of an exception — GREEDY uses this to {e skip} pathological
    candidates rather than abort the whole solve. *)

val exact_lp :
  ?eps:float -> selected:int array -> Rrms_geom.Vec.t array -> float
(** [exact_lp ~selected points] is [E(selected)] computed exactly: the
    maximum of {!point_regret_lp} over the skyline points of [points].
    O(s) small LPs.
    @raise Rrms_guard.Guard.Error.Guard_error [Numerical] if any
    per-point LP is degenerate (see {!exact_lp_guarded} for the
    skip-and-report alternative). *)

type eval_report = {
  regret : float;
      (** max over the evaluated points — the exact regret when
          [evaluated = total] and [skipped_numerical = 0], otherwise a
          lower bound *)
  evaluated : int;  (** skyline points processed before any deadline *)
  total : int;  (** skyline points in scope *)
  skipped_numerical : int;  (** LPs skipped as degenerate/unbounded *)
  timed_out : bool;  (** the budget's deadline expired mid-scan *)
}

val exact_lp_guarded :
  ?eps:float ->
  ?guard:Rrms_guard.Guard.Budget.t ->
  selected:int array ->
  Rrms_geom.Vec.t array ->
  eval_report
(** Deadline-aware, skip-tolerant version of {!exact_lp}: checks the
    budget's wall clock before each per-point LP and stops (reporting
    [timed_out]) instead of raising; numerically degenerate LPs are
    skipped and counted.  The scan order is the skyline order, so a
    partial result is deterministic for a fixed number of evaluated
    points. *)

val exact_2d : selected:int array -> Rrms_geom.Vec.t array -> float
(** [exact_2d ~selected points] is [E(selected)] for 2D data, exactly, via the maxima-hull envelopes of
    the database and of the subset: on each common linearity piece the
    score ratio is monotone in the angle, so the supremum is attained at
    an envelope breakpoint.  O((n + c) log c).
    @raise Invalid_argument if not 2-dimensional or [selected] empty. *)

val profile_2d :
  ?steps:int ->
  selected:int array ->
  Rrms_geom.Vec.t array ->
  (float * float) array
(** [profile_2d ~selected points] traces the regret ratio as a function
    of the ranking-function angle φ ∈ \[0, π/2\]: [steps + 1] evenly
    spaced samples (default 200) {e plus} both envelopes' breakpoints,
    sorted by angle — so the curve's kinks and its exact maximum are
    always included.  Useful for plotting which preferences a compact
    set serves well.
    @raise Invalid_argument like {!exact_2d}. *)

val sampled :
  selected:int array ->
  funcs:Rrms_geom.Vec.t array ->
  Rrms_geom.Vec.t array ->
  float
(** Maximum regret ratio over the given sample of weight vectors; a
    cheap lower bound on [E(selected)]. *)

val is_extreme_point : ?eps:float -> Rrms_geom.Vec.t array -> int -> bool
(** [is_extreme_point points i] tests by LP whether [points.(i)] is a
    vertex of the convex hull (not expressible as a convex combination
    of the other points). *)

val convex_hull_size : ?eps:float -> Rrms_geom.Vec.t array -> int
(** Number of convex-hull vertices, via {!is_extreme_point} on every
    point — the quantity plotted in Figure 1.  O(n) LPs with O(n)
    variables each: meant for moderate [n]. *)

val maxima_count_sampled :
  points:Rrms_geom.Vec.t array -> funcs:Rrms_geom.Vec.t array -> int
(** Number of distinct tuples that are the maximum of at least one of
    the sample functions — a fast lower bound on the maxima-hull size
    used by the larger-scale variants of the Figure 1 experiment. *)
