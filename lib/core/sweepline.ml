open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"sweeping-line baseline solves"
      "rrms_sweepline_solves_total"

  (* The baseline's defining Θ(n²) cost: dual-intersection pair tests. *)
  let pair_comparisons =
    Obs.Counter.make ~help:"dual-intersection pair comparisons"
      "rrms_sweepline_pair_comparisons_total"

  let winners =
    Obs.Gauge.make ~help:"winner intervals of the last sweep"
      "rrms_sweepline_winners"
end

let half_pi = Float.pi /. 2.

(* Intersect, over all other tuples q, the angle ranges on which p
   scores at least as high as q.  F_φ(p) - F_φ(q) = sin φ·dx + cos φ·dy,
   so each pair contributes a one-sided interval with endpoint at the
   dual intersection atan2(|dy|, |dx|). *)
let winner_intervals points =
  let n = Array.length points in
  Obs.Counter.add Metrics.pair_comparisons (n * (n - 1));
  let result = ref [] in
  for i = 0 to n - 1 do
    let p = points.(i) in
    let lo = ref 0. and hi = ref half_pi and dead = ref false in
    (* Deliberately no early exit: the baseline's defining cost is the
       full Θ(n²) dual-intersection pass, independent of how quickly a
       tuple turns out to be dominated (DESIGN.md §4). *)
    for j = 0 to n - 1 do
      if j <> i then begin
        let q = points.(j) in
        let dx = p.(0) -. q.(0) and dy = p.(1) -. q.(1) in
        if dx >= 0. && dy >= 0. then begin
          (* p >= q everywhere; but a duplicate with a larger index must
             not also claim the interval. *)
          if dx = 0. && dy = 0. && j < i then dead := true
        end
        else if dx <= 0. && dy <= 0. then dead := true
        else if dx > 0. then begin
          (* p wins for φ >= atan2(-dy, dx). *)
          let cut = atan2 (-.dy) dx in
          if cut > !lo then lo := cut
        end
        else begin
          (* dx < 0, dy > 0: p wins for φ <= atan2(dy, -dx). *)
          let cut = atan2 dy (-.dx) in
          if cut < !hi then hi := cut
        end
      end
    done;
    if (not !dead) && !lo <= !hi then result := (i, !lo, !hi) :: !result
  done;
  let arr = Array.of_list !result in
  Array.sort (fun (_, lo1, _) (_, lo2, _) -> Float.compare lo1 lo2) arr;
  Obs.Gauge.set_int Metrics.winners (Array.length arr);
  arr

type result = { selected : int array; dp_value : float; regret : float }

(* The database maximum at angle φ, by binary search over the winner
   intervals (sorted by lo, and tiling [0, π/2]). *)
let max_at winners phi =
  let lo = ref 0 and hi = ref (Array.length winners - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    let _, l, _ = winners.(mid) in
    if l <= phi then lo := mid else hi := mid - 1
  done;
  let idx, _, _ = winners.(!lo) in
  idx

(* 2D skyline in top-left -> bottom-right order, derived locally (sort
   plus sweep) to keep this implementation independent of Rrms2d. *)
let skyline_order points =
  let n = Array.length points in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare points.(j).(0) points.(i).(0) in
      if c <> 0 then c else Float.compare points.(j).(1) points.(i).(1))
    idx;
  let kept = ref [] and best_y = ref neg_infinity in
  Array.iter
    (fun i ->
      if points.(i).(1) > !best_y then begin
        kept := i :: !kept;
        best_y := points.(i).(1)
      end)
    idx;
  Array.of_list !kept

let solve points ~r =
  if r < 1 then invalid_arg "Sweepline.solve: r must be >= 1";
  if Array.length points = 0 then invalid_arg "Sweepline.solve: empty input";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then invalid_arg "Sweepline.solve: dimension <> 2")
    points;
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "sweepline.solve" @@ fun () ->
  (* The O(n²) dual-arrangement pass over all tuples. *)
  let winners = winner_intervals points in
  let sky = skyline_order points in
  let s = Array.length sky in
  (* Keyed by coordinates: the winner pass and the skyline pass may pick
     different representative indices for duplicated points. *)
  let pos_of : (float * float, int) Hashtbl.t = Hashtbl.create s in
  Array.iteri
    (fun pos i -> Hashtbl.replace pos_of (points.(i).(0), points.(i).(1)) pos)
    sky;
  let sp pos = points.(sky.(pos)) in
  (* Skyline position of each winner, in winner (= chain) order: the
     winners are the maxima-hull vertices sorted by interval start, so
     their skyline positions increase. *)
  let winner_sky_pos =
    Array.map
      (fun (idx, _, _) ->
        match Hashtbl.find_opt pos_of (points.(idx).(0), points.(idx).(1)) with
        | Some p -> p
        | None -> assert false (* every winner is a skyline point *))
      winners
  in
  let nw = Array.length winners in
  (* Exact gap weight: the supremum, over the angle range on which a
     removed winner holds the maximum, of the regret of answering from
     {tᵢ, tⱼ}.  Piecewise monotone, so evaluating the interval
     boundaries inside the range plus the endpoints' tie angle is
     exact. *)
  let weight i j =
    if i = -1 && j = s then if s = 0 then 0. else 1.
    else if i = -1 then begin
      let top = (sp 0).(1) in
      if top <= 0. then 0. else Float.max 0. ((top -. (sp j).(1)) /. top)
    end
    else if j = s then begin
      let top = (sp (s - 1)).(0) in
      if top <= 0. then 0. else Float.max 0. ((top -. (sp i).(0)) /. top)
    end
    else if j - i <= 1 then 0.
    else begin
      (* Winner chain range strictly inside the gap. *)
      let wl =
        let lo = ref 0 and hi = ref nw in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if winner_sky_pos.(mid) > i then hi := mid else lo := mid + 1
        done;
        !lo
      in
      let wr =
        let lo = ref (-1) and hi = ref (nw - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if winner_sky_pos.(mid) < j then lo := mid else hi := mid - 1
        done;
        !lo
      in
      if wl > wr then 0.
      else begin
        let _, lo_angle, _ = winners.(wl) in
        let _, _, hi_angle = winners.(wr) in
        let eval phi =
          let star = max_at winners phi in
          let w = Polar.weight_of_angle_2d phi in
          let top = Vec.dot w points.(star) in
          if top <= 0. then 0.
          else
            Float.max 0.
              ((top -. Float.max (Vec.dot w (sp i)) (Vec.dot w (sp j))) /. top)
        in
        (* The pair regret rises with φ on the tᵢ side and falls on the
           tⱼ side, so its supremum is at the endpoints' tie angle
           clamped into [lo_angle, hi_angle] (see Rrms2d for the
           argument); evaluate all three candidates for robustness. *)
        let best = ref (Float.max (eval lo_angle) (eval hi_angle)) in
        (match Polar.tie_angle_2d (sp i) (sp j) with
        | Some a when a > lo_angle && a < hi_angle ->
            let v = eval a in
            if v > !best then best := v
        | Some _ | None -> ());
        !best
      end
    end
  in
  if s <= r then begin
    let selected = Array.copy sky in
    { selected; dp_value = 0.; regret = Regret.exact_2d ~selected points }
  end
  else begin
    (* Plain quadratic min-max path DP (no successor binary search). *)
    let dp_prev = Array.init s (fun i -> weight i s) in
    let dp_cur = Array.make s 0. in
    let choice = Array.make_matrix r s s in
    for level = 1 to r - 1 do
      for i = 0 to s - 1 do
        let best_v = ref (weight i s) and best_j = ref s in
        for j = i + 1 to s - 1 do
          let v = Float.max (weight i j) dp_prev.(j) in
          if v < !best_v then begin
            best_v := v;
            best_j := j
          end
        done;
        dp_cur.(i) <- !best_v;
        choice.(level).(i) <- !best_j
      done;
      Array.blit dp_cur 0 dp_prev 0 s
    done;
    let best_v = ref infinity and best_j = ref 0 in
    for j = 0 to s - 1 do
      let v = Float.max (weight (-1) j) dp_prev.(j) in
      if v < !best_v then begin
        best_v := v;
        best_j := j
      end
    done;
    let rec follow acc level i =
      if i >= s then List.rev acc
      else if level <= 0 then List.rev (i :: acc)
      else follow (i :: acc) (level - 1) choice.(level).(i)
    in
    let positions = follow [] (r - 1) !best_j in
    let selected = Array.of_list (List.map (fun pos -> sky.(pos)) positions) in
    { selected; dp_value = !best_v; regret = Regret.exact_2d ~selected points }
  end
