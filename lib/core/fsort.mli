(** Closure-free sorting kernels for the matrix/MRST hot paths.

    Both sorts produce output bit-identical to their
    [Array.sort Float.compare]-based equivalents; they only change how
    fast the order is reached.  The one ambiguity [Float.compare]
    leaves open — it calls [-0.] and [+0.] equal, so an unstable sort
    may arrange a mixed zero run either way — is resolved
    deterministically here: [sort] always places [-0.] before [+0.]. *)

val sort : float array -> unit
(** In-place ascending sort in [Float.compare] order.  When every value
    lies in [0, 2) — always true for regret ratios — an LSD radix sort
    on the IEEE-754 bit patterns runs in O(n); any other input (NaN,
    negatives, values ≥ 2) falls back to [Array.sort Float.compare]. *)

val sort_pairs : float array -> int array -> unit
(** [sort_pairs vals idx] sorts both arrays in tandem, ascending by
    [(Float.compare vals.(i), idx.(i))] lexicographically.  The order is
    strict and total whenever the indices are distinct, so the result is
    the unique sorted permutation regardless of algorithm.
    @raise Invalid_argument when the arrays differ in length. *)
