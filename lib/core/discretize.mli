(** Discretization of the linear ranking-function space (§4.3, §5.2).

    HD-RRMS replaces the continuous function space — the non-negative
    orthant of the unit sphere — with a finite sample [F].  The paper's
    primary scheme ({!grid}, Algorithm 3 DISCRETIZE) divides each of the
    [m-1] polar angles into γ equal parts, giving [(γ+1)^(m-1)]
    directions and the additive quality guarantee of Theorem 4.  §5.2
    sketches two alternatives that fix [|F|] directly instead of γ:
    uniform random directions ({!random}) and a force-directed spreading
    of charged particles on the quarter hypersphere ({!force_directed});
    both are implemented as the paper's proposed extensions. *)

val grid : gamma:int -> m:int -> Rrms_geom.Vec.t array
(** Algorithm 3: all [(γ+1)^(m-1)] unit directions whose polar angles
    are multiples of [α = π/(2γ)].  Directions are non-negative unit
    vectors.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if
    [gamma < 1] or [m < 2], and [Resource_limit] when the grid would
    exceed the 2M-direction hard cap. *)

val grid_size : gamma:int -> m:int -> int
(** [(γ+1)^(m-1)], the number of directions {!grid} would produce, with
    the same validation and hard cap (raised as structured errors) but
    without materializing anything. *)

val matrix_cells : rows:int -> gamma:int -> m:int -> int
(** [rows · (γ+1)^(m-1)] — the regret-matrix size a solve would
    allocate — computed with saturating arithmetic (never overflows,
    never raises; a saturated value still compares correctly against
    any cap below [max_int / 2]). *)

val fit_gamma : rows:int -> max_cells:int -> gamma:int -> m:int -> int option
(** [fit_gamma ~rows ~max_cells ~gamma ~m] is the largest [γ' ≤ gamma]
    (at least 1) whose regret matrix fits the cell cap, or [None] when
    even [γ' = 1] does not — the auto-shrink rule of the budgeted HD
    solvers. *)

val subgrid_indices : gamma_sub:int -> gamma:int -> m:int -> int array option
(** [subgrid_indices ~gamma_sub ~gamma ~m] maps the γ'-grid into the
    γ-grid when the former is an exact sub-grid of the latter: entry
    [i] is the index in [grid ~gamma ~m] of direction [i] of
    [grid ~gamma:gamma_sub ~m].  Returns [None] unless [gamma_sub]
    divides [gamma] {e and} every shared angle is bit-identical in
    floating point (always true when [gamma / gamma_sub] is a power of
    two) — so reusing the corresponding columns of a cached regret
    matrix is exact, never approximate.  This is how the query server
    serves a γ' query from a γ matrix without rebuilding anything.
    @raise Rrms_guard.Guard.Error.Guard_error [Invalid_input] if either
    gamma is < 1 or [m < 2]. *)

val random : Rrms_rng.Rng.t -> count:int -> m:int -> Rrms_geom.Vec.t array
(** [count] directions with each polar angle drawn uniformly from
    \[0, π/2\] (§5.2's "uniformly at random" alternative). *)

val force_directed :
  ?iterations:int ->
  ?step:float ->
  Rrms_rng.Rng.t ->
  count:int ->
  m:int ->
  Rrms_geom.Vec.t array
(** §5.2's Barycentric/force-directed alternative: start from {!random}
    and relax — every pair of directions repels with force ∝ 1/d², each
    point moves along the tangential component of the net force, is
    re-normalized, and is clamped to the non-negative orthant; repeat
    [iterations] times (default 100, [step] default 0.05).  The result
    spreads the [count] directions nearly evenly over the quarter
    hypersphere. *)

val min_pairwise_angle : Rrms_geom.Vec.t array -> float
(** Smallest angular distance between two of the directions — the
    quality measure for a spread (bigger is better). *)

val max_coverage_angle :
  ?samples:int -> Rrms_rng.Rng.t -> Rrms_geom.Vec.t array -> m:int -> float
(** Monte-Carlo estimate of the covering radius: the largest angle from
    a random direction to its nearest sample.  Drives the empirical
    check of Theorem 4's α'/2 bound. *)

val alpha : gamma:int -> float
(** The grid step [α = π / (2γ)] (Equation 6). *)

val theorem4_alpha' : gamma:int -> m:int -> float
(** Equation 19: the worst angular distance [α'] between a ranking
    function and the discretized grid,
    [α' = 2·asin(√((1 - cos^(m-1) α) / 2))]. *)

val c_of_coverage : float -> float
(** Theorem 4's contraction constant for an arbitrary covering radius δ
    (the grid's is [α'/2]): [c = cos δ · cos(π/4) / cos(π/4 − δ)].
    Drives the §5.2 alternative discretizations, whose covering radius
    is estimated rather than derived. *)

val bound_for_coverage : coverage:float -> eps:float -> float
(** [c·eps + (1 − c)] for [c = c_of_coverage coverage]: the Theorem-4
    regret bound of a direction sample with the given (estimated)
    covering radius — §5.2's "expected bound".  Pair with
    {!max_coverage_angle}. *)

val theorem4_c : gamma:int -> m:int -> float
(** The contraction constant of Theorem 4:
    [c = cos(α'/2)·cos(π/4) / cos(π/4 - α'/2)].  The regret of HD-RRMS
    satisfies [E ≤ c·E_opt + (1 - c)]. *)

val theorem4_bound : gamma:int -> m:int -> eps:float -> float
(** [theorem4_bound ~gamma ~m ~eps = c·eps + (1 - c)] (Equation 8):
    the guaranteed regret for any set achieving regret [eps] on the
    grid. *)
