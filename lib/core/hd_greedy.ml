module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs

module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"HD-GREEDY solves" "rrms_hd_greedy_solves_total"

  (* One step = one full argmin sweep over the skyline rows. *)
  let steps =
    Obs.Counter.make ~help:"greedy selection steps taken by HD-GREEDY"
      "rrms_hd_greedy_steps_total"
end

type result = {
  selected : int array;
  discretized_regret : float;
  gamma_used : int;
  quality : Guard.quality;
  steps : int;
}

let shrink_gamma ~guard ~rows ~gamma ~m =
  match Guard.Budget.max_cells guard with
  | None -> (gamma, None)
  | Some cap -> (
      match Discretize.fit_gamma ~rows ~max_cells:cap ~gamma ~m with
      | Some g when g = gamma -> (gamma, None)
      | Some g ->
          let requested = Discretize.matrix_cells ~rows ~gamma ~m in
          ( g,
            Some
              (Guard.Cell_cap
                 { requested; cap; gamma_from = gamma; gamma_to = g }) )
      | None ->
          Guard.Error.resource_limit
            ~what:"regret matrix cells (even at gamma = 1)"
            ~requested:(Discretize.matrix_cells ~rows ~gamma:1 ~m)
            ~limit:cap)

(* The greedy loop itself, on a precomputed matrix + skyline map — the
   shared back half of [solve] and the resident query server's warm
   path, so both produce bit-identical selections. *)
let solve_prepared ?domains ?(guard = Guard.Budget.unlimited) ~skyline
    ~gamma_used matrix ~r =
  if r < 1 then
    Guard.Error.invalid_input "Hd_greedy.solve_prepared: r must be >= 1";
  if Array.length skyline <> Regret_matrix.rows matrix then
    Guard.Error.invalid_input
      (Printf.sprintf
         "Hd_greedy.solve_prepared: skyline has %d entries, matrix has %d \
          rows"
         (Array.length skyline) (Regret_matrix.rows matrix));
  let sky = skyline in
  let s = Regret_matrix.rows matrix in
  let k = Regret_matrix.cols matrix in
  let current = Array.make k infinity in
  let chosen = Array.make s false in
  let selected = ref [] in
  let stopped = ref None in
  let steps = min r s in
  (* Argmin with strict < and left preference is insensitive to the
     chunked reduction order, so the parallel scan picks exactly the
     row the serial loop would. *)
  let better (v1, i1) (v2, i2) = if v2 < v1 then (v2, i2) else (v1, i1) in
  (try
     for step = 1 to steps do
       (* Step 1 runs unconditionally so the result is never empty;
          later steps are budget-checked, and stopping between steps
          leaves a smaller set whose regret is still exactly what
          [regret_of_rows] reports — the anytime property is free. *)
       if step > 1 then begin
         match Guard.Budget.stop_reason guard with
         | Some reason ->
             stopped := Some reason;
             raise Exit
         | None -> ()
       end;
       Guard.Budget.note_probe guard;
       Obs.Counter.incr Metrics.steps;
       (* Pick the row minimizing the resulting max over columns of the
          min of current coverage and the row's cells — one contiguous
          row scan per candidate on the flat matrix. *)
       let _, best_row =
         Rrms_parallel.reduce ?domains ~min_chunk:32 ~neutral:(infinity, -1)
           ~combine:better s (fun i ->
             if chosen.(i) then (infinity, -1)
             else (Regret_matrix.row_worst_against matrix i current, i))
       in
       let i = best_row in
       chosen.(i) <- true;
       selected := i :: !selected;
       Regret_matrix.row_update_mins matrix i current
     done
   with Exit -> ());
  let rows = Array.of_list (List.rev !selected) in
  let reasons = match !stopped with Some s -> [ s ] | None -> [] in
  {
    selected = Array.map (fun i -> sky.(i)) rows;
    discretized_regret = Regret_matrix.regret_of_rows matrix rows;
    gamma_used;
    quality = (if reasons = [] then Guard.Exact else Guard.Degraded reasons);
    steps = Array.length rows;
  }

let solve ?(gamma = 4) ?funcs ?domains ?(guard = Guard.Budget.unlimited)
    points ~r =
  if r < 1 then Guard.Error.invalid_input "Hd_greedy.solve: r must be >= 1";
  if Array.length points = 0 then
    Guard.Error.invalid_input "Hd_greedy.solve: empty input";
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "hd_greedy.solve" (fun () ->
  let m = Array.length points.(0) in
  let sky = Rrms_skyline.Skyline.sfs ?domains points in
  let s = Array.length sky in
  let gamma_used, funcs, shrink_reason =
    match funcs with
    | Some f ->
        Guard.Budget.check_cells guard ~what:"regret matrix cells"
          (s * Array.length f);
        (gamma, f, None)
    | None ->
        let g, reason = shrink_gamma ~guard ~rows:s ~gamma ~m in
        (g, Discretize.grid ~gamma:g ~m, reason)
  in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let matrix = Regret_matrix.build ?domains ~guard ~funcs sky_points in
  let res =
    solve_prepared ?domains ~guard ~skyline:sky ~gamma_used matrix ~r
  in
  match shrink_reason with
  | None -> res
  | Some c ->
      {
        res with
        quality =
          (match res.quality with
          | Guard.Exact -> Guard.Degraded [ c ]
          | Guard.Degraded rs -> Guard.Degraded (c :: rs));
      })
