type result = { selected : int array; discretized_regret : float }

let solve ?(gamma = 4) ?funcs ?domains points ~r =
  if r < 1 then invalid_arg "Hd_greedy.solve: r must be >= 1";
  if Array.length points = 0 then invalid_arg "Hd_greedy.solve: empty input";
  let m = Array.length points.(0) in
  let funcs =
    match funcs with Some f -> f | None -> Discretize.grid ~gamma ~m
  in
  let sky = Rrms_skyline.Skyline.sfs ?domains points in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let matrix = Regret_matrix.build ?domains ~funcs sky_points in
  let s = Array.length sky and k = Array.length funcs in
  let current = Array.make k infinity in
  let chosen = Array.make s false in
  let selected = ref [] in
  let steps = min r s in
  (* Argmin with strict < and left preference is insensitive to the
     chunked reduction order, so the parallel scan picks exactly the
     row the serial loop would. *)
  let better (v1, i1) (v2, i2) = if v2 < v1 then (v2, i2) else (v1, i1) in
  for _ = 1 to steps do
    (* Pick the row minimizing the resulting max over columns of the
       min of current coverage and the row's cells. *)
    let _, best_row =
      Rrms_parallel.reduce ?domains ~min_chunk:32 ~neutral:(infinity, -1)
        ~combine:better s (fun i ->
          if chosen.(i) then (infinity, -1)
          else begin
            let worst = ref 0. in
            for f = 0 to k - 1 do
              let v = Float.min current.(f) (Regret_matrix.get matrix i f) in
              if v > !worst then worst := v
            done;
            (!worst, i)
          end)
    in
    let i = best_row in
    chosen.(i) <- true;
    selected := i :: !selected;
    for f = 0 to k - 1 do
      current.(f) <- Float.min current.(f) (Regret_matrix.get matrix i f)
    done
  done;
  let rows = Array.of_list (List.rev !selected) in
  {
    selected = Array.map (fun i -> sky.(i)) rows;
    discretized_regret = Regret_matrix.regret_of_rows matrix rows;
  }
