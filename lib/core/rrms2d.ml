open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"2D-RRMS DP solves (published + exact variants)"
      "rrms_2d_solves_total"

  let edge_weight_evals =
    Obs.Counter.make ~help:"edge-weight evaluations by the 2D DP"
      "rrms_2d_edge_weight_evals_total"

  (* Paper quantity s for the 2D pipeline. *)
  let skyline_size =
    Obs.Gauge.make ~help:"skyline size s of the last 2D context"
      "rrms_2d_skyline_size"

  (* Paper quantity c: maxima-hull (convex chain) size. *)
  let hull_size =
    Obs.Gauge.make ~help:"maxima-hull size c of the last 2D context"
      "rrms_2d_hull_size"
end

type ctx = {
  points : Vec.t array; (* original input *)
  sky : int array; (* skyline, top-left -> bottom-right, into [points] *)
  sky_points : Vec.t array; (* points in skyline order *)
  hull : Hull2d.t; (* maxima hull of the skyline points *)
  hull_breaks : float array;
}

let make_ctx points =
  if Array.length points = 0 then invalid_arg "Rrms2d.make_ctx: empty input";
  Array.iter
    (fun p ->
      if Array.length p <> 2 then invalid_arg "Rrms2d.make_ctx: dimension <> 2")
    points;
  let sky = Rrms_skyline.Skyline.two_d points in
  let sky_points = Array.map (fun i -> points.(i)) sky in
  let hull = Hull2d.build sky_points in
  Obs.Gauge.set_int Metrics.skyline_size (Array.length sky);
  Obs.Gauge.set_int Metrics.hull_size (Hull2d.size hull);
  { points; sky; sky_points; hull; hull_breaks = Hull2d.breakpoints hull }

let skyline_order ctx = Array.copy ctx.sky
let skyline_size ctx = Array.length ctx.sky

let check_positions ctx i j =
  let s = Array.length ctx.sky in
  if i >= j || i < -1 || j > s then
    invalid_arg "Rrms2d.edge_weight: bad positions";
  s

(* Weights of the dummy edges and trivially empty gaps; [None] when the
   gap is interior and non-trivial.  The dummy formulas are exact
   suprema: for the left dummy the regret ratio of keeping tⱼ against a
   removed hull vertex is monotone in the angle, so the supremum sits at
   the pure-A₂ function (and symmetrically on the right). *)
let boundary_weight ctx i j =
  let s = Array.length ctx.sky in
  let p = ctx.sky_points in
  if i = -1 && j = s then Some (if s = 0 then 0. else 1.)
  else if i = -1 then begin
    let top = p.(0).(1) in
    Some (if top <= 0. then 0. else Float.max 0. ((top -. p.(j).(1)) /. top))
  end
  else if j = s then begin
    let top = p.(s - 1).(0) in
    Some (if top <= 0. then 0. else Float.max 0. ((top -. p.(i).(0)) /. top))
  end
  else if j - i <= 1 then Some 0.
  else None

(* Algorithm 1 (ComputeEdgeWeight) exactly as published: evaluate only
   at the tie angle of (tᵢ, tⱼ), and return 0 when the maximizer there
   is not inside the gap. *)
let edge_weight ctx i j =
  ignore (check_positions ctx i j);
  Obs.Counter.incr Metrics.edge_weight_evals;
  match boundary_weight ctx i j with
  | Some w -> w
  | None -> (
      let p = ctx.sky_points in
      match Polar.tie_angle_2d p.(i) p.(j) with
      | None -> 0. (* cannot happen on a strict skyline; defensive *)
      | Some alpha ->
          let k = Hull2d.max_index_at ctx.hull alpha in
          let ks = Hull2d.vertex ctx.hull k in
          (* hull was built over sky_points, so ks is a skyline position *)
          if ks <= i || ks >= j then 0.
          else begin
            let w = Polar.weight_of_angle_2d alpha in
            let fk = Vec.dot w p.(ks) in
            if fk <= 0. then 0.
            else begin
              let fi = Vec.dot w p.(i) and fj = Vec.dot w p.(j) in
              Float.max 0. ((fk -. Float.max fi fj) /. fk)
            end
          end)

(* Corrected weight: the exact supremum of the pair regret over the
   whole angle range [θL, θR] on which a removed hull vertex is the
   database maximum.  Within that range every envelope vertex h has
   x(tᵢ) < x(h) < x(tⱼ), so F(tᵢ)/E(φ) is decreasing in φ (the regret
   against tᵢ rises) and F(tⱼ)/E(φ) is increasing (the regret against tⱼ
   falls); the pair regret is the min of the two, so its supremum sits
   at their crossing — the tie angle α of (tᵢ, tⱼ) — clamped into
   [θL, θR].  One O(log c) envelope query therefore evaluates the
   supremum exactly; we evaluate all three candidate angles to be robust
   to floating-point ties. *)
let edge_weight_exact ctx i j =
  ignore (check_positions ctx i j);
  Obs.Counter.incr Metrics.edge_weight_evals;
  match boundary_weight ctx i j with
  | Some w -> w
  | None ->
      let p = ctx.sky_points in
      let c = Hull2d.size ctx.hull in
      (* Hull chain positions hl..hr whose skyline position lies strictly
         inside (i, j); hull sky-positions increase along the chain. *)
      let hull_pos k = Hull2d.vertex ctx.hull k in
      let hl =
        let lo = ref 0 and hi = ref c in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if hull_pos mid > i then hi := mid else lo := mid + 1
        done;
        !lo
      in
      let hr =
        let lo = ref (-1) and hi = ref (c - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if hull_pos mid < j then lo := mid else hi := mid - 1
        done;
        !lo
      in
      if hl > hr then 0. (* no removed hull vertex: nothing is ever lost *)
      else begin
        let breaks = ctx.hull_breaks in
        let lo_angle = if hl = 0 then 0. else breaks.(hl - 1) in
        let hi_angle = if hr = c - 1 then Float.pi /. 2. else breaks.(hr) in
        let alpha = Polar.tie_angle_2d p.(i) p.(j) in
        let eval phi =
          let w = Polar.weight_of_angle_2d phi in
          let top = Vec.dot w (Hull2d.max_point_at ctx.hull phi) in
          if top <= 0. then 0.
          else begin
            let alt = Float.max (Vec.dot w p.(i)) (Vec.dot w p.(j)) in
            Float.max 0. ((top -. alt) /. top)
          end
        in
        let best = ref (Float.max (eval lo_angle) (eval hi_angle)) in
        (match alpha with
        | Some a when a > lo_angle && a < hi_angle ->
            let v = eval a in
            if v > !best then best := v
        | Some _ | None -> ());
        !best
      end

type result = { selected : int array; dp_value : float; regret : float }

let evaluate ctx selected =
  if Array.length selected = 0 then 1.
  else Regret.exact_2d ~selected ctx.points

(* Shared DP skeleton.  [choose] computes, for DP level [level] and
   start position [i], the best successor and its value given the
   previous level's table; it differs between the published
   binary-search variant and the exact full-scan variant. *)
let run_dp ctx ~r ~weight ~choose =
  let s = Array.length ctx.sky in
  if s <= r then begin
    let selected = Array.copy ctx.sky in
    { selected; dp_value = 0.; regret = evaluate ctx selected }
  end
  else begin
    let dp_prev = Array.init s (fun i -> weight i s) in
    let dp_cur = Array.make s 0. in
    let choice = Array.make_matrix r s s in
    for level = 1 to r - 1 do
      for i = 0 to s - 1 do
        if i >= s - 1 then begin
          dp_cur.(i) <- weight i s;
          choice.(level).(i) <- s
        end
        else begin
          let j, v = choose dp_prev i in
          dp_cur.(i) <- v;
          choice.(level).(i) <- j
        end
      done;
      Array.blit dp_cur 0 dp_prev 0 s
    done;
    let best_j, best_v = choose dp_prev (-1) in
    let rec follow acc level i =
      if i >= s then List.rev acc
      else if level <= 0 then List.rev (i :: acc)
      else follow (i :: acc) (level - 1) choice.(level).(i)
    in
    let positions = follow [] (r - 1) best_j in
    let selected =
      Array.of_list (List.map (fun pos -> ctx.sky.(pos)) positions)
    in
    { selected; dp_value = best_v; regret = evaluate ctx selected }
  end

(* Algorithm 2's successor binary search: valid under the paper's
   Property 1; evaluates both sides of the crossing to be safe. *)
let choose_binary_search ~weight ~s dp_prev i =
  let low = ref (i + 1) and high = ref (s - 1) in
  while !low < !high do
    let mid = (!low + !high) / 2 in
    if weight i mid >= dp_prev.(mid) then high := mid else low := mid + 1
  done;
  let eval j = Float.max (weight i j) dp_prev.(j) in
  let j = !low in
  let vj = eval j in
  if j > i + 1 && eval (j - 1) < vj then (j - 1, eval (j - 1)) else (j, vj)

let choose_full_scan ~weight ~s dp_prev i =
  let best_j = ref (i + 1) and best_v = ref infinity in
  for j = i + 1 to s - 1 do
    let v = Float.max (weight i j) dp_prev.(j) in
    if v < !best_v then begin
      best_v := v;
      best_j := j
    end
  done;
  (!best_j, !best_v)

let solve ?ctx points ~r =
  if r < 1 then invalid_arg "Rrms2d.solve: r must be >= 1";
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "rrms2d.solve" @@ fun () ->
  let ctx = match ctx with Some c -> c | None -> make_ctx points in
  let s = Array.length ctx.sky in
  let weight = edge_weight ctx in
  run_dp ctx ~r ~weight ~choose:(choose_binary_search ~weight ~s)

let solve_exact ?ctx points ~r =
  if r < 1 then invalid_arg "Rrms2d.solve_exact: r must be >= 1";
  Obs.Counter.incr Metrics.solves;
  Obs.Span.with_ "rrms2d.solve_exact" @@ fun () ->
  let ctx = match ctx with Some c -> c | None -> make_ctx points in
  let s = Array.length ctx.sky in
  let weight = edge_weight_exact ctx in
  run_dp ctx ~r ~weight ~choose:(choose_full_scan ~weight ~s)

let solve_brute_force points ~r =
  if r < 1 then invalid_arg "Rrms2d.solve_brute_force: r must be >= 1";
  let ctx = make_ctx points in
  let s = Array.length ctx.sky in
  if s <= r then
    let selected = Array.copy ctx.sky in
    { selected; dp_value = 0.; regret = evaluate ctx selected }
  else begin
    let best = ref None in
    (* Enumerate subsets of skyline positions of size exactly r (adding
       tuples never hurts, so size r dominates smaller sizes). *)
    let subset = Array.make r 0 in
    let rec enumerate pos start =
      if pos = r then begin
        let selected =
          Array.map (fun q -> ctx.sky.(subset.(q))) (Array.init r Fun.id)
        in
        let e = evaluate ctx selected in
        match !best with
        | Some (be, _) when be <= e -> ()
        | _ -> best := Some (e, selected)
      end
      else
        for v = start to s - (r - pos) do
          subset.(pos) <- v;
          enumerate (pos + 1) (v + 1)
        done
    in
    enumerate 0 0;
    match !best with
    | Some (e, selected) -> { selected; dp_value = e; regret = e }
    | None -> assert false
  end
