open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let builds =
    Obs.Counter.make ~help:"regret matrices built" "rrms_matrix_builds_total"

  (* Paper quantity s·(γ+1)^(m-1): total cells materialized. *)
  let cells =
    Obs.Counter.make ~help:"regret-matrix cells materialized (rows x cols)"
      "rrms_matrix_cells_total"

  let distinct =
    Obs.Gauge.make
      ~help:"distinct cell values of the last distinct_values scan"
      "rrms_matrix_distinct_values"

  let updates =
    Obs.Counter.make ~help:"incremental regret-matrix updates"
      "rrms_matrix_updates_total"

  (* The whole point of [update]: cells carried over verbatim instead of
     paying a dot product.  updates_total together with this exposes the
     reuse ratio the dynamic bench asserts on. *)
  let cells_carried =
    Obs.Counter.make ~help:"cells blitted from the previous matrix by update"
      "rrms_matrix_cells_carried_total"
end

(* One flat row-major buffer instead of [float array array]: a cell read
   is one bounds check and one load, rows are contiguous for streaming
   scans, and a column-subset "matrix" is just the same buffer seen
   through a [colmap] — no copy.  [stride] is the physical row width of
   [data]; [colmap] maps a logical column to its physical offset within
   a row ([colmap] = identity and [stride] = cols for built or
   materialized matrices, flagged by [contiguous] so hot loops can take
   the blit/stride-1 path).  Matrices are immutable after construction,
   so the sorted distinct-cell array is computed once and cached;
   [Atomic] gives the cache a publication barrier — matrices are shared
   across serve sessions running on different domains. *)
type t = {
  data : float array;
  stride : int;
  nrows : int;
  colmap : int array;
  contiguous : bool;
  best : float array; (* per logical column: best database score *)
  distinct : float array option Atomic.t;
}

let rows t = t.nrows
let cols t = Array.length t.best

(* [colmap.(f)] performs the logical-column bounds check; the flat index
   of any in-range row then lies inside [data] by construction, and an
   out-of-range row lands outside [0, nrows·stride) because a physical
   column never exceeds [stride - 1]. *)
let get t i f = t.data.((i * t.stride) + t.colmap.(f))
let column_best_score t f = t.best.(f)
let is_view t = not t.contiguous

let check_row t i =
  if i < 0 || i >= t.nrows then invalid_arg "index out of bounds"

let blit_row t i dst =
  check_row t i;
  let k = cols t in
  if Array.length dst < k then
    invalid_arg "Regret_matrix.blit_row: destination too short";
  let off = i * t.stride in
  if t.contiguous then Array.blit t.data off dst 0 k
  else
    for f = 0 to k - 1 do
      Array.unsafe_set dst f
        (Array.unsafe_get t.data (off + Array.unsafe_get t.colmap f))
    done

let row_update_mins t i mins =
  check_row t i;
  let k = cols t in
  if Array.length mins < k then
    invalid_arg "Regret_matrix.row_update_mins: mins too short";
  let off = i * t.stride in
  if t.contiguous then
    for f = 0 to k - 1 do
      let v = Array.unsafe_get t.data (off + f) in
      if v < Array.unsafe_get mins f then Array.unsafe_set mins f v
    done
  else
    for f = 0 to k - 1 do
      let v = Array.unsafe_get t.data (off + Array.unsafe_get t.colmap f) in
      if v < Array.unsafe_get mins f then Array.unsafe_set mins f v
    done

let row_worst_against t i current =
  check_row t i;
  let k = cols t in
  if Array.length current < k then
    invalid_arg "Regret_matrix.row_worst_against: current too short";
  let off = i * t.stride in
  let worst = ref neg_infinity in
  if t.contiguous then
    for f = 0 to k - 1 do
      let v =
        Float.min
          (Array.unsafe_get current f)
          (Array.unsafe_get t.data (off + f))
      in
      if v > !worst then worst := v
    done
  else
    for f = 0 to k - 1 do
      let v =
        Float.min
          (Array.unsafe_get current f)
          (Array.unsafe_get t.data (off + Array.unsafe_get t.colmap f))
      in
      if v > !worst then worst := v
    done;
  !worst

let build ?domains ?(guard = Rrms_guard.Guard.Budget.unlimited) ~funcs points =
  let n = Array.length points and k = Array.length funcs in
  if n = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.build: no points";
  if k = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.build: no functions";
  Obs.Counter.incr Metrics.builds;
  Obs.Counter.add Metrics.cells (n * k);
  (* Refuse to allocate past the budget's cell cap: the HD solvers
     shrink gamma to fit beforehand, so tripping this means a direct
     caller asked for more than the guard allows. *)
  Rrms_guard.Guard.Budget.check_cells guard ~what:"regret matrix cells" (n * k);
  (* Each column's best scan is an independent O(n·m) dot-product sweep
     and each row fill writes only its own [k]-cell slice of the flat
     buffer, so both loops parallelise with bit-identical results. *)
  Obs.Span.with_ "regret_matrix.build" (fun () ->
      let best = Array.make k 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:8 k (fun f ->
          best.(f) <- Vec.max_score funcs.(f) points);
      let data = Array.make (n * k) 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:16 n (fun i ->
          let off = i * k in
          let p = points.(i) in
          for f = 0 to k - 1 do
            let b = Array.unsafe_get best f in
            if b > 0. then
              Array.unsafe_set data (off + f)
                (Float.max 0. ((b -. Vec.dot funcs.(f) p) /. b))
          done);
      {
        data;
        stride = k;
        nrows = n;
        colmap = Array.init k (fun f -> f);
        contiguous = true;
        best;
        distinct = Atomic.make None;
      })

(* ------------------------------------------------------------------ *)
(* Shard decomposition                                                 *)
(* ------------------------------------------------------------------ *)

(* The matrix decomposes by row: cell (i, f) depends on point i and the
   database-wide best score of f only.  A dataset partitioned across N
   shards can therefore build the matrix as N independent row blocks —
   each shard computes the best scores of its own points, the per-column
   maxima merge pointwise, and each shard then fills its rows against
   the merged vector.  The three helpers below are exactly [build]'s two
   phases taken apart; [import] over a buffer assembled this way is
   bit-identical to [build] over the union of the points. *)

let best_scores ?domains ~funcs points =
  let n = Array.length points and k = Array.length funcs in
  if n = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.best_scores: no points";
  if k = 0 then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.best_scores: no functions";
  let best = Array.make k 0. in
  Rrms_parallel.parallel_for ?domains ~min_chunk:8 k (fun f ->
      best.(f) <- Vec.max_score funcs.(f) points);
  best

let merge_best = function
  | [] ->
      Rrms_guard.Guard.Error.invalid_input "Regret_matrix.merge_best: no parts"
  | first :: rest ->
      let best = Array.copy first in
      List.iter
        (fun part ->
          if Array.length part <> Array.length best then
            Rrms_guard.Guard.Error.invalid_input
              "Regret_matrix.merge_best: column counts differ";
          (* Same strict [>] as [Vec.max_score]'s scan: the merged value
             is the maximum over the union, bit for bit, regardless of
             how the parts were grouped. *)
          Array.iteri (fun f v -> if v > best.(f) then best.(f) <- v) part)
        rest;
      best

let fill_row ~funcs ~best data ~row p =
  let k = Array.length best in
  if Array.length funcs <> k then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.fill_row: funcs and best disagree on column count";
  let off = row * k in
  if row < 0 || off + k > Array.length data then
    invalid_arg "Regret_matrix.fill_row: row out of range";
  for f = 0 to k - 1 do
    let b = Array.unsafe_get best f in
    if b > 0. then
      Array.unsafe_set data (off + f)
        (Float.max 0. ((b -. Vec.dot funcs.(f) p) /. b))
  done

let select_cols t cols =
  let k = Array.length t.best in
  Array.iter
    (fun f ->
      if f < 0 || f >= k then
        Rrms_guard.Guard.Error.invalid_input
          "Regret_matrix.select_cols: column index out of range")
    cols;
  if Array.length cols = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.select_cols: no columns";
  (* A view: the flat buffer is shared and only the logical→physical
     column map changes (composed through the parent's, so a view of a
     view stays one indirection deep). *)
  let colmap = Array.map (fun f -> t.colmap.(f)) cols in
  let contiguous =
    t.nrows * Array.length cols = Array.length t.data
    && Array.length cols = t.stride
    && (let id = ref true in
        Array.iteri (fun i pc -> if pc <> i then id := false) colmap;
        !id)
  in
  {
    data = t.data;
    stride = t.stride;
    nrows = t.nrows;
    colmap;
    contiguous;
    best = Array.map (fun f -> t.best.(f)) cols;
    distinct = Atomic.make None;
  }

let materialize t =
  if t.contiguous then t
  else begin
    let k = cols t in
    let data = Array.make (t.nrows * k) 0. in
    for i = 0 to t.nrows - 1 do
      let src = i * t.stride and dst = i * k in
      for f = 0 to k - 1 do
        Array.unsafe_set data (dst + f)
          (Array.unsafe_get t.data (src + Array.unsafe_get t.colmap f))
      done
    done;
    {
      data;
      stride = k;
      nrows = t.nrows;
      colmap = Array.init k (fun f -> f);
      contiguous = true;
      best = Array.copy t.best;
      (* Cell values are unchanged by the gather, so an already-computed
         distinct cache carries over. *)
      distinct = Atomic.make (Atomic.get t.distinct);
    }
  end

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

(* A mutation replaces the row set (skyline) of the matrix: some rows
   survive unchanged, some are retired, some are new.  Cells of a
   surviving row only depend on its point and the column's best score,
   so a column whose best provably did not move can carry every
   surviving cell over verbatim; only new rows and moved columns pay
   dot products.

   The "provably did not move" test costs no extra storage: build's
   kernel writes exactly 0. in the cell of any row achieving the
   column's best (b - d = 0 with d = b), and conversely a 0. cell in a
   positive-best column certifies dot = best bitwise (b - d = 0 in IEEE
   implies d = b for finite d, b).  So a column keeps its best iff
     - the old best is positive (all-zero columns always recompute:
       a 0. cell there certifies nothing),
     - some carried row has a 0. cell (a witness that the old max is
       still attained), and
     - no fresh row's dot exceeds it.
   Recomputed columns rerun Vec.max_score's strict-> scan in the new
   row order, so they too are bit-identical to [build ~funcs points]. *)

let update ?domains ?(guard = Rrms_guard.Guard.Budget.unlimited) t ~funcs
    ~points ~carried =
  let k = cols t in
  let n = Array.length points in
  if n = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.update: no points";
  if Array.length funcs <> k then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.update: function count differs from the matrix";
  if Array.length carried <> n then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.update: carried length does not match points";
  Array.iter
    (fun j ->
      if j >= rows t then
        Rrms_guard.Guard.Error.invalid_input
          "Regret_matrix.update: carried row index out of range")
    carried;
  Rrms_guard.Guard.Budget.check_cells guard ~what:"regret matrix cells" (n * k);
  Obs.Counter.incr Metrics.updates;
  Obs.Counter.add Metrics.cells (n * k);
  Obs.Span.with_ "regret_matrix.update" (fun () ->
      let t = materialize t in
      let old = t.data and old_best = t.best in
      (* Fresh rows need a dot product in every column no matter what;
         compute them once up front so the per-column decision and the
         fill phase both reuse them. *)
      let fresh = ref [] in
      for i = n - 1 downto 0 do
        if carried.(i) < 0 then fresh := i :: !fresh
      done;
      let fresh = Array.of_list !fresh in
      let nf = Array.length fresh in
      let fdots = Array.make (Int.max 1 (nf * k)) 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:4 nf (fun fi ->
          let p = points.(fresh.(fi)) in
          let off = fi * k in
          for f = 0 to k - 1 do
            Array.unsafe_set fdots (off + f) (Vec.dot funcs.(f) p)
          done);
      let fpos = Array.make n (-1) in
      Array.iteri (fun fi i -> fpos.(i) <- fi) fresh;
      (* Does some carried row witness the old best?  One scan over the
         carried rows' old cells. *)
      let carried_zero = Array.make k false in
      for i = 0 to n - 1 do
        let j = carried.(i) in
        if j >= 0 then begin
          let off = j * k in
          for f = 0 to k - 1 do
            if Array.unsafe_get old (off + f) = 0. then carried_zero.(f) <- true
          done
        end
      done;
      let keep = Array.make k false in
      let best = Array.make k 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:8 k (fun f ->
          let ob = Array.unsafe_get old_best f in
          let fresh_le = ref true in
          for fi = 0 to nf - 1 do
            if Array.unsafe_get fdots ((fi * k) + f) > ob then fresh_le := false
          done;
          if ob > 0. && carried_zero.(f) && !fresh_le then begin
            keep.(f) <- true;
            best.(f) <- ob
          end
          else begin
            (* Exactly Vec.max_score's strict-> scan over the new points
               (seeded from points.(0)), reusing the fresh dots. *)
            let dot_of i =
              let fi = Array.unsafe_get fpos i in
              if fi >= 0 then Array.unsafe_get fdots ((fi * k) + f)
              else Vec.dot funcs.(f) points.(i)
            in
            let b = ref (dot_of 0) in
            for i = 1 to n - 1 do
              let v = dot_of i in
              if v > !b then b := v
            done;
            best.(f) <- !b
          end);
      let data = Array.make (n * k) 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:16 n (fun i ->
          let off = i * k in
          let j = carried.(i) in
          let fi = Array.unsafe_get fpos i in
          for f = 0 to k - 1 do
            if j >= 0 && Array.unsafe_get keep f then
              Array.unsafe_set data (off + f)
                (Array.unsafe_get old ((j * k) + f))
            else begin
              let b = Array.unsafe_get best f in
              if b > 0. then begin
                let d =
                  if fi >= 0 then Array.unsafe_get fdots ((fi * k) + f)
                  else Vec.dot funcs.(f) points.(i)
                in
                Array.unsafe_set data (off + f) (Float.max 0. ((b -. d) /. b))
              end
            end
          done);
      (* Every carried row blits every kept column; nothing else does. *)
      let kept_cols = Array.fold_left (fun a kp -> if kp then a + 1 else a) 0 keep in
      Obs.Counter.add Metrics.cells_carried ((n - nf) * kept_cols);
      let changed = ref [] in
      for f = k - 1 downto 0 do
        if best.(f) <> old_best.(f) then changed := f :: !changed
      done;
      ( {
          data;
          stride = k;
          nrows = n;
          colmap = Array.init k (fun f -> f);
          contiguous = true;
          best;
          distinct = Atomic.make None;
        },
        Array.of_list !changed ))

let append_rows ?domains ?guard t ~funcs ~points fresh =
  if Array.length points <> rows t then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.append_rows: points do not match the matrix rows";
  if Array.length fresh = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.append_rows: no rows";
  let nold = Array.length points in
  let all = Array.append points fresh in
  let carried =
    Array.init (Array.length all) (fun i -> if i < nold then i else -1)
  in
  update ?domains ?guard t ~funcs ~points:all ~carried

let mask_rows ?domains ?guard t ~funcs ~points ~keep =
  if Array.length points <> rows t then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.mask_rows: points do not match the matrix rows";
  if Array.length keep = 0 then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.mask_rows: empty row set";
  let pts =
    Array.map
      (fun j ->
        if j < 0 || j >= rows t then
          Rrms_guard.Guard.Error.invalid_input
            "Regret_matrix.mask_rows: row index out of range"
        else points.(j))
      keep
  in
  update ?domains ?guard t ~funcs ~points:pts ~carried:(Array.copy keep)

let export t =
  let m = materialize t in
  (Array.copy m.best, Array.copy m.data)

let import ~rows ~best ~cells =
  let k = Array.length best in
  if rows < 1 || k < 1 then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.import: empty matrix";
  if Array.length cells <> rows * k then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.import: cells length does not match rows x cols";
  {
    data = cells;
    stride = k;
    nrows = rows;
    colmap = Array.init k (fun f -> f);
    contiguous = true;
    best;
    (* The distinct cache is recomputed on demand; it is a pure
       function of the (bit-identical) cells, so rehydrated matrices
       solve identically to the originals. *)
    distinct = Atomic.make None;
  }

let compute_distinct t =
  let n = rows t and k = cols t in
  let all =
    if t.contiguous then Array.copy t.data
    else begin
      let all = Array.make (n * k) 0. in
      for i = 0 to n - 1 do
        let src = i * t.stride and dst = i * k in
        for f = 0 to k - 1 do
          Array.unsafe_set all (dst + f)
            (Array.unsafe_get t.data (src + Array.unsafe_get t.colmap f))
        done
      done;
      all
    end
  in
  Fsort.sort all;
  (* Dedup in place in one scan: [j] entries are emitted, and the next
     candidate only needs comparing against the last emitted value. *)
  let j = ref 1 in
  for i = 1 to Array.length all - 1 do
    if all.(i) <> all.(!j - 1) then begin
      all.(!j) <- all.(i);
      incr j
    end
  done;
  Array.sub all 0 !j

let distinct_values t =
  let d =
    match Atomic.get t.distinct with
    | Some d -> d
    | None ->
        let d = compute_distinct t in
        (* A concurrent loser computed the identical array; either
           result is correct, so last-write-wins is fine. *)
        Atomic.set t.distinct (Some d);
        d
  in
  Obs.Gauge.set_int Metrics.distinct (Array.length d);
  d

let regret_of_rows t rs =
  if Array.length rs = 0 then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.regret_of_rows: empty row set";
  let k = cols t in
  (* Stream row-by-row over the flat buffer (one pass per selected row)
     rather than column-by-column: same per-column minima, same result,
     contiguous reads. *)
  let mins = Array.make k infinity in
  Array.iter (fun i -> row_update_mins t i mins) rs;
  let worst = ref 0. in
  for f = 0 to k - 1 do
    if Array.unsafe_get mins f > !worst then worst := Array.unsafe_get mins f
  done;
  !worst
