open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let builds =
    Obs.Counter.make ~help:"regret matrices built" "rrms_matrix_builds_total"

  (* Paper quantity s·(γ+1)^(m-1): total cells materialized. *)
  let cells =
    Obs.Counter.make ~help:"regret-matrix cells materialized (rows x cols)"
      "rrms_matrix_cells_total"

  let distinct =
    Obs.Gauge.make
      ~help:"distinct cell values of the last distinct_values scan"
      "rrms_matrix_distinct_values"
end

type t = {
  cells : float array array; (* rows x cols *)
  best : float array; (* per-column best database score *)
}

let build ?domains ?(guard = Rrms_guard.Guard.Budget.unlimited) ~funcs points =
  let n = Array.length points and k = Array.length funcs in
  if n = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.build: no points";
  if k = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.build: no functions";
  Obs.Counter.incr Metrics.builds;
  Obs.Counter.add Metrics.cells (n * k);
  (* Refuse to allocate past the budget's cell cap: the HD solvers
     shrink gamma to fit beforehand, so tripping this means a direct
     caller asked for more than the guard allows. *)
  Rrms_guard.Guard.Budget.check_cells guard ~what:"regret matrix cells" (n * k);
  (* Each column's best scan is an independent O(n·m) dot-product sweep
     and each row's cell fill writes only its own row, so both loops
     parallelise with bit-identical results. *)
  Obs.Span.with_ "regret_matrix.build" (fun () ->
      let best = Array.make k 0. in
      Rrms_parallel.parallel_for ?domains ~min_chunk:8 k (fun f ->
          best.(f) <- Vec.max_score funcs.(f) points);
      let cells = Array.make n [||] in
      Rrms_parallel.parallel_for ?domains ~min_chunk:16 n (fun i ->
          let row = Array.make k 0. in
          let p = points.(i) in
          for f = 0 to k - 1 do
            if best.(f) > 0. then
              row.(f) <-
                Float.max 0. ((best.(f) -. Vec.dot funcs.(f) p) /. best.(f))
          done;
          cells.(i) <- row);
      { cells; best })

let select_cols t cols =
  let k = Array.length t.best in
  Array.iter
    (fun f ->
      if f < 0 || f >= k then
        invalid_arg "Regret_matrix.select_cols: column index out of range")
    cols;
  if Array.length cols = 0 then
    Rrms_guard.Guard.Error.invalid_input "Regret_matrix.select_cols: no columns";
  {
    cells = Array.map (fun row -> Array.map (fun f -> row.(f)) cols) t.cells;
    best = Array.map (fun f -> t.best.(f)) cols;
  }

let rows t = Array.length t.cells
let cols t = Array.length t.best
let get t i f = t.cells.(i).(f)
let column_best_score t f = t.best.(f)

let distinct_values t =
  let n = rows t and k = cols t in
  let all = Array.make (n * k) 0. in
  Array.iteri
    (fun i row -> Array.blit row 0 all (i * k) k)
    t.cells;
  Array.sort Float.compare all;
  (* Dedup in place in one scan: [j] entries are emitted, and the next
     candidate only needs comparing against the last emitted value. *)
  let j = ref 1 in
  for i = 1 to Array.length all - 1 do
    if all.(i) <> all.(!j - 1) then begin
      all.(!j) <- all.(i);
      incr j
    end
  done;
  Obs.Gauge.set_int Metrics.distinct !j;
  Array.sub all 0 !j

let regret_of_rows t rs =
  if Array.length rs = 0 then
    Rrms_guard.Guard.Error.invalid_input
      "Regret_matrix.regret_of_rows: empty row set";
  let k = cols t in
  let worst = ref 0. in
  for f = 0 to k - 1 do
    let best = ref infinity in
    Array.iter
      (fun i ->
        let v = t.cells.(i).(f) in
        if v < !best then best := v)
      rs;
    if !best > !worst then worst := !best
  done;
  !worst
