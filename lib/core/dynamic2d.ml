open Rrms_geom

type t = {
  r : int;
  mutable store : Vec.t option array; (* handle -> tuple, None = removed *)
  mutable used : int; (* handles allocated *)
  mutable live : int;
  mutable dirty : bool;
  mutable selection : int array; (* handles *)
  mutable regret : float;
  mutable skyline : int array; (* handles of the current skyline *)
  mutable recomputes : int;
}

let check_tuple p =
  if Array.length p <> 2 then invalid_arg "Dynamic2d: tuples must be 2D";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0. then
        invalid_arg "Dynamic2d: values must be finite and non-negative")
    p

let create ~r points =
  if r < 1 then invalid_arg "Dynamic2d.create: r must be >= 1";
  Array.iter check_tuple points;
  let n = Array.length points in
  let store = Array.make (max 8 (2 * n)) None in
  Array.iteri (fun i p -> store.(i) <- Some p) points;
  {
    r;
    store;
    used = n;
    live = n;
    dirty = true;
    selection = [||];
    regret = 0.;
    skyline = [||];
    recomputes = 0;
  }

let size t = t.live

let live_handles t =
  let acc = ref [] in
  for h = t.used - 1 downto 0 do
    if t.store.(h) <> None then acc := h :: !acc
  done;
  Array.of_list !acc

let recompute t =
  let handles = live_handles t in
  if Array.length handles = 0 then begin
    t.selection <- [||];
    t.regret <- 0.;
    t.skyline <- [||]
  end
  else begin
    let points =
      Array.map
        (fun h -> match t.store.(h) with Some p -> p | None -> assert false)
        handles
    in
    let ctx = Rrms2d.make_ctx points in
    t.skyline <- Array.map (fun i -> handles.(i)) (Rrms2d.skyline_order ctx);
    let res = Rrms2d.solve_exact ~ctx points ~r:t.r in
    t.selection <- Array.map (fun i -> handles.(i)) res.Rrms2d.selected;
    t.regret <- res.Rrms2d.regret
  end;
  t.recomputes <- t.recomputes + 1;
  t.dirty <- false

let ensure t = if t.dirty then recompute t

let grow t =
  if t.used = Array.length t.store then begin
    let bigger = Array.make (2 * Array.length t.store) None in
    Array.blit t.store 0 bigger 0 t.used;
    t.store <- bigger
  end

(* Is the candidate dominated (weakly) by some current skyline member?
   Weak domination (>= on both attributes) suffices: such a tuple can
   never be the strict maximum of any function, so the cached solution's
   regret and optimality are unchanged. *)
let covered t p =
  Array.exists
    (fun h ->
      match t.store.(h) with
      | Some q -> q.(0) >= p.(0) && q.(1) >= p.(1)
      | None -> false)
    t.skyline

let insert t p =
  check_tuple p;
  grow t;
  let handle = t.used in
  t.store.(handle) <- Some p;
  t.used <- t.used + 1;
  t.live <- t.live + 1;
  if not t.dirty then if not (covered t p) then t.dirty <- true;
  handle

let remove t handle =
  if handle < 0 || handle >= t.used then
    invalid_arg "Dynamic2d.remove: unknown handle";
  match t.store.(handle) with
  | None -> () (* idempotent *)
  | Some _ ->
      t.store.(handle) <- None;
      t.live <- t.live - 1;
      (* Only losing a skyline member can change the optimum (selected
         tuples are always skyline members). *)
      if (not t.dirty) && Array.mem handle t.skyline then t.dirty <- true

let get t handle =
  if handle < 0 || handle >= t.used then
    invalid_arg "Dynamic2d.get: unknown handle";
  t.store.(handle)

let selection t =
  ensure t;
  Array.copy t.selection

let skyline t =
  ensure t;
  Array.copy t.skyline

let regret t =
  ensure t;
  t.regret

let recompute_count t = t.recomputes
let is_dirty t = t.dirty
