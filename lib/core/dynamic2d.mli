(** Incremental maintenance of a 2D regret-minimizing set under updates.

    A serving system keeps the compact set around while the underlying
    table changes.  Recomputing from scratch on every insert is wasteful
    because most updates cannot change the answer: a tuple that is
    dominated by the current skyline is never the maximum of any
    non-negative linear function, so neither the optimal set nor its
    regret moves.  This wrapper tracks exactly that:

    - {!insert} appends a tuple; if it is dominated the cached solution
      stays valid, otherwise the structure is marked dirty;
    - {!remove} tombstones a tuple; only the removal of a current
      skyline member dirties the cache;
    - queries ({!selection}, {!regret}) lazily recompute (with
      {!Rrms2d.solve_exact}) when dirty.

    Under random insertion order only O(log n) of n inserts touch the
    skyline in expectation, so recomputations are rare —
    {!recompute_count} exposes the number for inspection. *)

type t

val create : r:int -> Rrms_geom.Vec.t array -> t
(** Start from an initial table (may be empty).
    @raise Invalid_argument if [r < 1] or a tuple is not 2D. *)

val size : t -> int
(** Live (non-removed) tuples. *)

val insert : t -> Rrms_geom.Vec.t -> int
(** Add a tuple; returns its handle (stable across updates).
    @raise Invalid_argument if not 2D or negative. *)

val remove : t -> int -> unit
(** Tombstone a tuple by handle.  Idempotent.
    @raise Invalid_argument on an unknown handle. *)

val get : t -> int -> Rrms_geom.Vec.t option
(** The tuple behind a handle; [None] if removed. *)

val selection : t -> int array
(** Handles of the current regret-minimizing set (recomputes if dirty).
    Empty array when the table is empty. *)

val skyline : t -> int array
(** Handles of the current skyline in {!Rrms2d.skyline_order}'s sweep
    order (A₂ descending / A₁ ascending); recomputes if dirty. *)

val regret : t -> float
(** Exact maximum regret ratio of {!selection}; [0.] on an empty or
    fully-coverable table. *)

val recompute_count : t -> int
(** How many times the solution has been recomputed since {!create}. *)

val is_dirty : t -> bool
(** Whether the next query will recompute. *)
