open Rrms_geom
module Obs = Rrms_obs.Obs

module Metrics = struct
  let grid_builds =
    Obs.Counter.make ~help:"discretization grids materialized"
      "rrms_grid_builds_total"

  (* Paper quantity (gamma+1)^(m-1): directions in the last grid. *)
  let grid_directions =
    Obs.Gauge.make ~help:"directions in the last materialized grid"
      "rrms_grid_directions"
end

let half_pi = Float.pi /. 2.

let alpha ~gamma = half_pi /. float_of_int gamma

let max_grid_size = 2_000_000

(* (gamma+1)^(m-1), saturating at [cap + 1] so callers can compare
   against a cap without integer overflow. *)
let grid_size_capped ~cap ~gamma ~m =
  let base = gamma + 1 in
  let rec power acc i =
    if acc > cap then cap + 1
    else if i = 0 then acc
    else power (acc * base) (i - 1)
  in
  power 1 (m - 1)

let grid_size ~gamma ~m =
  if gamma < 1 then
    Rrms_guard.Guard.Error.invalid_input "Discretize.grid: gamma must be >= 1";
  if m < 2 then
    Rrms_guard.Guard.Error.invalid_input "Discretize.grid: m must be >= 2";
  let total = grid_size_capped ~cap:max_grid_size ~gamma ~m in
  if total > max_grid_size then
    Rrms_guard.Guard.Error.resource_limit
      ~what:
        "Discretize.grid: (gamma+1)^(m-1) directions (project to fewer \
         attributes or use Discretize.random)"
      ~requested:total ~limit:max_grid_size;
  total

let matrix_cells ~rows ~gamma ~m =
  if rows < 1 then rows
  else begin
    let cap = (max_int / 2 / rows) + 1 in
    let dirs = grid_size_capped ~cap ~gamma ~m in
    rows * dirs (* saturation keeps this below max_int *)
  end

let fit_gamma ~rows ~max_cells ~gamma ~m =
  (* Largest gamma' in [1, gamma] whose regret matrix fits the cap. *)
  let rec down g =
    if g < 1 then None
    else if matrix_cells ~rows ~gamma:g ~m <= max_cells then Some g
    else down (g - 1)
  in
  down gamma

let grid ~gamma ~m =
  let total = grid_size ~gamma ~m in
  Obs.Counter.incr Metrics.grid_builds;
  Obs.Gauge.set_int Metrics.grid_directions total;
  let a = alpha ~gamma in
  let k = m - 1 in
  (* Odometer enumeration of all (γ+1)^(m-1) angle index tuples. *)
  let digits = Array.make k 0 in
  let angles = Array.make k 0. in
  Array.init total (fun idx ->
      if idx > 0 then begin
        let j = ref 0 in
        let carry = ref true in
        while !carry && !j < k do
          if digits.(!j) < gamma then begin
            digits.(!j) <- digits.(!j) + 1;
            carry := false
          end
          else begin
            digits.(!j) <- 0;
            incr j
          end
        done
      end;
      for j = 0 to k - 1 do
        angles.(j) <- float_of_int digits.(j) *. a
      done;
      Polar.to_cartesian angles)

(* A γ'-grid is a sub-grid of a γ-grid when γ' | γ: angle j·π/(2γ')
   equals (j·c)·π/(2γ) for c = γ/γ' in the reals.  Floating point only
   honours that identity for some ratios (powers of two always do), so
   the index mapping is accepted only after verifying that every
   sub-grid angle is {e bit-identical} to the big grid's — which makes
   reuse of a cached regret matrix exact, never approximate. *)
let subgrid_indices ~gamma_sub ~gamma ~m =
  if gamma_sub < 1 || gamma < 1 then
    Rrms_guard.Guard.Error.invalid_input
      "Discretize.subgrid_indices: gamma must be >= 1";
  if m < 2 then
    Rrms_guard.Guard.Error.invalid_input
      "Discretize.subgrid_indices: m must be >= 2";
  if gamma mod gamma_sub <> 0 || gamma_sub > gamma then None
  else begin
    let c = gamma / gamma_sub in
    let a_sub = alpha ~gamma:gamma_sub and a_big = alpha ~gamma in
    let angles_match =
      let ok = ref true in
      for d = 0 to gamma_sub do
        if
          float_of_int d *. a_sub
          <> float_of_int (d * c) *. a_big
        then ok := false
      done;
      !ok
    in
    if not angles_match then None
    else begin
      let total = grid_size ~gamma:gamma_sub ~m in
      let k = m - 1 in
      let big_base = gamma + 1 in
      (* Odometer over the sub-grid digits, mirroring [grid]'s
         enumeration order (digit 0 fastest), mapping each digit tuple
         (d_0..d_{k-1}) to Σ (d_j·c)·(γ+1)^j in the big grid. *)
      let digits = Array.make k 0 in
      Some
        (Array.init total (fun idx ->
             if idx > 0 then begin
               let j = ref 0 in
               let carry = ref true in
               while !carry && !j < k do
                 if digits.(!j) < gamma_sub then begin
                   digits.(!j) <- digits.(!j) + 1;
                   carry := false
                 end
                 else begin
                   digits.(!j) <- 0;
                   incr j
                 end
               done
             end;
             let index = ref 0 and stride = ref 1 in
             for j = 0 to k - 1 do
               index := !index + (digits.(j) * c * !stride);
               stride := !stride * big_base
             done;
             !index))
    end
  end

let random rng ~count ~m =
  if m < 2 then invalid_arg "Discretize.random: m must be >= 2";
  Array.init count (fun _ ->
      let angles =
        Array.init (m - 1) (fun _ -> Rrms_rng.Rng.uniform rng 0. half_pi)
      in
      Polar.to_cartesian angles)

let force_directed ?(iterations = 100) ?(step = 0.05) rng ~count ~m =
  let dirs = random rng ~count ~m in
  let force = Array.make m 0. in
  for _ = 1 to iterations do
    for i = 0 to count - 1 do
      Array.fill force 0 m 0.;
      let p = dirs.(i) in
      for j = 0 to count - 1 do
        if j <> i then begin
          let q = dirs.(j) in
          let d2 = ref 1e-9 in
          for d = 0 to m - 1 do
            let diff = p.(d) -. q.(d) in
            d2 := !d2 +. (diff *. diff)
          done;
          (* Coulomb repulsion 1/d², directed away from q. *)
          let mag = 1. /. (!d2 *. sqrt !d2) in
          for d = 0 to m - 1 do
            force.(d) <- force.(d) +. (mag *. (p.(d) -. q.(d)))
          done
        end
      done;
      (* Keep only the tangential component so the move stays on the
         sphere to first order. *)
      let radial = Vec.dot force p in
      for d = 0 to m - 1 do
        force.(d) <- force.(d) -. (radial *. p.(d))
      done;
      let norm = Vec.norm force in
      if norm > 0. then begin
        let scale = step /. norm in
        let moved =
          Array.mapi (fun d x -> Float.max 0. (x +. (scale *. force.(d)))) p
        in
        if Vec.norm moved > 0. then dirs.(i) <- Vec.normalize moved
      end
    done
  done;
  dirs

let min_pairwise_angle dirs =
  let n = Array.length dirs in
  let best = ref infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = Polar.angular_distance dirs.(i) dirs.(j) in
      if a < !best then best := a
    done
  done;
  !best

let max_coverage_angle ?(samples = 2000) rng dirs ~m =
  let worst = ref 0. in
  for _ = 1 to samples do
    let angles = Array.init (m - 1) (fun _ -> Rrms_rng.Rng.uniform rng 0. half_pi) in
    let probe = Polar.to_cartesian angles in
    let nearest =
      Array.fold_left
        (fun acc d -> Float.min acc (Polar.angular_distance probe d))
        infinity dirs
    in
    if nearest > !worst then worst := nearest
  done;
  !worst

let theorem4_alpha' ~gamma ~m =
  let a = alpha ~gamma in
  let cm = cos a ** float_of_int (m - 1) in
  2. *. asin (sqrt ((1. -. cm) /. 2.))

(* Theorem 4's contraction constant as a function of the covering
   radius δ (= α'/2 for the grid): any direction within angle δ of a
   satisfied one keeps at least a c-fraction of its guarantee. *)
let c_of_coverage delta =
  cos delta *. cos (Float.pi /. 4.) /. cos ((Float.pi /. 4.) -. delta)

let bound_for_coverage ~coverage ~eps =
  let c = c_of_coverage coverage in
  (c *. eps) +. (1. -. c)

let theorem4_c ~gamma ~m = c_of_coverage (theorem4_alpha' ~gamma ~m /. 2.)

let theorem4_bound ~gamma ~m ~eps =
  let c = theorem4_c ~gamma ~m in
  (c *. eps) +. (1. -. c)
