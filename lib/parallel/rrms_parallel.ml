(* A fixed-size domain pool.  Workers block on a condition variable
   guarding a FIFO of thunks; a batch submission enqueues one thunk per
   chunk and the submitting domain then helps drain the queue before
   waiting on a countdown latch, so a pool of size [s] really applies
   [s]-way parallelism with only [s - 1] spawned domains. *)

module Obs = Rrms_obs.Obs

(* Pool shape metrics are declared non-deterministic: the chunk layout
   (and hence every count below) legitimately depends on the pool size,
   unlike the algorithmic counters in lib/core. *)
module Metrics = struct
  let batches =
    Obs.Counter.make ~deterministic:false
      ~help:"parallel batches submitted to the domain pool"
      "rrms_pool_batches_total"

  let chunks =
    Obs.Counter.make ~deterministic:false
      ~help:"chunks executed across all batches" "rrms_pool_chunks_total"

  let serial =
    Obs.Counter.make ~deterministic:false
      ~help:"parallel_for calls taking the serial fallback"
      "rrms_pool_serial_loops_total"

  (* Per-worker busy time, indexed by the pool-local worker id (0 is
     the submitting/main domain); ids past the table fold into the last
     slot so a huge pool cannot overflow it. *)
  let max_workers = 16

  let busy =
    Array.init max_workers (fun w ->
        Obs.Floatc.make
          ~help:"wall-clock seconds spent executing chunks, per worker"
          (Printf.sprintf "rrms_pool_busy_seconds_total{worker=\"%d\"}" w))
end

module Fault = struct
  type mode = Raise | Stall of float

  exception Injected of int

  (* Worker identity: 0 is the submitting/main domain (it helps drain
     batches and runs the serial fallback), spawned workers are
     1 .. size-1 within their pool.  Stored domain-locally so the hook
     knows who is executing a chunk regardless of which pool queue it
     came from. *)
  let worker_id : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
  let self () = Domain.DLS.get worker_id

  type spec = { worker : int; mode : mode }

  let current : spec option Atomic.t = Atomic.make None
  let set ~worker mode = Atomic.set current (Some { worker; mode })
  let clear () = Atomic.set current None
  let active () = Atomic.get current <> None

  (* "raise@W" or "stall@W:SECONDS", e.g. RRMS_FAULT=stall@1:0.001. *)
  let parse s =
    match String.split_on_char '@' (String.trim s) with
    | [ "raise"; w ] ->
        Option.map (fun w -> { worker = w; mode = Raise }) (int_of_string_opt w)
    | [ "stall"; rest ] -> (
        match String.split_on_char ':' rest with
        | [ w; secs ] -> (
            match (int_of_string_opt w, float_of_string_opt secs) with
            | Some w, Some t when t >= 0. -> Some { worker = w; mode = Stall t }
            | _ -> None)
        | _ -> None)
    | _ -> None

  let configure_from_env () =
    match Sys.getenv_opt "RRMS_FAULT" with
    | None -> ()
    | Some s -> (
        match parse s with
        | Some { worker; mode } -> set ~worker mode
        | None -> ())

  (* Called on the executing domain at every chunk boundary. *)
  let hook () =
    match Atomic.get current with
    | None -> ()
    | Some { worker; mode } ->
        if self () = worker then begin
          match mode with
          | Raise -> raise (Injected worker)
          | Stall t -> if t > 0. then Unix.sleepf t
        end

  let () =
    Printexc.register_printer (function
      | Injected w -> Some (Printf.sprintf "Rrms_parallel.Fault.Injected(worker %d)" w)
      | _ -> None)
end

module Pool = struct
  type t = {
    size : int;
    jobs : (unit -> unit) Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable workers : unit Domain.t list;
  }

  let rec worker pool =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.jobs do
      Condition.wait pool.nonempty pool.mutex
    done;
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.mutex;
    job ();
    worker pool

  let create size =
    if size < 1 then invalid_arg "Pool.create: size must be >= 1";
    let pool =
      {
        size;
        jobs = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        workers = [];
      }
    in
    if size > 1 then
      pool.workers <-
        List.init (size - 1) (fun i ->
            Domain.spawn (fun () ->
                Domain.DLS.set Fault.worker_id (i + 1);
                worker pool));
    pool

  let size t = t.size

  (* Pools are cached per size and never torn down: idle workers cost
     one blocked thread each, and the MRST binary search re-enters the
     pool on every probe. *)
  let table : (int, t) Hashtbl.t = Hashtbl.create 4
  let table_mutex = Mutex.create ()

  let get size =
    if size < 1 then invalid_arg "Pool.get: size must be >= 1";
    Mutex.lock table_mutex;
    let pool =
      match Hashtbl.find_opt table size with
      | Some p -> p
      | None ->
          let p = create size in
          Hashtbl.add table size p;
          p
    in
    Mutex.unlock table_mutex;
    pool

  let default = Atomic.make 1
  let default_size () = Atomic.get default
  let set_default_size n = Atomic.set default (max 1 n)

  let configure_from_env () =
    match Sys.getenv_opt "RRMS_DOMAINS" with
    | None -> ()
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> set_default_size n
        | Some _ | None -> ())

  (* Countdown latch for one batch of chunks. *)
  type batch = {
    b_mutex : Mutex.t;
    finished : Condition.t;
    mutable pending : int;
    mutable failure : exn option;
  }

  (* Execute one chunk, attributing its wall-clock time to the worker
     actually running it (the submitting domain helps drain, so worker
     0 accrues busy time too). *)
  let timed_exec task =
    if Obs.enabled () then begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let w = min (Fault.self ()) (Metrics.max_workers - 1) in
          Obs.Floatc.add Metrics.busy.(w) (Unix.gettimeofday () -. t0))
        task
    end
    else task ()

  let run_batch pool (tasks : (unit -> unit) array) =
    let nt = Array.length tasks in
    Obs.Counter.incr Metrics.batches;
    Obs.Counter.add Metrics.chunks nt;
    if nt = 0 then ()
    else if pool.size = 1 || nt = 1 then
      Array.iter
        (fun f ->
          Fault.hook ();
          timed_exec f)
        tasks
    else begin
      let b =
        {
          b_mutex = Mutex.create ();
          finished = Condition.create ();
          pending = nt;
          failure = None;
        }
      in
      (* Chunks may execute on worker domains, which have no ambient
         request scope of their own: capture the submitter's context
         here and install it around every chunk, so per-request
         attribution survives the pool boundary.  (The serial path and
         the helping submitter run on the submitting thread, where the
         context is already bound — re-binding is a no-op.) *)
      let ctx = Obs.Ctx.current () in
      let wrap task () =
        (try
           Obs.Ctx.scoped ctx (fun () ->
               Fault.hook ();
               timed_exec task)
         with e ->
           Mutex.lock b.b_mutex;
           if b.failure = None then b.failure <- Some e;
           Mutex.unlock b.b_mutex);
        Mutex.lock b.b_mutex;
        b.pending <- b.pending - 1;
        if b.pending = 0 then Condition.broadcast b.finished;
        Mutex.unlock b.b_mutex
      in
      Mutex.lock pool.mutex;
      Array.iter (fun t -> Queue.push (wrap t) pool.jobs) tasks;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      (* Help: run queued chunks on this domain until the queue drains. *)
      let rec help () =
        Mutex.lock pool.mutex;
        if Queue.is_empty pool.jobs then Mutex.unlock pool.mutex
        else begin
          let job = Queue.pop pool.jobs in
          Mutex.unlock pool.mutex;
          job ();
          help ()
        end
      in
      help ();
      Mutex.lock b.b_mutex;
      while b.pending > 0 do
        Condition.wait b.finished b.b_mutex
      done;
      Mutex.unlock b.b_mutex;
      match b.failure with Some e -> raise e | None -> ()
    end
end

let resolve = function Some d -> Pool.get d | None -> Pool.get (Pool.default_size ())

let parallel_for ?domains ?(min_chunk = 64) n f =
  if min_chunk < 1 then invalid_arg "parallel_for: min_chunk must be >= 1";
  if n > 0 then begin
    let pool = resolve domains in
    if Pool.size pool = 1 || n < 2 * min_chunk then begin
      (* Serial fallback = one chunk executed by the calling domain, so
         the fault hook still sees a chunk boundary. *)
      Obs.Counter.incr Metrics.serial;
      Fault.hook ();
      Pool.timed_exec (fun () ->
          for i = 0 to n - 1 do
            f i
          done)
    end
    else begin
      let nchunks =
        min ((n + min_chunk - 1) / min_chunk) (4 * Pool.size pool)
      in
      let chunk = (n + nchunks - 1) / nchunks in
      let tasks =
        Array.init nchunks (fun c ->
            let lo = c * chunk and hi = min n ((c + 1) * chunk) in
            fun () ->
              for i = lo to hi - 1 do
                f i
              done)
      in
      Pool.run_batch pool tasks
    end
  end

let map_array ?domains ?min_chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    parallel_for ?domains ?min_chunk (n - 1) (fun i ->
        out.(i + 1) <- f a.(i + 1));
    out
  end

let reduce ?domains ?(min_chunk = 64) ~neutral ~combine n f =
  if min_chunk < 1 then invalid_arg "reduce: min_chunk must be >= 1";
  if n <= 0 then neutral
  else begin
    (* The chunk layout depends only on [n] and [min_chunk] — never on
       the pool size — so the association of [combine] is fixed and the
       result is bit-identical for every domain count. *)
    let nchunks = (n + min_chunk - 1) / min_chunk in
    let partials = Array.make nchunks neutral in
    parallel_for ?domains ~min_chunk:1 nchunks (fun c ->
        let lo = c * min_chunk and hi = min n ((c + 1) * min_chunk) in
        let acc = ref neutral in
        for i = lo to hi - 1 do
          acc := combine !acc (f i)
        done;
        partials.(c) <- !acc);
    Array.fold_left combine neutral partials
  end
