(* A fixed-size domain pool with adaptive scheduling.  Workers block on
   a condition variable guarding a FIFO of jobs; a parallel loop
   enqueues one chunk-grabbing job per participating worker (not one
   closure per chunk) and the submitting domain grabs chunks alongside
   them, so a pool of size [s] really applies [s]-way parallelism with
   only [s - 1] spawned domains — and a loop that stays serial touches
   neither the queue nor the workers.

   Three mechanisms keep the pool from losing to a serial loop:
   - a parallelism cap at [Domain.recommended_domain_count ()] (workers
     beyond the hardware would only add contention; override with
     [RRMS_POOL_CAP] / [Pool.set_parallel_cap]),
   - a measured cost model: the first chunk runs on the caller under a
     timer, and loops whose estimated remaining work cannot pay for a
     wake-up finish serially,
   - chunk sizes derived from the measured per-item cost (targeting a
     fixed time grain, bounded for balance), claimed from an atomic
     cursor so no per-chunk closures are allocated.
   None of this affects results: [parallel_for] bodies write disjoint
   indices, so the chunk layout is free to adapt, and [reduce] derives
   its layout from the iteration count alone. *)

module Obs = Rrms_obs.Obs

(* Pool shape metrics are declared non-deterministic: the chunk layout
   (and hence every count below) legitimately depends on the pool size,
   unlike the algorithmic counters in lib/core. *)
module Metrics = struct
  let batches =
    Obs.Counter.make ~deterministic:false
      ~help:"parallel batches submitted to the domain pool"
      "rrms_pool_batches_total"

  let chunks =
    Obs.Counter.make ~deterministic:false
      ~help:"chunks executed across all batches" "rrms_pool_chunks_total"

  let serial =
    Obs.Counter.make ~deterministic:false
      ~help:"parallel_for calls taking the serial fallback"
      "rrms_pool_serial_loops_total"

  let small_work =
    Obs.Counter.make ~deterministic:false
      ~help:"parallel_for calls kept serial by the measured work threshold"
      "rrms_pool_small_work_serial_total"

  let adaptive_batches =
    Obs.Counter.make ~deterministic:false
      ~help:"batches scheduled through the measured cost model"
      "rrms_pool_adaptive_batches_total"

  let last_chunk_items =
    Obs.Gauge.make ~deterministic:false
      ~help:"adapted chunk size (items) of the most recent batch"
      "rrms_pool_last_chunk_items"

  (* Per-worker busy time, indexed by the pool-local worker id (0 is
     the submitting/main domain); ids past the table fold into the last
     slot so a huge pool cannot overflow it. *)
  let max_workers = 16

  let busy =
    Array.init max_workers (fun w ->
        Obs.Floatc.make
          ~help:"wall-clock seconds spent executing chunks, per worker"
          (Printf.sprintf "rrms_pool_busy_seconds_total{worker=\"%d\"}" w))
end

module Fault = struct
  type mode = Raise | Stall of float

  exception Injected of int

  (* Worker identity: 0 is the submitting/main domain (it grabs chunks
     alongside the workers and runs the serial fallback), spawned
     workers are 1 .. size-1 within their pool.  Stored domain-locally
     so the hook knows who is executing a chunk regardless of which
     pool queue it came from. *)
  let worker_id : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
  let self () = Domain.DLS.get worker_id

  type spec = { worker : int; mode : mode }

  let current : spec option Atomic.t = Atomic.make None
  let set ~worker mode = Atomic.set current (Some { worker; mode })
  let clear () = Atomic.set current None
  let active () = Atomic.get current <> None

  (* "raise@W" or "stall@W:SECONDS", e.g. RRMS_FAULT=stall@1:0.001. *)
  let parse s =
    match String.split_on_char '@' (String.trim s) with
    | [ "raise"; w ] ->
        Option.map (fun w -> { worker = w; mode = Raise }) (int_of_string_opt w)
    | [ "stall"; rest ] -> (
        match String.split_on_char ':' rest with
        | [ w; secs ] -> (
            match (int_of_string_opt w, float_of_string_opt secs) with
            | Some w, Some t when t >= 0. -> Some { worker = w; mode = Stall t }
            | _ -> None)
        | _ -> None)
    | _ -> None

  let configure_from_env () =
    match Sys.getenv_opt "RRMS_FAULT" with
    | None -> ()
    | Some s -> (
        match parse s with
        | Some { worker; mode } -> set ~worker mode
        | None -> ())

  (* Called on the executing domain at every chunk boundary. *)
  let hook () =
    match Atomic.get current with
    | None -> ()
    | Some { worker; mode } ->
        if self () = worker then begin
          match mode with
          | Raise -> raise (Injected worker)
          | Stall t -> if t > 0. then Unix.sleepf t
        end

  let () =
    Printexc.register_printer (function
      | Injected w -> Some (Printf.sprintf "Rrms_parallel.Fault.Injected(worker %d)" w)
      | _ -> None)
end

module Pool = struct
  type t = {
    size : int;
    jobs : (unit -> unit) Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable workers : unit Domain.t list;
  }

  let rec worker pool =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.jobs do
      Condition.wait pool.nonempty pool.mutex
    done;
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.mutex;
    job ();
    worker pool

  let create size =
    if size < 1 then invalid_arg "Pool.create: size must be >= 1";
    {
      size;
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
    }

  (* Workers are spawned on the first batch that needs them, not at
     pool creation: a pool whose every loop stays serial (capped width
     1, or all-small work) costs nothing but its record.  The unlocked
     peek may read a stale [[]]; the locked re-check decides. *)
  let ensure_workers pool =
    if pool.size > 1 && pool.workers = [] then begin
      Mutex.lock pool.mutex;
      if pool.workers = [] then
        pool.workers <-
          List.init (pool.size - 1) (fun i ->
              Domain.spawn (fun () ->
                  Domain.DLS.set Fault.worker_id (i + 1);
                  worker pool));
      Mutex.unlock pool.mutex
    end

  let size t = t.size

  (* Pools are cached per size and never torn down: idle workers cost
     one blocked thread each, and the MRST binary search re-enters the
     pool on every probe. *)
  let table : (int, t) Hashtbl.t = Hashtbl.create 4
  let table_mutex = Mutex.create ()

  let get size =
    if size < 1 then invalid_arg "Pool.get: size must be >= 1";
    Mutex.lock table_mutex;
    let pool =
      match Hashtbl.find_opt table size with
      | Some p -> p
      | None ->
          let p = create size in
          Hashtbl.add table size p;
          p
    in
    Mutex.unlock table_mutex;
    pool

  let default = Atomic.make 1
  let default_size () = Atomic.get default
  let set_default_size n = Atomic.set default (max 1 n)

  (* Effective parallelism is capped at the hardware's recommended
     domain count: extra workers on an oversubscribed box only add
     wake-up and contention cost.  0 = automatic. *)
  let recommended = lazy (max 1 (Domain.recommended_domain_count ()))
  let cap_override = Atomic.make 0
  let set_parallel_cap n = Atomic.set cap_override (max 0 n)

  let parallel_cap () =
    match Atomic.get cap_override with
    | 0 -> Lazy.force recommended
    | c -> c

  let configure_from_env () =
    (match Sys.getenv_opt "RRMS_DOMAINS" with
    | None -> ()
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> set_default_size n
        | Some _ | None -> ()));
    match Sys.getenv_opt "RRMS_POOL_CAP" with
    | None -> ()
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> set_parallel_cap n
        | Some _ | None -> ())

  (* Fault injection must reach the spawned workers even when the cap
     would keep a loop serial — the resilience tests aim faults at
     worker 1 and expect it to execute chunks. *)
  let effective_width pool =
    if Fault.active () then pool.size
    else min pool.size (parallel_cap ())

  (* Countdown latch for one batch: counts outstanding grab-loop jobs. *)
  type batch = {
    b_mutex : Mutex.t;
    finished : Condition.t;
    mutable pending : int;
    mutable failure : exn option;
  }

  (* Execute one chunk, attributing its wall-clock time to the worker
     actually running it (the submitting domain grabs chunks too, so
     worker 0 accrues busy time as well). *)
  let timed_exec task =
    if Obs.enabled () then begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let w = min (Fault.self ()) (Metrics.max_workers - 1) in
          Obs.Floatc.add Metrics.busy.(w) (Unix.gettimeofday () -. t0))
        task
    end
    else task ()

  (* Run [body scratch i] for i in [lo, hi) with [width] participants
     (the caller plus [width - 1] pool workers).  Chunks of [chunk]
     items are claimed from an atomic cursor; each participant creates
     its scratch value once per batch, not per chunk.  A chunk that
     raises records the first failure (rethrown after the batch) and
     the remaining chunks still run — same isolation as queueing every
     chunk separately. *)
  let run_chunked pool ~width ~lo ~hi ~chunk ~scratch body =
    Obs.Counter.incr Metrics.batches;
    Obs.Gauge.set_int Metrics.last_chunk_items chunk;
    let next = Atomic.make lo in
    let b =
      {
        b_mutex = Mutex.create ();
        finished = Condition.create ();
        pending = width - 1;
        failure = None;
      }
    in
    (* Chunks may execute on worker domains, which have no ambient
       request scope of their own: capture the submitter's context here
       and install it around every chunk, so per-request attribution
       survives the pool boundary. *)
    let ctx = Obs.Ctx.current () in
    let grab_loop () =
      let s = scratch () in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= hi then continue := false
        else begin
          Obs.Counter.incr Metrics.chunks;
          try
            Obs.Ctx.scoped ctx (fun () ->
                Fault.hook ();
                timed_exec (fun () ->
                    let stop = min hi (start + chunk) in
                    for i = start to stop - 1 do
                      body s i
                    done))
          with e ->
            Mutex.lock b.b_mutex;
            if b.failure = None then b.failure <- Some e;
            Mutex.unlock b.b_mutex
        end
      done
    in
    if width <= 1 then grab_loop ()
    else begin
      ensure_workers pool;
      let job () =
        grab_loop ();
        Mutex.lock b.b_mutex;
        b.pending <- b.pending - 1;
        if b.pending = 0 then Condition.broadcast b.finished;
        Mutex.unlock b.b_mutex
      in
      Mutex.lock pool.mutex;
      for _ = 1 to width - 1 do
        Queue.push job pool.jobs
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      grab_loop ();
      Mutex.lock b.b_mutex;
      while b.pending > 0 do
        Condition.wait b.finished b.b_mutex
      done;
      Mutex.unlock b.b_mutex
    end;
    match b.failure with Some e -> raise e | None -> ()
end

let resolve = function Some d -> Pool.get d | None -> Pool.get (Pool.default_size ())

(* Cost-model constants.  A wake-up through the queue costs tens of
   microseconds; a loop whose measured remaining work is below
   [serial_threshold] cannot win it back.  Chunks target
   [target_grain] seconds of work each — coarse enough to amortise the
   cursor claim, fine enough to balance across [chunks_per_worker]
   claims per participant. *)
let serial_threshold = 200e-6
let target_grain = 1e-3
let chunks_per_worker = 4

let parallel_for_with ?domains ?(min_chunk = 64) ~scratch n body =
  if min_chunk < 1 then invalid_arg "parallel_for_with: min_chunk must be >= 1";
  if n > 0 then begin
    let pool = resolve domains in
    if Fault.active () && Pool.size pool > 1 && n >= 2 * min_chunk then begin
      (* Fault-injection runs bypass cap and cost model: the tests aim
         faults at spawned workers and rely on them executing chunks.
         The chunk layout is the pre-adaptive fixed one. *)
      let nchunks =
        min ((n + min_chunk - 1) / min_chunk) (4 * Pool.size pool)
      in
      let chunk = (n + nchunks - 1) / nchunks in
      Pool.run_chunked pool ~width:(Pool.size pool) ~lo:0 ~hi:n ~chunk ~scratch
        body
    end
    else begin
      let width = Pool.effective_width pool in
      if width = 1 || n < 2 * min_chunk then begin
        (* Serial fallback = one chunk executed by the calling domain,
           so the fault hook still sees a chunk boundary. *)
        Obs.Counter.incr Metrics.serial;
        Fault.hook ();
        let s = scratch () in
        Pool.timed_exec (fun () ->
            for i = 0 to n - 1 do
              body s i
            done)
      end
      else begin
        (* Pilot: run the first chunk on the caller under a timer to
           measure the per-item cost, then decide serial vs parallel
           and the chunk size from the measurement. *)
        let pilot = min_chunk in
        Fault.hook ();
        let s = scratch () in
        let t0 = Unix.gettimeofday () in
        Pool.timed_exec (fun () ->
            for i = 0 to pilot - 1 do
              body s i
            done);
        let dt = Unix.gettimeofday () -. t0 in
        let per_item = Float.max (dt /. float_of_int pilot) 1e-9 in
        let remaining = n - pilot in
        if float_of_int remaining *. per_item < serial_threshold then begin
          Obs.Counter.incr Metrics.small_work;
          Fault.hook ();
          Pool.timed_exec (fun () ->
              for i = pilot to n - 1 do
                body s i
              done)
        end
        else begin
          Obs.Counter.incr Metrics.adaptive_batches;
          let grain_items =
            int_of_float (Float.min (target_grain /. per_item) 1e9)
          in
          let balance_items =
            max 1 (remaining / (width * chunks_per_worker))
          in
          let chunk = max min_chunk (min grain_items balance_items) in
          Pool.run_chunked pool ~width ~lo:pilot ~hi:n ~chunk ~scratch body
        end
      end
    end
  end

let parallel_for ?domains ?min_chunk n f =
  parallel_for_with ?domains ?min_chunk ~scratch:(fun () -> ()) n
    (fun () i -> f i)

let map_array ?domains ?min_chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    parallel_for ?domains ?min_chunk (n - 1) (fun i ->
        out.(i + 1) <- f a.(i + 1));
    out
  end

let reduce ?domains ?(min_chunk = 64) ~neutral ~combine n f =
  if min_chunk < 1 then invalid_arg "reduce: min_chunk must be >= 1";
  if n <= 0 then neutral
  else begin
    (* The chunk layout depends only on [n] and [min_chunk] — never on
       the pool size — so the association of [combine] is fixed and the
       result is bit-identical for every domain count. *)
    let nchunks = (n + min_chunk - 1) / min_chunk in
    let partials = Array.make nchunks neutral in
    parallel_for ?domains ~min_chunk:1 nchunks (fun c ->
        let lo = c * min_chunk and hi = min n ((c + 1) * min_chunk) in
        let acc = ref neutral in
        for i = lo to hi - 1 do
          acc := combine !acc (f i)
        done;
        partials.(c) <- !acc);
    Array.fold_left combine neutral partials
  end
