(** Domain-pool parallelism for the RRMS hot paths.

    OCaml 5 exposes true shared-memory parallelism through [Domain], but
    spawning a domain costs ~1 ms — far too much to pay inside a binary
    search that probes the MRST oracle dozens of times.  This module
    keeps a small set of long-lived worker pools (one per requested
    size, created lazily and cached for the process lifetime) and
    schedules chunked loops onto them.

    Determinism contract: every combinator here produces results that
    are {e bit-identical} for every pool size, including the serial
    fallback.  [parallel_for] and [map_array] only ever write disjoint
    indices, and [reduce] derives its chunk layout from the iteration
    count alone (never from the pool size), combining partial results in
    ascending chunk order — so even non-associative floating-point
    combines see the same association for 1 domain and for 8.

    Bodies passed to these combinators must be thread-safe: they run
    concurrently on several domains and must not mutate shared state
    except through their own disjoint indices. *)

module Fault : sig
  (** Fault injection for resilience testing.  A configured fault makes
      one chosen worker raise or stall at every chunk boundary it
      reaches, which is how the tests prove the pool propagates worker
      exceptions, never deadlocks, and stays healthy for later batches.

      Worker identities are stable: [0] is the submitting (main)
      domain — it runs the serial fallback and helps drain batches —
      and spawned workers of a pool of size [s] are [1 .. s-1].  A
      fault aimed at a worker id the current pool does not have is a
      no-op, so e.g. [stall@1] degrades a 4-domain run and leaves a
      serial run untouched. *)

  type mode =
    | Raise  (** raise {!Injected} at each chunk boundary *)
    | Stall of float  (** sleep this many seconds at each chunk boundary *)

  exception Injected of int
  (** Raised by a [Raise]-faulted worker; the payload is the worker id.
      Batch submission rethrows the {e first} failure on the caller. *)

  val set : worker:int -> mode -> unit
  (** Arm the fault (process-wide, atomic). *)

  val clear : unit -> unit
  val active : unit -> bool

  val self : unit -> int
  (** The executing domain's worker id (0 outside spawned workers). *)

  val configure_from_env : unit -> unit
  (** Parse [RRMS_FAULT] — [raise@W] or [stall@W:SECONDS] (e.g.
      [stall@1:0.001]) — and arm it.  Malformed or absent values leave
      injection disabled.  Called by the CLI, the test runner and the
      bench harness at startup. *)
end

module Pool : sig
  type t

  val get : int -> t
  (** [get size] returns the cached pool with [size]-way parallelism
      ([size - 1] worker domains plus the calling domain).  Pools are
      created on first use and kept alive for the process; repeated
      calls with the same size return the same pool.
      @raise Invalid_argument if [size < 1]. *)

  val size : t -> int

  val default_size : unit -> int
  (** The process-wide default parallelism used when a combinator is
      called without [?domains].  Starts at [1] (serial) — libraries
      never go parallel behind the caller's back. *)

  val set_default_size : int -> unit
  (** Override the default parallelism (clamped to [>= 1]). *)

  val parallel_cap : unit -> int
  (** The effective parallelism ceiling.  A loop on a pool of size [s]
      uses [min s (parallel_cap ())] participants — requesting 8
      domains on a 1-core container runs serially instead of thrashing.
      Defaults to [Domain.recommended_domain_count ()].  Results are
      unaffected (the determinism contract holds at every width); an
      armed {!Fault} bypasses the cap so injection tests always reach
      their spawned workers. *)

  val set_parallel_cap : int -> unit
  (** Override the cap ([0] restores the automatic hardware value).
      Tests use this to exercise real multi-domain execution on
      single-core machines. *)

  val configure_from_env : unit -> unit
  (** Read [RRMS_DOMAINS] (positive integer: the default size) and
      [RRMS_POOL_CAP] (non-negative integer: the parallelism cap, [0] =
      automatic).  Called by the CLI and the bench harness at startup;
      malformed or absent values leave the settings untouched. *)
end

val parallel_for : ?domains:int -> ?min_chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f i] for every [i] in [0 .. n-1], split
    into contiguous chunks across the pool.  Stays on the calling
    domain when the effective width is 1, when [n < 2 * min_chunk]
    (default [min_chunk = 64]), or when a timed pilot chunk estimates
    the remaining work below the parallelism break-even threshold;
    otherwise chunk sizes adapt to the measured per-item cost.  [f]
    must only write state owned by index [i] — which is also why the
    adaptive chunk layout cannot affect results. *)

val parallel_for_with :
  ?domains:int ->
  ?min_chunk:int ->
  scratch:(unit -> 'a) ->
  int ->
  ('a -> int -> unit) ->
  unit
(** [parallel_for_with ~scratch n body] is {!parallel_for} with a
    per-participant scratch value: each executing domain calls
    [scratch ()] once per batch and passes the result to every [body]
    invocation it runs — reusable row buffers instead of a fresh
    allocation per chunk.  [body] must treat the scratch value as
    domain-local and still write only index-[i]-owned shared state;
    results must not depend on how iterations share a scratch value
    (write-before-read per iteration keeps the determinism contract). *)

val map_array : ?domains:int -> ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] = [Array.map f a], parallelised over chunks.  [f] is
    applied exactly once per element, in unspecified order. *)

val reduce :
  ?domains:int ->
  ?min_chunk:int ->
  neutral:'b ->
  combine:('b -> 'b -> 'b) ->
  int ->
  (int -> 'b) ->
  'b
(** [reduce ~neutral ~combine n f] folds [combine] over
    [f 0 .. f (n-1)]: each fixed-size chunk is folded left-to-right
    starting from [neutral], and the per-chunk partials are then folded
    left-to-right in chunk order.  The chunk layout depends only on [n]
    and [min_chunk], so the result is identical for every pool size. *)
