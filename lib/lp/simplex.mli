(** A dense two-phase primal simplex solver.

    OCaml ships no LP tooling, and the paper's GREEDY baseline
    [Nanongkai et al., VLDB'10] as well as exact regret-ratio evaluation
    both reduce to small dense LPs (a handful of variables, tens of
    constraints), so this hand-rolled solver is a core substrate of the
    reproduction.  It solves

    {v maximize c·x  subject to  Aᵢ·x (≤ | ≥ | =) bᵢ,  x ≥ 0 v}

    using the standard two-phase tableau method with Bland's rule, which
    guarantees termination (no cycling).  It is exact up to the floating
    tolerance [eps] and intended for {e small} problems — no sparsity, no
    revised simplex, no presolve. *)

type relation = Le | Ge | Eq

type constraint_ = {
  coeffs : float array;  (** row of A; length = number of variables *)
  relation : relation;
  rhs : float;  (** bᵢ, any sign *)
}

type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Degenerate of { pivots : int }
      (** the pivot budget ran out (floating-point degeneracy loop) or
          a phase reported a numerically impossible verdict — the
          instance is numerically pathological and the result is
          unknown.  Never raised as an exception: callers decide how to
          degrade (see {!Rrms_core.Regret.point_regret_lp_checked}). *)

val constraint_ : float array -> relation -> float -> constraint_
(** Convenience constructor. *)

val maximize :
  ?eps:float -> ?max_pivots:int -> c:float array -> constraint_ list -> status
(** [maximize ~c constraints] solves the LP above.  All variables are
    non-negative; model a free variable as a difference of two
    non-negative ones if needed.  [eps] (default [1e-9]) is the pivot /
    optimality tolerance.  [max_pivots] (default
    [1000 + 200·(rows + cols)]) bounds the pivots of each phase: Bland's
    rule cannot cycle in exact arithmetic, but the eps-tolerant ratio
    test can on degenerate instances, and exceeding the budget returns
    {!Degenerate} instead of looping forever.
    @raise Invalid_argument on dimension mismatches. *)

val minimize :
  ?eps:float -> ?max_pivots:int -> c:float array -> constraint_ list -> status
(** [minimize ~c] is [maximize ~c:(-c)] with the objective negated back. *)

val feasible : ?eps:float -> ?max_pivots:int -> int -> constraint_ list -> bool
(** [feasible nvars constraints] is [true] iff the system has a
    non-negative solution (phase 1 only).  Fails {e open}: a
    {!Degenerate} phase 1 reports [true], so use this as a pruning
    test, not a certificate. *)
