module Obs = Rrms_obs.Obs

(* LP counters are deterministic: the caller's LP sequence is fixed by
   the workload and every pivot choice is Bland's rule on the same
   floats, independent of domain count (LPs never run inside the
   pool). *)
module Metrics = struct
  let solves =
    Obs.Counter.make ~help:"simplex solves (maximize/minimize/feasible)"
      "rrms_lp_solves_total"

  let pivots =
    Obs.Counter.make ~help:"simplex pivots across both phases"
      "rrms_lp_pivots_total"

  let infeasible =
    Obs.Counter.make ~help:"LPs reported infeasible" "rrms_lp_infeasible_total"

  let unbounded =
    Obs.Counter.make ~help:"LPs reported unbounded" "rrms_lp_unbounded_total"

  let degenerate =
    Obs.Counter.make
      ~help:"LPs stalled at the degenerate-pivot cap and skipped"
      "rrms_lp_degenerate_total"
end

type relation = Le | Ge | Eq

type constraint_ = { coeffs : float array; relation : relation; rhs : float }

type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Degenerate of { pivots : int }

let constraint_ coeffs relation rhs = { coeffs; relation; rhs }

(* Internal tableau:
     tab : nrows x (ncols + 1) — constraint rows, last column = rhs
     obj : 1 x (ncols + 1)     — reduced-cost row (entry j negative means
                                 variable j improves the maximization)
   Column layout: [0, nvars) structural, then slack/surplus, then
   artificial variables. *)

type tableau = {
  tab : float array array;
  obj : float array;
  basis : int array; (* basic variable of each row *)
  nrows : int;
  ncols : int;
  art_start : int; (* first artificial column *)
}

let pivot t ~row ~col =
  let prow = t.tab.(row) in
  let piv = prow.(col) in
  for j = 0 to t.ncols do
    prow.(j) <- prow.(j) /. piv
  done;
  let eliminate r =
    let f = r.(col) in
    if f <> 0. then
      for j = 0 to t.ncols do
        r.(j) <- r.(j) -. (f *. prow.(j))
      done
  in
  for i = 0 to t.nrows - 1 do
    if i <> row then eliminate t.tab.(i)
  done;
  eliminate t.obj;
  t.basis.(row) <- col

(* One simplex phase with Bland's rule.  [allowed j] restricts the
   entering columns (used to exclude artificials in phase 2).  Returns
   [`Optimal], [`Unbounded], or — when the pivot budget runs out —
   [`Stalled].  Bland's rule precludes cycling in exact arithmetic, but
   the eps-tolerant ratio test can revisit bases on degenerate
   instances, so the cap turns a potential hang into a reportable
   numerical condition. *)
let run_phase ~eps ~max_pivots ~allowed t =
  let pivots = ref 0 in
  let rec loop () =
    if !pivots > max_pivots then `Stalled !pivots
    else begin
    (* Bland: entering variable = smallest allowed index with negative
       reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && t.obj.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Leaving row = minimum ratio; ties broken by smallest basic
         variable index (Bland). *)
      let best_row = ref (-1) and best_ratio = ref infinity in
      for i = 0 to t.nrows - 1 do
        let a = t.tab.(i).(col) in
        if a > eps then begin
          let ratio = t.tab.(i).(t.ncols) /. a in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        incr pivots;
        Obs.Counter.incr Metrics.pivots;
        loop ()
      end
    end
    end
  in
  loop ()

let build_tableau constraints nvars =
  (* Normalize rows to non-negative rhs so artificial variables start
     feasible. *)
  let rows =
    List.map
      (fun { coeffs; relation; rhs } ->
        if Array.length coeffs <> nvars then
          invalid_arg "Simplex: constraint dimension mismatch";
        if rhs < 0. then
          let flipped =
            match relation with Le -> Ge | Ge -> Le | Eq -> Eq
          in
          (Array.map (fun x -> -.x) coeffs, flipped, -.rhs)
        else (Array.copy coeffs, relation, rhs))
      constraints
  in
  let nrows = List.length rows in
  let nslack =
    List.fold_left
      (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let nart =
    List.fold_left
      (fun acc (_, rel, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let art_start = nvars + nslack in
  let ncols = nvars + nslack + nart in
  let tab = Array.make_matrix nrows (ncols + 1) 0. in
  let basis = Array.make nrows 0 in
  let next_slack = ref nvars and next_art = ref art_start in
  List.iteri
    (fun i (coeffs, rel, rhs) ->
      Array.blit coeffs 0 tab.(i) 0 nvars;
      tab.(i).(ncols) <- rhs;
      (match rel with
      | Le ->
          tab.(i).(!next_slack) <- 1.;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          tab.(i).(!next_slack) <- -1.;
          incr next_slack;
          tab.(i).(!next_art) <- 1.;
          basis.(i) <- !next_art;
          incr next_art
      | Eq ->
          tab.(i).(!next_art) <- 1.;
          basis.(i) <- !next_art;
          incr next_art))
    rows;
  { tab; obj = Array.make (ncols + 1) 0.; basis; nrows; ncols; art_start }

(* Install an objective row for "maximize c·x": reduced costs start at
   [-c] and are then zeroed on the basic columns. *)
let set_objective t c_full =
  Array.fill t.obj 0 (t.ncols + 1) 0.;
  Array.iteri (fun j cj -> t.obj.(j) <- -.cj) c_full;
  for i = 0 to t.nrows - 1 do
    let f = t.obj.(t.basis.(i)) in
    if f <> 0. then
      for j = 0 to t.ncols do
        t.obj.(j) <- t.obj.(j) -. (f *. t.tab.(i).(j))
      done
  done

(* After phase 1, pivot artificial variables out of the basis when
   possible; rows where no structural pivot exists are redundant and the
   artificial stays basic at value 0 (harmless as long as artificials are
   barred from re-entering). *)
let purge_artificials ~eps t =
  for i = 0 to t.nrows - 1 do
    if t.basis.(i) >= t.art_start then begin
      let col = ref (-1) in
      (try
         for j = 0 to t.art_start - 1 do
           if Float.abs t.tab.(i).(j) > eps then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then pivot t ~row:i ~col:!col
    end
  done

let extract_solution t nvars =
  let x = Array.make nvars 0. in
  for i = 0 to t.nrows - 1 do
    if t.basis.(i) < nvars then x.(t.basis.(i)) <- t.tab.(i).(t.ncols)
  done;
  x

let maximize ?(eps = 1e-9) ?max_pivots ~c constraints =
  Obs.Counter.incr Metrics.solves;
  let nvars = Array.length c in
  let t = build_tableau constraints nvars in
  let max_pivots =
    (* Bland terminates in exact arithmetic; this generous default only
       trips on floating-point degeneracy loops. *)
    match max_pivots with
    | Some p -> p
    | None -> 1_000 + (200 * (t.nrows + t.ncols))
  in
  let has_artificials = t.ncols > t.art_start in
  let phase1 =
    if not has_artificials then `Feasible
    else begin
      (* Phase 1: maximize -(sum of artificials). *)
      let c1 = Array.make t.ncols 0. in
      for j = t.art_start to t.ncols - 1 do
        c1.(j) <- -1.
      done;
      set_objective t c1;
      match run_phase ~eps ~max_pivots ~allowed:(fun _ -> true) t with
      | `Unbounded ->
          (* The phase-1 objective is bounded by 0, so an "unbounded"
             verdict here is a numerical breakdown, not a certificate. *)
          `Degenerate max_pivots
      | `Stalled p -> `Degenerate p
      | `Optimal ->
          (* obj rhs now holds -z = sum of artificials at optimum. *)
          let infeasibility = -.t.obj.(t.ncols) in
          if Float.abs infeasibility > eps *. 100. then `Infeasible
          else begin
            purge_artificials ~eps t;
            `Feasible
          end
    end
  in
  let result =
    match phase1 with
    | `Infeasible -> Infeasible
    | `Degenerate pivots -> Degenerate { pivots }
    | `Feasible -> (
        let c2 = Array.make t.ncols 0. in
        Array.blit c 0 c2 0 nvars;
        set_objective t c2;
        let allowed j = j < t.art_start in
        match run_phase ~eps ~max_pivots ~allowed t with
        | `Unbounded -> Unbounded
        | `Stalled pivots -> Degenerate { pivots }
        | `Optimal ->
            let solution = extract_solution t nvars in
            let objective =
              Array.fold_left ( +. ) 0.
                (Array.mapi (fun j x -> c.(j) *. x) solution)
            in
            Optimal { objective; solution })
  in
  (match result with
  | Infeasible -> Obs.Counter.incr Metrics.infeasible
  | Unbounded -> Obs.Counter.incr Metrics.unbounded
  | Degenerate _ -> Obs.Counter.incr Metrics.degenerate
  | Optimal _ -> ());
  result

let minimize ?eps ?max_pivots ~c constraints =
  match maximize ?eps ?max_pivots ~c:(Array.map (fun x -> -.x) c) constraints with
  | Optimal { objective; solution } ->
      Optimal { objective = -.objective; solution }
  | (Infeasible | Unbounded | Degenerate _) as s -> s

let feasible ?eps ?max_pivots nvars constraints =
  match maximize ?eps ?max_pivots ~c:(Array.make nvars 0.) constraints with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded ->
      (* A zero objective is never unbounded; numerically impossible,
         but fail open rather than abort. *)
      true
  | Degenerate _ ->
      (* Phase 1 stalled: feasibility unknown.  Fail open — callers use
         this as a pruning test, never as a correctness certificate. *)
      true
