(** rrms.obs — zero-dependency metrics and tracing for the RRMS stack.

    The subsystem is off by default; a disabled instrument costs one
    atomic load and a branch, so the hot paths keep their recording
    calls compiled in unconditionally.  Recording never feeds back into
    solver state: results are bit-identical with observability on or
    off, at every domain count (test/test_obs.ml asserts this).

    Levels: {!Disabled} records nothing; {!Counters} records counters,
    gauges, float counters and timers; {!Full} additionally records
    nestable spans into the trace buffer.

    See docs/OBSERVABILITY.md for the metric catalogue (each metric is
    mapped to the paper quantity it measures) and the trace schema. *)

type level = Disabled | Counters | Full

val level : unit -> level
val set_level : level -> unit

val enabled : unit -> bool
(** [enabled ()] is true at {!Counters} or {!Full}. *)

val spans_enabled : unit -> bool
(** [spans_enabled ()] is true at {!Full} only. *)

val configure_from_env : unit -> unit
(** [RRMS_OBS] = [0]/[off], [1]/[counters], [2]/[full]/[on] selects the
    level; [RRMS_TRACE=FILE] forces {!Full} and registers an [at_exit]
    hook writing the JSON-lines trace to [FILE]. *)

(** Monotonic integer counters.  [deterministic] (default [true])
    declares that the final value depends only on the workload — not on
    wall-clock time, domain count, or chunk layout; the differential
    test harness compares exactly the deterministic subset across
    domain counts. *)
module Counter : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Monotonic float counters (e.g. busy seconds); [deterministic]
    defaults to [false]. *)
module Floatc : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val add : t -> float -> unit
  val value : t -> float
end

(** Last-write-wins gauges for sizes and parameters (skyline size, hull
    size, grid cells, γ). *)
module Gauge : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

(** Histogram timers: log-spaced duration buckets plus count/sum/max. *)
module Timer : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val observe : t -> float -> unit

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, observing its wall-clock duration when enabled. *)

  val count : t -> int
  val sum : t -> float
end

(** Nestable spans.  Recorded only at {!Full}; each span lands in the
    trace buffer with its per-domain nesting depth and feeds an
    aggregated [rrms_span_seconds{span="name"}] histogram. *)
module Span : sig
  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
end

val reset : unit -> unit
(** Zero every registered metric and clear the trace buffer. *)

val snapshot : unit -> (string * float) list
(** Every registered metric with its current value, sorted by name. *)

val deterministic_snapshot : unit -> (string * float) list
(** The subset of {!snapshot} declared deterministic. *)

val summary : unit -> string
(** Human-readable table of every non-zero metric. *)

val prometheus : unit -> string
(** Prometheus text exposition of the whole registry. *)

val write_trace : string -> unit
(** Write the trace buffer as JSON-lines ([{"type":"span",...}] events
    followed by a [{"type":"metric",...}] snapshot of the registry). *)

(** Raw access to the span trace buffer, for tests and custom sinks. *)
module Trace : sig
  type event = {
    name : string;
    domain : int;
    depth : int;
    start : float; (* seconds since process start *)
    dur : float;
    attrs : (string * string) list;
  }

  val events : unit -> event list
  val count : unit -> int
  val clear : unit -> unit
  val event_to_json : event -> string
end
