(** rrms.obs — zero-dependency metrics and tracing for the RRMS stack.

    The subsystem is off by default; a disabled instrument costs one
    atomic load and a branch, so the hot paths keep their recording
    calls compiled in unconditionally.  Recording never feeds back into
    solver state: results are bit-identical with observability on or
    off, at every domain count (test/test_obs.ml asserts this).

    Levels: {!Disabled} records nothing; {!Counters} records counters,
    gauges, float counters and timers; {!Full} additionally records
    nestable spans into the trace buffer.

    See docs/OBSERVABILITY.md for the metric catalogue (each metric is
    mapped to the paper quantity it measures) and the trace schema. *)

type level = Disabled | Counters | Full

val level : unit -> level
val set_level : level -> unit

val enabled : unit -> bool
(** [enabled ()] is true at {!Counters} or {!Full}. *)

val spans_enabled : unit -> bool
(** [spans_enabled ()] is true at {!Full} only. *)

val configure_from_env : unit -> unit
(** [RRMS_OBS] = [0]/[off], [1]/[counters], [2]/[full]/[on] selects the
    level; [RRMS_TRACE=FILE] forces {!Full} and registers an [at_exit]
    hook writing the JSON-lines trace to [FILE]. *)

(** Monotonic integer counters.  [deterministic] (default [true])
    declares that the final value depends only on the workload — not on
    wall-clock time, domain count, or chunk layout; the differential
    test harness compares exactly the deterministic subset across
    domain counts. *)
module Counter : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Monotonic float counters (e.g. busy seconds); [deterministic]
    defaults to [false]. *)
module Floatc : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val add : t -> float -> unit
  val value : t -> float
end

(** Last-write-wins gauges for sizes and parameters (skyline size, hull
    size, grid cells, γ). *)
module Gauge : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

(** Histogram timers: log-spaced duration buckets plus count/sum/max. *)
module Timer : sig
  type t

  val make : ?deterministic:bool -> ?help:string -> string -> t
  val observe : t -> float -> unit

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, observing its wall-clock duration when enabled. *)

  val count : t -> int
  val sum : t -> float
end

(** Nestable spans.  Recorded only at {!Full}; each span lands in the
    trace buffer with its per-domain nesting depth and feeds an
    aggregated [rrms_span_seconds{span="name"}] histogram. *)
module Span : sig
  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

  val current_id : unit -> string
  (** Id of the innermost open traced span on the calling
      (domain, systhread), [""] when none (or when the bound context
      carries no trace id).  A cross-process fan-out calls this inside
      its dispatch span to fill the wire envelope's [parent] member, so
      worker spans hang from the span that dispatched them. *)
end

val reset : unit -> unit
(** Zero every registered metric and clear the trace buffer. *)

val snapshot : unit -> (string * float) list
(** Every registered metric with its current value, sorted by name. *)

val deterministic_snapshot : unit -> (string * float) list
(** The subset of {!snapshot} declared deterministic. *)

val summary : unit -> string
(** Human-readable table of every non-zero metric. *)

val prometheus : unit -> string
(** Prometheus text exposition of the whole registry. *)

val write_trace : string -> unit
(** Write the trace buffer as JSON-lines ([{"type":"span",...}] events
    followed by a [{"type":"metric",...}] snapshot of the registry). *)

(** Raw access to the span trace buffer, for tests and custom sinks. *)
module Trace : sig
  type event = {
    name : string;
    domain : int;
    depth : int;
    start : float; (* seconds since process start *)
    dur : float;
    attrs : (string * string) list;
    span_id : string;
        (** Distributed-trace identity (docs/OBSERVABILITY.md, "Cluster
            tracing & metrics").  All three ids are empty outside a
            traced request; empty ids are omitted from the JSON
            encoding, so untraced output is byte-identical to the
            pre-trace schema. *)
    parent_id : string;
    trace_id : string;
  }

  val events : unit -> event list
  val count : unit -> int

  val record : event -> unit
  (** Append one event to the buffer (subject to the cap).  Used by the
      router to ingest span dumps returned by shard workers, so one
      process's trace file covers the whole cluster. *)

  val dropped : unit -> int
  (** Span events discarded because the buffer was at its cap since the
      last {!clear}.  Also registered as [rrms_trace_dropped_total] and
      written into the [trace_footer] line of {!write_trace}. *)

  val default_max_events : int

  val set_max_events : int -> unit
  (** Resize the buffer cap (tests shrink it to exercise the drop
      path); existing buffered events are kept even if over the new
      cap. *)

  val clear : unit -> unit
  val event_to_json : event -> string
end

(** Request-scoped recording contexts.

    A context is an additional, request-local view of the same
    instruments: while bound to the calling thread (and to any
    {!Rrms_parallel} worker executing on its behalf), every
    {!Counter.incr}/{!Counter.add}/{!Floatc.add} tees its delta into
    the context, and every {!Span.with_} tags its event with the
    context's [request_id]/[session_id].  The global registry is
    unaffected; with no context bound anywhere the extra cost is one
    atomic load per recording, and at {!Disabled} nothing records at
    all — solver outputs stay bit-identical either way.

    Bindings are keyed by (domain, systhread), so concurrent server
    sessions on one domain keep disjoint scopes. *)
module Ctx : sig
  type t

  val create :
    ?request_id:string ->
    ?session_id:string ->
    ?capture_spans:bool ->
    ?trace_id:string ->
    ?parent_span:string ->
    unit ->
    t
  (** [capture_spans] (default [false]) additionally records every span
      executed under the context into the context itself — this works
      at {!Counters} (not just {!Full}), which is what lets a server
      keep slow-query traces without a global trace buffer.

      [trace_id] (default empty) marks the context as part of a
      distributed trace: every span recorded under it is assigned a
      hierarchical [span_id], its parent resolved from the innermost
      open span on the recording thread (falling back to the context's
      first root span, then to [parent_span] — the caller's span id,
      i.e. the cross-process edge).  With an empty [trace_id] span
      events carry no identity and the encoding is unchanged. *)

  val request_id : t -> string
  val session_id : t -> string

  val trace_id : t -> string
  val parent_span : t -> string

  val with_ctx : t -> (unit -> 'a) -> 'a
  (** Bind the context to the calling thread for the thunk's duration
      (re-entrant: an inner binding shadows and restores). *)

  val scoped : t option -> (unit -> 'a) -> 'a
  (** [scoped (current ()) f] is how a worker adopts its submitter's
      context; [scoped None f] is just [f ()]. *)

  val current : unit -> t option

  val add : t -> string -> float -> unit
  (** Record directly into a context (rarely needed — the instrument
      tee does this for you). *)

  val value : t -> string -> float
  (** Accumulated delta for one metric name; [0.] if never recorded. *)

  val counters : t -> (string * float) list
  (** Every metric recorded in this context, sorted by name. *)

  val deterministic_counters : t -> (string * float) list
  (** The subset of {!counters} whose registered metric is
      deterministic — identical across domain counts for a fixed
      workload. *)

  val spans : t -> Trace.event list
  (** Spans captured under [capture_spans], in completion order. *)

  val spans_dropped : t -> int
end

(** Standalone log-bucketed latency histograms with deterministic
    quantile estimation.  Not registered in the global registry: the
    serving layer owns a keyed family of these — (algo, cache outcome,
    status) — and folds them into its [stats] response.  Bucket
    boundaries are fixed (five per decade, 1 µs … 1000 s), quantiles
    are rank-based bucket upper bounds clamped by the observed max, and
    {!merge} adds bucket counts, so estimates depend only on the
    multiset of observations — never on arrival order or merge shape. *)
module Hist : sig
  type t

  val bounds : float array
  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val max_value : t -> float

  val buckets : t -> int array
  (** Copy of the bucket counts; last slot is the +Inf overflow. *)

  val merge : t -> t -> t
  (** Pure: builds a new histogram; bucket counts and counts add
      exactly (associative), [sum] adds in float. *)

  val import :
    count:int -> sum:float -> max_value:float -> buckets:int array -> t
  (** Rebuild a histogram from raw exported parts (the wire [metrics]
      op); a shorter [buckets] array is zero-padded. *)

  val quantile : t -> float -> float
  (** [quantile t q] for q in [0,1]; [0.] on an empty histogram. *)
end
