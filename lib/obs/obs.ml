(* rrms.obs — zero-dependency metrics and tracing.

   Everything in this module is built around one invariant: recording
   must never change what a solver computes.  Instruments only ever
   *read* solver state and *write* obs state, and the disabled fast
   path is a single atomic load plus a branch, so leaving the
   instrumentation compiled into every hot path costs nothing
   measurable (bench/fig_obs.ml keeps that honest).

   Thread model: counters are per-metric atomics (sums are commutative,
   so totals are identical for every domain count); histogram timers
   and the trace buffer take a mutex, but are only touched from
   orchestration code or at per-chunk granularity, never per element.

   A metric is [deterministic] when its final value depends only on the
   input workload — not on wall-clock time, the domain count, or the
   chunk layout.  test/test_obs.ml asserts exactly the deterministic
   subset is reproducible across RRMS_DOMAINS=1/2/4.

   Request scoping ([Ctx]): a serving layer can bind an explicit
   context to the calling thread; while bound, every counter and float
   counter tees its delta into the context as well as the global
   registry, and spans carry the context's request/session ids.  The
   global registry stays the single source of truth — a context is an
   additional, request-local view, and with no context bound anywhere
   the overhead is one atomic load per recording. *)

type level = Disabled | Counters | Full

let level_cell = Atomic.make 0 (* 0 = Disabled, 1 = Counters, 2 = Full *)

let int_of_level = function Disabled -> 0 | Counters -> 1 | Full -> 2
let level_of_int = function 0 -> Disabled | 1 -> Counters | _ -> Full

let level () = level_of_int (Atomic.get level_cell)
let set_level l = Atomic.set level_cell (int_of_level l)
let enabled () = Atomic.get level_cell > 0
let spans_enabled () = Atomic.get level_cell > 1

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type kind = Kcounter | Kfloat_counter | Kgauge | Ktimer

type meta = {
  name : string; (* full name, including any {label="v"} suffix *)
  help : string;
  kind : kind;
  deterministic : bool;
}

type cell =
  | Int_cell of int Atomic.t
  | Float_cell of float Atomic.t
  | Timer_cell of timer_state

and timer_state = {
  t_mutex : Mutex.t;
  mutable t_count : int;
  mutable t_sum : float;
  mutable t_max : float;
  t_buckets : int array; (* one slot per [bucket_bounds] entry + +Inf *)
}

(* Log-spaced bounds from 10 µs to 10 s; the last implicit bucket is
   +Inf, so every observation lands somewhere. *)
let bucket_bounds =
  [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. |]

type metric = { meta : meta; cell : cell }

let registry : metric list ref = ref []
let registry_mutex = Mutex.create ()

let register meta cell =
  let m = { meta; cell } in
  Mutex.lock registry_mutex;
  registry := m :: !registry;
  Mutex.unlock registry_mutex;
  m

let metrics_sorted () =
  Mutex.lock registry_mutex;
  let all = !registry in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> compare a.meta.name b.meta.name) all

let float_add cell x =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. x)) then go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Trace buffer                                                        *)

module Trace = struct
  type event = {
    name : string;
    domain : int;
    depth : int;
    start : float; (* seconds since process start of the span's entry *)
    dur : float;
    attrs : (string * string) list;
    (* Distributed-trace identity; all empty outside a traced request,
       in which case the JSON encoding is unchanged from the pre-trace
       schema. *)
    span_id : string;
    parent_id : string;
    trace_id : string;
  }

  let origin = Unix.gettimeofday ()
  let buffer : event list ref = ref []
  let buffer_size = ref 0
  let buffer_mutex = Mutex.create ()
  let default_max_events = 200_000
  let max_events_cell = ref default_max_events

  (* Discards past the cap are not silent: they land in a registered
     counter (summary sink) and in the trace footer. *)
  let dropped_cell = Atomic.make 0

  let () =
    ignore
      (register
         {
           name = "rrms_trace_dropped_total";
           help = "span events discarded at the trace-buffer cap";
           kind = Kcounter;
           deterministic = false;
         }
         (Int_cell dropped_cell))

  let set_max_events n =
    Mutex.lock buffer_mutex;
    max_events_cell := max 0 n;
    Mutex.unlock buffer_mutex

  let record ev =
    Mutex.lock buffer_mutex;
    if !buffer_size >= !max_events_cell then Atomic.incr dropped_cell
    else begin
      buffer := ev :: !buffer;
      incr buffer_size
    end;
    Mutex.unlock buffer_mutex

  let events () =
    Mutex.lock buffer_mutex;
    let evs = List.rev !buffer in
    Mutex.unlock buffer_mutex;
    evs

  let count () =
    Mutex.lock buffer_mutex;
    let n = !buffer_size in
    Mutex.unlock buffer_mutex;
    n

  let dropped () = Atomic.get dropped_cell

  let clear () =
    Mutex.lock buffer_mutex;
    buffer := [];
    buffer_size := 0;
    Atomic.set dropped_cell 0;
    Mutex.unlock buffer_mutex

  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let event_to_json ev =
    let attrs =
      match ev.attrs with
      | [] -> ""
      | kvs ->
          let fields =
            List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              kvs
          in
          Printf.sprintf ",\"attrs\":{%s}" (String.concat "," fields)
    in
    let opt key v =
      if v = "" then "" else Printf.sprintf ",\"%s\":\"%s\"" key (json_escape v)
    in
    Printf.sprintf
      "{\"type\":\"span\",\"name\":\"%s\",\"domain\":%d,\"depth\":%d,\
       \"start\":%.6f,\"dur\":%.6f%s%s%s%s}"
      (json_escape ev.name) ev.domain ev.depth ev.start ev.dur
      (opt "span_id" ev.span_id)
      (opt "parent_id" ev.parent_id)
      (opt "trace_id" ev.trace_id)
      attrs
end

(* ------------------------------------------------------------------ *)
(* Request-scoped contexts                                             *)

module Ctx = struct
  type t = {
    request_id : string;
    session_id : string;
    capture_spans : bool;
    (* Distributed-trace identity (docs/OBSERVABILITY.md, "Cluster
       tracing"): [trace_id] marks the whole cross-process request;
       [parent_span] is the caller's span id, the cross-process edge a
       root span recorded here hangs from.  Both default to empty, in
       which case spans carry no trace identity at all. *)
    trace_id : string;
    parent_span : string;
    mutable c_root_span : string;
        (* id of the first stack-root span opened under this context —
           later stack-root spans (e.g. pool-worker chunks) attach
           under it so a request trace has exactly one local root. *)
    c_mutex : Mutex.t;
    vals : (string, float ref) Hashtbl.t;
    mutable c_spans : Trace.event list; (* newest first *)
    mutable c_span_count : int;
    mutable c_span_dropped : int;
  }

  let max_spans = 10_000

  let create ?(request_id = "") ?(session_id = "") ?(capture_spans = false)
      ?(trace_id = "") ?(parent_span = "") () =
    {
      request_id;
      session_id;
      capture_spans;
      trace_id;
      parent_span;
      c_root_span = "";
      c_mutex = Mutex.create ();
      vals = Hashtbl.create 16;
      c_spans = [];
      c_span_count = 0;
      c_span_dropped = 0;
    }

  let request_id t = t.request_id
  let session_id t = t.session_id
  let trace_id t = t.trace_id
  let parent_span t = t.parent_span

  (* Ambient binding, keyed by (domain, systhread).  Domain.DLS would
     be wrong here: server sessions are systhreads multiplexed on
     domain 0 and must not see each other's binding.  [active] keeps
     the no-context fast path at one atomic load. *)
  let active = Atomic.make 0
  let slots : (int * int, t) Hashtbl.t = Hashtbl.create 32
  let slots_mutex = Mutex.create ()
  let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

  let current () =
    if Atomic.get active = 0 then None
    else begin
      let k = self_key () in
      Mutex.lock slots_mutex;
      let c = Hashtbl.find_opt slots k in
      Mutex.unlock slots_mutex;
      c
    end

  let with_ctx c f =
    let k = self_key () in
    Mutex.lock slots_mutex;
    let prev = Hashtbl.find_opt slots k in
    Hashtbl.replace slots k c;
    if prev = None then Atomic.incr active;
    Mutex.unlock slots_mutex;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock slots_mutex;
        (match prev with
        | Some p -> Hashtbl.replace slots k p
        | None ->
            Hashtbl.remove slots k;
            Atomic.decr active);
        Mutex.unlock slots_mutex)
      f

  let scoped copt f = match copt with None -> f () | Some c -> with_ctx c f

  let add c name x =
    if x <> 0. then begin
      Mutex.lock c.c_mutex;
      (match Hashtbl.find_opt c.vals name with
      | Some r -> r := !r +. x
      | None -> Hashtbl.add c.vals name (ref x));
      Mutex.unlock c.c_mutex
    end

  (* The tee called from Counter/Floatc hot paths (already level
     gated); [current] early-exits on the [active] atomic. *)
  let record name x =
    match current () with None -> () | Some c -> add c name x

  let value c name =
    Mutex.lock c.c_mutex;
    let v =
      match Hashtbl.find_opt c.vals name with Some r -> !r | None -> 0.
    in
    Mutex.unlock c.c_mutex;
    v

  let counters c =
    Mutex.lock c.c_mutex;
    let kvs = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.vals [] in
    Mutex.unlock c.c_mutex;
    List.sort compare kvs

  let deterministic_counters c =
    let det = Hashtbl.create 16 in
    List.iter
      (fun m ->
        if m.meta.deterministic then Hashtbl.replace det m.meta.name ())
      (metrics_sorted ());
    List.filter (fun (k, _) -> Hashtbl.mem det k) (counters c)

  let record_span c ev =
    Mutex.lock c.c_mutex;
    if c.c_span_count >= max_spans then
      c.c_span_dropped <- c.c_span_dropped + 1
    else begin
      c.c_spans <- ev :: c.c_spans;
      c.c_span_count <- c.c_span_count + 1
    end;
    Mutex.unlock c.c_mutex

  let spans c =
    Mutex.lock c.c_mutex;
    let evs = List.rev c.c_spans in
    Mutex.unlock c.c_mutex;
    evs

  let spans_dropped c =
    Mutex.lock c.c_mutex;
    let n = c.c_span_dropped in
    Mutex.unlock c.c_mutex;
    n
end

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)

module Counter = struct
  type t = { c : int Atomic.t; m : metric }

  let make ?(deterministic = true) ?(help = "") name =
    let c = Atomic.make 0 in
    let m =
      register
        { name; help; kind = Kcounter; deterministic }
        (Int_cell c)
    in
    { c; m }

  let incr t =
    if Atomic.get level_cell > 0 then begin
      ignore (Atomic.fetch_and_add t.c 1);
      Ctx.record t.m.meta.name 1.
    end

  let add t n =
    if Atomic.get level_cell > 0 && n <> 0 then begin
      ignore (Atomic.fetch_and_add t.c n);
      Ctx.record t.m.meta.name (float_of_int n)
    end

  let value t = Atomic.get t.c
end

module Floatc = struct
  type t = { c : float Atomic.t; m : metric }

  let make ?(deterministic = false) ?(help = "") name =
    let c = Atomic.make 0. in
    let m =
      register
        { name; help; kind = Kfloat_counter; deterministic }
        (Float_cell c)
    in
    { c; m }

  let add t x =
    if Atomic.get level_cell > 0 && x <> 0. then begin
      float_add t.c x;
      Ctx.record t.m.meta.name x
    end

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { c : float Atomic.t; _m : metric }

  let make ?(deterministic = true) ?(help = "") name =
    let c = Atomic.make 0. in
    let m = register { name; help; kind = Kgauge; deterministic } (Float_cell c) in
    { c; _m = m }

  let set t x = if Atomic.get level_cell > 0 then Atomic.set t.c x
  let set_int t n = set t (float_of_int n)
  let value t = Atomic.get t.c
end

module Timer = struct
  type t = { s : timer_state; _m : metric }

  let make ?(deterministic = false) ?(help = "") name =
    let s =
      {
        t_mutex = Mutex.create ();
        t_count = 0;
        t_sum = 0.;
        t_max = 0.;
        t_buckets = Array.make (Array.length bucket_bounds + 1) 0;
      }
    in
    let m = register { name; help; kind = Ktimer; deterministic } (Timer_cell s) in
    { s; _m = m }

  let observe t dur =
    if Atomic.get level_cell > 0 then begin
      let s = t.s in
      Mutex.lock s.t_mutex;
      s.t_count <- s.t_count + 1;
      s.t_sum <- s.t_sum +. dur;
      if dur > s.t_max then s.t_max <- dur;
      let nb = Array.length bucket_bounds in
      let slot = ref nb in
      (try
         for i = 0 to nb - 1 do
           if dur <= bucket_bounds.(i) then begin
             slot := i;
             raise Exit
           end
         done
       with Exit -> ());
      s.t_buckets.(!slot) <- s.t_buckets.(!slot) + 1;
      Mutex.unlock s.t_mutex
    end

  let time t f =
    if Atomic.get level_cell = 0 then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f
    end

  let count t = t.s.t_count
  let sum t = t.s.t_sum
end

(* ------------------------------------------------------------------ *)
(* Standalone latency histograms                                       *)

(* Unlike [Timer], a [Hist] is not registered: the serving layer owns a
   keyed family of them — (algo, cache outcome, status) — and folds
   them into its own [stats] response.  Everything about the estimator
   is deterministic given the multiset of observations: fixed bucket
   boundaries, rank-based quantiles answered as bucket upper bounds,
   and a merge that adds bucket counts (exactly associative; the float
   [sum] is added pairwise, so it is associative whenever the inputs
   are, e.g. dyadic test values). *)
module Hist = struct
  (* Five buckets per decade from 1 µs to 1000 s, plus implicit +Inf. *)
  let bounds =
    Array.init 46 (fun i -> 10. ** ((float_of_int i /. 5.) -. 6.))

  type t = {
    h_mutex : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_max : float;
    h_buckets : int array; (* one slot per [bounds] entry + +Inf *)
  }

  let create () =
    {
      h_mutex = Mutex.create ();
      h_count = 0;
      h_sum = 0.;
      h_max = 0.;
      h_buckets = Array.make (Array.length bounds + 1) 0;
    }

  (* Smallest i with dur <= bounds.(i); the overflow slot otherwise. *)
  let slot_of dur =
    let nb = Array.length bounds in
    if dur <= bounds.(0) then 0
    else if dur > bounds.(nb - 1) then nb
    else begin
      let lo = ref 0 and hi = ref (nb - 1) in
      (* invariant: bounds.(lo) < dur <= bounds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if dur <= bounds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let observe t dur =
    Mutex.lock t.h_mutex;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum +. dur;
    if dur > t.h_max then t.h_max <- dur;
    let s = slot_of dur in
    t.h_buckets.(s) <- t.h_buckets.(s) + 1;
    Mutex.unlock t.h_mutex

  let with_lock t f =
    Mutex.lock t.h_mutex;
    let v = f () in
    Mutex.unlock t.h_mutex;
    v

  let count t = with_lock t (fun () -> t.h_count)
  let sum t = with_lock t (fun () -> t.h_sum)
  let max_value t = with_lock t (fun () -> t.h_max)
  let buckets t = with_lock t (fun () -> Array.copy t.h_buckets)

  let merge a b =
    let t = create () in
    let absorb src =
      Mutex.lock src.h_mutex;
      t.h_count <- t.h_count + src.h_count;
      t.h_sum <- t.h_sum +. src.h_sum;
      if src.h_max > t.h_max then t.h_max <- src.h_max;
      Array.iteri
        (fun i v -> t.h_buckets.(i) <- t.h_buckets.(i) + v)
        src.h_buckets;
      Mutex.unlock src.h_mutex
    in
    absorb a;
    absorb b;
    t

  (* Rebuild a histogram from exported raw parts (the [metrics] wire
     op): a shorter bucket array is accepted and zero-padded, so a
     reader with more buckets than the writer still merges. *)
  let import ~count ~sum ~max_value ~buckets =
    let t = create () in
    t.h_count <- count;
    t.h_sum <- sum;
    t.h_max <- max_value;
    let n = Stdlib.min (Array.length buckets) (Array.length t.h_buckets) in
    Array.blit buckets 0 t.h_buckets 0 n;
    t

  (* Rank-based: the answer for quantile q over n observations is the
     upper bound of the bucket holding the ceil(q·n)-th smallest one
     (clamped by the observed max; the +Inf bucket answers the max).
     Deterministic in the observation multiset — observation order and
     merge shape cannot change it. *)
  let quantile t q =
    Mutex.lock t.h_mutex;
    let n = t.h_count in
    let hmax = t.h_max in
    let bks = Array.copy t.h_buckets in
    Mutex.unlock t.h_mutex;
    if n = 0 then 0.
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
      let acc = ref 0 in
      let ans = ref hmax in
      (try
         for i = 0 to Array.length bounds - 1 do
           acc := !acc + bks.(i);
           if !acc >= rank then begin
             ans := min bounds.(i) hmax;
             raise Exit
           end
         done
       with Exit -> ());
      !ans
    end
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

module Span = struct
  (* Per-domain nesting depth; worker domains get their own stack, so a
     span opened inside a pool chunk nests under nothing foreign. *)
  let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

  (* Distributed-trace span identity — engaged only when the bound
     context carries a trace id, so the untraced path never touches any
     of this.  Ids are hierarchical: [base.n] where [base] is the
     caller's span id (the context's [parent_span]) or, failing that,
     the request id — each process of a fanned-out request mints under
     the unique span id of the leg that spawned it, so ids never
     collide across processes of one trace. *)
  let span_seq = Atomic.make 0

  (* Innermost open traced span per (domain, systhread) — same keying
     as [Ctx] bindings (sessions are systhreads multiplexed on domain
     0); saved and restored around each traced span. *)
  let open_spans : (int * int, string) Hashtbl.t = Hashtbl.create 32
  let open_mutex = Mutex.create ()

  (* First stack-root span under the context claims the context root;
     later stack-roots (pool-worker chunks on other domains) attach
     under it, so a request's local trace has exactly one root. *)
  let claim_root (c : Ctx.t) id =
    Mutex.lock c.Ctx.c_mutex;
    let existing = c.Ctx.c_root_span in
    if existing = "" then c.Ctx.c_root_span <- id;
    Mutex.unlock c.Ctx.c_mutex;
    existing

  (* The innermost open traced span on this (domain, systhread) — the
     id a cross-process fan-out puts in its wire envelopes so worker
     spans hang from the span that dispatched them. *)
  let current_id () =
    let key = Ctx.self_key () in
    Mutex.lock open_mutex;
    let id = Hashtbl.find_opt open_spans key in
    Mutex.unlock open_mutex;
    match id with Some id -> id | None -> ""

  (* Aggregate duration stats per span name, for the summary table and
     the Prometheus histogram sink. *)
  let timers : (string, Timer.t) Hashtbl.t = Hashtbl.create 16
  let timers_mutex = Mutex.create ()

  let timer_for name =
    Mutex.lock timers_mutex;
    let t =
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            Timer.make ~help:"span duration"
              (Printf.sprintf "rrms_span_seconds{span=\"%s\"}" name)
          in
          Hashtbl.add timers name t;
          t
    in
    Mutex.unlock timers_mutex;
    t

  (* A span records when level = Full (global trace), and also when the
     bound context asked for its own capture — that path works at
     Counters, so a server can keep slow-query traces without paying
     for a global Full buffer.  Context ids ride along as attrs. *)
  let with_ ?(attrs = []) name f =
    let lvl = Atomic.get level_cell in
    if lvl = 0 then f ()
    else begin
      let ctx = Ctx.current () in
      let capture =
        match ctx with Some c -> c.Ctx.capture_spans | None -> false
      in
      if lvl < 2 && not capture then f ()
      else begin
        let depth = Domain.DLS.get depth_key in
        let d = !depth in
        depth := d + 1;
        let trace_id, span_id, parent_id, open_key, prev_open =
          match ctx with
          | Some c when c.Ctx.trace_id <> "" ->
              let key = Ctx.self_key () in
              Mutex.lock open_mutex;
              let prev = Hashtbl.find_opt open_spans key in
              Mutex.unlock open_mutex;
              let base =
                if c.Ctx.parent_span <> "" then c.Ctx.parent_span
                else if c.Ctx.request_id <> "" then c.Ctx.request_id
                else c.Ctx.trace_id
              in
              let id =
                Printf.sprintf "%s.%d" base
                  (1 + Atomic.fetch_and_add span_seq 1)
              in
              let parent =
                match prev with
                | Some p -> p
                | None ->
                    let root = claim_root c id in
                    if root <> "" then root else c.Ctx.parent_span
              in
              Mutex.lock open_mutex;
              Hashtbl.replace open_spans key id;
              Mutex.unlock open_mutex;
              (c.Ctx.trace_id, id, parent, Some key, prev)
          | _ -> ("", "", "", None, None)
        in
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            let dur = Unix.gettimeofday () -. t0 in
            depth := d;
            (match open_key with
            | None -> ()
            | Some key ->
                Mutex.lock open_mutex;
                (match prev_open with
                | Some p -> Hashtbl.replace open_spans key p
                | None -> Hashtbl.remove open_spans key);
                Mutex.unlock open_mutex);
            Timer.observe (timer_for name) dur;
            let attrs =
              match ctx with
              | Some c
                when c.Ctx.request_id <> "" || c.Ctx.session_id <> "" ->
                  attrs
                  @ (if c.Ctx.request_id <> "" then
                       [ ("request_id", c.Ctx.request_id) ]
                     else [])
                  @
                  if c.Ctx.session_id <> "" then
                    [ ("session_id", c.Ctx.session_id) ]
                  else []
              | _ -> attrs
            in
            let ev =
              {
                Trace.name;
                domain = (Domain.self () :> int);
                depth = d;
                start = t0 -. Trace.origin;
                dur;
                attrs;
                span_id;
                parent_id;
                trace_id;
              }
            in
            if lvl > 1 then Trace.record ev;
            match ctx with
            | Some c when c.Ctx.capture_spans -> Ctx.record_span c ev
            | _ -> ())
          f
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Reset and snapshots                                                 *)

let reset () =
  List.iter
    (fun m ->
      match m.cell with
      | Int_cell c -> Atomic.set c 0
      | Float_cell c -> Atomic.set c 0.
      | Timer_cell s ->
          Mutex.lock s.t_mutex;
          s.t_count <- 0;
          s.t_sum <- 0.;
          s.t_max <- 0.;
          Array.fill s.t_buckets 0 (Array.length s.t_buckets) 0;
          Mutex.unlock s.t_mutex)
    (metrics_sorted ());
  Trace.clear ()

let metric_value m =
  match m.cell with
  | Int_cell c -> float_of_int (Atomic.get c)
  | Float_cell c -> Atomic.get c
  | Timer_cell s -> s.t_sum

let snapshot () =
  List.map (fun m -> (m.meta.name, metric_value m)) (metrics_sorted ())

let deterministic_snapshot () =
  List.filter_map
    (fun m ->
      if m.meta.deterministic then Some (m.meta.name, metric_value m) else None)
    (metrics_sorted ())

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let summary () =
  let buf = Buffer.create 1024 in
  let nonzero = List.filter (fun m -> metric_value m <> 0.) (metrics_sorted ()) in
  let width =
    List.fold_left (fun acc m -> max acc (String.length m.meta.name)) 20 nonzero
  in
  Buffer.add_string buf "observability summary\n";
  List.iter
    (fun m ->
      match m.cell with
      | Int_cell c ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %d\n" width m.meta.name (Atomic.get c))
      | Float_cell c ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %g\n" width m.meta.name (Atomic.get c))
      | Timer_cell s ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s count=%d sum=%.6fs max=%.6fs\n" width
               m.meta.name s.t_count s.t_sum s.t_max))
    nonzero;
  if nonzero = [] then Buffer.add_string buf "  (no metrics recorded)\n";
  Buffer.contents buf

(* Prometheus text exposition: HELP/TYPE use the base name (label
   suffixes stripped); histogram timers emit _bucket/_sum/_count. *)
let prometheus () =
  let base name =
    match String.index_opt name '{' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let labels name =
    match String.index_opt name '{' with
    | Some i -> String.sub name i (String.length name - i)
    | None -> ""
  in
  let buf = Buffer.create 2048 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let b = base m.meta.name in
      let l = labels m.meta.name in
      if not (Hashtbl.mem seen_header b) then begin
        Hashtbl.add seen_header b ();
        if m.meta.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" b m.meta.help);
        let ty =
          match m.meta.kind with
          | Kcounter | Kfloat_counter -> "counter"
          | Kgauge -> "gauge"
          | Ktimer -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" b ty)
      end;
      match m.cell with
      | Int_cell c ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" m.meta.name (Atomic.get c))
      | Float_cell c ->
          Buffer.add_string buf
            (Printf.sprintf "%s %.9g\n" m.meta.name (Atomic.get c))
      | Timer_cell s ->
          let strip_braces l =
            (* "{span=\"x\"}" -> "span=\"x\"," for merging with le *)
            if l = "" then ""
            else String.sub l 1 (String.length l - 2) ^ ","
          in
          let inner = strip_braces l in
          let acc = ref 0 in
          Array.iteri
            (fun i bound ->
              acc := !acc + s.t_buckets.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{%sle=\"%g\"} %d\n" b inner bound !acc))
            bucket_bounds;
          let total = !acc + s.t_buckets.(Array.length bucket_bounds) in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%sle=\"+Inf\"} %d\n" b inner total);
          Buffer.add_string buf (Printf.sprintf "%s_sum%s %.9f\n" b l s.t_sum);
          Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" b l s.t_count))
    (metrics_sorted ());
  Buffer.contents buf

let write_trace path =
  let oc = open_out path in
  List.iter
    (fun ev ->
      output_string oc (Trace.event_to_json ev);
      output_char oc '\n')
    (Trace.events ());
  Printf.fprintf oc
    "{\"type\":\"trace_footer\",\"events\":%d,\"dropped\":%d}\n" (Trace.count ())
    (Trace.dropped ());
  (* Final metrics snapshot so a trace file is self-contained. *)
  List.iter
    (fun m ->
      let kind =
        match m.meta.kind with
        | Kcounter -> "counter"
        | Kfloat_counter -> "float_counter"
        | Kgauge -> "gauge"
        | Ktimer -> "timer"
      in
      Printf.fprintf oc
        "{\"type\":\"metric\",\"name\":\"%s\",\"kind\":\"%s\",\
         \"deterministic\":%b,\"value\":%.9g}\n"
        (Trace.json_escape m.meta.name)
        kind m.meta.deterministic (metric_value m))
    (metrics_sorted ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Environment configuration                                           *)

(* RRMS_OBS = 0|off | 1|counters | 2|full|on   selects the level;
   RRMS_TRACE = FILE  enables Full and writes the JSONL trace at exit. *)
let configure_from_env () =
  (match Sys.getenv_opt "RRMS_OBS" with
  | None -> ()
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "off" | "" -> set_level Disabled
      | "1" | "counters" -> set_level Counters
      | "2" | "full" | "on" -> set_level Full
      | _ -> ()));
  match Sys.getenv_opt "RRMS_TRACE" with
  | None | Some "" -> ()
  | Some path ->
      set_level Full;
      at_exit (fun () -> try write_trace path with Sys_error _ -> ())
