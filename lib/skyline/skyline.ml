(* Window-based Block-Nested-Loop.  The window is kept as a list of
   candidate indices; every incoming tuple either is dominated (or
   duplicated) and dropped, or evicts the window tuples it dominates and
   joins the window.  With enough memory for the whole window this is the
   one-pass in-memory BNL variant. *)
let bnl points =
  let window = ref [] in
  Array.iteri
    (fun i p ->
      let rec filter kept = function
        | [] -> Some kept
        | j :: rest -> (
            match Dominance.compare p points.(j) with
            | `Right | `Equal -> None (* p is dominated or a duplicate *)
            | `Left -> filter kept rest (* p evicts j *)
            | `Incomparable -> filter (j :: kept) rest)
      in
      match filter [] !window with
      | None -> ()
      | Some kept -> window := i :: kept)
    points;
  Array.of_list (List.rev !window)

(* Sort-Filter-Skyline: after sorting by attribute sum (descending), a
   tuple can only be dominated by tuples that precede it, so every kept
   tuple is final.

   The dominance filter is parallelised in blocks: every candidate of a
   block is checked against the already-final survivors concurrently
   (the bulk of the O(n·s) work), then a short serial pass resolves
   dominance within the block in sorted order.  A tuple is kept iff it
   is undominated by every tuple preceding it, exactly as in the serial
   scan, so the output is identical for every domain count. *)
module Obs = Rrms_obs.Obs

module Metrics = struct
  let runs =
    Obs.Counter.make ~help:"SFS skyline computations" "rrms_skyline_runs_total"

  let input_points =
    Obs.Counter.make ~help:"tuples fed to SFS skyline computations"
      "rrms_skyline_input_points_total"

  (* Paper quantity s: the skyline size of the most recent computation. *)
  let size =
    Obs.Gauge.make ~help:"skyline size s of the last SFS run"
      "rrms_skyline_size"
end

let sfs ?domains points =
  let n = Array.length points in
  Obs.Counter.incr Metrics.runs;
  Obs.Counter.add Metrics.input_points n;
  let m = if n > 0 then Array.length points.(0) else 0 in
  Array.iter
    (fun p ->
      if Array.length p <> m then
        invalid_arg "Dominance.compare: dimension mismatch")
    points;
  let sum p = Array.fold_left ( +. ) 0. p in
  let idx = Array.init n (fun i -> i) in
  let sums = Array.map sum points in
  Array.sort
    (fun i j ->
      let c = Float.compare sums.(j) sums.(i) in
      if c <> 0 then c else Stdlib.compare i j)
    idx;
  let kept = Array.make n 0 in
  let nkept = ref 0 in
  (* Survivor attributes live in one flat row-major buffer (survivor
     [j] at [j*m, (j+1)*m)), so the hot scan walks contiguous floats
     instead of chasing a point pointer per survivor.  "Survivor [j]
     dominates-or-duplicates candidate [p]" is
     [Dominance.compare s p ∈ {`Left, `Equal}], i.e. no attribute where
     [p] beats [s] — the one-sided covers test below. *)
  let svals = Array.make (max 1 (n * m)) 0. in
  let covers j (p : float array) =
    let base = j * m in
    let rec go d =
      d >= m
      || (Array.unsafe_get svals (base + d) >= Array.unsafe_get p d
         && go (d + 1))
    in
    go 0
  in
  let keep i =
    Array.blit points.(i) 0 svals (!nkept * m) m;
    kept.(!nkept) <- i;
    incr nkept
  in
  let block = 256 in
  let dominated = Array.make (min block n) false in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block) in
    let len = hi - !lo in
    let final = !nkept in
    let base = !lo in
    Rrms_parallel.parallel_for ?domains ~min_chunk:8 len (fun c ->
        let p = points.(idx.(base + c)) in
        let rec scan j = j < final && (covers j p || scan (j + 1)) in
        dominated.(c) <- scan 0);
    for c = 0 to len - 1 do
      if not dominated.(c) then begin
        let i = idx.(base + c) in
        let p = points.(i) in
        let rec scan j = j < !nkept && (covers j p || scan (j + 1)) in
        if not (scan final) then keep i
      end
    done;
    lo := hi
  done;
  Obs.Gauge.set_int Metrics.size !nkept;
  Array.sub kept 0 !nkept

(* skyline(D) = skyline(∪ᵢ skyline(Dᵢ)) for any partition {Dᵢ} of D: a
   global skyline tuple is undominated within its own part, so it
   survives the part's skyline, and conversely anything dominated
   globally is filtered by the second pass.  Bit-identity with the
   direct [sfs points] run needs two more facts, both arranged here:
   the candidates are re-sorted ascending by global index, so SFS's
   (sum desc, index asc) order over the candidates matches its order
   over the full input; and SFS keeps the lowest-index copy of any
   duplicated skyline value, which is its own part's representative and
   therefore present in the union. *)
let merge_partitions ?domains points parts =
  let cand = Array.concat (Array.to_list parts) in
  let n = Array.length points in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg "Skyline.merge_partitions: index out of range")
    cand;
  Array.sort Stdlib.compare cand;
  let cpts = Array.map (fun gi -> points.(gi)) cand in
  let local = sfs ?domains cpts in
  Array.map (fun li -> cand.(li)) local

let two_d points =
  Array.iter
    (fun p ->
      if Array.length p <> 2 then
        invalid_arg "Skyline.two_d: dimension <> 2")
    points;
  let n = Array.length points in
  let idx = Array.init n (fun i -> i) in
  (* Sort by A₁ descending, A₂ descending within ties, then sweep: a
     point survives iff its A₂ strictly exceeds every A₂ seen so far
     (i.e. of every point with larger-or-equal A₁). *)
  Array.sort
    (fun i j ->
      let c = Float.compare points.(j).(0) points.(i).(0) in
      if c <> 0 then c else Float.compare points.(j).(1) points.(i).(1))
    idx;
  let kept = ref [] and best_y = ref neg_infinity in
  Array.iter
    (fun i ->
      if points.(i).(1) > !best_y then begin
        kept := i :: !kept;
        best_y := points.(i).(1)
      end)
    idx;
  (* Built from A₁-descending input by prepending, so [kept] is already
     A₁ ascending = top-left → bottom-right. *)
  Array.of_list !kept

let is_skyline_point points i =
  let p = points.(i) in
  let n = Array.length points in
  let rec loop j =
    if j >= n then true
    else if j <> i && Dominance.dominates points.(j) p then false
    else loop (j + 1)
  in
  loop 0

let size_of points = Array.length (sfs points)

(* Divide and conquer on the first attribute: tuples in the high half
   can never be dominated by the low half (they win on A₁ up to ties,
   which the cross-pruning handles), so only the low half's local
   skyline needs pruning against the high half's. *)
let divide_and_conquer points =
  let rec solve (idx : int array) =
    let n = Array.length idx in
    if n <= 8 then
      (* Small base case: quadratic scan. *)
      Array.of_seq
        (Seq.filter
           (fun i ->
             Array.for_all
               (fun j ->
                 j = i
                 ||
                 match Dominance.compare points.(j) points.(i) with
                 | `Left -> false
                 | `Equal -> j > i (* keep the first duplicate only *)
                 | `Right | `Incomparable -> true)
               idx)
           (Array.to_seq idx))
    else begin
      let sorted = Array.copy idx in
      Array.sort
        (fun a b ->
          let c = Float.compare points.(b).(0) points.(a).(0) in
          if c <> 0 then c else compare a b)
        sorted;
      (* The split must not separate an A₁ tie group: with equal A₁ a
         "low" tuple could dominate a "high" one on the remaining
         attributes, breaking the merge's one-sided pruning. *)
      let mid = ref (n / 2) in
      while
        !mid < n && points.(sorted.(!mid - 1)).(0) = points.(sorted.(!mid)).(0)
      do
        incr mid
      done;
      if !mid >= n then
        (* Every tuple ties on A₁; no valid split, quadratic scan. *)
        Array.of_seq
          (Seq.filter
             (fun i ->
               Array.for_all
                 (fun j ->
                   j = i
                   ||
                   match Dominance.compare points.(j) points.(i) with
                   | `Left -> false
                   | `Equal -> j > i
                   | `Right | `Incomparable -> true)
                 idx)
             (Array.to_seq idx))
      else begin
      let mid = !mid in
      let high = solve (Array.sub sorted 0 mid) in
      let low = solve (Array.sub sorted mid (n - mid)) in
      (* Prune the low survivors against the high survivors; the high
         survivors are all final. *)
      let kept_low =
        Array.of_seq
          (Seq.filter
             (fun i ->
               Array.for_all
                 (fun j ->
                   match Dominance.compare points.(j) points.(i) with
                   | `Left | `Equal -> false
                   | `Right | `Incomparable -> true)
                 high)
             (Array.to_seq low))
      in
      Array.append high kept_low
      end
    end
  in
  solve (Array.init (Array.length points) (fun i -> i))

let skyband ~k points =
  if k < 1 then invalid_arg "Skyline.skyband: k must be >= 1";
  let n = Array.length points in
  let result = ref [] in
  for i = n - 1 downto 0 do
    let p = points.(i) in
    (* Count dominators; duplicates tie-break by index so only k copies
       of a repeated point survive. *)
    let dominators = ref 0 in
    (try
       for j = 0 to n - 1 do
         if j <> i then begin
           match Dominance.compare points.(j) p with
           | `Left -> incr dominators
           | `Equal -> if j < i then incr dominators
           | `Right | `Incomparable -> ()
         end;
         if !dominators >= k then raise Exit
       done
     with Exit -> ());
    if !dominators < k then result := i :: !result
  done;
  Array.of_list !result
