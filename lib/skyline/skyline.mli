(** Skyline (maximal-vector) computation.

    The skyline of a database is the set of tuples not dominated by any
    other tuple; it is the maxima representative for arbitrary monotone
    ranking functions and, by the paper's Theorem 1, the search space of
    the RRMS problem can be restricted to it.  Three algorithms are
    provided:

    - {!bnl}: Block-Nested-Loop [Börzsönyi et al., ICDE'01] — the
      algorithm the paper uses for its 2D pipeline; `O(n·s)` worst case.
    - {!sfs}: Sort-Filter-Skyline — presorts by attribute sum so every
      kept tuple is final; usually much faster in high dimensions.
    - {!divide_and_conquer}: Börzsönyi et al.'s other algorithm.
    - {!two_d}: `O(n log n)` sort-and-sweep, exact for [m = 2].

    All return {e indices into the input} of one representative per
    distinct skyline point (duplicates collapse), in unspecified order
    except {!two_d}, which returns them sorted top-left to bottom-right
    (A₂ descending / A₁ ascending) — the order the 2D DP requires. *)

val bnl : Rrms_geom.Vec.t array -> int array
(** Block-Nested-Loop skyline. *)

val sfs : ?domains:int -> Rrms_geom.Vec.t array -> int array
(** Sort-Filter-Skyline.  The dominance filter fans its
    candidate-vs-survivor checks out over [domains] worker domains
    (default {!Rrms_parallel.Pool.default_size}); the returned indices
    are identical for every domain count. *)

val merge_partitions :
  ?domains:int -> Rrms_geom.Vec.t array -> int array array -> int array
(** [merge_partitions points parts] computes the skyline of [points]
    from per-part candidate sets: [skyline(D) = skyline(∪ᵢ skyline(Dᵢ))]
    for any partition [{Dᵢ}] of the index space.  Each element of
    [parts] holds {e global} indices into [points]; the parts must
    jointly contain every skyline representative of [points] — the
    per-part {!sfs} skylines of a partition always do.  Under that
    contract the result is {e bit-identical} (same indices, same order)
    to [sfs points]: candidates are re-sorted by global index before the
    merging SFS pass, so sort order and duplicate representatives match
    the direct run.  This is the shard-merge primitive of the serving
    layer.
    @raise Invalid_argument on an out-of-range index. *)

val divide_and_conquer : Rrms_geom.Vec.t array -> int array
(** Divide-and-conquer skyline [Börzsönyi et al., §5]: split on the
    median of the first attribute, solve both halves recursively, then
    prune the low half's survivors against the high half's.  The merge
    is a plain dominance scan, so the worst case matches {!bnl}'s
    O(n·s), but the divide step keeps the scans short on most data. *)

val two_d : Rrms_geom.Vec.t array -> int array
(** 2D sweep skyline, sorted top-left → bottom-right.
    @raise Invalid_argument if points are not 2-dimensional. *)

val skyband : k:int -> Rrms_geom.Vec.t array -> int array
(** The k-skyband: tuples dominated by fewer than [k] others (the
    skyline is the 1-skyband).  Every top-[k] answer of every monotone
    ranking function lies in the k-skyband, so it is the natural
    candidate set for the Top-k extension (§5.1).  Duplicates count as
    dominators of each other here, so repeated points beyond the k-th
    copy are excluded.  O(n²·m).
    @raise Invalid_argument if [k < 1]. *)

val is_skyline_point : Rrms_geom.Vec.t array -> int -> bool
(** [is_skyline_point points i] checks by linear scan whether point [i]
    is dominated by no other point (treating duplicates as
    non-dominating).  O(n·m); meant for tests and assertions. *)

val size_of : Rrms_geom.Vec.t array -> int
(** [size_of points] = number of skyline points (via {!sfs}). *)
