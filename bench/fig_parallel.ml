(* Domain-pool scaling benchmark: times the three parallel kernels
   (skyline SFS, regret-matrix build, the full MRST binary search) and
   the end-to-end HD-RRMS solve at 1/2/4/8 domains on an
   anti-correlated instance, prints the usual bench rows, and writes the
   results as BENCH_parallel.json so the repo tracks its perf
   trajectory across PRs.

   Results are asserted bit-identical across domain counts before any
   timing is reported — a wrong parallel answer must never look like a
   speedup. *)

open Bench_util

let domain_counts = [ 1; 2; 4; 8 ]

let config = function
  | Small -> (50_000, 4, 6, 5) (* n, m, gamma, r — the acceptance config *)
  | Paper -> (100_000, 4, 6, 5)

type sample = {
  kernel : string;
  domains : int;
  seconds : float;
}

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json path ~n ~m ~gamma ~r ~digest samples =
  let oc = open_out path in
  let base kernel =
    List.find_opt (fun s -> s.kernel = kernel && s.domains = 1) samples
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"fig_parallel\",\n";
  Printf.fprintf oc "  \"dataset\": \"anticorrelated\",\n";
  Printf.fprintf oc "  \"n\": %d,\n  \"m\": %d,\n  \"gamma\": %d,\n  \"r\": %d,\n"
    n m gamma r;
  Printf.fprintf oc "  \"cpu_cores_available\": %d,\n"
    (Domain.recommended_domain_count ());
  (* Hard perf gates: single-domain wall-clock of the three optimized
     kernels (lower-better, only compared on matching core counts) plus
     a machine-independent digest of the answers (identity — any layout
     or batching change that alters a result fails the gate even on
     noisy shared runners). *)
  let gate kernel =
    match base kernel with Some s -> s.seconds | None -> nan
  in
  Printf.fprintf oc "  \"gates\": {\n";
  Printf.fprintf oc "    \"matrix_build_seconds\": %.6f,\n"
    (gate "matrix-build");
  Printf.fprintf oc "    \"mrst_binary_search_seconds\": %.6f,\n"
    (gate "mrst-binary-search");
  Printf.fprintf oc "    \"hd_rrms_solve_seconds\": %.6f,\n"
    (gate "hd-rrms-solve");
  Printf.fprintf oc "    \"answer_digest\": \"%s\"\n" (json_escape digest);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      let speedup =
        match base s.kernel with
        | Some b when s.seconds > 0. -> b.seconds /. s.seconds
        | _ -> 1.
      in
      Printf.fprintf oc
        "    {\"kernel\": \"%s\", \"domains\": %d, \"seconds\": %.6f, \
         \"speedup_vs_1\": %.3f}%s\n"
        (json_escape s.kernel) s.domains s.seconds speedup
        (if i = List.length samples - 1 then "" else ","))
    samples;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run scale =
  let n, m, gamma, r = config scale in
  let fig = "parallel" in
  header fig
    (Printf.sprintf "domain-pool scaling, anti n=%d m=%d gamma=%d r=%d" n m
       gamma r);
  let d = synthetic `Anticorrelated ~n ~m in
  let points = normalized_rows d in
  let funcs = Rrms_core.Discretize.grid ~gamma ~m in
  let samples = ref [] in
  let record kernel domains seconds =
    samples := { kernel; domains; seconds } :: !samples;
    row fig ~x:(string_of_int domains) ~x_name:"domains"
      ~series:kernel ~time:seconds ()
  in
  (* Reference answers at 1 domain; every other count must match. *)
  let sky1 = Rrms_skyline.Skyline.sfs ~domains:1 points in
  let sky_points = Array.map (fun i -> points.(i)) sky1 in
  let matrix1 = Rrms_core.Regret_matrix.build ~domains:1 ~funcs sky_points in
  let search1 = Rrms_core.Hd_rrms.solve_on_matrix ~domains:1 matrix1 ~r in
  let solve1 = ref None in
  List.iter
    (fun domains ->
      let sky, t_sky =
        time (fun () -> Rrms_skyline.Skyline.sfs ~domains points)
      in
      assert (sky = sky1);
      record "skyline-sfs" domains t_sky;
      let matrix, t_build =
        time (fun () -> Rrms_core.Regret_matrix.build ~domains ~funcs sky_points)
      in
      record "matrix-build" domains t_build;
      let search, t_search =
        time (fun () -> Rrms_core.Hd_rrms.solve_on_matrix ~domains matrix ~r)
      in
      assert (search = search1);
      record "mrst-binary-search" domains t_search;
      let solve, t_solve =
        time (fun () -> Rrms_core.Hd_rrms.solve ~gamma ~domains points ~r)
      in
      (match !solve1 with
      | None -> solve1 := Some solve
      | Some s1 -> assert (solve = s1));
      record "hd-rrms-solve" domains t_solve)
    domain_counts;
  (* From-scratch probe cost at 1 domain, for the incremental-vs-rescan
     comparison (the binary search above uses Mrst.Incremental). *)
  let values = Rrms_core.Regret_matrix.distinct_values matrix1 in
  let _, t_scratch =
    time (fun () ->
        (* Replay the binary search with from-scratch probes. *)
        let low = ref 0 and high = ref (Array.length values - 1) in
        while !low <= !high do
          let mid = (!low + !high) / 2 in
          match
            Rrms_core.Mrst.solve ~domains:1 matrix1 ~eps:values.(mid)
          with
          | Some rows when Array.length rows <= r -> high := mid - 1
          | Some _ | None -> low := mid + 1
        done)
  in
  record "mrst-binary-search-scratch" 1 t_scratch;
  (* Per-probe incremental replay (prefix-slid bitsets, one advance per
     probe, per-threshold cache — the pre-batching search loop) against
     the batched descent timed above.  Must land on the same answer. *)
  let incr = Rrms_core.Mrst.Incremental.create ~domains:1 matrix1 in
  let perprobe_best = ref None in
  let _, t_perprobe =
    time (fun () ->
        let cache : (float, int array option) Hashtbl.t = Hashtbl.create 64 in
        let low = ref 0 and high = ref (Array.length values - 1) in
        while !low <= !high do
          let mid = (!low + !high) / 2 in
          let eps = values.(mid) in
          let ans =
            match Hashtbl.find_opt cache eps with
            | Some a -> a
            | None ->
                let a =
                  Rrms_core.Mrst.Incremental.solve ~domains:1 incr ~eps
                in
                Hashtbl.add cache eps a;
                a
          in
          match ans with
          | Some rows when Array.length rows <= r ->
              perprobe_best := Some (rows, eps);
              high := mid - 1
          | Some _ | None -> low := mid + 1
        done)
  in
  assert (!perprobe_best = search1);
  record "mrst-binary-search-perprobe" 1 t_perprobe;
  (* Flat-vs-boxed memory layout on the HD-GREEDY argmin sweep (the
     hot [row_worst_against] scan): the same loop over a boxed
     row-of-arrays copy of the matrix, summation order identical, so
     the accumulators must agree bit-for-bit. *)
  let s = Rrms_core.Regret_matrix.rows matrix1 in
  let k = Rrms_core.Regret_matrix.cols matrix1 in
  let current = Array.make k infinity in
  Rrms_core.Regret_matrix.row_update_mins matrix1 0 current;
  let sweep_repeats = 40 in
  let acc_flat, t_flat =
    time (fun () ->
        let acc = ref 0. in
        for _ = 1 to sweep_repeats do
          for i = 0 to s - 1 do
            acc :=
              !acc +. Rrms_core.Regret_matrix.row_worst_against matrix1 i current
          done
        done;
        !acc)
  in
  record "greedy-sweep-flat" 1 t_flat;
  let boxed =
    Array.init s (fun i ->
        Array.init k (fun f -> Rrms_core.Regret_matrix.get matrix1 i f))
  in
  let acc_boxed, t_boxed =
    time (fun () ->
        let acc = ref 0. in
        for _ = 1 to sweep_repeats do
          for i = 0 to s - 1 do
            let rowv = boxed.(i) in
            let worst = ref neg_infinity in
            for f = 0 to k - 1 do
              let v = Float.min current.(f) (Array.unsafe_get rowv f) in
              if v > !worst then worst := v
            done;
            acc := !acc +. !worst
          done
        done;
        !acc)
  in
  assert (acc_flat = acc_boxed);
  record "greedy-sweep-boxed" 1 t_boxed;
  (* Machine-independent answer digest for the identity gate. *)
  let digest =
    let b = Buffer.create 256 in
    (match search1 with
    | None -> Buffer.add_string b "search:none"
    | Some (rows, eps) ->
        Buffer.add_string b "search:";
        Array.iter (fun i -> Buffer.add_string b (Printf.sprintf "%d," i)) rows;
        Buffer.add_string b (Printf.sprintf "eps=%.17g" eps));
    (match !solve1 with
    | None -> ()
    | Some (sv : Rrms_core.Hd_rrms.result) ->
        Buffer.add_string b
          (Printf.sprintf ";solve:eps=%.17g,regret=%.17g,gamma=%d,sel="
             sv.eps_min sv.discretized_regret sv.gamma_used);
        Array.iter
          (fun i -> Buffer.add_string b (Printf.sprintf "%d," i))
          sv.selected);
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  write_json "BENCH_parallel.json" ~n ~m ~gamma ~r ~digest (List.rev !samples)
