(* check_regression: diff freshly-run bench output against committed
   BENCH_*.json baselines, with per-metric tolerances.

   Usage: check_regression [--tolerant] [--tolerance F] \
            BASELINE FRESH [BASELINE FRESH ...]

   The two files are walked together.  Identity fields (the parameters
   that define what was measured: benchmark, n, m, gamma, kernel, …)
   must be equal or the comparison is structurally invalid.  Metric
   fields are judged by name:

   - higher-is-better: "speedup", "speedup_vs_1" — a regression when
     the fresh value falls below the baseline by more than the
     tolerance;
   - lower-is-better: "ratio_vs_disabled", "ratio_vs_untraced",
     "ratio_vs_exact", and the kernel perf gates ("matrix_build_seconds",
     "mrst_binary_search_seconds", "hd_rrms_solve_seconds") — a
     regression when the fresh value exceeds the baseline by more than
     the tolerance;
   - informational: raw per-sample wall-clock ("*seconds*" outside the
     gates object) and quality detail fields — printed, never failed
     on, because absolute times do not transfer between machines.

   "speedup_vs_1" and the gate seconds additionally depend on the
   machine (core count / absolute speed), so they are skipped (not
   failed) whenever the two files disagree on "cpu_cores_available" —
   or the baseline predates the field.  "answer_digest" is an identity
   field: it must match everywhere, on any hardware.

   --tolerant is the shared-CI-runner mode: higher-is-better metrics
   only fail below 10% of the baseline, lower-is-better above
   1.25x + 0.05 — loose enough for noisy neighbours, tight enough to
   catch a reuse path that stopped reusing.  The kernel perf gates are
   exempt from the loosening: on matching hardware they always use the
   strict tolerance (they exist to catch the optimized kernels
   regressing, and on mismatched hardware they are skipped anyway).

   Exit codes: 0 ok, 1 regression, 2 structural mismatch / bad input. *)

module Json = Rrms_serve.Json

type rule = Higher_better | Lower_better | Identity | Info

let rule_of_key key =
  match key with
  | "speedup" | "speedup_vs_1" | "rehydrate_speedup" -> Higher_better
  | "ratio_vs_disabled" | "ratio_vs_untraced" | "ratio_vs_exact"
  | "matrix_build_seconds" | "mrst_binary_search_seconds"
  | "hd_rrms_solve_seconds" ->
      Lower_better
  | "benchmark" | "dataset" | "n" | "m" | "gamma" | "r" | "repeats"
  | "kernel" | "algo" | "level" | "domains" | "budget_kind" | "budget"
  | "answer_digest" | "corrupt_blobs" | "shards" ->
      Identity
  | _ -> Info

let core_sensitive = function
  | "speedup_vs_1" | "matrix_build_seconds" | "mrst_binary_search_seconds"
  | "hd_rrms_solve_seconds" ->
      true
  | _ -> false

(* The kernel perf gates never get the --tolerant loosening: on matching
   hardware a kernel regression is a kernel regression. *)
let strict_always = function
  | "matrix_build_seconds" | "mrst_binary_search_seconds"
  | "hd_rrms_solve_seconds" ->
      true
  | _ -> false

type totals = {
  mutable checked : int;
  mutable regressions : int;
  mutable structural : int;
  mutable skipped : int;
  mutable info : int;
}

let totals = { checked = 0; regressions = 0; structural = 0; skipped = 0; info = 0 }

let tolerant = ref false
let tolerance = ref 0.10

let fail_structural path msg =
  totals.structural <- totals.structural + 1;
  Printf.printf "  STRUCT   %-46s %s\n" path msg

let report verdict path detail =
  Printf.printf "  %-8s %-46s %s\n" verdict path detail

let num_str v = Printf.sprintf "%g" v

(* One numeric metric: apply the rule, honouring the mode. *)
let check_metric ~cores_match path key baseline fresh =
  match rule_of_key key with
  | Identity ->
      totals.checked <- totals.checked + 1;
      if baseline <> fresh then
        fail_structural path
          (Printf.sprintf "identity field differs: baseline %s, fresh %s"
             (num_str baseline) (num_str fresh))
  | Info ->
      totals.info <- totals.info + 1
  | (Higher_better | Lower_better) when core_sensitive key && not cores_match
    ->
      totals.skipped <- totals.skipped + 1;
      report "SKIP" path "core-count-sensitive metric on mismatched hardware"
  | Higher_better ->
      totals.checked <- totals.checked + 1;
      let floor =
        if !tolerant then baseline *. 0.1 else baseline *. (1. -. !tolerance)
      in
      if fresh < floor then begin
        totals.regressions <- totals.regressions + 1;
        report "REGRESS" path
          (Printf.sprintf "baseline %s, fresh %s (floor %s)" (num_str baseline)
             (num_str fresh) (num_str floor))
      end
      else
        report "ok" path
          (Printf.sprintf "baseline %s, fresh %s" (num_str baseline)
             (num_str fresh))
  | Lower_better ->
      totals.checked <- totals.checked + 1;
      let ceiling =
        if !tolerant && not (strict_always key) then
          (baseline *. 1.25) +. 0.05
        else (baseline *. (1. +. !tolerance)) +. 1e-9
      in
      if fresh > ceiling then begin
        totals.regressions <- totals.regressions + 1;
        report "REGRESS" path
          (Printf.sprintf "baseline %s, fresh %s (ceiling %s)"
             (num_str baseline) (num_str fresh) (num_str ceiling))
      end
      else
        report "ok" path
          (Printf.sprintf "baseline %s, fresh %s" (num_str baseline)
             (num_str fresh))

let rec walk ~cores_match path (baseline : Json.t) (fresh : Json.t) =
  match (baseline, fresh) with
  | Json.Obj bfields, Json.Obj ffields ->
      List.iter
        (fun (key, bv) ->
          let sub = if path = "" then key else path ^ "." ^ key in
          match List.assoc_opt key ffields with
          | None ->
              (* cpu_cores_available may be absent from either side
                 during the transition; everything else must exist. *)
              if key <> "cpu_cores_available" then
                fail_structural sub "missing from fresh output"
          | Some fv -> walk ~cores_match sub bv fv)
        bfields
  | Json.Arr bitems, Json.Arr fitems ->
      if List.length bitems <> List.length fitems then
        fail_structural path
          (Printf.sprintf "array length differs: baseline %d, fresh %d"
             (List.length bitems) (List.length fitems))
      else
        List.iteri
          (fun i (bv, fv) ->
            walk ~cores_match (Printf.sprintf "%s[%d]" path i) bv fv)
          (List.combine bitems fitems)
  | Json.Num bv, Json.Num fv ->
      let key =
        match String.rindex_opt path '.' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path
      in
      check_metric ~cores_match path key bv fv
  | Json.Str bs, Json.Str fs ->
      let key =
        match String.rindex_opt path '.' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path
      in
      (* String-typed identity fields pin the row shape; string-typed
         detail (quality, probes-allowed) is informational. *)
      if rule_of_key key = Identity && bs <> fs then
        fail_structural path
          (Printf.sprintf "identity field differs: baseline %S, fresh %S" bs
             fs)
      else totals.info <- totals.info + 1
  | Json.Bool b, Json.Bool f ->
      if b <> f then
        report "note" path
          (Printf.sprintf "boolean differs: baseline %b, fresh %b" b f)
  | Json.Null, Json.Null -> ()
  | _ -> fail_structural path "type mismatch between baseline and fresh"

let load path =
  match open_in path with
  | exception Sys_error msg ->
      Printf.eprintf "check_regression: cannot open %s: %s\n" path msg;
      exit 2
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (match Json.parse s with
      | Ok j -> j
      | Error msg ->
          Printf.eprintf "check_regression: %s: parse error: %s\n" path msg;
          exit 2)

let cores_of j =
  match Json.member "cpu_cores_available" j with
  | Some v -> Json.num v
  | None -> None

let compare_pair baseline_path fresh_path =
  Printf.printf "%s vs %s\n" baseline_path fresh_path;
  let baseline = load baseline_path and fresh = load fresh_path in
  let cores_match =
    match (cores_of baseline, cores_of fresh) with
    | Some b, Some f -> b = f
    | _ -> false
  in
  if not cores_match then
    Printf.printf
      "  (cpu_cores_available differs or missing — core-sensitive metrics \
       will be skipped)\n";
  walk ~cores_match "" baseline fresh

let () =
  let pairs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--tolerant" :: rest ->
        tolerant := true;
        parse_args rest
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0. ->
            tolerance := f;
            parse_args rest
        | _ ->
            Printf.eprintf "check_regression: bad --tolerance %S\n" v;
            exit 2)
    | baseline :: fresh :: rest ->
        pairs := (baseline, fresh) :: !pairs;
        parse_args rest
    | [ odd ] ->
        Printf.eprintf
          "check_regression: %S has no fresh file to compare against\n" odd;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let pairs = List.rev !pairs in
  if pairs = [] then begin
    Printf.eprintf
      "usage: check_regression [--tolerant] [--tolerance F] BASELINE FRESH \
       [BASELINE FRESH ...]\n";
    exit 2
  end;
  List.iter (fun (b, f) -> compare_pair b f) pairs;
  Printf.printf
    "\n%d checked, %d regressions, %d structural, %d skipped, %d \
     informational (%s mode)\n"
    totals.checked totals.regressions totals.structural totals.skipped
    totals.info
    (if !tolerant then "tolerant" else "strict");
  if totals.structural > 0 then exit 2
  else if totals.regressions > 0 then exit 1
  else exit 0
