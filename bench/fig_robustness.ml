(* Anytime-degradation benchmark: how much regret does a budgeted
   HD-RRMS solve give up, relative to the exact (unbudgeted) run, at a
   range of wall-clock timeouts and deterministic probe caps?

   For each budget we record the certified Theorem-4 bound and the true
   LP-evaluated regret of the returned (possibly fallback) selection,
   plus the degraded/exact regret ratio — the curve that shows the
   anytime guarantee paying off as the budget grows.  Results land in
   BENCH_robustness.json so the repo tracks the trajectory across
   PRs. *)

open Bench_util

let config = function
  | Small -> (20_000, 4, 5, 5) (* n, m, gamma, r *)
  | Paper -> (50_000, 4, 6, 5)

type sample = {
  budget_kind : string; (* "timeout" | "probe-cap" | "exact" *)
  budget : float; (* seconds, or probe count, or 0 for exact *)
  seconds : float;
  probes_allowed : string;
  quality : string;
  selected : int;
  certified_bound : float;
  true_regret : float;
  ratio_vs_exact : float;
}

let write_json path ~n ~m ~gamma ~r samples =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"fig_robustness\",\n";
  Printf.fprintf oc "  \"dataset\": \"anticorrelated\",\n";
  Printf.fprintf oc "  \"n\": %d,\n  \"m\": %d,\n  \"gamma\": %d,\n  \"r\": %d,\n"
    n m gamma r;
  Printf.fprintf oc "  \"cpu_cores_available\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    {\"budget_kind\": \"%s\", \"budget\": %g, \"seconds\": %.6f, \
         \"probes\": \"%s\", \"quality\": \"%s\", \"selected\": %d, \
         \"certified_bound\": %.6f, \"true_regret\": %.6f, \
         \"ratio_vs_exact\": %.4f}%s\n"
        s.budget_kind s.budget s.seconds s.probes_allowed s.quality s.selected
        s.certified_bound s.true_regret s.ratio_vs_exact
        (if i = List.length samples - 1 then "" else ","))
    samples;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run scale =
  let n, m, gamma, r = config scale in
  let fig = "robustness" in
  header fig
    (Printf.sprintf "anytime degradation, anti n=%d m=%d gamma=%d r=%d" n m
       gamma r);
  let d = synthetic `Anticorrelated ~n ~m in
  let points = normalized_rows d in
  let samples = ref [] in
  let solve_with label kind budget guard =
    let res, seconds =
      time (fun () -> Rrms_core.Hd_rrms.solve ~gamma ~guard points ~r)
    in
    (res, seconds, label, kind, budget)
  in
  (* Exact reference first: every ratio below is against this regret. *)
  let exact, exact_time, _, _, _ =
    solve_with "exact" "exact" 0. Rrms_guard.Guard.Budget.unlimited
  in
  let exact_regret =
    Rrms_core.Regret.exact_lp ~selected:exact.Rrms_core.Hd_rrms.selected points
  in
  let record (res, seconds, label, budget_kind, budget) =
    let true_regret =
      Rrms_core.Regret.exact_lp ~selected:res.Rrms_core.Hd_rrms.selected points
    in
    let ratio = if exact_regret > 0. then true_regret /. exact_regret else 1. in
    let quality = Rrms_guard.Guard.describe res.Rrms_core.Hd_rrms.quality in
    samples :=
      {
        budget_kind;
        budget;
        seconds;
        probes_allowed = label;
        quality;
        selected = Array.length res.Rrms_core.Hd_rrms.selected;
        certified_bound = res.Rrms_core.Hd_rrms.guarantee;
        true_regret;
        ratio_vs_exact = ratio;
      }
      :: !samples;
    row fig ~x:label ~x_name:"budget" ~series:budget_kind ~time:seconds
      ~regret:true_regret ();
    assert (true_regret <= res.Rrms_core.Hd_rrms.guarantee +. 1e-9)
  in
  record (exact, exact_time, "unlimited", "exact", 0.);
  (* Deterministic ladder: probe caps 1, 2, 4, 8 — reproducible on any
     machine, shows the binary search converging probe by probe. *)
  List.iter
    (fun cap ->
      let guard = Rrms_guard.Guard.Budget.create ~max_probes:cap () in
      record
        (solve_with (string_of_int cap) "probe-cap" (float_of_int cap) guard))
    [ 1; 2; 4; 8 ];
  (* Wall-clock ladder: machine-dependent timings, but each point is
     still a certified answer.  timeout=0 exercises the deterministic
     single-probe fallback. *)
  List.iter
    (fun t ->
      let guard = Rrms_guard.Guard.Budget.create ~timeout:t () in
      record (solve_with (Printf.sprintf "%gs" t) "timeout" t guard))
    [ 0.; 0.01; 0.05; 0.2; 1. ];
  write_json "BENCH_robustness.json" ~n ~m ~gamma ~r (List.rev !samples)
