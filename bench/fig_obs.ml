(* Observability-overhead benchmark: what does instrumentation cost on
   the HD-RRMS hot path at each recording level?

   The instrument calls are compiled in unconditionally, so "disabled"
   still pays one atomic load and a branch per call site.  We time the
   same solve at Disabled (twice, interleaved A/B), Counters, and Full,
   take the min over repeats, and record the ratios in BENCH_obs.json.
   The A/B pair runs identical code, so its ratio bounds measurement
   noise; asserting it under 5% is the "disabled observability is free"
   check — a real regression (say a lock or allocation on the disabled
   path) would show up in the counters/full ratios tracked across
   PRs. *)

open Bench_util
module Obs = Rrms_obs.Obs

let config = function
  | Small -> (20_000, 4, 5, 5, 5) (* n, m, gamma, r, repeats *)
  | Paper -> (50_000, 4, 6, 5, 7)

let write_json path ~n ~m ~gamma ~r ~repeats samples =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"fig_obs\",\n";
  Printf.fprintf oc "  \"dataset\": \"anticorrelated\",\n";
  Printf.fprintf oc
    "  \"n\": %d,\n  \"m\": %d,\n  \"gamma\": %d,\n  \"r\": %d,\n\
    \  \"repeats\": %d,\n"
    n m gamma r repeats;
  Printf.fprintf oc "  \"cpu_cores_available\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"samples\": [\n";
  List.iteri
    (fun i (label, seconds, ratio) ->
      Printf.fprintf oc
        "    {\"level\": \"%s\", \"seconds\": %.6f, \
         \"ratio_vs_disabled\": %.4f}%s\n"
        label seconds ratio
        (if i = List.length samples - 1 then "" else ","))
    samples;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run scale =
  let n, m, gamma, r, repeats = config scale in
  let fig = "obs" in
  header fig
    (Printf.sprintf "observability overhead, anti n=%d m=%d gamma=%d r=%d" n m
       gamma r);
  let d = synthetic `Anticorrelated ~n ~m in
  let points = normalized_rows d in
  let saved_level = Obs.level () in
  let solve () = ignore (Rrms_core.Hd_rrms.solve ~gamma points ~r) in
  (* One warm-up solve so allocator and pool state are steady before any
     timed repeat. *)
  solve ();
  let cases =
    [
      ("disabled-a", Obs.Disabled);
      ("disabled-b", Obs.Disabled);
      ("counters", Obs.Counters);
      ("full", Obs.Full);
    ]
  in
  let best = Array.make (List.length cases) infinity in
  (* Interleave the repeats (round-robin over the cases) so slow drift
     of the machine hits every case equally. *)
  for _ = 1 to repeats do
    List.iteri
      (fun i (_, level) ->
        Obs.set_level level;
        Obs.reset ();
        let (), seconds = time solve in
        if seconds < best.(i) then best.(i) <- seconds)
      cases
  done;
  Obs.set_level saved_level;
  Obs.reset ();
  let disabled = best.(0) in
  let samples =
    List.mapi
      (fun i (label, _) ->
        let ratio = if disabled > 0. then best.(i) /. disabled else 1. in
        row fig ~x:label ~x_name:"level" ~series:"hd-rrms" ~time:best.(i) ();
        (label, best.(i), ratio))
      cases
  in
  write_json "BENCH_obs.json" ~n ~m ~gamma ~r ~repeats samples;
  (* disabled-b vs disabled-a runs byte-identical code: the ratio is
     pure measurement noise, and it bounds what "disabled observability
     costs nothing" can mean on this machine. *)
  let ab = best.(1) /. best.(0) in
  assert (ab >= 1. /. 1.05 && ab <= 1.05);
  Printf.printf "[%s] disabled A/B ratio %.4f (must stay within 5%%)\n" fig ab
