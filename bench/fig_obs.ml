(* Observability-overhead benchmark: what does instrumentation cost on
   the HD-RRMS hot path at each recording level?

   The instrument calls are compiled in unconditionally, so "disabled"
   still pays one atomic load and a branch per call site.  We time the
   same solve at Disabled (twice, interleaved A/B), Counters, and Full,
   take the min over repeats, and record the ratios in BENCH_obs.json.
   The A/B pair runs identical code, so its ratio bounds measurement
   noise; asserting it under 5% is the "disabled observability is free"
   check — a real regression (say a lock or allocation on the disabled
   path) would show up in the counters/full ratios tracked across
   PRs.

   A second section measures trace-propagation overhead: the same
   routed queries through a two-worker router, untraced (Counters) vs
   traced (Full — wire envelopes, worker span dumps, merged trace).
   The traced/untraced ratio lands in BENCH_obs.json as
   [ratio_vs_untraced], gated lower-is-better by check_regression. *)

open Bench_util
module Obs = Rrms_obs.Obs

let config = function
  | Small -> (20_000, 4, 5, 5, 5) (* n, m, gamma, r, repeats *)
  | Paper -> (50_000, 4, 6, 5, 7)

let write_json path ~n ~m ~gamma ~r ~repeats samples propagation =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"fig_obs\",\n";
  Printf.fprintf oc "  \"dataset\": \"anticorrelated\",\n";
  Printf.fprintf oc
    "  \"n\": %d,\n  \"m\": %d,\n  \"gamma\": %d,\n  \"r\": %d,\n\
    \  \"repeats\": %d,\n"
    n m gamma r repeats;
  Printf.fprintf oc "  \"cpu_cores_available\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"samples\": [\n";
  List.iteri
    (fun i (label, seconds, ratio) ->
      Printf.fprintf oc
        "    {\"level\": \"%s\", \"seconds\": %.6f, \
         \"ratio_vs_disabled\": %.4f}%s\n"
        label seconds ratio
        (if i = List.length samples - 1 then "" else ","))
    samples;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"propagation\": [\n";
  List.iteri
    (fun i (mode, seconds, ratio) ->
      Printf.fprintf oc
        "    {\"mode\": \"%s\", \"seconds\": %.6f, \
         \"ratio_vs_untraced\": %.4f}%s\n"
        mode seconds ratio
        (if i = List.length propagation - 1 then "" else ","))
    propagation;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Trace-propagation overhead: a routed query end to end, untraced
   (Counters — the service default) vs traced (Full: the router mints a
   wire envelope per request, workers return span dumps, the router
   splices them into a merged trace).  Router over two in-process
   worker daemons on Unix sockets; min over repeats; cache off so every
   repeat pays the solve, not a result-cache probe. *)
(* ------------------------------------------------------------------ *)

module Serve = Rrms_serve
module Store = Serve.Store
module Server = Serve.Server
module Shard = Serve.Shard

let temp_socket tag =
  let path = Filename.temp_file ("rrms_obs_" ^ tag) ".sock" in
  Sys.remove path;
  path

let propagation_bench fig ~repeats =
  let n, m = (8_000, 3) in
  let d = synthetic `Anticorrelated ~n ~m in
  let csv = Filename.temp_file "rrms_obs_prop" ".csv" in
  Rrms_dataset.Dataset.to_csv d csv;
  let sock_a = temp_socket "wa" and sock_b = temp_socket "wb" in
  let wa = Server.start (Store.create ()) ~socket:sock_a in
  let wb = Server.start (Store.create ()) ~socket:sock_b in
  let rt = Shard.Router.create ~workers:[ sock_a; sock_b ] () in
  Fun.protect
    ~finally:(fun () ->
      Shard.Router.close rt;
      Server.stop wa;
      Server.wait wa;
      Server.stop wb;
      Server.wait wb;
      if Sys.file_exists csv then Sys.remove csv)
    (fun () ->
      let session = Shard.Router.handler rt () in
      let rpc line =
        match session.Server.on_line line with
        | `Reply r -> r
        | `Shutdown _ -> failwith "unexpected shutdown"
      in
      let load =
        rpc (Printf.sprintf "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
      in
      if not (String.length load > 0 && String.sub load 0 1 = "{") then
        failwith "router load failed";
      let queries =
        List.concat_map
          (fun r ->
            [
              Printf.sprintf
                "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":%d,\"gamma\":4,\"cache\":false}"
                r;
              Printf.sprintf
                "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-greedy\",\"r\":%d,\"gamma\":4,\"cache\":false}"
                r;
            ])
          [ 3; 4; 5 ]
      in
      let run () = List.iter (fun q -> ignore (rpc q : string)) queries in
      (* Warm once at the untraced level so worker dials, dataset loads
         and merged artifacts are in place before any timed repeat. *)
      Obs.set_level Obs.Counters;
      run ();
      let best_untraced = ref infinity and best_traced = ref infinity in
      for _ = 1 to repeats do
        Obs.set_level Obs.Counters;
        let (), s = time run in
        if s < !best_untraced then best_untraced := s;
        Obs.set_level Obs.Full;
        Obs.Trace.clear ();
        let (), s = time run in
        if s < !best_traced then best_traced := s
      done;
      let ratio =
        if !best_untraced > 0. then !best_traced /. !best_untraced else 1.
      in
      row fig ~x:"untraced" ~x_name:"mode" ~series:"router-e2e"
        ~time:!best_untraced ();
      row fig ~x:"traced" ~x_name:"mode" ~series:"router-e2e"
        ~time:!best_traced ();
      Printf.printf
        "[%s] propagation ratio traced/untraced %.4f (gate: under 5%%)\n" fig
        ratio;
      [
        ("untraced", !best_untraced, 1.);
        ("traced", !best_traced, ratio);
      ])

let run scale =
  let n, m, gamma, r, repeats = config scale in
  let fig = "obs" in
  header fig
    (Printf.sprintf "observability overhead, anti n=%d m=%d gamma=%d r=%d" n m
       gamma r);
  let d = synthetic `Anticorrelated ~n ~m in
  let points = normalized_rows d in
  let saved_level = Obs.level () in
  let solve () = ignore (Rrms_core.Hd_rrms.solve ~gamma points ~r) in
  (* One warm-up solve so allocator and pool state are steady before any
     timed repeat. *)
  solve ();
  let cases =
    [
      ("disabled-a", Obs.Disabled);
      ("disabled-b", Obs.Disabled);
      ("counters", Obs.Counters);
      ("full", Obs.Full);
    ]
  in
  let best = Array.make (List.length cases) infinity in
  (* Interleave the repeats (round-robin over the cases) so slow drift
     of the machine hits every case equally. *)
  for _ = 1 to repeats do
    List.iteri
      (fun i (_, level) ->
        Obs.set_level level;
        Obs.reset ();
        let (), seconds = time solve in
        if seconds < best.(i) then best.(i) <- seconds)
      cases
  done;
  let disabled = best.(0) in
  let samples =
    List.mapi
      (fun i (label, _) ->
        let ratio = if disabled > 0. then best.(i) /. disabled else 1. in
        row fig ~x:label ~x_name:"level" ~series:"hd-rrms" ~time:best.(i) ();
        (label, best.(i), ratio))
      cases
  in
  let propagation = propagation_bench fig ~repeats in
  Obs.set_level saved_level;
  Obs.reset ();
  write_json "BENCH_obs.json" ~n ~m ~gamma ~r ~repeats samples propagation;
  (* disabled-b vs disabled-a runs byte-identical code: the ratio is
     pure measurement noise, and it bounds what "disabled observability
     costs nothing" can mean on this machine. *)
  let ab = best.(1) /. best.(0) in
  assert (ab >= 1. /. 1.05 && ab <= 1.05);
  Printf.printf "[%s] disabled A/B ratio %.4f (must stay within 5%%)\n" fig ab
