(* Serving-layer benchmark: what does the artifact store buy?

   Three measurements through an in-process [Rrms_serve.Store], all
   recorded in BENCH_serve.json:

   - cold vs warm latency per algorithm — the warm query is a
     result-cache hit, so its time is pure serving overhead (JSON
     lookup, no solver);
   - γ-subgrid derivation — a γ′-query served by column-selecting the
     cached γ-matrix vs a fresh store solving cold at γ′ (grid + matrix
     build included);
   - an r-sweep of result-cache speedups at fixed γ;
   - shard scaling — the certified merge path of Rrms_serve.Shard at
     1/2/4 shards vs the unsharded store, each answer's digest recorded
     as an identity gate (the merge is lossless, so every shard count
     must produce the same bytes);
   - restart recovery — a fresh store over a --state-dir populated by a
     previous store (the moral equivalent of a restarted daemon) vs the
     cold solve that populated it, with the rehydrated answer's digest
     recorded as an identity gate;
   - dynamic maintenance — a warm store absorbs a batch of mixed
     mutations through the incremental delta path (WAL journaling
     included) and answers the standing query again, vs a fresh store
     handed the post-mutation dataset that must build every artifact
     from scratch; the write-ahead log the batches produced is then
     replayed into a third store whose answer must match again.

   All reuse paths are bit-exact, which the run asserts by comparing
   serialized results before recording any timing. *)

open Bench_util
module Store = Rrms_serve.Store
module Shard = Rrms_serve.Shard
module Protocol = Rrms_serve.Protocol
module Json = Rrms_serve.Json
module Persist = Rrms_serve.Persist
module Mutate = Rrms_serve.Mutate
module Delta = Rrms_core.Delta

let config = function
  | Small -> (5_000, 3, 8, 5, 5) (* n, m, gamma, r, repeats *)
  | Paper -> (20_000, 4, 8, 5, 7)

let q ?(algo = Protocol.Hd_rrms) ?(r = 5) ?(gamma = 4) ?(cache = true) dataset =
  {
    Protocol.dataset;
    algo;
    r;
    gamma;
    timeout = None;
    max_cells = None;
    max_probes = None;
    use_cache = cache;
    explain = false;
  }

let run_query store query =
  match Store.query store query with
  | Ok o -> o
  | Error `Overloaded -> failwith "fig_serve: overloaded"
  | Error `Unknown_dataset -> failwith "fig_serve: unknown dataset"
  | Error `Deadline_exceeded -> failwith "fig_serve: deadline exceeded"
  | Error `Draining -> failwith "fig_serve: draining"

(* Write a deterministic synthetic dataset to a temp CSV the store can
   load; returns the path. *)
let temp_csv ~n ~m =
  let d = synthetic `Anticorrelated ~n ~m in
  let path = Filename.temp_file "fig_serve" ".csv" in
  Rrms_dataset.Dataset.to_csv d path;
  path

(* Cache hits run in single-digit microseconds — below the wall-clock
   resolution of one call — so each timed sample executes [iters] calls
   and reports the per-call average; the min over [repeats] samples is
   the recorded figure. *)
let min_time ~repeats ~iters f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, s =
      time (fun () ->
          for _ = 1 to iters do
            f ()
          done)
    in
    let per_call = s /. float_of_int iters in
    if per_call < !best then best := per_call
  done;
  !best

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json path ~n ~m ~gamma ~r ~repeats ~cold_warm ~gamma_rows ~r_rows
    ~shard_rows ~recovery ~dynamic =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"fig_serve\",\n";
  Printf.fprintf oc "  \"dataset\": \"anticorrelated\",\n";
  Printf.fprintf oc
    "  \"n\": %d,\n  \"m\": %d,\n  \"gamma\": %d,\n  \"r\": %d,\n\
    \  \"repeats\": %d,\n"
    n m gamma r repeats;
  Printf.fprintf oc "  \"cpu_cores_available\": %d,\n"
    (Domain.recommended_domain_count ());
  let section name rows fmt =
    Printf.fprintf oc "  \"%s\": [\n" name;
    List.iteri
      (fun i row ->
        Printf.fprintf oc "    %s%s\n" (fmt row)
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]"
  in
  section "cold_warm" cold_warm (fun (algo, cold, warm) ->
      Printf.sprintf
        "{\"algo\": \"%s\", \"cold_seconds\": %.9f, \"warm_seconds\": %.9f, \
         \"speedup\": %.1f}"
        algo cold warm (cold /. warm));
  Printf.fprintf oc ",\n";
  section "gamma_derivation" gamma_rows (fun (g, cold, derived) ->
      Printf.sprintf
        "{\"gamma\": %d, \"cold_seconds\": %.9f, \"derived_seconds\": %.9f, \
         \"speedup\": %.2f}"
        g cold derived (cold /. derived));
  Printf.fprintf oc ",\n";
  section "r_sweep" r_rows (fun (rv, cold, warm) ->
      Printf.sprintf
        "{\"r\": %d, \"cold_seconds\": %.9f, \"warm_seconds\": %.9f, \
         \"speedup\": %.1f}"
        rv cold warm (cold /. warm));
  Printf.fprintf oc ",\n";
  section "shard_scaling" shard_rows (fun (shards, cold, single, digest) ->
      Printf.sprintf
        "{\"shards\": %d, \"cold_seconds\": %.9f, \
         \"single_store_seconds\": %.9f, \"merge_overhead_ratio\": %.3f, \
         \"answer_digest\": \"%s\"}"
        shards cold single (cold /. single) (json_escape digest));
  Printf.fprintf oc ",\n";
  let cold_s, rehydrated_s, digest, corrupt = recovery in
  Printf.fprintf oc
    "  \"restart_recovery\": {\"cold_seconds\": %.9f, \
     \"rehydrated_seconds\": %.9f, \"rehydrate_speedup\": %.1f, \
     \"answer_digest\": \"%s\", \"corrupt_blobs\": %d},\n"
    cold_s rehydrated_s (cold_s /. rehydrated_s) (json_escape digest) corrupt;
  let mut_ops, inc_s, reb_s, wal_records, wal_s, dyn_digest = dynamic in
  Printf.fprintf oc
    "  \"dynamic\": {\"mutation_ops\": %d, \"incremental_seconds\": %.9f, \
     \"rebuild_seconds\": %.9f, \"speedup\": %.1f, \"wal_records\": %d, \
     \"wal_replay_seconds\": %.9f, \"answer_digest\": \"%s\"}\n"
    mut_ops inc_s reb_s (reb_s /. inc_s) wal_records wal_s
    (json_escape dyn_digest);
  Printf.fprintf oc "}\n";
  close_out oc

let run scale =
  let n, m, gamma, r, repeats = config scale in
  let fig = "serve" in
  header fig
    (Printf.sprintf "serving-layer reuse, anti n=%d m=%d gamma=%d r=%d" n m
       gamma r);
  let hd_csv = temp_csv ~n ~m and csv_2d = temp_csv ~n ~m:2 in
  (* Cold vs warm per algorithm: a fresh store per algorithm so every
     cold time includes its own artifact builds. *)
  let algos =
    [
      (Protocol.A2d, csv_2d);
      (Protocol.A2d_exact, csv_2d);
      (Protocol.Sweepline, csv_2d);
      (Protocol.Hd_rrms, hd_csv);
      (Protocol.Hd_greedy, hd_csv);
      (Protocol.Greedy, hd_csv);
      (Protocol.Cube, hd_csv);
    ]
  in
  let cold_warm =
    List.map
      (fun (algo, csv) ->
        let store = Store.create () in
        let loaded = Store.load store ~name:"bench" csv in
        ignore loaded;
        let query = q ~algo ~r ~gamma "bench" in
        let cold_out = ref None in
        let cold =
          let o, s = time (fun () -> run_query store query) in
          cold_out := Some o;
          s
        in
        let warm_out = ref None in
        let warm =
          min_time ~repeats ~iters:1000 (fun () ->
              warm_out := Some (run_query store query))
        in
        let co = Option.get !cold_out and wo = Option.get !warm_out in
        assert ((not co.Store.cached) && wo.Store.cached);
        assert (Json.to_string co.Store.result = Json.to_string wo.Store.result);
        let name = Protocol.algo_to_string algo in
        row fig ~x:name ~x_name:"algo" ~series:"cold" ~time:cold ();
        row fig ~x:name ~x_name:"algo" ~series:"warm" ~time:warm ();
        (name, cold, warm))
      algos
  in
  (* γ-subgrid derivation: one store holds the γ-matrix; each γ′ | γ
     query below is served by column selection, timed against a fresh
     store that must build grid and matrix at γ′ from scratch.  Single
     shots — the second derived query would be a matrix hit, which is
     the cold/warm story above, not the derivation story. *)
  let warm_store = Store.create () in
  ignore (Store.load warm_store ~name:"bench" hd_csv);
  ignore (run_query warm_store (q ~gamma ~r "bench"));
  let gamma_rows =
    List.map
      (fun g ->
        let derived_out = ref None in
        let derived =
          let o, s =
            time (fun () -> run_query warm_store (q ~gamma:g ~r "bench"))
          in
          derived_out := Some o;
          s
        in
        let cold_store = Store.create () in
        ignore (Store.load cold_store ~name:"bench" hd_csv);
        let cold_out = ref None in
        let cold =
          let o, s =
            time (fun () -> run_query cold_store (q ~gamma:g ~r "bench"))
          in
          cold_out := Some o;
          s
        in
        let d = Option.get !derived_out and c = Option.get !cold_out in
        assert (Json.to_string d.Store.result = Json.to_string c.Store.result);
        row fig ~x:(string_of_int g) ~x_name:"gamma" ~series:"derived"
          ~time:derived ();
        row fig ~x:(string_of_int g) ~x_name:"gamma" ~series:"cold" ~time:cold
          ();
        (g, cold, derived))
      [ gamma / 2; gamma / 4; 1 ]
  in
  (* r-sweep of result-cache speedups on one shared store: artifacts are
     warm after the first r, so the cold times isolate the solver and
     the warm times the cache. *)
  let r_store = Store.create () in
  ignore (Store.load r_store ~name:"bench" hd_csv);
  let r_rows =
    List.map
      (fun rv ->
        let query = q ~gamma ~r:rv "bench" in
        let _, cold = time (fun () -> run_query r_store query) in
        let warm =
          min_time ~repeats ~iters:1000 (fun () ->
              ignore (run_query r_store query))
        in
        row fig ~x:(string_of_int rv) ~x_name:"r" ~series:"cache-speedup"
          ~time:warm ();
        (rv, cold, warm))
      [ 2; 3; 4; 5; 6 ]
  in
  (* Shard scaling: the certified merge path cold at 1/2/4 shards vs an
     unsharded cold solve.  The answer digest is an identity gate: the
     merge is lossless, so every shard count must produce the exact
     bytes of the single store.  Cold each time (fresh Shard.t) — the
     interesting cost is the fan-out + merge, which a warm repeat would
     skip entirely via the result cache. *)
  let shard_rows =
    let single_store = Store.create () in
    ignore (Store.load single_store ~name:"bench" hd_csv);
    let single_out = ref None in
    let single_s =
      let o, s = time (fun () -> run_query single_store (q ~gamma ~r "bench")) in
      single_out := Some o;
      s
    in
    let expect = Json.to_string (Option.get !single_out).Store.result in
    List.map
      (fun shards ->
        let sh = Shard.create ~shards () in
        ignore (Shard.load sh ~name:"bench" hd_csv);
        let out = ref None in
        let cold_s =
          let o, s =
            time (fun () ->
                match Shard.query sh (q ~gamma ~r "bench") with
                | Ok o -> o
                | Error _ -> failwith "fig_serve: shard query failed")
          in
          out := Some o;
          s
        in
        let got = Json.to_string (Option.get !out).Store.result in
        assert (got = expect);
        row fig ~x:(string_of_int shards) ~x_name:"shards" ~series:"shard-cold"
          ~time:cold_s ();
        (shards, cold_s, single_s, Digest.to_hex (Digest.string got)))
      [ 1; 2; 4 ]
  in
  (* Restart recovery: store A solves cold and writes through to a
     state dir; a fresh store B over the same dir — empty memory, the
     restarted-daemon case — must answer the same query warm from the
     result blob alone.  Single shots: only the first warm query is a
     rehydration (after it the answer lives in B's memory again). *)
  let state_dir = Filename.temp_file "fig_serve_state" "" in
  Sys.remove state_dir;
  let recovery =
    let store_a = Store.create ~persist:(Persist.open_dir state_dir) () in
    ignore (Store.load store_a ~name:"bench" hd_csv);
    let cold_out = ref None in
    let cold_s =
      let o, s = time (fun () -> run_query store_a (q ~gamma ~r "bench")) in
      cold_out := Some o;
      s
    in
    let persist_b = Persist.open_dir state_dir in
    let scan = Persist.last_scan persist_b in
    let store_b = Store.create ~persist:persist_b () in
    ignore (Store.load store_b ~name:"bench" hd_csv);
    let warm_out = ref None in
    let rehydrated_s =
      let o, s = time (fun () -> run_query store_b (q ~gamma ~r "bench")) in
      warm_out := Some o;
      s
    in
    let co = Option.get !cold_out and wo = Option.get !warm_out in
    assert ((not co.Store.cached) && wo.Store.cached);
    let cold_str = Json.to_string co.Store.result in
    assert (cold_str = Json.to_string wo.Store.result);
    row fig ~x:"restart" ~x_name:"phase" ~series:"cold" ~time:cold_s ();
    row fig ~x:"restart" ~x_name:"phase" ~series:"rehydrated"
      ~time:rehydrated_s ();
    let digest = Digest.to_hex (Digest.string cold_str) in
    (cold_s, rehydrated_s, digest, scan.Persist.corrupt)
  in
  (* Dynamic maintenance: a warm store absorbs batches of mixed
     mutations through the incremental delta path and answers the
     standing query again; a fresh store handed the post-mutation
     dataset must rebuild skyline, grid and matrix from scratch to
     produce the same bytes.  The first batches are fully random; the
     timed batch is insert-below-skyline — the steady-state shape of
     point mutations against a large table — so the maintenance pass
     re-certifies the cached artifacts (merge path, matrices untouched,
     result kept with a proof of exactness) instead of rebuilding them.
     Both sides are in-memory stores: durability is priced separately,
     by replaying the write-ahead log a persistent twin fed the same
     batches into a cold store, whose answer must match again.  Three
     answers, one digest, recorded as an identity gate. *)
  let dynamic =
    let n_dyn = 8 * n in
    let dyn_csv = temp_csv ~n:n_dyn ~m in
    let wal_dir = Filename.temp_file "fig_serve_wal" "" in
    Sys.remove wal_dir;
    let store_a = Store.create () in
    ignore (Store.load store_a ~name:"dyn" dyn_csv);
    ignore (run_query store_a (q ~gamma ~r "dyn"));
    let rng = Rrms_rng.Rng.create (seed_of ("serve", "dyn", m)) in
    let size = ref n_dyn in
    let fresh_tuple () = Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.) in
    let mixed_batch ops =
      List.init ops (fun _ ->
          match Rrms_rng.Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 ->
              incr size;
              Delta.Insert (fresh_tuple ())
          | (5 | 6 | 7) when !size > 2 ->
              let i = Rrms_rng.Rng.int rng !size in
              decr size;
              Delta.Delete i
          | _ -> Delta.Upsert (Rrms_rng.Rng.int rng !size, fresh_tuple ()))
    in
    let dominated_batch ops =
      List.init ops (fun _ ->
          incr size;
          Delta.Insert
            (Array.init m (fun _ -> 0.05 *. Rrms_rng.Rng.float rng 1.)))
    in
    let batches = 4 and ops_per_batch = 8 in
    let all_batches =
      List.init (batches - 1) (fun _ -> mixed_batch ops_per_batch)
      @ [ dominated_batch ops_per_batch ]
    in
    let must_mutate store ops =
      match Store.mutate store ~dataset:"dyn" ops with
      | Ok r -> r
      | Error _ -> failwith "fig_serve: mutate failed"
    in
    let rec split_last = function
      | [] -> failwith "fig_serve: no batches"
      | [ last ] -> ([], last)
      | b :: rest ->
          let init, last = split_last rest in
          (b :: init, last)
    in
    let warmup, last = split_last all_batches in
    List.iter
      (fun b ->
        ignore (must_mutate store_a b);
        ignore (run_query store_a (q ~gamma ~r "dyn")))
      warmup;
    let _, mutate_s = time (fun () -> must_mutate store_a last) in
    let inc_o, query_s = time (fun () -> run_query store_a (q ~gamma ~r "dyn")) in
    let incremental_s = mutate_s +. query_s in
    let inc_str = Json.to_string inc_o.Store.result in
    (* From-scratch rebuild over the exact post-mutation dataset (taken
       from the store, not a CSV round-trip, so the bits agree). *)
    let h =
      match Store.pin store_a "dyn" with
      | Some h -> h
      | None -> failwith "fig_serve: mutated dataset vanished"
    in
    let d_final = Store.pinned_dataset h in
    Store.unpin store_a h;
    let rebuild_store = Store.create () in
    (* The timed rebuild starts from the raw rows: registering the
       dataset (hashing + transforms) is part of the from-scratch price
       a daemon without the mutation path would pay per update. *)
    let reb_o, rebuild_s =
      time (fun () ->
          let final = Store.add rebuild_store d_final in
          run_query rebuild_store (q ~gamma ~r final.Store.key))
    in
    assert (inc_str = Json.to_string reb_o.Store.result);
    (* Crash-recovery path: a persistent twin journals the same batches
       to the WAL, which is then replayed into a cold store. *)
    let store_w = Store.create ~persist:(Persist.open_dir wal_dir) () in
    ignore (Store.load store_w ~name:"dyn" dyn_csv);
    List.iter (fun b -> ignore (must_mutate store_w b)) all_batches;
    let persist_b = Persist.open_dir wal_dir in
    let store_b = Store.create ~persist:persist_b () in
    ignore (Store.load store_b ~name:"dyn" dyn_csv);
    let rep, wal_replay_s = time (fun () -> Mutate.replay store_b persist_b) in
    assert (rep.Mutate.applied = batches && rep.Mutate.skipped = 0);
    let replayed_o = run_query store_b (q ~gamma ~r "dyn") in
    assert (inc_str = Json.to_string replayed_o.Store.result);
    row fig ~x:"dynamic" ~x_name:"phase" ~series:"mutate" ~time:mutate_s ();
    row fig ~x:"dynamic" ~x_name:"phase" ~series:"incremental"
      ~time:incremental_s ();
    row fig ~x:"dynamic" ~x_name:"phase" ~series:"rebuild" ~time:rebuild_s ();
    row fig ~x:"dynamic" ~x_name:"phase" ~series:"wal-replay"
      ~time:wal_replay_s ();
    Array.iter
      (fun f -> try Sys.remove (Filename.concat wal_dir f) with Sys_error _ -> ())
      (Sys.readdir wal_dir);
    (try Unix.rmdir wal_dir with Unix.Unix_error _ -> ());
    Sys.remove dyn_csv;
    ( batches * ops_per_batch,
      incremental_s,
      rebuild_s,
      rep.Mutate.records,
      wal_replay_s,
      Digest.to_hex (Digest.string inc_str) )
  in
  write_json "BENCH_serve.json" ~n ~m ~gamma ~r ~repeats ~cold_warm ~gamma_rows
    ~r_rows ~shard_rows ~recovery ~dynamic;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat state_dir f) with Sys_error _ -> ())
    (Sys.readdir state_dir);
  (try Unix.rmdir state_dir with Unix.Unix_error _ -> ());
  Sys.remove hd_csv;
  Sys.remove csv_2d
