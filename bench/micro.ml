(* Bechamel micro-benchmarks for the core kernels.

   These complement the figure harness: the figures time end-to-end
   algorithm runs with wall clocks, while these measure the hot inner
   kernels (dot products, skyline passes, hull construction, edge
   weights, matrix building, set cover, simplex) with proper OLS
   estimation. *)

open Bechamel
open Toolkit

let kernels () =
  let rng = Rrms_rng.Rng.create 1234 in
  let v1 = Array.init 8 (fun _ -> Rrms_rng.Rng.float rng 1.) in
  let v2 = Array.init 8 (fun _ -> Rrms_rng.Rng.float rng 1.) in
  let pts2d =
    Array.init 5_000 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let pts4d =
    Array.init 2_000 (fun _ ->
        Array.init 4 (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let ctx2d = Rrms_core.Rrms2d.make_ctx pts2d in
  let s2d = Rrms_core.Rrms2d.skyline_size ctx2d in
  let funcs = Rrms_core.Discretize.grid ~gamma:4 ~m:4 in
  let sky4 = Rrms_skyline.Skyline.sfs pts4d in
  let sky4_pts = Array.map (fun i -> pts4d.(i)) sky4 in
  let matrix = Rrms_core.Regret_matrix.build ~funcs sky4_pts in
  let cover_sets =
    Array.init 40 (fun _ ->
        let b = Rrms_setcover.Bitset.create 125 in
        for item = 0 to 124 do
          if Rrms_rng.Rng.float rng 1. < 0.3 then Rrms_setcover.Bitset.set b item
        done;
        b)
  in
  let cover = Rrms_setcover.Setcover.make_instance ~universe:125 cover_sets in
  let lp_c = [| 3.; 5. |] in
  let lp_rows =
    [
      Rrms_lp.Simplex.constraint_ [| 1.; 0. |] Rrms_lp.Simplex.Le 4.;
      Rrms_lp.Simplex.constraint_ [| 0.; 2. |] Rrms_lp.Simplex.Le 12.;
      Rrms_lp.Simplex.constraint_ [| 3.; 2. |] Rrms_lp.Simplex.Le 18.;
    ]
  in
  [
    Test.make ~name:"vec-dot-8d" (Staged.stage (fun () -> Rrms_geom.Vec.dot v1 v2));
    Test.make ~name:"skyline-2d-5k"
      (Staged.stage (fun () -> Rrms_skyline.Skyline.two_d pts2d));
    Test.make ~name:"skyline-sfs-4d-2k"
      (Staged.stage (fun () -> Rrms_skyline.Skyline.sfs pts4d));
    Test.make ~name:"hull2d-5k"
      (Staged.stage (fun () -> Rrms_geom.Hull2d.build pts2d));
    Test.make ~name:"edge-weight"
      (Staged.stage (fun () -> Rrms_core.Rrms2d.edge_weight ctx2d 0 (s2d - 1)));
    Test.make ~name:"edge-weight-exact"
      (Staged.stage (fun () ->
           Rrms_core.Rrms2d.edge_weight_exact ctx2d 0 (s2d - 1)));
    Test.make ~name:"discretize-grid-g4-m4"
      (Staged.stage (fun () -> Rrms_core.Discretize.grid ~gamma:4 ~m:4));
    Test.make ~name:"regret-matrix-build"
      (Staged.stage (fun () ->
           Rrms_core.Regret_matrix.build ~funcs sky4_pts));
    Test.make ~name:"mrst-greedy"
      (Staged.stage (fun () -> Rrms_core.Mrst.solve matrix ~eps:0.1));
    Test.make ~name:"setcover-greedy"
      (Staged.stage (fun () -> Rrms_setcover.Setcover.greedy cover));
    Test.make ~name:"simplex-small"
      (Staged.stage (fun () -> Rrms_lp.Simplex.maximize ~c:lp_c lp_rows));
    Test.make ~name:"point-regret-lp"
      (Staged.stage (fun () ->
           Rrms_core.Regret.point_regret_lp
             ~set:(Array.sub sky4_pts 0 (min 5 (Array.length sky4_pts)))
             pts4d.(0)));
  ]

let run () =
  print_endline "\n== micro: Bechamel kernel benchmarks ==";
  let test = Test.make_grouped ~name:"rrms" ~fmt:"%s/%s" (kernels ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
      in
      let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
              Printf.printf "[micro] %s %s = %.1f ns/run\n" measure name est
          | Some [] | None ->
              Printf.printf "[micro] %s %s = (no estimate)\n" measure name)
        rows)
    merged
