(* Figure-reproduction harness: regenerates every figure of the paper's
   evaluation (§6) at a scaled-down size, plus the §4.1 gadget and the
   §6.3 negative results, plus a Bechamel kernel suite.

   Usage:
     dune exec bench/main.exe                      # all figures, small scale
     dune exec bench/main.exe -- --only fig8,fig13 # a subset
     dune exec bench/main.exe -- --scale paper     # closer to paper sizes
     dune exec bench/main.exe -- --micro           # kernel microbenchmarks
     dune exec bench/main.exe -- --list            # list figure ids

   Output rows are machine-readable:
     [fig8] n=20000 series=2DRRMS/anti time=0.1234 regret=0.0456 *)

let groups : (string list * string * (Bench_util.scale -> unit)) list =
  [
    ([ "fig1" ], "convex hull size vs m", Fig_hull.run);
    ([ "fig8" ], "2D time vs n", Fig_2d.fig8);
    ([ "fig9" ], "2D time vs r", Fig_2d.fig9);
    ([ "fig10" ], "2D skyline-only", Fig_2d.fig10);
    ([ "fig11" ], "2D NBA-sim", Fig_2d.fig11);
    ([ "fig12" ], "2D Airline-sim", Fig_2d.fig12);
    ( [ "fig13"; "fig14"; "fig15"; "fig16" ],
      "HD vs n (3 families) + skyline sizes",
      Fig_hd.fig_n );
    ( [ "fig17"; "fig18"; "fig19"; "fig20" ],
      "HD vs m (3 families) + skyline sizes",
      Fig_hd.fig_m );
    ([ "fig21"; "fig22"; "fig23" ], "HD vs r (3 families)", Fig_hd.fig_r);
    ([ "fig24"; "fig25"; "fig26" ], "HD impact of γ", Fig_hd.fig_gamma);
    ([ "fig27"; "fig28"; "fig29"; "fig30" ], "HD DOT/NBA sims", Fig_hd.fig_real);
    ([ "fig31" ], "k-dominant skyline adaptation", Fig_misc.fig31);
    ([ "ablation" ], "design-choice ablations", Fig_ablation.run);
    ([ "onion" ], "ONION index vs RRMS trade-off", Fig_onion.run);
    ([ "gadget" ], "§4.1 GREEDY pathological example", Fig_misc.gadget);
    ([ "ahull" ], "§6.3 approximate hull sizes", Fig_misc.ahull);
    ( [ "parallel" ],
      "domain-pool scaling (writes BENCH_parallel.json)",
      Fig_parallel.run );
    ( [ "robustness" ],
      "anytime degradation under budgets (writes BENCH_robustness.json)",
      Fig_robustness.run );
    ( [ "obs" ],
      "observability overhead by level (writes BENCH_obs.json)",
      Fig_obs.run );
    ( [ "serve" ],
      "serving-layer artifact reuse (writes BENCH_serve.json)",
      Fig_serve.run );
  ]

let () =
  (* RRMS_DOMAINS sets the default pool size for every kernel that is
     not timed at an explicit domain count. *)
  Rrms_parallel.Pool.configure_from_env ();
  Rrms_parallel.Fault.configure_from_env ();
  Rrms_obs.Obs.configure_from_env ();
  let scale = ref Bench_util.Small in
  let only : string list ref = ref [] in
  let micro = ref false in
  let list_only = ref false in
  let pool_stats = ref false in
  let args =
    [
      ( "--scale",
        Arg.String
          (fun s ->
            match Bench_util.scale_of_string s with
            | Ok v -> scale := v
            | Error msg ->
                prerr_endline msg;
                exit 2),
        "small|paper  experiment sizes (default small)" );
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "fig8,fig13,...  run only the listed figure ids" );
      ("--micro", Arg.Set micro, " also run the Bechamel kernel suite");
      ( "--pool-stats",
        Arg.Set pool_stats,
        " dump the domain-pool scheduling counters (rrms_pool_*) after \
         the run" );
      ("--list", Arg.Set list_only, " list figure ids and exit");
    ]
  in
  Arg.parse args
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "bench/main.exe [--scale small|paper] [--only figN,...] [--micro]";
  if !list_only then begin
    List.iter
      (fun (ids, doc, _) ->
        Printf.printf "%-28s %s\n" (String.concat "," ids) doc)
      groups;
    exit 0
  end;
  let wanted ids =
    match !only with
    | [] -> true
    | sel -> List.exists (fun id -> List.mem id sel) ids
  in
  (* --pool-stats needs the counters live before any kernel runs; never
     downgrade a level the environment already raised (RRMS_OBS=full). *)
  if !pool_stats && Rrms_obs.Obs.level () = Rrms_obs.Obs.Disabled then
    Rrms_obs.Obs.set_level Rrms_obs.Obs.Counters;
  let t0 = Unix.gettimeofday () in
  List.iter (fun (ids, _, run) -> if wanted ids then run !scale) groups;
  if !micro then Micro.run ();
  if !pool_stats then begin
    (* How the adaptive pool actually scheduled the run: items executed
       in parallel vs kept serial by the cost model, batches, chunk
       sizing, and injected faults. *)
    Printf.printf "\n== pool stats ==\n";
    List.iter
      (fun (name, v) ->
        if String.starts_with ~prefix:"rrms_pool_" name then
          Printf.printf "%-42s %g\n" name v)
      (Rrms_obs.Obs.snapshot ())
  end;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
