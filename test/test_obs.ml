(* Observability invariants (the tentpole's correctness contract):

   1. a Disabled registry records nothing — counters, gauges, timers and
      the trace buffer all stay empty through a real solve;
   2. the deterministic metric subset is identical across domain counts
      1 / 2 / 4 for the same workload;
   3. span (name, depth) sequences are identical across domain counts;
   4. solver outputs are bit-identical (Int64.bits_of_float) with
      observability Disabled vs Full. *)

open Rrms_core
module Obs = Rrms_obs.Obs

(* Every obs test mutates the global level; run the body with a chosen
   level and always restore Disabled + a clean registry afterwards so
   the rest of the suite is unaffected. *)
let with_level level f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Disabled;
      Obs.reset ())
    (fun () ->
      Obs.set_level level;
      Obs.reset ();
      f ())

let dataset seed ~n ~m =
  let rng = Rrms_rng.Rng.create seed in
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

(* A workload touching every instrumented layer: skyline, grid, matrix,
   MRST (incremental + fresh), set cover, LP, guard probes. *)
let workload ?domains () =
  let points = dataset 7 ~n:300 ~m:3 in
  let hd = Hd_rrms.solve ~gamma:3 ?domains points ~r:4 in
  let hg = Hd_greedy.solve ~gamma:3 ?domains points ~r:4 in
  let g = Greedy.solve points ~r:3 in
  (hd, hg, g)

(* ------------------------------------------------------------------ *)

let test_counter_primitives () =
  with_level Obs.Counters (fun () ->
      let c = Obs.Counter.make "rrms_test_counter_total" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "counter accumulates" 42 (Obs.Counter.value c);
      let g = Obs.Gauge.make "rrms_test_gauge" in
      Obs.Gauge.set_int g 7;
      Obs.Gauge.set g 3.5;
      Alcotest.(check (float 0.)) "gauge last-write-wins" 3.5 (Obs.Gauge.value g);
      let f = Obs.Floatc.make "rrms_test_float_total" in
      Obs.Floatc.add f 0.25;
      Obs.Floatc.add f 0.25;
      Alcotest.(check (float 1e-12)) "float counter sums" 0.5 (Obs.Floatc.value f);
      let t = Obs.Timer.make "rrms_test_seconds" in
      Obs.Timer.observe t 0.003;
      let v = Obs.Timer.time t (fun () -> 42) in
      Alcotest.(check int) "Timer.time returns the value" 42 v;
      Alcotest.(check int) "timer observed both" 2 (Obs.Timer.count t);
      Obs.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Obs.Counter.value c);
      Alcotest.(check int) "reset zeroes timers" 0 (Obs.Timer.count t))

let test_disabled_records_nothing () =
  with_level Obs.Disabled (fun () ->
      let c = Obs.Counter.make "rrms_test_disabled_total" in
      Obs.Counter.incr c;
      Obs.Counter.add c 10;
      Alcotest.(check int) "disabled counter stays 0" 0 (Obs.Counter.value c);
      ignore (workload ());
      List.iter
        (fun (name, v) ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "disabled metric %s stays 0" name)
            0. v)
        (Obs.snapshot ());
      Alcotest.(check int) "disabled trace stays empty" 0 (Obs.Trace.count ()))

let test_deterministic_across_domains () =
  let snapshot_at domains =
    with_level Obs.Counters (fun () ->
        ignore (workload ~domains ());
        Obs.deterministic_snapshot ())
  in
  let base = snapshot_at 1 in
  Alcotest.(check bool)
    "deterministic snapshot is non-trivial" true
    (List.exists (fun (_, v) -> v > 0.) base);
  List.iter
    (fun domains ->
      let other = snapshot_at domains in
      Alcotest.(check int)
        "same metric count" (List.length base) (List.length other);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          Alcotest.(check string) "same metric name" n1 n2;
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s identical at %d domains" n1 domains)
            v1 v2)
        base other)
    [ 2; 4 ]

let test_spans_deterministic_across_domains () =
  let spans_at domains =
    with_level Obs.Full (fun () ->
        ignore (workload ~domains ());
        List.map
          (fun (e : Obs.Trace.event) -> (e.name, e.depth))
          (Obs.Trace.events ()))
  in
  let base = spans_at 1 in
  Alcotest.(check bool) "spans recorded" true (base <> []);
  List.iter
    (fun domains ->
      let other = spans_at domains in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "span (name, depth) sequence identical at %d domains"
           domains)
        base other)
    [ 2; 4 ]

(* Bit-identity: run each solver with obs Disabled, then again at Full
   with tracing live, and compare every output float bit for bit. *)
let test_results_bit_identical () =
  let bits = Int64.bits_of_float in
  let run () =
    let points = dataset 11 ~n:250 ~m:2 in
    let r2 = Rrms2d.solve_exact points ~r:3 in
    let sw = Sweepline.solve points ~r:3 in
    let hd_pts = dataset 13 ~n:250 ~m:3 in
    let hd = Hd_rrms.solve ~gamma:3 hd_pts ~r:4 in
    let hg = Hd_greedy.solve ~gamma:3 hd_pts ~r:4 in
    let g = Greedy.solve hd_pts ~r:3 in
    ( (r2.Rrms2d.selected, bits r2.Rrms2d.dp_value, bits r2.Rrms2d.regret),
      (sw.Sweepline.selected, bits sw.Sweepline.dp_value, bits sw.Sweepline.regret),
      ( hd.Hd_rrms.selected,
        bits hd.Hd_rrms.eps_min,
        bits hd.Hd_rrms.guarantee,
        bits hd.Hd_rrms.discretized_regret ),
      (hg.Hd_greedy.selected, bits hg.Hd_greedy.discretized_regret),
      (g.Greedy.selected, bits g.Greedy.regret_lp) )
  in
  let off = with_level Obs.Disabled run in
  let on = with_level Obs.Full run in
  let (r2o, swo, hdo, hgo, go) = off and (r2n, swn, hdn, hgn, gn) = on in
  let check_sel msg a b = Alcotest.(check (array int)) msg a b in
  let check_bits msg a b = Alcotest.(check int64) msg a b in
  let (s1, d1, e1) = r2o and (s2, d2, e2) = r2n in
  check_sel "2d selected" s1 s2;
  check_bits "2d dp bits" d1 d2;
  check_bits "2d regret bits" e1 e2;
  let (s1, d1, e1) = swo and (s2, d2, e2) = swn in
  check_sel "sweepline selected" s1 s2;
  check_bits "sweepline dp bits" d1 d2;
  check_bits "sweepline regret bits" e1 e2;
  let (s1, a1, b1, c1) = hdo and (s2, a2, b2, c2) = hdn in
  check_sel "hd-rrms selected" s1 s2;
  check_bits "hd-rrms eps bits" a1 a2;
  check_bits "hd-rrms guarantee bits" b1 b2;
  check_bits "hd-rrms grid-regret bits" c1 c2;
  let (s1, a1) = hgo and (s2, a2) = hgn in
  check_sel "hd-greedy selected" s1 s2;
  check_bits "hd-greedy grid-regret bits" a1 a2;
  let (s1, a1) = go and (s2, a2) = gn in
  check_sel "greedy selected" s1 s2;
  check_bits "greedy regret bits" a1 a2

let test_sinks () =
  with_level Obs.Full (fun () ->
      ignore (workload ());
      let prom = Obs.prometheus () in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "prometheus exposes %s" name)
            true (contains prom name))
        [
          "rrms_skyline_size";
          "rrms_matrix_cells_total";
          "rrms_mrst_incremental_solves_total";
          "rrms_hd_rrms_probes_total";
          "rrms_lp_pivots_total";
          "rrms_setcover_greedy_iterations_total";
          "rrms_span_seconds_bucket";
          "# TYPE rrms_span_seconds histogram";
        ];
      let sum = Obs.summary () in
      Alcotest.(check bool) "summary mentions probes" true
        (contains sum "rrms_hd_rrms_probes_total");
      let path = Filename.temp_file "rrms_obs" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_trace path;
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let lines = List.rev !lines in
          Alcotest.(check bool) "trace file non-empty" true (lines <> []);
          List.iter
            (fun l ->
              Alcotest.(check bool) "every trace line is a JSON object" true
                (String.length l > 2 && l.[0] = '{'
                && l.[String.length l - 1] = '}'))
            lines;
          Alcotest.(check bool) "trace has span events" true
            (List.exists (fun l -> contains l "\"type\":\"span\"") lines);
          Alcotest.(check bool) "trace ends with a metric snapshot" true
            (List.exists (fun l -> contains l "\"type\":\"metric\"") lines)))

let test_probe_cache_counters () =
  (* Two probes at the same threshold index: the second must be a cache
     hit, with exactly one MRST solve issued. *)
  with_level Obs.Counters (fun () ->
      let points = dataset 17 ~n:120 ~m:3 in
      ignore (Hd_rrms.solve ~gamma:3 points ~r:3);
      let misses =
        List.assoc "rrms_hd_rrms_probe_cache_misses_total"
          (Obs.deterministic_snapshot ())
      in
      let incremental =
        List.assoc "rrms_mrst_incremental_solves_total"
          (Obs.deterministic_snapshot ())
      in
      Alcotest.(check (float 0.))
        "every cache miss is one incremental MRST solve" misses incremental)

let suite =
  [
    Alcotest.test_case "instrument primitives" `Quick test_counter_primitives;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "deterministic across domains" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "spans deterministic across domains" `Quick
      test_spans_deterministic_across_domains;
    Alcotest.test_case "results bit-identical on/off" `Quick
      test_results_bit_identical;
    Alcotest.test_case "sinks (prometheus, summary, trace)" `Quick test_sinks;
    Alcotest.test_case "probe cache counters consistent" `Quick
      test_probe_cache_counters;
  ]
